//! Property-based tests across the whole pipeline: transformer
//! invariants over randomly generated functional schemas, and CIT
//! consistency under random navigation sequences.

use mlds::codasyl::schema::{Insertion, Owner, Retention, Selection, SetOrigin};
use mlds::daplex::{
    BaseKind, EntitySubtype, EntityType, FnRange, Function, FunctionalSchema, NonEntityClass,
    NonEntityType,
};
use mlds::{daplex, transform, Mlds};
use proptest::prelude::*;

// ----- random functional schemas -------------------------------------

fn arb_scalar_range() -> impl Strategy<Value = FnRange> {
    prop_oneof![
        (1u16..40).prop_map(|len| FnRange::Str { len }),
        Just(FnRange::Int),
        Just(FnRange::Float),
        Just(FnRange::Bool),
        proptest::collection::vec("[a-z]{2,8}", 1..4)
            .prop_map(|literals| FnRange::Enum { literals }),
    ]
}

/// A random but *valid* functional schema: 2–4 entity types named
/// e0..e3, 0–3 subtypes named s0..s2 (each under one entity), scalar
/// functions plus a sprinkling of entity-valued ones. Function names
/// are globally unique to dodge name collisions and inheritance
/// shadowing by construction.
fn arb_schema() -> impl Strategy<Value = FunctionalSchema> {
    (
        2usize..=4,                                    // entity count
        0usize..=3,                                    // subtype count
        proptest::collection::vec(arb_scalar_range(), 12), // scalar pool
        proptest::collection::vec(0usize..4, 8),       // entity-fn targets
        proptest::collection::vec(any::<bool>(), 8),   // set-valued flags
    )
        .prop_map(|(n_ent, n_sub, scalars, targets, setflags)| {
            let mut schema = FunctionalSchema::new("random");
            schema.non_entities.push(NonEntityType {
                name: "small".into(),
                class: NonEntityClass::Base,
                kind: BaseKind::Int,
                range: Some((0, 9)),
                constant: false,
                value: None,
            });
            let mut fn_no = 0usize;
            let mut scalar_iter = scalars.into_iter();
            for i in 0..n_ent {
                let mut functions = vec![Function {
                    name: format!("f{fn_no}"),
                    range: scalar_iter.next().unwrap_or(FnRange::Int),
                    set_valued: false,
                }];
                fn_no += 1;
                // One extra scalar, possibly set-valued.
                functions.push(Function {
                    name: format!("f{fn_no}"),
                    range: scalar_iter.next().unwrap_or(FnRange::Int),
                    set_valued: setflags.get(i).copied().unwrap_or(false),
                });
                fn_no += 1;
                schema.entities.push(EntityType { name: format!("e{i}"), functions });
            }
            // Entity-valued functions between entity types.
            for (i, &target) in targets.iter().take(n_ent).enumerate() {
                let target = target % n_ent;
                let set_valued = setflags.get(i + 4).copied().unwrap_or(false);
                let fname = format!("f{fn_no}");
                fn_no += 1;
                schema.entities[i].functions.push(Function {
                    name: fname,
                    range: FnRange::Entity(format!("e{target}")),
                    set_valued,
                });
            }
            for j in 0..n_sub {
                let sup = format!("e{}", j % n_ent);
                let functions = vec![Function {
                    name: format!("f{fn_no}"),
                    range: FnRange::NonEntity("small".into()),
                    set_valued: false,
                }];
                fn_no += 1;
                schema.subtypes.push(EntitySubtype {
                    name: format!("s{j}"),
                    supertypes: vec![sup],
                    functions,
                });
            }
            schema
        })
        .prop_filter("schema must validate", |s| s.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chapter-V invariants hold for every valid functional schema.
    #[test]
    fn transformer_invariants(schema in arb_schema()) {
        let net = transform::transform(&schema).unwrap();
        net.validate().unwrap();

        // Every entity type: a record and a SYSTEM set, AUTOMATIC/FIXED.
        for e in &schema.entities {
            prop_assert!(net.record(&e.name).is_some());
            let sys = net.set(&daplex::names::system_set(&e.name)).unwrap();
            prop_assert_eq!(sys.owner.clone(), Owner::System);
            prop_assert_eq!(sys.insertion, Insertion::Automatic);
            prop_assert_eq!(sys.retention, Retention::Fixed);
        }
        // Every subtype: a record and ISA sets per supertype.
        for s in &schema.subtypes {
            prop_assert!(net.record(&s.name).is_some());
            for sup in &s.supertypes {
                let isa = net.set(&daplex::names::isa_set(sup, &s.name)).unwrap();
                prop_assert_eq!(isa.insertion, Insertion::Automatic);
                prop_assert_eq!(isa.retention, Retention::Fixed);
                let is_isa = matches!(isa.origin, SetOrigin::Isa { .. });
                prop_assert!(is_isa);
            }
        }
        // Every function lands in exactly one place: attribute or set.
        for name in schema.entity_like_names() {
            for f in schema.own_functions(name) {
                let as_attr = net.record(name).unwrap().attr(&f.name).is_some();
                let as_set = net.set(&f.name).is_some();
                prop_assert!(
                    as_attr ^ as_set,
                    "function {} must map to exactly one construct (attr={}, set={})",
                    f.name, as_attr, as_set
                );
                if as_set {
                    let set = net.set(&f.name).unwrap();
                    prop_assert_eq!(set.insertion, Insertion::Manual);
                    prop_assert_eq!(set.retention, Retention::Optional);
                }
                if as_attr && f.set_valued {
                    prop_assert!(
                        !net.record(name).unwrap().attr(&f.name).unwrap().dup_allowed,
                        "scalar multi-valued attributes clear the duplicate flag"
                    );
                }
            }
        }
        // Set selection is always BY APPLICATION.
        prop_assert!(net.sets.iter().all(|s| s.selection == Selection::Application));
        // Determinism.
        prop_assert_eq!(net, transform::transform(&schema).unwrap());
    }
}

// ----- CIT consistency under random navigation ------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any sequence of FIND FIRST/NEXT/PRIOR/LAST over the University
    /// database keeps the CIT coherent: the run-unit always names a
    /// record that exists, and set member currencies always belong to
    /// the set's member record type.
    #[test]
    fn cit_stays_coherent_under_random_navigation(
        steps in proptest::collection::vec((0usize..4, 0usize..4), 1..25)
    ) {
        let mut m = Mlds::single_backend();
        m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
        m.populate_university("university").unwrap();
        let mut s = m.connect_codasyl("u", "university").unwrap();

        let sweeps = [
            ("course", "system_course"),
            ("person", "system_person"),
            ("employee", "system_employee"),
            ("department", "system_department"),
        ];
        let verbs = ["FIRST", "NEXT", "PRIOR", "LAST"];
        for (verb_idx, sweep_idx) in steps {
            let (record, set) = sweeps[sweep_idx];
            let stmt = format!("FIND {} {record} WITHIN {set}", verbs[verb_idx]);
            // End-of-set conditions are expected; anything else is not.
            match m.execute_codasyl(&mut s, &stmt) {
                Ok(_) | Err(mlds::Error::Translator(
                    mlds::translator::Error::EndOfSet { .. }
                )) => {}
                Err(e) => prop_assert!(false, "unexpected failure of `{}`: {}", stmt, e),
            }
            if let Some(cur) = s.cit().run_unit() {
                let schema = s.schema().clone();
                prop_assert!(schema.record(&cur.record).is_some());
            }
            for (rec, set) in &sweeps {
                if let Some(sc) = s.cit().set(set) {
                    if let Some(member) = &sc.member {
                        prop_assert_eq!(member.record.as_str(), *rec);
                    }
                }
            }
        }
    }
}

// ----- parser robustness ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No parser panics on arbitrary input — they return errors.
    #[test]
    fn parsers_never_panic_on_arbitrary_text(src in "\\PC{0,120}") {
        let _ = mlds::abdl::parse::parse_request(&src);
        let _ = mlds::abdl::parse::parse_transaction(&src);
        let _ = mlds::codasyl::ddl::parse_schema(&src);
        let _ = mlds::codasyl::dml::parse_statements(&src);
        let _ = mlds::daplex::ddl::parse_schema(&src);
        let _ = mlds::daplex::dml::parse_statements(&src);
        let _ = mlds::relational::ddl::parse_schema(&src);
        let _ = mlds::relational::dml::parse_statements(&src);
        let _ = mlds::dli::ddl::parse_schema(&src);
        let _ = mlds::dli::calls::parse_calls(&src);
        let _ = mlds::abdl::engine::restore(&src);
    }

    /// Keyword-ish soups (the adversarial case for recursive-descent
    /// parsers) do not panic either.
    #[test]
    fn parsers_never_panic_on_keyword_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("FIND"), Just("ANY"), Just("WITHIN"), Just("USING"), Just("IN"),
                Just("SET"), Just("RECORD"), Just("OWNER"), Just("SELECT"), Just("FROM"),
                Just("WHERE"), Just("TYPE"), Just("IS"), Just("ENTITY"), Just("END"),
                Just("GU"), Just("ISRT"), Just("("), Just(")"), Just(","), Just(";"),
                Just("."), Just("="), Just("<"), Just("'x'"), Just("42"), Just("a"),
            ],
            0..30,
        )
    ) {
        let src = words.join(" ");
        let _ = mlds::abdl::parse::parse_request(&src);
        let _ = mlds::codasyl::ddl::parse_schema(&src);
        let _ = mlds::codasyl::dml::parse_statements(&src);
        let _ = mlds::daplex::ddl::parse_schema(&src);
        let _ = mlds::daplex::dml::parse_statements(&src);
        let _ = mlds::relational::dml::parse_statements(&src);
        let _ = mlds::dli::calls::parse_calls(&src);
    }
}
