//! Randomized property tests across the whole pipeline: transformer
//! invariants over randomly generated functional schemas, CIT
//! consistency under random navigation sequences, and parser
//! robustness. Inputs come from the in-tree seeded PRNG so failures
//! reproduce exactly.

use mlds::abdl::prng::Prng;
use mlds::codasyl::schema::{Insertion, Owner, Retention, Selection, SetOrigin};
use mlds::daplex::{
    BaseKind, EntitySubtype, EntityType, FnRange, Function, FunctionalSchema, NonEntityClass,
    NonEntityType,
};
use mlds::{daplex, transform, Mlds};

// ----- random functional schemas -------------------------------------

fn gen_word(rng: &mut Prng, min: usize, max: usize) -> String {
    let len = min + rng.index(max - min + 1);
    (0..len).map(|_| (b'a' + rng.index(26) as u8) as char).collect()
}

fn gen_scalar_range(rng: &mut Prng) -> FnRange {
    match rng.index(5) {
        0 => FnRange::Str { len: rng.gen_range(1, 40) as u16 },
        1 => FnRange::Int,
        2 => FnRange::Float,
        3 => FnRange::Bool,
        _ => FnRange::Enum {
            literals: (0..1 + rng.index(3)).map(|_| gen_word(rng, 2, 8)).collect(),
        },
    }
}

/// A random but *valid* functional schema: 2–4 entity types named
/// e0..e3, 0–3 subtypes named s0..s2 (each under one entity), scalar
/// functions plus a sprinkling of entity-valued ones. Function names
/// are globally unique to dodge name collisions and inheritance
/// shadowing by construction.
fn gen_schema(rng: &mut Prng) -> FunctionalSchema {
    loop {
        let n_ent = 2 + rng.index(3);
        let n_sub = rng.index(4);
        let mut scalar_iter: Vec<FnRange> = (0..12).map(|_| gen_scalar_range(rng)).collect();
        scalar_iter.reverse(); // pop() delivers in generation order
        let targets: Vec<usize> = (0..8).map(|_| rng.index(4)).collect();
        let setflags: Vec<bool> = (0..8).map(|_| rng.chance(1, 2)).collect();

        let mut schema = FunctionalSchema::new("random");
        schema.non_entities.push(NonEntityType {
            name: "small".into(),
            class: NonEntityClass::Base,
            kind: BaseKind::Int,
            range: Some((0, 9)),
            constant: false,
            value: None,
        });
        let mut fn_no = 0usize;
        for i in 0..n_ent {
            let mut functions = vec![Function {
                name: format!("f{fn_no}"),
                range: scalar_iter.pop().unwrap_or(FnRange::Int),
                set_valued: false,
            }];
            fn_no += 1;
            // One extra scalar, possibly set-valued.
            functions.push(Function {
                name: format!("f{fn_no}"),
                range: scalar_iter.pop().unwrap_or(FnRange::Int),
                set_valued: setflags.get(i).copied().unwrap_or(false),
            });
            fn_no += 1;
            schema.entities.push(EntityType { name: format!("e{i}"), functions });
        }
        // Entity-valued functions between entity types.
        for (i, &target) in targets.iter().take(n_ent).enumerate() {
            let target = target % n_ent;
            let set_valued = setflags.get(i + 4).copied().unwrap_or(false);
            let fname = format!("f{fn_no}");
            fn_no += 1;
            schema.entities[i].functions.push(Function {
                name: fname,
                range: FnRange::Entity(format!("e{target}")),
                set_valued,
            });
        }
        for j in 0..n_sub {
            let sup = format!("e{}", j % n_ent);
            let functions = vec![Function {
                name: format!("f{fn_no}"),
                range: FnRange::NonEntity("small".into()),
                set_valued: false,
            }];
            fn_no += 1;
            schema.subtypes.push(EntitySubtype {
                name: format!("s{j}"),
                supertypes: vec![sup],
                functions,
            });
        }
        if schema.validate().is_ok() {
            return schema;
        }
    }
}

/// Chapter-V invariants hold for every valid functional schema.
#[test]
fn transformer_invariants() {
    for seed in 0..64u64 {
        let mut rng = Prng::seed_from_u64(0x9199_1000 + seed);
        let schema = gen_schema(&mut rng);
        let net = transform::transform(&schema).unwrap();
        net.validate().unwrap();

        // Every entity type: a record and a SYSTEM set, AUTOMATIC/FIXED.
        for e in &schema.entities {
            assert!(net.record(&e.name).is_some(), "seed {seed}");
            let sys = net.set(&daplex::names::system_set(&e.name)).unwrap();
            assert_eq!(sys.owner.clone(), Owner::System, "seed {seed}");
            assert_eq!(sys.insertion, Insertion::Automatic, "seed {seed}");
            assert_eq!(sys.retention, Retention::Fixed, "seed {seed}");
        }
        // Every subtype: a record and ISA sets per supertype.
        for s in &schema.subtypes {
            assert!(net.record(&s.name).is_some(), "seed {seed}");
            for sup in &s.supertypes {
                let isa = net.set(&daplex::names::isa_set(sup, &s.name)).unwrap();
                assert_eq!(isa.insertion, Insertion::Automatic, "seed {seed}");
                assert_eq!(isa.retention, Retention::Fixed, "seed {seed}");
                assert!(matches!(isa.origin, SetOrigin::Isa { .. }), "seed {seed}");
            }
        }
        // Every function lands in exactly one place: attribute or set.
        for name in schema.entity_like_names() {
            for f in schema.own_functions(name) {
                let as_attr = net.record(name).unwrap().attr(&f.name).is_some();
                let as_set = net.set(&f.name).is_some();
                assert!(
                    as_attr ^ as_set,
                    "function {} must map to exactly one construct (attr={as_attr}, \
                     set={as_set}, seed {seed})",
                    f.name
                );
                if as_set {
                    let set = net.set(&f.name).unwrap();
                    assert_eq!(set.insertion, Insertion::Manual, "seed {seed}");
                    assert_eq!(set.retention, Retention::Optional, "seed {seed}");
                }
                if as_attr && f.set_valued {
                    assert!(
                        !net.record(name).unwrap().attr(&f.name).unwrap().dup_allowed,
                        "scalar multi-valued attributes clear the duplicate flag (seed {seed})"
                    );
                }
            }
        }
        // Set selection is always BY APPLICATION.
        assert!(net.sets.iter().all(|s| s.selection == Selection::Application), "seed {seed}");
        // Determinism.
        assert_eq!(net, transform::transform(&schema).unwrap(), "seed {seed}");
    }
}

// ----- CIT consistency under random navigation ------------------------

/// Any sequence of FIND FIRST/NEXT/PRIOR/LAST over the University
/// database keeps the CIT coherent: the run-unit always names a record
/// that exists, and set member currencies always belong to the set's
/// member record type.
#[test]
fn cit_stays_coherent_under_random_navigation() {
    for seed in 0..32u64 {
        let mut rng = Prng::seed_from_u64(0x9199_2000 + seed);
        let steps: Vec<(usize, usize)> =
            (0..1 + rng.index(24)).map(|_| (rng.index(4), rng.index(4))).collect();

        let mut m = Mlds::single_backend();
        m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
        m.populate_university("university").unwrap();
        let mut s = m.connect_codasyl("u", "university").unwrap();

        let sweeps = [
            ("course", "system_course"),
            ("person", "system_person"),
            ("employee", "system_employee"),
            ("department", "system_department"),
        ];
        let verbs = ["FIRST", "NEXT", "PRIOR", "LAST"];
        for (verb_idx, sweep_idx) in steps {
            let (record, set) = sweeps[sweep_idx];
            let stmt = format!("FIND {} {record} WITHIN {set}", verbs[verb_idx]);
            // End-of-set conditions are expected; anything else is not.
            match m.execute_codasyl(&mut s, &stmt) {
                Ok(_)
                | Err(mlds::Error::Translator(mlds::translator::Error::EndOfSet { .. })) => {}
                Err(e) => panic!("unexpected failure of `{stmt}`: {e} (seed {seed})"),
            }
            if let Some(cur) = s.cit().run_unit() {
                let schema = s.schema().clone();
                assert!(schema.record(&cur.record).is_some(), "seed {seed}");
            }
            for (rec, set) in &sweeps {
                if let Some(sc) = s.cit().set(set) {
                    if let Some(member) = &sc.member {
                        assert_eq!(member.record.as_str(), *rec, "seed {seed}");
                    }
                }
            }
        }
    }
}

// ----- parser robustness ----------------------------------------------

/// A random printable-ish string including multibyte characters and the
/// odd control character, the adversarial case for hand-rolled lexers.
fn gen_arbitrary_text(rng: &mut Prng) -> String {
    let pool: Vec<char> = ('!'..='~')
        .chain(['\t', '\n', ' ', 'é', 'ß', '→', '∑', '中', '🙂', '\'', '"', '\\'])
        .collect();
    (0..rng.index(121)).map(|_| *rng.pick(&pool)).collect()
}

/// No parser panics on arbitrary input — they return errors.
#[test]
fn parsers_never_panic_on_arbitrary_text() {
    for seed in 0..256u64 {
        let mut rng = Prng::seed_from_u64(0x9199_3000 + seed);
        let src = gen_arbitrary_text(&mut rng);
        let _ = mlds::abdl::parse::parse_request(&src);
        let _ = mlds::abdl::parse::parse_transaction(&src);
        let _ = mlds::codasyl::ddl::parse_schema(&src);
        let _ = mlds::codasyl::dml::parse_statements(&src);
        let _ = mlds::daplex::ddl::parse_schema(&src);
        let _ = mlds::daplex::dml::parse_statements(&src);
        let _ = mlds::relational::ddl::parse_schema(&src);
        let _ = mlds::relational::dml::parse_statements(&src);
        let _ = mlds::dli::ddl::parse_schema(&src);
        let _ = mlds::dli::calls::parse_calls(&src);
        let _ = mlds::abdl::engine::restore(&src);
    }
}

/// Keyword-ish soups (the adversarial case for recursive-descent
/// parsers) do not panic either.
#[test]
fn parsers_never_panic_on_keyword_soup() {
    let words = [
        "FIND", "ANY", "WITHIN", "USING", "IN", "SET", "RECORD", "OWNER", "SELECT", "FROM",
        "WHERE", "TYPE", "IS", "ENTITY", "END", "GU", "ISRT", "(", ")", ",", ";", ".", "=",
        "<", "'x'", "42", "a",
    ];
    for seed in 0..256u64 {
        let mut rng = Prng::seed_from_u64(0x9199_4000 + seed);
        let src =
            (0..rng.index(30)).map(|_| *rng.pick(&words)).collect::<Vec<_>>().join(" ");
        let _ = mlds::abdl::parse::parse_request(&src);
        let _ = mlds::codasyl::ddl::parse_schema(&src);
        let _ = mlds::codasyl::dml::parse_statements(&src);
        let _ = mlds::daplex::ddl::parse_schema(&src);
        let _ = mlds::daplex::dml::parse_statements(&src);
        let _ = mlds::relational::dml::parse_statements(&src);
        let _ = mlds::dli::calls::parse_calls(&src);
    }
}
