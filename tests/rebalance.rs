//! Elastic-cluster harness: online backend add/drain under live
//! foreground traffic, WAL-bracketed group moves, and every failure
//! mode the brackets exist for.
//!
//! The headline property: a seeded mixed workload interleaved with
//! `add_backend()` and `drain_backend()` ends in a logical state
//! byte-identical to the same workload on a static cluster — and the
//! *durable* state survives a crash after **every** WAL append index
//! (including appends inside move brackets), whether the cluster
//! recovers cold or a hot standby is promoted mid-move.
//!
//! Resume rule: membership ops log their durable goal first
//! (`add-backend` / `drain-begin`), so an op whose append crashed is
//! durably effective — the harness skips it and recovery re-plans the
//! remaining moves from the directory itself. The exception is
//! `FinishRebalance`, which works off the queue (several bracketed
//! appends); committed moves drop out of the re-plan, so re-running it
//! is always safe.
//!
//! Everything here is transport-agnostic: under `MBDS_TRANSPORT=tcp`
//! the same sweeps run against `mbds-backend` OS processes, and
//! `add_backend()` spawns and handshakes a brand-new process mid-run.

use mlds::abdl::parse::parse_request;
use mlds::abdl::prng::Prng;
use mlds::abdl::{Kernel, Record, Request, Value};
use mlds::mbds::{Controller, CostModel, MemLog, SimCluster};

const BACKENDS: usize = 3;
const REPLICATION: usize = 2;

/// One step of the seeded workload, shared by the reference run, the
/// crashed runs and the promoted runs.
#[derive(Clone, Debug)]
enum Op {
    CreateFile,
    Insert { v: i64 },
    Update { below: i64, set: i64 },
    Delete { v: i64 },
    Retrieve { below: i64 },
    /// Widen the cluster by one backend and queue the unwrap moves.
    AddBackend,
    /// Start draining a backend; its groups move to substitutes.
    Drain { backend: usize },
    /// Work the move queue dry synchronously.
    FinishRebalance,
}

fn gen_mixed(rng: &mut Prng, ops: &mut Vec<Op>, n: usize) {
    for _ in 0..n {
        let roll = rng.gen_range(0, 100);
        let op = if roll < 55 {
            Op::Insert { v: rng.gen_range(0, 1000) }
        } else if roll < 70 {
            Op::Update { below: rng.gen_range(0, 1000), set: rng.gen_range(0, 10) }
        } else if roll < 82 {
            Op::Delete { v: rng.gen_range(0, 1000) }
        } else {
            Op::Retrieve { below: rng.gen_range(0, 1000) }
        };
        ops.push(op);
    }
}

/// The elastic workload: foreground traffic, then `add_backend` with
/// traffic pumping the unwrap moves, then `drain_backend(0)` with
/// traffic pumping the vacate moves, each phase closed by an explicit
/// queue drain so the next membership change finds the cluster idle.
fn gen_ops(seed: u64, per_phase: usize) -> Vec<Op> {
    let mut rng = Prng::seed_from_u64(seed);
    let mut ops = vec![Op::CreateFile];
    gen_mixed(&mut rng, &mut ops, per_phase);
    ops.push(Op::AddBackend);
    gen_mixed(&mut rng, &mut ops, per_phase);
    ops.push(Op::FinishRebalance);
    ops.push(Op::Drain { backend: 0 });
    gen_mixed(&mut rng, &mut ops, per_phase);
    ops.push(Op::FinishRebalance);
    ops
}

fn apply(c: &mut Controller, op: &Op) {
    match op {
        Op::CreateFile => {
            let _ = c.try_create_file("f");
        }
        Op::Insert { v } => {
            let rec =
                Record::from_pairs([("FILE", Value::str("f"))]).with("v", Value::Int(*v));
            let _ = c.execute(&Request::Insert { record: rec });
        }
        Op::Update { below, set } => {
            let req =
                parse_request(&format!("UPDATE ((FILE = f) and (v < {below})) (m = {set})"))
                    .unwrap();
            let _ = c.execute(&req);
        }
        Op::Delete { v } => {
            let req = parse_request(&format!("DELETE ((FILE = f) and (v = {v}))")).unwrap();
            let _ = c.execute(&req);
        }
        Op::Retrieve { below } => {
            let req =
                parse_request(&format!("RETRIEVE ((FILE = f) and (v < {below})) (*)")).unwrap();
            let _ = c.execute(&req);
        }
        Op::AddBackend => {
            let _ = c.add_backend();
        }
        Op::Drain { backend } => {
            let _ = c.drain_backend(*backend);
        }
        Op::FinishRebalance => {
            let _ = c.finish_rebalance();
        }
    }
}

fn apply_sim(s: &mut SimCluster, op: &Op) {
    match op {
        Op::CreateFile => s.create_file("f"),
        Op::Insert { v } => {
            let rec =
                Record::from_pairs([("FILE", Value::str("f"))]).with("v", Value::Int(*v));
            let _ = s.execute(&Request::Insert { record: rec });
        }
        Op::Update { below, set } => {
            let req =
                parse_request(&format!("UPDATE ((FILE = f) and (v < {below})) (m = {set})"))
                    .unwrap();
            let _ = s.execute(&req);
        }
        Op::Delete { v } => {
            let req = parse_request(&format!("DELETE ((FILE = f) and (v = {v}))")).unwrap();
            let _ = s.execute(&req);
        }
        Op::Retrieve { below } => {
            let req =
                parse_request(&format!("RETRIEVE ((FILE = f) and (v < {below})) (*)")).unwrap();
            let _ = s.execute(&req);
        }
        Op::AddBackend => {
            let _ = s.add_backend();
        }
        Op::Drain { backend } => {
            let _ = s.drain_backend(*backend);
        }
        Op::FinishRebalance => {
            let _ = s.finish_rebalance();
        }
    }
}

/// Query results that must match between the reference and every
/// recovered / promoted run.
fn probe(c: &mut Controller) -> Vec<String> {
    [
        "RETRIEVE (FILE = f) (*)",
        "RETRIEVE ((FILE = f) and (v < 500)) (*)",
        "RETRIEVE (FILE = f) (COUNT(v)) BY m",
    ]
    .iter()
    .map(|q| {
        let resp = c.execute(&parse_request(q).unwrap()).unwrap();
        let mut records = resp.records().to_vec();
        records.sort_by_key(|(k, _)| *k);
        format!("{records:?} {:?}", resp.groups)
    })
    .collect()
}

struct Reference {
    digest: String,
    high_water: u64,
    answers: Vec<String>,
    total_appends: u64,
}

/// `move_chunk = None` keeps the default (groups here are far smaller,
/// so every move is one bracket); `Some(k)` forces large groups to
/// stream as multi-bracket chunk sequences.
fn reference_run(ops: &[Op], snapshot_every: u64, move_chunk: Option<usize>) -> Reference {
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, MemLog::new()).unwrap();
    c.set_snapshot_every(snapshot_every);
    if let Some(k) = move_chunk {
        c.set_move_chunk(k);
    }
    for op in ops {
        apply(&mut c, op);
    }
    assert_eq!(c.rebalance_pending(), 0, "reference run must end in goal placement");
    Reference {
        digest: c.state_digest().unwrap(),
        high_water: c.key_high_water(),
        answers: probe(&mut c),
        total_appends: c.wal_appends(),
    }
}

/// Where to resume after the crashed op: membership ops and foreground
/// ops append their durable record first/once and are complete at the
/// crash point; a queue drain is re-run (committed moves drop out of
/// the recovery re-plan, so it is idempotent).
fn resume_index(ops: &[Op], crashed_at: usize) -> usize {
    match &ops[crashed_at] {
        Op::FinishRebalance => crashed_at,
        _ => crashed_at + 1,
    }
}

/// Crash after append `crash_n` (which may land on a `move-begin`, a
/// `move-end`, or anywhere between brackets), recover cold from the
/// surviving log, resume, and check against the reference.
fn crash_recover_check(
    ops: &[Op],
    crash_n: u64,
    snapshot_every: u64,
    move_chunk: Option<usize>,
    want: &Reference,
) {
    let log = MemLog::new();
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, log.clone()).unwrap();
    c.set_snapshot_every(snapshot_every);
    if let Some(k) = move_chunk {
        c.set_move_chunk(k);
    }
    c.set_wal_crash_after(crash_n);
    let mut crashed = None;
    for (i, op) in ops.iter().enumerate() {
        apply(&mut c, op);
        if c.wal_crashed() {
            crashed = Some(i);
            break;
        }
    }
    let crashed_at = crashed.unwrap_or_else(|| panic!("crash point {crash_n} never fired"));
    drop(c);

    let mut r = Controller::recover_with(log).unwrap();
    r.set_snapshot_every(snapshot_every);
    if let Some(k) = move_chunk {
        r.set_move_chunk(k);
    }
    for op in &ops[resume_index(ops, crashed_at)..] {
        apply(&mut r, op);
    }
    let ctx = format!("crash after append {crash_n} (op {crashed_at}: {:?})", ops[crashed_at]);
    assert_eq!(r.rebalance_pending(), 0, "moves left queued: {ctx}");
    assert_eq!(r.state_digest().unwrap(), want.digest, "digest diverged: {ctx}");
    assert_eq!(r.key_high_water(), want.high_water, "key allocator diverged: {ctx}");
    assert_eq!(probe(&mut r), want.answers, "query answers diverged: {ctx}");
}

/// Crash after append `crash_n` with a hot standby tailing the log,
/// promote it — mid-move promotion heals the partial copy under a
/// fresh bracket — resume on the promoted controller, and check
/// against the reference.
fn failover_check(
    ops: &[Op],
    crash_n: u64,
    snapshot_every: u64,
    move_chunk: Option<usize>,
    want: &Reference,
) {
    let log = MemLog::new();
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, log.clone()).unwrap();
    c.set_snapshot_every(snapshot_every);
    if let Some(k) = move_chunk {
        c.set_move_chunk(k);
    }
    let mut sb = c.standby(Box::new(log.clone())).unwrap();
    c.set_wal_crash_after(crash_n);
    let mut crashed = None;
    for (i, op) in ops.iter().enumerate() {
        apply(&mut c, op);
        sb.poll().unwrap();
        if c.wal_crashed() {
            crashed = Some(i);
            break;
        }
    }
    let crashed_at = crashed.unwrap_or_else(|| panic!("crash point {crash_n} never fired"));
    let ctx = format!("crash after append {crash_n} (op {crashed_at}: {:?})", ops[crashed_at]);

    // Promote before dropping the primary, as in `tests/failover.rs`:
    // the fence rises while the primary still holds the backends.
    let mut p = sb.promote().unwrap_or_else(|e| panic!("promotion failed: {ctx}: {e}"));
    drop(c);
    p.set_snapshot_every(snapshot_every);
    if let Some(k) = move_chunk {
        p.set_move_chunk(k);
    }
    for op in &ops[resume_index(ops, crashed_at)..] {
        apply(&mut p, op);
    }
    assert_eq!(p.rebalance_pending(), 0, "moves left queued: {ctx}");
    assert_eq!(p.state_digest().unwrap(), want.digest, "digest diverged: {ctx}");
    assert_eq!(p.key_high_water(), want.high_water, "key allocator diverged: {ctx}");
    assert_eq!(probe(&mut p), want.answers, "query answers diverged: {ctx}");
}

/// The tentpole acceptance property, logical half: the elastic run
/// (start at 3 backends, add a 4th mid-traffic, then drain backend 0
/// mid-traffic) answers every query and holds every record exactly as
/// a static cluster does — and the rebalance counters prove the moves
/// actually happened online.
#[test]
fn elastic_add_then_drain_matches_a_static_cluster() {
    let ops = gen_ops(0xE1A571C, 40);
    let mut stat = Controller::durable_with(BACKENDS, REPLICATION, MemLog::new()).unwrap();
    let mut elas = Controller::durable_with(BACKENDS, REPLICATION, MemLog::new()).unwrap();
    for op in &ops {
        // The static twin runs only the foreground traffic.
        if !matches!(op, Op::AddBackend | Op::Drain { .. } | Op::FinishRebalance) {
            apply(&mut stat, op);
        }
        apply(&mut elas, op);
    }
    assert_eq!(elas.backend_count(), BACKENDS + 1, "the added backend must be live");
    assert_eq!(elas.rebalance_pending(), 0);
    assert!(elas.draining_backends().is_empty(), "the drain must have retired");
    assert_eq!(
        elas.logical_digest().unwrap(),
        stat.logical_digest().unwrap(),
        "elastic and static clusters diverged logically"
    );
    assert_eq!(probe(&mut elas), probe(&mut stat));
    let t = elas.exec_totals();
    assert!(t.groups_moved > 0, "no group was actually moved");
    assert!(t.move_bytes > 0, "no record bytes were actually shipped");
}

/// The same elastic-vs-static equivalence on the simulated twin, plus
/// cross-kernel: the threaded controller and the simulated cluster
/// agree byte-for-byte on durable state through the add and the drain.
#[test]
fn sim_cluster_agrees_with_controller_through_add_and_drain() {
    let ops = gen_ops(0x51A5, 30);
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, MemLog::new()).unwrap();
    let mut s =
        SimCluster::durable_with(BACKENDS, REPLICATION, CostModel::default(), MemLog::new())
            .unwrap();
    let mut stat =
        SimCluster::durable_with(BACKENDS, REPLICATION, CostModel::default(), MemLog::new())
            .unwrap();
    for op in &ops {
        apply(&mut c, op);
        apply_sim(&mut s, op);
        if !matches!(op, Op::AddBackend | Op::Drain { .. } | Op::FinishRebalance) {
            apply_sim(&mut stat, op);
        }
    }
    assert_eq!(c.state_digest().unwrap(), s.state_digest(), "kernels diverged");
    assert_eq!(c.key_high_water(), s.key_high_water());
    assert_eq!(s.logical_digest(), stat.logical_digest(), "elastic sim diverged from static");
    let t = s.exec_totals();
    assert!(t.groups_moved > 0 && t.move_bytes > 0);
}

/// The tentpole acceptance property, durable half: crash after every
/// single WAL append of the elastic workload — before, inside and
/// after every move bracket — recover cold, resume, and the final
/// state is byte-identical to the never-crashed run.
#[test]
fn every_crash_point_during_add_and_drain_recovers_identically() {
    let ops = gen_ops(0xC0FFEE, 25);
    let want = reference_run(&ops, 0, None);
    assert!(want.total_appends > 60, "workload too light: {} appends", want.total_appends);
    for crash_n in 1..=want.total_appends {
        crash_recover_check(&ops, crash_n, 0, None, &want);
    }
}

/// The same sweep with snapshot compaction enabled: snapshots carry
/// the `draining` set and the `rebalance unwrap` flag, never land
/// inside a bracket, and recovery from snapshot + suffix re-plans the
/// remaining moves identically.
#[test]
fn elastic_crash_sweep_recovers_identically_with_snapshots() {
    let ops = gen_ops(0xBEEF, 20);
    let want = reference_run(&ops, 9, None);
    for crash_n in 1..=want.total_appends {
        crash_recover_check(&ops, crash_n, 9, None, &want);
    }
}

/// The promotion half: a hot standby tails the elastic run and is
/// promoted after every crash point. A crash between `move-begin` and
/// `move-end` leaves the mirror's directory already naming the new
/// placement while the real backends hold a partial copy — promotion
/// must heal the move under a fresh bracket before serving.
#[test]
fn standby_promoted_mid_move_reaches_the_reference_digest() {
    let ops = gen_ops(0xFA110, 20);
    let want = reference_run(&ops, 0, None);
    assert!(want.total_appends > 50, "workload too light: {} appends", want.total_appends);
    for crash_n in 1..=want.total_appends {
        failover_check(&ops, crash_n, 0, None, &want);
    }
}

/// Chunked group moves: with a chunk bound far below the group size,
/// each group streams out as several `move-begin`/`move-end` brackets.
/// Crash after every append — including between chunks of one group
/// and inside a chunk's bracket — recover cold, resume, and the final
/// state is byte-identical to the never-crashed chunked run.
#[test]
fn chunked_move_crash_sweep_recovers_identically() {
    let ops = gen_ops(0xC4A2, 20);
    let want = reference_run(&ops, 0, Some(3));
    for crash_n in 1..=want.total_appends {
        crash_recover_check(&ops, crash_n, 0, Some(3), &want);
    }
}

/// The promotion half of the chunked sweep: the standby mirror applies
/// each chunk's exact keys at its begin marker, so a promotion between
/// chunks (or mid-chunk) heals only the bracketed keys and re-plans
/// the rest of the group from state.
#[test]
fn chunked_move_failover_sweep_reaches_the_reference_digest() {
    let ops = gen_ops(0xC4A2F, 16);
    let want = reference_run(&ops, 0, Some(3));
    for crash_n in 1..=want.total_appends {
        failover_check(&ops, crash_n, 0, Some(3), &want);
    }
}

/// A move chunk bounds the records relocated per pump step: with chunk
/// `k` and throttle 1, a foreground request under rebalance advances
/// one bracket of at most `k` records — and every read it interleaves
/// sees a complete placement (old for unmoved keys, new for moved
/// ones), never a half-moved group.
#[test]
fn chunked_moves_bound_work_per_pump_step_and_keep_reads_whole() {
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, MemLog::new()).unwrap();
    c.try_create_file("f").unwrap();
    for v in 0..60i64 {
        let rec = Record::from_pairs([("FILE", Value::str("f"))]).with("v", Value::Int(v));
        c.execute(&Request::Insert { record: rec }).unwrap();
    }
    c.set_rebalance_throttle(1);
    c.set_move_chunk(4);
    let before = c.exec_totals().move_bytes;
    c.add_backend().unwrap();
    let mut steps = 0u32;
    while c.rebalance_pending() > 0 {
        let prev_bytes = c.exec_totals().move_bytes;
        let req = parse_request("RETRIEVE (FILE = f) (*)").unwrap();
        let resp = c.execute(&req).unwrap();
        assert_eq!(resp.records().len(), 60, "a read under rebalance lost records");
        let keys: Vec<u64> = resp.records().iter().map(|(k, _)| k.0).collect();
        let uniq: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        assert_eq!(uniq.len(), 60, "a read under rebalance duplicated records");
        let chunk_bytes = c.exec_totals().move_bytes - prev_bytes;
        // 4 records per bracket, one copy each (replication stays 2 and
        // the unwrap swaps a single member): a generous per-record
        // ceiling still catches a whole-group (20-record) move.
        assert!(
            chunk_bytes <= 4 * 200,
            "one pump step shipped {chunk_bytes} bytes — more than a 4-record chunk"
        );
        steps += 1;
        assert!(steps < 200, "rebalance failed to converge");
    }
    assert!(
        steps > 5,
        "a 60-record cluster at chunk 4 must take many pump steps, took {steps}"
    );
    assert!(c.exec_totals().move_bytes > before, "no bytes were actually moved");
    assert_eq!(c.backend_count(), BACKENDS + 1);
}

/// Throttling bounds the in-flight rebalance: with throttle 1, each
/// foreground request retires at most one queued job, so the pending
/// count decays one step per request instead of draining at once.
#[test]
fn rebalance_throttle_bounds_moves_per_request() {
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, MemLog::new()).unwrap();
    c.try_create_file("f").unwrap();
    for v in 0..30i64 {
        let rec = Record::from_pairs([("FILE", Value::str("f"))]).with("v", Value::Int(v));
        c.execute(&Request::Insert { record: rec }).unwrap();
    }
    c.set_rebalance_throttle(1);
    c.add_backend().unwrap();
    let mut pending = c.rebalance_pending();
    assert!(pending > 1, "the add must queue several jobs, got {pending}");
    while pending > 0 {
        let before = pending;
        let req = parse_request("RETRIEVE ((FILE = f) and (v < 5)) (*)").unwrap();
        c.execute(&req).unwrap();
        pending = c.rebalance_pending();
        assert!(
            before - pending <= 1,
            "throttle 1 must retire at most one job per request ({before} -> {pending})"
        );
        assert!(pending < before, "the queue must make progress");
    }
    assert_eq!(c.backend_count(), BACKENDS + 1);
}

/// Membership changes are serialized: a second change is refused while
/// moves are still queued, and a drain below the replication floor is
/// refused outright.
#[test]
fn concurrent_membership_changes_are_refused() {
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, MemLog::new()).unwrap();
    c.try_create_file("f").unwrap();
    for v in 0..20i64 {
        let rec = Record::from_pairs([("FILE", Value::str("f"))]).with("v", Value::Int(v));
        c.execute(&Request::Insert { record: rec }).unwrap();
    }
    c.set_rebalance_throttle(1);
    c.add_backend().unwrap();
    assert!(c.rebalance_pending() > 0);
    assert!(c.add_backend().is_err(), "a second add must wait for the first rebalance");
    assert!(c.drain_backend(0).is_err(), "a drain must wait for the running rebalance");
    c.finish_rebalance().unwrap();
    // Now idle: the drain is accepted, but draining below the
    // replication floor is not.
    c.drain_backend(0).unwrap();
    c.finish_rebalance().unwrap();
    // 4 backends, one retired: draining one more leaves exactly
    // `replication` serving, which is still legal…
    c.drain_backend(1).unwrap();
    c.finish_rebalance().unwrap();
    // …but going below the floor is not.
    assert!(
        c.drain_backend(2).is_err(),
        "draining to fewer serving backends than replicas must be refused"
    );
}

/// An in-flight group move is a write conflict: batched foreground
/// requests execute solo (counted as rebalance stalls) until the move
/// queue drains, so no staged flight overlaps a directory retarget.
#[test]
fn batches_stall_while_a_move_is_in_flight() {
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, MemLog::new()).unwrap();
    c.try_create_file("f").unwrap();
    for v in 0..20i64 {
        let rec = Record::from_pairs([("FILE", Value::str("f"))]).with("v", Value::Int(v));
        c.execute(&Request::Insert { record: rec }).unwrap();
    }
    c.set_rebalance_throttle(1);
    c.add_backend().unwrap();
    assert!(c.rebalance_pending() > 0);
    let reqs: Vec<Request> = (100..104i64)
        .map(|v| Request::Insert {
            record: Record::from_pairs([("FILE", Value::str("f"))]).with("v", Value::Int(v)),
        })
        .collect();
    for r in c.execute_batch(&reqs) {
        r.unwrap();
    }
    let t = c.exec_totals();
    // The stall counter records requests that *would have staged* but
    // ran solo because of the move queue. The socket transport never
    // stages flights in the first place, so there is nothing to stall.
    if std::env::var("MBDS_TRANSPORT").as_deref() != Ok("tcp") {
        assert!(t.rebalance_stalls > 0, "batch under rebalance must count stalls");
    }
    c.finish_rebalance().unwrap();
}
