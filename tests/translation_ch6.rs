//! E6 — the worked translation examples of Chapter VI, end-to-end
//! through the full MLDS pipeline (LIL → KMS → KC → KDS → KFS).

use mlds::{daplex, Mlds};

fn university() -> Mlds {
    let mut m = Mlds::single_backend();
    m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
    m.populate_university("university").unwrap();
    m
}

/// §VI.B.1 — the FIND ANY example: "find any course record whose title
/// is 'Advanced Database'", with the exact ABDL translation shape.
#[test]
fn find_any_translation_text() {
    let mut m = university();
    let mut s = m.connect_codasyl("coker", "university").unwrap();
    let out = m
        .execute_codasyl(
            &mut s,
            "MOVE 'Advanced Database' TO title IN course\n\
             FIND ANY course USING title IN course",
        )
        .unwrap();
    assert_eq!(out[0].abdl.len(), 0, "MOVE initializes the UWA only");
    assert_eq!(out[1].abdl.len(), 1);
    assert_eq!(
        out[1].abdl[0],
        "RETRIEVE ((FILE = 'course') and (title = 'Advanced Database')) (*)"
    );
    assert!(out[1].display.contains("title = 'Advanced Database'"));
}

/// §VI.B.2 — FIND CURRENT "is a relatively simple task for KMS … there
/// is no direct mapping to an ABDL statement."
#[test]
fn find_current_generates_no_abdl() {
    let mut m = university();
    let mut s = m.connect_codasyl("coker", "university").unwrap();
    let out = m
        .execute_codasyl(
            &mut s,
            "MOVE 'Computer Science' TO major IN student\n\
             FIND ANY student USING major IN student\n\
             FIND CURRENT student WITHIN person_student",
        )
        .unwrap();
    assert!(out[2].abdl.is_empty());
    assert_eq!(s.cit().run_unit().unwrap().record, "student");
}

/// §VI.B.4 — the "students majoring in Computer Science" loop, expressed
/// through the advisor set exactly as the thesis's PERFORM-UNTIL sketch.
#[test]
fn find_first_next_loop_over_members() {
    let mut m = university();
    let mut s = m.connect_codasyl("coker", "university").unwrap();
    m.execute_codasyl(
        &mut s,
        "MOVE 'Computer Science' TO dname IN department\n\
         FIND ANY department USING dname IN department",
    )
    .unwrap();
    // The FIND FIRST fills the RB with one RETRIEVE of the member-side
    // qualification `(FILE = faculty) and (dept = owner-key)`.
    let out = m.execute_codasyl(&mut s, "FIND FIRST faculty WITHIN dept").unwrap();
    assert_eq!(out[0].abdl.len(), 1);
    assert!(out[0].abdl[0].starts_with("RETRIEVE ((FILE = 'faculty') and (dept = "));
    // Subsequent NEXTs are served from the RB: zero further requests.
    let out = m.execute_codasyl(&mut s, "FIND NEXT faculty WITHIN dept").unwrap();
    assert!(out[0].abdl.is_empty());
    // And the loop terminates with an end-of-set condition.
    let err = m.execute_codasyl(&mut s, "FIND NEXT faculty WITHIN dept").unwrap_err();
    assert!(matches!(
        err,
        mlds::Error::Translator(mlds::translator::Error::EndOfSet { .. })
    ));
}

/// §VI.B.5 — FIND OWNER: "KMS extracts the set owner and database key
/// for the specified set and issues a RETRIEVE."
#[test]
fn find_owner_translation() {
    let mut m = university();
    let mut s = m.connect_codasyl("coker", "university").unwrap();
    let out = m
        .execute_codasyl(
            &mut s,
            "MOVE 'Computer Science' TO major IN student\n\
             FIND ANY student USING major IN student\n\
             FIND OWNER WITHIN advisor",
        )
        .unwrap();
    assert_eq!(out[2].abdl.len(), 1);
    assert!(out[2].abdl[0].starts_with("RETRIEVE ((FILE = 'faculty') and (faculty = "));
    assert!(out[2].display.starts_with("faculty #"));
}

/// §VI.C — GET delivers the current record through KC into the UWA.
#[test]
fn get_loads_the_uwa() {
    let mut m = university();
    let mut s = m.connect_codasyl("coker", "university").unwrap();
    m.execute_codasyl(
        &mut s,
        "MOVE 'F87' TO semester IN course\n\
         FIND ANY course USING semester IN course\n\
         GET title, credits IN course",
    )
    .unwrap();
    assert!(!s.uwa().get("course", "title").is_null());
    assert!(!s.uwa().get("course", "credits").is_null());
}

/// §VI.G — STORE: "the mapping of the STORE statement consists of an
/// INSERT request to store the request and possibly a RETRIEVE request
/// to determine the status of duplicates."
#[test]
fn store_is_retrieve_plus_insert() {
    let mut m = university();
    let mut s = m.connect_codasyl("coker", "university").unwrap();
    let out = m
        .execute_codasyl(
            &mut s,
            "MOVE 'Compiler Design' TO title IN course\n\
             MOVE 'S88' TO semester IN course\n\
             MOVE 4 TO credits IN course\n\
             STORE course",
        )
        .unwrap();
    let kinds: Vec<&str> =
        out[3].abdl.iter().map(|r| r.split_whitespace().next().unwrap()).collect();
    assert_eq!(kinds, vec!["RETRIEVE", "INSERT"]);
    // The stored record is immediately findable.
    let found = m
        .execute_codasyl(&mut s, "FIND ANY course USING title IN course")
        .unwrap();
    assert!(found[0].display.contains("Compiler Design"));
}

/// §VI.F — MODIFY: "the UPDATE request is repeated for each field of
/// the record that is to be modified."
#[test]
fn modify_repeats_update_per_field() {
    let mut m = university();
    let mut s = m.connect_codasyl("coker", "university").unwrap();
    let out = m
        .execute_codasyl(
            &mut s,
            "MOVE 'Linear Algebra' TO title IN course\n\
             FIND ANY course USING title IN course\n\
             MOVE 4 TO credits IN course\n\
             MOVE 'F88' TO semester IN course\n\
             MODIFY credits, semester IN course",
        )
        .unwrap();
    assert_eq!(out[4].abdl.len(), 2);
    assert!(out[4].abdl.iter().all(|r| r.starts_with("UPDATE")));
}

/// §VI.H — ERASE issues the constraint ARRs first and aborts when the
/// record owns a non-empty occurrence; ERASE ALL is not translated for
/// functional targets.
#[test]
fn erase_constraints_and_erase_all_rejection() {
    let mut m = university();
    let mut s = m.connect_codasyl("coker", "university").unwrap();
    m.execute_codasyl(
        &mut s,
        "MOVE 'Computer Science' TO dname IN department\n\
         FIND ANY department USING dname IN department",
    )
    .unwrap();
    // The CS department owns the dept occurrence with two faculty.
    let err = m.execute_codasyl(&mut s, "ERASE department").unwrap_err();
    assert!(matches!(
        err,
        mlds::Error::Translator(mlds::translator::Error::EraseOwnerNotEmpty { .. })
    ));
    let err = m.execute_codasyl(&mut s, "ERASE ALL department").unwrap_err();
    assert!(matches!(
        err,
        mlds::Error::Translator(mlds::translator::Error::EraseAllUnsupported)
    ));
}

/// §VI.D/§VI.E — CONNECT/DISCONNECT against the advisor function set,
/// and their one-UPDATE translations.
#[test]
fn connect_disconnect_translations() {
    let mut m = university();
    let mut s = m.connect_codasyl("coker", "university").unwrap();
    let out = m
        .execute_codasyl(
            &mut s,
            "MOVE 'Mathematics' TO major IN student\n\
             FIND ANY student USING major IN student\n\
             DISCONNECT student FROM advisor",
        )
        .unwrap();
    assert_eq!(out[2].abdl.len(), 1);
    assert!(out[2].abdl[0].starts_with("UPDATE"));
    assert!(out[2].abdl[0].contains("(advisor = NULL)"));
    // Re-establish an owner and reconnect.
    let out = m
        .execute_codasyl(
            &mut s,
            "MOVE 'Marshall' TO ename IN employee\n\
             FIND ANY employee USING ename IN employee\n\
             FIND FIRST faculty WITHIN employee_faculty\n\
             FIND CURRENT student WITHIN person_student\n\
             CONNECT student TO advisor",
        )
        .unwrap();
    assert_eq!(out[4].abdl.len(), 1);
    assert!(out[4].abdl[0].starts_with("UPDATE"));
    assert!(!out[4].abdl[0].contains("NULL"));
}
