//! Scoped routing is an optimisation, not a semantics change.
//!
//! The property: a seeded workload pushed through two threaded
//! controllers — one with scoped routing, the controller-side unique
//! index and parallel replica writes (the defaults), the other forced
//! back to broadcast-everything, probe-before-insert and sequential
//! writes — produces identical answers for every single request:
//! records, aggregate groups, affected counts, degraded flags and
//! errors (duplicate-key rejections included). The same holds while
//! backends are down, and after they are restarted.
//!
//! The payoff is then checked on the counters the optimisation is
//! about: the routed controller must have sent strictly fewer
//! backend messages and examined no more records than the broadcast
//! one for the same workload.

use mlds::abdl::parse::parse_request;
use mlds::abdl::prng::Prng;
use mlds::abdl::{Kernel, Record, Request, Value};
use mlds::mbds::Controller;

const BACKENDS: usize = 6;
const REPLICATION: usize = 2;

/// A normalized, comparable rendering of one request's outcome.
fn outcome(result: mlds::abdl::Result<mlds::abdl::Response>) -> String {
    match result {
        Ok(resp) => {
            let mut records = resp.records().to_vec();
            records.sort_by_key(|(k, _)| *k);
            format!(
                "records={records:?} groups={:?} affected={} degraded={}",
                resp.groups, resp.affected, resp.degraded
            )
        }
        Err(e) => format!("error={e:?}"),
    }
}

fn insert_g(v: i64, u: i64) -> Request {
    Request::Insert {
        record: Record::from_pairs([("FILE", Value::str("g"))])
            .with("v", Value::Int(v))
            .with("u", Value::Int(u))
            .with("m", Value::Int(v % 7)),
    }
}

fn insert_h(v: i64) -> Request {
    Request::Insert {
        record: Record::from_pairs([("FILE", Value::str("h"))])
            .with("v", Value::Int(v))
            .with("m", Value::Int(v % 5)),
    }
}

/// One phase of seeded mixed traffic. `allow_dup_u` gates inserts that
/// can collide on the unique attribute: while whole replica groups are
/// dead, the index (which still knows about unreachable records) and
/// the legacy probe (which only sees live backends) legitimately
/// disagree about duplicates of *lost* records, so the degraded phase
/// sticks to fresh unique values.
fn phase_requests(rng: &mut Prng, n: usize, allow_dup_u: bool, fresh_u_from: i64) -> Vec<Request> {
    let mut fresh_u = fresh_u_from;
    (0..n)
        .map(|_| {
            let roll = rng.gen_range(0, 100);
            if roll < 25 {
                let u = if allow_dup_u {
                    rng.gen_range(0, 30)
                } else {
                    fresh_u += 1;
                    fresh_u
                };
                insert_g(rng.gen_range(0, 1000), u)
            } else if roll < 35 {
                insert_h(rng.gen_range(0, 1000))
            } else if roll < 50 {
                // Key-scoped point lookup on the unique attribute.
                parse_request(&format!(
                    "RETRIEVE ((FILE = g) and (u = {})) (*)",
                    rng.gen_range(0, 30)
                ))
                .unwrap()
            } else if roll < 62 {
                let file = if rng.gen_range(0, 2) == 0 { "g" } else { "h" };
                parse_request(&format!(
                    "RETRIEVE ((FILE = {file}) and (v < {})) (*)",
                    rng.gen_range(0, 1000)
                ))
                .unwrap()
            } else if roll < 72 {
                parse_request("RETRIEVE (FILE = g) (COUNT(v)) BY m").unwrap()
            } else if roll < 80 {
                parse_request(&format!(
                    "UPDATE ((FILE = g) and (v < {})) (u = {})",
                    rng.gen_range(0, 300),
                    rng.gen_range(0, 30)
                ))
                .unwrap()
            } else if roll < 88 {
                let file = if rng.gen_range(0, 2) == 0 { "g" } else { "h" };
                parse_request(&format!(
                    "DELETE ((FILE = {file}) and (v = {}))",
                    rng.gen_range(0, 1000)
                ))
                .unwrap()
            } else {
                parse_request("RETRIEVE-COMMON ((FILE = g)) (v) COMMON ((FILE = h)) (v) (m)")
                    .unwrap()
            }
        })
        .collect()
}

fn run_both(scoped: &mut Controller, broad: &mut Controller, reqs: &[Request], ctx: &str) {
    for (i, req) in reqs.iter().enumerate() {
        let a = outcome(scoped.execute(req));
        let b = outcome(broad.execute(req));
        assert_eq!(a, b, "{ctx}: request {i} diverged ({req:?})");
    }
}

/// The property test proper: three phases (all-alive, one backend
/// down, a whole replica group down = degraded reads), every request
/// compared, then the message/records-examined payoff asserted.
#[test]
fn scoped_routing_equals_broadcast_on_a_seeded_workload() {
    let mut scoped = Controller::with_replication(BACKENDS, REPLICATION);
    let mut broad = Controller::with_replication(BACKENDS, REPLICATION);
    broad.set_scoped_routing(false);
    broad.set_unique_via_index(false);
    broad.set_parallel_writes(false);

    for c in [&mut scoped, &mut broad] {
        c.try_create_file("g").unwrap();
        c.try_create_file("h").unwrap();
        c.add_unique_constraint("g", vec!["u".to_owned()]);
    }

    let mut rng = Prng::seed_from_u64(0x2073);
    // Phase 1: full availability, duplicate collisions allowed.
    let reqs = phase_requests(&mut rng, 120, true, 1000);
    run_both(&mut scoped, &mut broad, &reqs, "phase 1 (all alive)");

    // Phase 2: one backend down — replicated reads, substituted writes.
    scoped.kill_backend(2);
    broad.kill_backend(2);
    let reqs = phase_requests(&mut rng, 60, true, 2000);
    run_both(&mut scoped, &mut broad, &reqs, "phase 2 (one down)");

    // Phase 3: restart, then kill an adjacent pair — some replica
    // groups are wholly dead, so reads are degraded (and flagged);
    // unique inserts use fresh values (see `phase_requests`).
    scoped.restart_backend(2).unwrap();
    broad.restart_backend(2).unwrap();
    scoped.kill_backend(3);
    broad.kill_backend(3);
    scoped.kill_backend(4);
    broad.kill_backend(4);
    let reqs = phase_requests(&mut rng, 60, false, 3000);
    run_both(&mut scoped, &mut broad, &reqs, "phase 3 (degraded)");

    // Same logical state either way...
    assert_eq!(scoped.state_digest().unwrap(), broad.state_digest().unwrap());
    assert_eq!(scoped.unique_index_digest(), broad.unique_index_digest());

    // ...for strictly less work: fewer messages on the bus, no more
    // records scanned.
    let s = scoped.exec_totals();
    let b = broad.exec_totals();
    assert!(
        s.messages_sent < b.messages_sent,
        "routing saved nothing: scoped {} vs broadcast {} messages",
        s.messages_sent,
        b.messages_sent
    );
    assert!(
        s.records_examined <= b.records_examined,
        "routing examined more records: {} vs {}",
        s.records_examined,
        b.records_examined
    );
}

/// The routed fast path must also agree under failure *during* the
/// workload (not just at phase boundaries): a mid-stream death is
/// detected by whichever round touches the dead backend first, and
/// both controllers converge to the same answers afterwards.
#[test]
fn mid_workload_death_converges_identically() {
    let mut scoped = Controller::with_replication(4, 2);
    let mut broad = Controller::with_replication(4, 2);
    broad.set_scoped_routing(false);
    broad.set_unique_via_index(false);
    broad.set_parallel_writes(false);
    for c in [&mut scoped, &mut broad] {
        c.try_create_file("g").unwrap();
        c.add_unique_constraint("g", vec!["u".to_owned()]);
        for v in 0..24 {
            c.execute(&insert_g(v, v)).unwrap();
        }
    }
    scoped.kill_backend(1);
    broad.kill_backend(1);
    for u in [3i64, 11, 19] {
        let q = parse_request(&format!("RETRIEVE ((FILE = g) and (u = {u})) (*)")).unwrap();
        let a = outcome(scoped.execute(&q));
        let b = outcome(broad.execute(&q));
        assert_eq!(a, b, "post-death point lookup u={u}");
    }
    // A colliding insert is rejected identically (every record still
    // has a live replica, so index and probe agree).
    let dup = insert_g(99, 5);
    assert_eq!(outcome(scoped.execute(&dup)), outcome(broad.execute(&dup)));
    assert_eq!(scoped.state_digest().unwrap(), broad.state_digest().unwrap());
}
