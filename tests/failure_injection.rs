//! Failure injection: backend loss under the full MLDS stack, and
//! malformed-input sweeps across every parser.

use mlds::abdl::Kernel;
use mlds::mbds::Controller;
use mlds::{daplex, Mlds};

#[test]
fn mlds_survives_backend_loss_with_partial_data() {
    let mut m = Mlds::multi_backend(4);
    m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
    m.populate_university("university").unwrap();
    let mut s = m.connect_codasyl("u", "university").unwrap();

    // All four courses are visible before the failure.
    let count_courses = |m: &mut Mlds<Controller>, s: &mut mlds::CodasylSession| {
        let mut n = 0;
        if m.execute_codasyl(s, "FIND FIRST course WITHIN system_course").is_ok() {
            n = 1;
            while m.execute_codasyl(s, "FIND NEXT course WITHIN system_course").is_ok() {
                n += 1;
            }
        }
        n
    };
    assert_eq!(count_courses(&mut m, &mut s), 4);

    m.kernel_mut().kill_backend(1);
    assert_eq!(m.kernel_mut().alive_count(), 3);

    // The system keeps answering; one partition's worth of courses is
    // unavailable (round-robin placed 4 courses on 4 backends).
    let after = count_courses(&mut m, &mut s);
    assert!(after < 4, "a partition must be missing, saw {after}");
    assert!(after >= 2, "only one backend was killed, saw {after}");

    // New work still executes.
    m.execute_codasyl(
        &mut s,
        "MOVE 'Recovery' TO title IN course\n\
         MOVE 'S89' TO semester IN course\n\
         MOVE 3 TO credits IN course\n\
         STORE course",
    )
    .unwrap();
    assert_eq!(count_courses(&mut m, &mut s), after + 1);
}

#[test]
fn malformed_codasyl_dml_never_panics() {
    let mut m = Mlds::single_backend();
    m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
    let mut s = m.connect_codasyl("u", "university").unwrap();
    for src in [
        "FIND",
        "FIND ANY",
        "FIND ANY course USING",
        "FIND ANY course USING title IN student",
        "GET title IN",
        "MOVE TO x IN y",
        "MOVE 'v' TO ghost IN course",
        "MOVE 'v' TO title IN ghost",
        "STORE",
        "CONNECT student advisor",
        "DISCONNECT student FROM",
        "MODIFY a, b",
        "ERASE",
        "FROBNICATE course",
        "FIND ANY course USING title IN course EXTRA",
        "FIND OWNER WITHIN system_course", // SYSTEM owner
        "FIND FIRST student WITHIN teaching", // wrong member
    ] {
        let res = m.execute_codasyl(&mut s, src);
        assert!(res.is_err(), "`{src}` should fail cleanly");
    }
}

#[test]
fn malformed_ddl_never_panics() {
    for src in [
        "",
        "DATABASE",
        "DATABASE x IS",
        "DATABASE x IS TYPE y IS ENTITY",
        "DATABASE x IS TYPE y IS ENTITY f END ENTITY; END DATABASE;",
        "SCHEMA NAME IS",
        "SCHEMA NAME IS x. RECORD NAME IS r. 02 a TYPE IS.",
        "SCHEMA NAME IS x. SET NAME IS s. OWNER IS a.",
        "TYPE x IS INTEGER;",
        "DATABASE x IS TYPE a IS ENTITY f : INTEGER; END ENTITY; OVERLAP a WITH a; END DATABASE;",
    ] {
        let mut m = Mlds::single_backend();
        assert!(m.create_database(src).is_err(), "`{src}` should fail cleanly");
    }
}

#[test]
fn malformed_daplex_dml_never_panics() {
    let mut m = Mlds::single_backend();
    m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
    let mut s = m.connect_daplex("u", "university").unwrap();
    for src in [
        "FOR EACH;",
        "FOR EACH student PRINT;",
        "FOR EACH ghost PRINT name(ghost);",
        "FOR EACH student SUCH THAT ghost(student) = 1 PRINT name(student);",
        "CREATE student name := 'x';",
        "CREATE student (ghost := 1);",
        "CREATE student (age := 5);", // out of range
        "DESTROY;",
        "ASSIGN gpa(student) := ;",
        "INCLUDE course IN teaching(faculty);", // missing SUCH THAT is fine syntactically…
    ] {
        // …so accept either a parse error or an execution error; the
        // requirement is no panic and no partial corruption.
        let _ = m.execute_daplex(&mut s, src);
    }
    // The database is still healthy.
    m.populate_university("university").unwrap();
    let rows = m
        .execute_daplex(&mut s, "FOR EACH student PRINT name(student);")
        .unwrap();
    assert_eq!(rows[0].affected, 4);
}

#[test]
fn killing_all_but_one_backend_still_serves() {
    let mut c = Controller::new(3);
    c.create_file("f");
    for i in 0..9i64 {
        c.execute(&mlds::abdl::Request::Insert {
            record: mlds::abdl::Record::from_pairs([(
                "FILE",
                mlds::abdl::Value::str("f"),
            )])
            .with("f", mlds::abdl::Value::Int(i)),
        })
        .unwrap();
    }
    c.kill_backend(0);
    c.kill_backend(2);
    let resp = c
        .execute(&mlds::abdl::parse::parse_request("RETRIEVE (FILE = f) (*)").unwrap())
        .unwrap();
    assert_eq!(resp.records().len(), 3, "one third of the data survives");
}
