//! Failure injection: backend loss under the full MLDS stack, and
//! malformed-input sweeps across every parser.
//!
//! With k-way replicated placement (default k = 2) a single backend
//! failure must lose *nothing*: the full query suite keeps returning
//! exactly what a never-failed system would, with `degraded == false`.
//! Only when every replica of some record is dead may results shrink —
//! and then the response must say so (`degraded == true`), never return
//! a silent partial answer.

use mlds::abdl::Kernel;
use mlds::mbds::{Controller, FaultPlan};
use mlds::{daplex, Mlds};
use std::time::Duration;

fn count_courses(m: &mut Mlds<Controller>, s: &mut mlds::CodasylSession) -> usize {
    let mut n = 0;
    if m.execute_codasyl(s, "FIND FIRST course WITHIN system_course").is_ok() {
        n = 1;
        while m.execute_codasyl(s, "FIND NEXT course WITHIN system_course").is_ok() {
            n += 1;
        }
    }
    n
}

#[test]
fn mlds_survives_backend_loss_without_data_loss() {
    let mut m = Mlds::multi_backend(4);
    m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
    m.populate_university("university").unwrap();
    let mut s = m.connect_codasyl("u", "university").unwrap();

    assert_eq!(count_courses(&mut m, &mut s), 4);

    m.kernel_mut().kill_backend(1);
    assert_eq!(m.kernel_mut().alive_count(), 3);

    // Every record had a replica outside backend 1: nothing is lost and
    // the system does not consider itself degraded.
    assert_eq!(count_courses(&mut m, &mut s), 4, "replication must hide a single failure");
    assert!(!m.health().degraded);
    assert_eq!(m.health().unavailable, vec![1]);

    // New work still executes (placed on the survivors).
    m.execute_codasyl(
        &mut s,
        "MOVE 'Recovery' TO title IN course\n\
         MOVE 'S89' TO semester IN course\n\
         MOVE 3 TO credits IN course\n\
         STORE course",
    )
    .unwrap();
    assert_eq!(count_courses(&mut m, &mut s), 5);

    // Recovery restores full redundancy: after restarting backend 1, a
    // *different* backend can die and still nothing is lost.
    m.kernel_mut().restart_backend(1).unwrap();
    assert_eq!(m.kernel_mut().alive_count(), 4);
    assert!(!m.health().degraded);
    m.kernel_mut().kill_backend(2);
    assert_eq!(count_courses(&mut m, &mut s), 5, "second failure after recovery loses nothing");
    assert!(!m.health().degraded);
}

#[test]
fn degraded_mode_is_reported_not_silent() {
    let mut m = Mlds::multi_backend(4);
    m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
    m.populate_university("university").unwrap();
    let mut s = m.connect_codasyl("u", "university").unwrap();

    // Replica groups are adjacent pairs; killing two adjacent backends
    // removes both copies of some records.
    m.kernel_mut().kill_backend(1);
    m.kernel_mut().kill_backend(2);
    let h = m.health();
    assert_eq!(h.unavailable, vec![1, 2]);
    assert!(h.degraded, "losing a whole replica group must be reported");

    // The flag reaches the per-statement output the language
    // interfaces hand to the user.
    let out = m.execute_codasyl(&mut s, "FIND FIRST course WITHIN system_course").unwrap();
    assert!(out.last().unwrap().degraded);
}

#[test]
fn seeded_fault_plan_is_deterministic_in_the_threaded_controller() {
    let run = || {
        let mut c = Controller::new(4);
        c.set_reply_timeout(Duration::from_millis(50));
        c.set_fault_plan(FaultPlan::seeded(11, 4, 30));
        c.create_file("f");
        let mut log = Vec::new();
        for i in 0..25i64 {
            let rec = mlds::abdl::Record::from_pairs([("FILE", mlds::abdl::Value::str("f"))])
                .with("f", mlds::abdl::Value::Int(i));
            // Inserts may legitimately fail while a fault fires; the
            // *sequence* of outcomes must be identical across runs.
            let ins = c.execute(&mlds::abdl::Request::Insert { record: rec });
            log.push(format!("ins {} {}", i, ins.is_ok()));
            if i % 5 == 4 {
                let resp = c
                    .execute(
                        &mlds::abdl::parse::parse_request("RETRIEVE (FILE = f) (COUNT(f))")
                            .unwrap(),
                    )
                    .unwrap();
                log.push(format!(
                    "count {:?} unavailable {:?} degraded {}",
                    resp.groups, resp.unavailable_backends, resp.degraded
                ));
            }
        }
        log
    };
    assert_eq!(run(), run(), "same seed, same failure schedule, same answers");
}

#[test]
fn malformed_codasyl_dml_never_panics() {
    let mut m = Mlds::single_backend();
    m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
    let mut s = m.connect_codasyl("u", "university").unwrap();
    for src in [
        "FIND",
        "FIND ANY",
        "FIND ANY course USING",
        "FIND ANY course USING title IN student",
        "GET title IN",
        "MOVE TO x IN y",
        "MOVE 'v' TO ghost IN course",
        "MOVE 'v' TO title IN ghost",
        "STORE",
        "CONNECT student advisor",
        "DISCONNECT student FROM",
        "MODIFY a, b",
        "ERASE",
        "FROBNICATE course",
        "FIND ANY course USING title IN course EXTRA",
        "FIND OWNER WITHIN system_course", // SYSTEM owner
        "FIND FIRST student WITHIN teaching", // wrong member
    ] {
        let res = m.execute_codasyl(&mut s, src);
        assert!(res.is_err(), "`{src}` should fail cleanly");
    }
}

#[test]
fn malformed_ddl_never_panics() {
    for src in [
        "",
        "DATABASE",
        "DATABASE x IS",
        "DATABASE x IS TYPE y IS ENTITY",
        "DATABASE x IS TYPE y IS ENTITY f END ENTITY; END DATABASE;",
        "SCHEMA NAME IS",
        "SCHEMA NAME IS x. RECORD NAME IS r. 02 a TYPE IS.",
        "SCHEMA NAME IS x. SET NAME IS s. OWNER IS a.",
        "TYPE x IS INTEGER;",
        "DATABASE x IS TYPE a IS ENTITY f : INTEGER; END ENTITY; OVERLAP a WITH a; END DATABASE;",
    ] {
        let mut m = Mlds::single_backend();
        assert!(m.create_database(src).is_err(), "`{src}` should fail cleanly");
    }
}

#[test]
fn malformed_daplex_dml_never_panics() {
    let mut m = Mlds::single_backend();
    m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
    let mut s = m.connect_daplex("u", "university").unwrap();
    for src in [
        "FOR EACH;",
        "FOR EACH student PRINT;",
        "FOR EACH ghost PRINT name(ghost);",
        "FOR EACH student SUCH THAT ghost(student) = 1 PRINT name(student);",
        "CREATE student name := 'x';",
        "CREATE student (ghost := 1);",
        "CREATE student (age := 5);", // out of range
        "DESTROY;",
        "ASSIGN gpa(student) := ;",
        "INCLUDE course IN teaching(faculty);", // missing SUCH THAT is fine syntactically…
    ] {
        // …so accept either a parse error or an execution error; the
        // requirement is no panic and no partial corruption.
        let _ = m.execute_daplex(&mut s, src);
    }
    // The database is still healthy.
    m.populate_university("university").unwrap();
    let rows = m
        .execute_daplex(&mut s, "FOR EACH student PRINT name(student);")
        .unwrap();
    assert_eq!(rows[0].affected, 4);
}

#[test]
fn killing_all_but_one_backend_still_serves() {
    let mut c = Controller::new(3);
    c.create_file("f");
    for i in 0..9i64 {
        c.execute(&mlds::abdl::Request::Insert {
            record: mlds::abdl::Record::from_pairs([(
                "FILE",
                mlds::abdl::Value::str("f"),
            )])
            .with("f", mlds::abdl::Value::Int(i)),
        })
        .unwrap();
    }
    // Nine records on replica groups (0,1), (1,2), (2,0); killing 0
    // and 2 leaves only backend 1, which holds the six records of the
    // two groups it belongs to.
    c.kill_backend(0);
    c.kill_backend(2);
    let resp = c
        .execute(&mlds::abdl::parse::parse_request("RETRIEVE (FILE = f) (*)").unwrap())
        .unwrap();
    assert_eq!(resp.records().len(), 6, "backend 1's replicas survive");
    assert!(resp.degraded, "the other three records have no live replica");
    assert_eq!(resp.unavailable_backends, vec![0, 2]);
}

/// A small replicated controller preloaded with `n` records on file
/// `f`, for the restart edge-case tests.
fn loaded_controller(backends: usize, k: usize, n: i64) -> Controller {
    let mut c = Controller::with_replication(backends, k);
    c.create_file("f");
    for i in 0..n {
        c.execute(&mlds::abdl::Request::Insert {
            record: mlds::abdl::Record::from_pairs([(
                "FILE",
                mlds::abdl::Value::str("f"),
            )])
            .with("f", mlds::abdl::Value::Int(i)),
        })
        .unwrap();
    }
    c
}

fn count_f(c: &mut Controller) -> usize {
    c.execute(&mlds::abdl::parse::parse_request("RETRIEVE (FILE = f) (*)").unwrap())
        .unwrap()
        .records()
        .len()
}

#[test]
fn restarting_an_alive_backend_is_a_no_op() {
    let mut c = loaded_controller(3, 2, 9);
    assert_eq!(c.alive_count(), 3);
    c.restart_backend(1).unwrap();
    assert_eq!(c.alive_count(), 3);
    assert_eq!(count_f(&mut c), 9, "a redundant restart must not disturb data");
}

#[test]
fn restart_with_k1_cannot_resurrect_lost_data() {
    // Unreplicated: killing a backend genuinely destroys its third of
    // the records, and a restart has no surviving replica to copy from.
    let mut c = loaded_controller(3, 1, 9);
    c.kill_backend(1);
    assert_eq!(count_f(&mut c), 6);
    c.restart_backend(1).unwrap();
    assert_eq!(c.alive_count(), 3, "the backend itself is back in service");
    assert_eq!(count_f(&mut c), 6, "its records are gone for good with k = 1");
    // The restarted backend rejoins empty but serviceable: new inserts
    // spread over all three backends again.
    for i in 100..103i64 {
        c.execute(&mlds::abdl::Request::Insert {
            record: mlds::abdl::Record::from_pairs([(
                "FILE",
                mlds::abdl::Value::str("f"),
            )])
            .with("f", mlds::abdl::Value::Int(i)),
        })
        .unwrap();
    }
    assert_eq!(count_f(&mut c), 9);
}

#[test]
fn double_kill_of_both_replicas_loses_the_group_despite_restart() {
    // k = 2 on 3 backends: groups (0,1), (1,2), (2,0). Killing 0 and 1
    // destroys both replicas of the three group-(0,1) records; the
    // other six keep one live copy on backend 2.
    let mut c = loaded_controller(3, 2, 9);
    c.kill_backend(0);
    c.kill_backend(1);
    let resp = c
        .execute(&mlds::abdl::parse::parse_request("RETRIEVE (FILE = f) (*)").unwrap())
        .unwrap();
    assert_eq!(resp.records().len(), 6);
    assert!(resp.degraded);
    // Restarting both brings the backends back and re-replicates every
    // record that still has a donor — but the group whose two replicas
    // both died has no donor and stays lost.
    c.restart_backend(0).unwrap();
    c.restart_backend(1).unwrap();
    assert_eq!(c.alive_count(), 3);
    let resp = c
        .execute(&mlds::abdl::parse::parse_request("RETRIEVE (FILE = f) (*)").unwrap())
        .unwrap();
    assert_eq!(resp.records().len(), 6, "no donor, no resurrection");
}

// ---------------------------------------------------------------------------
// Degraded-mode parallel reads: a backend dying mid read-wave.
// ---------------------------------------------------------------------------

/// A backend crashing *between* the staged send and the reply — the
/// worst moment for the parallel read pipeline — must cost nothing: the
/// collect phase sees the closed channel, the finish phase fails each
/// lost probe over to a surviving replica, and every read in the batch
/// still answers exactly what a serial, never-failed run would.
#[test]
fn backend_crash_mid_read_wave_fails_over_probes_and_matches_serial() {
    use mlds::abdl::parse::parse_request;
    use mlds::abdl::{Record, Request, Value};
    use mlds::mbds::FaultKind;

    let seed = |c: &mut Controller| {
        c.create_file("t");
        c.add_unique_constraint("t", vec!["u".to_owned()]);
        for i in 0..8i64 {
            c.execute(&Request::Insert {
                record: Record::from_pairs([("FILE", Value::str("t"))])
                    .with("u", Value::Int(i)),
            })
            .unwrap();
        }
    };

    // Two backends, full replication: every record has a surviving
    // replica whichever backend dies.
    let mut c = Controller::with_replication(2, 2);
    seed(&mut c);
    // Backend 0 has processed 9 messages (create-file + 8 replicated
    // inserts); its next message is a staged probe from the read wave
    // below, and the crash fires with the whole wave in flight.
    c.set_fault_plan(FaultPlan::new().with(0, 10, FaultKind::Crash));

    let reads: Vec<Request> = (0..8)
        .map(|i| {
            parse_request(&format!("RETRIEVE ((FILE = t) and (u = {i})) (*)")).unwrap()
        })
        .collect();
    let results = c.execute_batch(&reads);
    for (i, r) in results.iter().enumerate() {
        let resp = r.as_ref().unwrap_or_else(|e| panic!("read {i} failed: {e}"));
        assert_eq!(resp.records().len(), 1, "read {i} lost its record to the crash");
    }

    // The staged pipeline (and so the failover counters) only run on
    // the in-process transport; over TCP the batch falls back to the
    // solo path, whose own failover the assertions above still cover.
    if !std::env::var("MBDS_TRANSPORT").is_ok_and(|v| v == "tcp") {
        let t = c.exec_totals();
        assert!(t.sched_read_flights >= 1, "reads never formed a flight: {t:?}");
        assert!(
            t.read_probe_failovers >= 1,
            "the crash never cost a probe failover: {t:?}"
        );
    }

    // Restart the dead backend (the survivor re-replicates as donor)
    // and pin the digest against a clean serial run of the same work.
    // The plan must be cleared first: a restarted worker counts its
    // messages from zero and would replay the crash mid-recovery.
    c.set_fault_plan(FaultPlan::new());
    c.restart_backend(0).unwrap();
    let mut serial = Controller::with_replication(2, 2);
    seed(&mut serial);
    for r in &reads {
        serial.execute(r).unwrap();
    }
    assert_eq!(c.state_digest().unwrap(), serial.state_digest().unwrap());
    assert_eq!(c.unique_index_digest(), serial.unique_index_digest());
}
