//! Partition-tolerance harness for the out-of-process MBDS.
//!
//! The backends here are real OS processes (`mbds-backend`) reached
//! over the checksummed TCP wire protocol, so the faults are real too:
//! a severed link is a closed socket, not a simulated flag, and epoch
//! fencing is enforced by the *remote* process's own fence — the
//! controller never pre-checks locally, so every rejection in this file
//! travelled the wire.
//!
//! Five properties:
//!
//! 1. **Transport parity** — the same seeded workload (inserts,
//!    updates, deletes, kills, restarts) produces byte-identical state
//!    digests and query answers on the in-process channel bus and the
//!    socket transport.
//! 2. **Partition failover** — sever the primary's every backend link
//!    mid-workload, promote a standby that tails the WAL *over the
//!    wire* (`ShipServer`/`RemoteLog`), heal the old primary's links,
//!    and prove its writes are fenced at the now-remote backends while
//!    the promoted controller serves the exact pre-partition state.
//! 3. **Lossy-link convergence** — a seeded `NetFaultPlan` dropping,
//!    delaying, duplicating and reordering frames must converge to the
//!    same digest as the clean run (retries and idempotent request ids
//!    doing their job), with the retry counters proving frames were
//!    actually lost.
//! 4. **Flap regression** — a backend that goes down, comes back, and
//!    goes down *again* must be tracked Alive→Dead→Alive→Dead by the
//!    health board, with `reconnect_backend` restoring the live process
//!    (data intact, no re-replication restart) on each recovery.
//! 5. **Faulty ship link** — drops, duplicates and reorders on the WAL
//!    ship link itself; the standby's at-most-once reply application
//!    converges its mirror to the primary's digest and promotes
//!    cleanly.

use mlds::abdl::parse::parse_request;
use mlds::abdl::prng::Prng;
use mlds::abdl::{Kernel, Record, Request, Value};
use mlds::mbds::{
    BackendState, Controller, LinkDir, MemLog, NetFaultKind, NetFaultPlan, RemoteLog, ShipServer,
};

const BACKENDS: usize = 4;
const REPLICATION: usize = 2;

#[derive(Clone, Debug)]
enum Op {
    Insert { v: i64 },
    Update { below: i64, set: i64 },
    Delete { v: i64 },
    Retrieve { below: i64 },
    Kill { backend: usize },
    Restart { backend: usize },
}

/// The failover-harness workload shape, shared verbatim between the
/// channel and socket runs of the parity check.
fn gen_ops(seed: u64, n: usize, churn: bool) -> Vec<Op> {
    let mut rng = Prng::seed_from_u64(seed);
    let mut alive = [true; BACKENDS];
    let mut ops = Vec::new();
    while ops.len() < n {
        let live: Vec<usize> = (0..BACKENDS).filter(|&i| alive[i]).collect();
        let dead: Vec<usize> = (0..BACKENDS).filter(|&i| !alive[i]).collect();
        let roll = rng.gen_range(0, 100);
        let op = if roll < 55 {
            Op::Insert { v: rng.gen_range(0, 1000) }
        } else if roll < 67 {
            Op::Update { below: rng.gen_range(0, 1000), set: rng.gen_range(0, 10) }
        } else if roll < 77 {
            Op::Delete { v: rng.gen_range(0, 1000) }
        } else if roll < 87 {
            Op::Retrieve { below: rng.gen_range(0, 1000) }
        } else if churn && roll < 93 && live.len() > 2 {
            let b = *rng.pick(&live);
            alive[b] = false;
            Op::Kill { backend: b }
        } else if churn && !dead.is_empty() {
            let b = *rng.pick(&dead);
            alive[b] = true;
            Op::Restart { backend: b }
        } else {
            Op::Insert { v: rng.gen_range(0, 1000) }
        };
        ops.push(op);
    }
    ops
}

fn apply(c: &mut Controller, op: &Op) {
    match op {
        Op::Insert { v } => {
            let rec = Record::from_pairs([("FILE", Value::str("f"))]).with("v", Value::Int(*v));
            let _ = c.execute(&Request::Insert { record: rec });
        }
        Op::Update { below, set } => {
            let req = parse_request(&format!("UPDATE ((FILE = f) and (v < {below})) (m = {set})"))
                .unwrap();
            let _ = c.execute(&req);
        }
        Op::Delete { v } => {
            let req = parse_request(&format!("DELETE ((FILE = f) and (v = {v}))")).unwrap();
            let _ = c.execute(&req);
        }
        Op::Retrieve { below } => {
            let req =
                parse_request(&format!("RETRIEVE ((FILE = f) and (v < {below})) (*)")).unwrap();
            let _ = c.execute(&req);
        }
        Op::Kill { backend } => c.kill_backend(*backend),
        Op::Restart { backend } => {
            let _ = c.restart_backend(*backend);
        }
    }
}

fn insert_req(v: i64) -> Request {
    Request::Insert {
        record: Record::from_pairs([("FILE", Value::str("f"))]).with("v", Value::Int(v)),
    }
}

/// Query results that must match byte-for-byte across transports.
fn probe(c: &mut Controller) -> Vec<String> {
    [
        "RETRIEVE (FILE = f) (*)",
        "RETRIEVE ((FILE = f) and (v < 500)) (*)",
        "RETRIEVE (FILE = f) (COUNT(v)) BY m",
    ]
    .iter()
    .map(|q| {
        let resp = c.execute(&parse_request(q).unwrap()).unwrap();
        let mut records = resp.records().to_vec();
        records.sort_by_key(|(k, _)| *k);
        format!("{records:?} {:?}", resp.groups)
    })
    .collect()
}

/// Property 1: the socket transport is semantically invisible — same
/// workload, same digests, same answers as the in-process bus, through
/// backend kills and restarts (which over TCP are real `SIGKILL`-class
/// process deaths and re-spawns).
#[test]
fn tcp_transport_matches_in_process_run() {
    let ops = gen_ops(0x7C9, 120, true);

    let mut chan = Controller::with_replication(BACKENDS, REPLICATION);
    chan.try_create_file("f").unwrap();
    for op in &ops {
        apply(&mut chan, op);
    }

    let mut tcp = Controller::over_tcp(BACKENDS, REPLICATION).unwrap();
    assert!(tcp.is_tcp());
    tcp.try_create_file("f").unwrap();
    for op in &ops {
        apply(&mut tcp, op);
    }

    assert_eq!(tcp.state_digest().unwrap(), chan.state_digest().unwrap());
    assert_eq!(tcp.key_high_water(), chan.key_high_water());
    assert_eq!(probe(&mut tcp), probe(&mut chan));
}

/// Property 2 — the acceptance sweep: a real partition isolates the
/// primary, the standby (tailing the WAL over TCP) promotes over the
/// same backend processes, and the old primary's writes are rejected by
/// the backends' own fences once the partition heals.
#[test]
fn partition_failover_fences_isolated_primary_at_remote_backends() {
    let ops = gen_ops(0xA11CE, 60, false);
    let log = MemLog::new();
    let mut c = Controller::durable_over_tcp(BACKENDS, REPLICATION, log.clone()).unwrap();
    c.try_create_file("f").unwrap();

    // The WAL ships over the wire: the primary's log is served by a
    // ShipServer; the standby pulls through a RemoteLog — no shared
    // memory between the log writer and the log reader.
    let ship = ShipServer::spawn(Box::new(log.clone())).unwrap();
    let remote = RemoteLog::connect(ship.addr());
    let mut sb = c.standby(Box::new(remote)).unwrap();

    for op in &ops {
        apply(&mut c, op);
        sb.poll().unwrap();
    }
    let want_digest = c.state_digest().unwrap();
    let want_answers = probe(&mut c);

    // Partition: the primary loses every backend link mid-flight.
    for i in 0..BACKENDS {
        c.sever_link(i);
    }

    // The standby promotes across the partition: its Hello at the new
    // epoch raises every backend process's fence, and backends the
    // partition made unreachable *to the old primary* are re-probed
    // Alive — they answered, so their stores are intact.
    let mut p = sb.promote().unwrap();
    assert_eq!(p.epoch(), 1);
    assert_eq!(p.state_digest().unwrap(), want_digest);
    assert_eq!(probe(&mut p), want_answers);
    p.execute(&insert_req(7777)).unwrap();

    // The isolated primary cannot reach any replica of any record.
    let err = c.execute(&insert_req(9001)).expect_err("a fully partitioned primary must fail");
    assert!(err.to_string().contains("unavailable") || err.to_string().contains("backend"));

    // Partition heals; the old primary reconnects — and every write it
    // sends is rejected by the *remote* fence (the error text is
    // manufactured by the backend process, not this controller).
    for i in 0..BACKENDS {
        c.heal_link(i);
    }
    for v in 5000..5005 {
        let err = c
            .execute(&insert_req(v))
            .expect_err("a fenced primary must not write through remote backends");
        let msg = err.to_string();
        assert!(
            msg.contains("fenced") || msg.contains("unavailable"),
            "unexpected rejection: {msg}"
        );
    }
    // Nothing from the dead epoch landed: the promoted controller's
    // view is exactly its own history.
    let all = parse_request("RETRIEVE ((FILE = f) and (v > 4000)) (*)").unwrap();
    let survivors = p.execute(&all).unwrap();
    assert_eq!(survivors.records().len(), 1, "only the promoted write may exist");
    drop(c); // demoted: detaches, backends stay up
    p.execute(&insert_req(7778)).unwrap();
    assert_eq!(p.execute(&all).unwrap().records().len(), 2);
}

/// Property 3: under a seeded lossy network plan — drops, delays,
/// duplicates and reorders on every link, both directions — the retry
/// budget and idempotent request ids deliver exactly-once application:
/// the final digest equals the clean run's.
#[test]
fn lossy_link_workload_converges_to_clean_digest() {
    let ops = gen_ops(0x10C5, 80, false);

    let mut clean = Controller::over_tcp(BACKENDS, REPLICATION).unwrap();
    clean.try_create_file("f").unwrap();
    for op in &ops {
        apply(&mut clean, op);
    }
    let want_digest = clean.state_digest().unwrap();
    let want_answers = probe(&mut clean);

    let mut lossy = Controller::over_tcp(BACKENDS, REPLICATION).unwrap();
    // Tight windows so dropped frames retry in test time, with budget
    // enough that a lost frame never exhausts its window.
    lossy.set_reply_timeout(std::time::Duration::from_millis(400));
    lossy.set_retry_budget(4);
    lossy.try_create_file("f").unwrap();
    // A seeded plan plus a hand-placed burst on link 0 so every fault
    // kind provably fires.
    let plan = NetFaultPlan::seeded(0xBAD5EED, BACKENDS, 60)
        .with(0, LinkDir::Send, 3, NetFaultKind::Drop)
        .with(0, LinkDir::Recv, 4, NetFaultKind::Duplicate)
        .with(1, LinkDir::Send, 5, NetFaultKind::DelayMs(8))
        .with(1, LinkDir::Recv, 6, NetFaultKind::Reorder)
        .with(2, LinkDir::Recv, 3, NetFaultKind::Drop);
    lossy.set_net_fault_plan(plan);
    for op in &ops {
        apply(&mut lossy, op);
    }

    assert_eq!(lossy.state_digest().unwrap(), want_digest, "lossy run diverged");
    assert_eq!(probe(&mut lossy), want_answers);
    let totals = lossy.exec_totals();
    assert!(totals.retries > 0, "the fault plan never cost a retry: {totals:?}");
}

/// Property 4 — the flap regression: down → up → down → up, with the
/// health board re-probed back to Alive (epoch checked, store intact,
/// no restart re-replication) at each recovery, and demoted again on
/// the second outage rather than serving stale Alive state.
#[test]
fn health_board_tracks_a_flapping_backend() {
    let mut c = Controller::over_tcp(BACKENDS, REPLICATION).unwrap();
    c.set_reply_timeout(std::time::Duration::from_millis(200));
    c.try_create_file("f").unwrap();
    for v in 0..30 {
        c.execute(&insert_req(v)).unwrap();
    }
    let want_digest = c.state_digest().unwrap();
    assert_eq!(c.backend_state(1), BackendState::Alive);

    // Outage one: the link drops. Writes routed at backend 1 fail over
    // to surviving replicas; the board demotes it.
    c.sever_link(1);
    for v in 100..110 {
        let _ = c.execute(&insert_req(v));
    }
    assert_eq!(c.backend_state(1), BackendState::Dead, "severed backend must be demoted");
    assert_eq!(c.health().unavailable, vec![1]);

    // Recovery one: same process, same store — reconnect re-probes it
    // Alive without the restart path (its data never left).
    c.heal_link(1);
    c.reconnect_backend(1).unwrap();
    assert_eq!(c.backend_state(1), BackendState::Alive, "healed backend must be re-probed Alive");
    assert!(c.health().unavailable.is_empty());

    // Outage two — the flap. A stale board would still say Alive.
    c.sever_link(1);
    for v in 200..210 {
        let _ = c.execute(&insert_req(v));
    }
    assert_eq!(c.backend_state(1), BackendState::Dead, "flapped backend must be demoted again");

    // Recovery two, then the full-state check: nothing was lost or
    // double-applied across the flap.
    c.heal_link(1);
    c.reconnect_backend(1).unwrap();
    assert_eq!(c.backend_state(1), BackendState::Alive);
    for v in 300..305 {
        c.execute(&insert_req(v)).unwrap();
    }
    let digest = c.state_digest().unwrap();
    assert_ne!(digest, want_digest); // the flap-era writes landed …
    let count = parse_request("RETRIEVE ((FILE = f) and (v > 99)) (*)").unwrap();
    let n = c.execute(&count).unwrap().records().len();
    assert_eq!(n, 25, "every write issued around the outages must exist exactly once");
}

/// Property 5 — a faulty *ship* link. The standby tails the primary's
/// WAL through a `RemoteLog` whose pull requests and replies are
/// dropped, duplicated and reordered by a `NetFaultPlan`. At-most-once
/// reply application on the replica must absorb every duplicate and
/// stale delivery: the standby converges, and its promotion serves the
/// primary's exact digest and query answers.
#[test]
fn faulty_ship_link_standby_converges_and_promotes_to_primary_digest() {
    use std::sync::{Arc, Mutex};

    let ops = gen_ops(0x5711, 50, false);
    let log = MemLog::new();
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, log.clone()).unwrap();
    c.try_create_file("f").unwrap();

    // The ship link carries faults: duplicates and reorders front and
    // centre (the satellite under test), drops for good measure. All
    // fire in the first ~30 frames; the workload generates ~150, so the
    // tail of the run and promote's final poll are clean.
    let plan = Arc::new(Mutex::new(
        NetFaultPlan::new()
            .with(0, LinkDir::Recv, 3, NetFaultKind::Reorder)
            .with(0, LinkDir::Recv, 5, NetFaultKind::Duplicate)
            .with(0, LinkDir::Recv, 9, NetFaultKind::Reorder)
            .with(0, LinkDir::Recv, 11, NetFaultKind::Duplicate)
            .with(0, LinkDir::Recv, 13, NetFaultKind::Drop)
            .with(0, LinkDir::Recv, 17, NetFaultKind::Reorder)
            .with(0, LinkDir::Recv, 21, NetFaultKind::Duplicate)
            .with(0, LinkDir::Send, 4, NetFaultKind::Duplicate)
            .with(0, LinkDir::Send, 7, NetFaultKind::Drop)
            .with(0, LinkDir::Send, 14, NetFaultKind::Duplicate)
            .with(0, LinkDir::Send, 19, NetFaultKind::Drop)
            .with(0, LinkDir::Send, 25, NetFaultKind::Reorder),
    ));
    let ship = ShipServer::spawn(Box::new(log.clone())).unwrap();
    let remote = RemoteLog::connect(ship.addr()).with_fault_plan(0, Arc::clone(&plan));
    let mut sb = c.standby(Box::new(remote)).unwrap();

    for op in &ops {
        apply(&mut c, op);
        sb.poll().unwrap();
    }
    let want_digest = c.state_digest().unwrap();
    let want_answers = probe(&mut c);

    // A couple of clean polls flush any reply still held by a reorder,
    // then the standby's own mirror must already match the primary.
    sb.poll().unwrap();
    sb.poll().unwrap();
    assert_eq!(sb.state_digest(), want_digest, "standby mirror diverged under ship faults");

    // Promotion fences the primary and serves the identical state.
    let mut p = sb.promote().unwrap();
    assert_eq!(p.state_digest().unwrap(), want_digest);
    assert_eq!(probe(&mut p), want_answers);
    let err = c.execute(&insert_req(9001)).expect_err("fenced primary must not write");
    assert!(err.to_string().contains("fenced"), "unexpected rejection: {err}");
    drop(c);
    p.execute(&insert_req(4242)).unwrap();
}

/// Property 3, through the batch front door: the same lossy links, but
/// the workload arrives as `execute_batch` calls mixing inserts and
/// point reads — the path every sharded-dispatcher session takes. Over
/// TCP the scheduler keeps its serial fallback, so this pins that the
/// batch API's retry/idempotency story is exactly the solo path's: the
/// final digest equals a clean serial run's.
#[test]
fn lossy_link_batched_workload_converges_to_clean_digest() {
    use mlds::abdl::parse::parse_request;

    let mut rng = Prng::seed_from_u64(0xBA7C);
    let mut batches: Vec<Vec<Request>> = Vec::new();
    for _ in 0..10 {
        let mut batch = Vec::new();
        for _ in 0..8 {
            let roll = rng.gen_range(0, 100);
            batch.push(if roll < 40 {
                Request::Insert {
                    record: Record::from_pairs([("FILE", Value::str("f"))])
                        .with("v", Value::Int(rng.gen_range(0, 1000))),
                }
            } else if roll < 55 {
                parse_request(&format!(
                    "UPDATE ((FILE = f) and (v < {})) (m = {})",
                    rng.gen_range(0, 1000),
                    rng.gen_range(0, 10)
                ))
                .unwrap()
            } else if roll < 80 {
                parse_request(&format!(
                    "RETRIEVE ((FILE = f) and (v < {})) (*)",
                    rng.gen_range(0, 1000)
                ))
                .unwrap()
            } else {
                parse_request("RETRIEVE (FILE = f) (*)").unwrap()
            });
        }
        batches.push(batch);
    }

    let mut clean = Controller::over_tcp(BACKENDS, REPLICATION).unwrap();
    clean.try_create_file("f").unwrap();
    for batch in &batches {
        for req in batch {
            let _ = clean.execute(req);
        }
    }
    let want_digest = clean.state_digest().unwrap();
    let want_answers = probe(&mut clean);

    let mut lossy = Controller::over_tcp(BACKENDS, REPLICATION).unwrap();
    lossy.set_reply_timeout(std::time::Duration::from_millis(400));
    lossy.set_retry_budget(4);
    lossy.try_create_file("f").unwrap();
    lossy.set_net_fault_plan(
        NetFaultPlan::seeded(0x5EED5, BACKENDS, 40)
            .with(0, LinkDir::Send, 3, NetFaultKind::Drop)
            .with(1, LinkDir::Recv, 4, NetFaultKind::Reorder)
            .with(2, LinkDir::Recv, 5, NetFaultKind::Drop),
    );
    for batch in &batches {
        for res in lossy.execute_batch(batch) {
            let _ = res;
        }
    }

    assert_eq!(lossy.state_digest().unwrap(), want_digest, "batched lossy run diverged");
    assert_eq!(probe(&mut lossy), want_answers);
}
