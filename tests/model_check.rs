//! Exhaustive bounded model check of the epoch-fenced failover
//! protocol (`mbds::model`), plus the counterexample traces the
//! checker produced during development transcribed into deterministic
//! regression tests against the real `Controller`/`Standby` stack.
//!
//! The empirically tested protocol (crash sweeps, failover sweeps,
//! partition harness) is checked here by enumeration: BFS over every
//! interleaving of write/append/flush/ship/crash/promote/fence up to a
//! bounded depth, with two invariants machine-checked at every state —
//! exclusive epoch writers (no split brain) and acknowledged-write
//! survival.

use mlds::abdl::parse::parse_request;
use mlds::abdl::{Error, Kernel, Record, Request, Value};
use mlds::mbds::model::{check, Action, ModelConfig, Mutation, Violation};
use mlds::mbds::wal::{crc32, CursorUpdate};
use mlds::mbds::{Controller, LogCursor, LogRecord, LogStore, MemLog, Wal};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// The exhaustive check CI runs.
// ---------------------------------------------------------------------------

/// The acceptance bar: the small configuration (1 primary, 1 standby,
/// 2 backends, 4 pending writes, depth 13) is exhausted in seconds,
/// explores > 10⁴ distinct states, and both invariants hold at every
/// one of them.
#[test]
fn small_config_exhausts_with_both_invariants_holding() {
    let report = check(&ModelConfig::small());
    println!("model_check: {}", report.summary());
    assert!(
        report.states > 10_000,
        "expected > 10^4 states explored, got {}",
        report.states
    );
    if let Some(ce) = &report.counterexample {
        panic!("the real protocol violated an invariant:\n{}", ce.render());
    }
    assert!(report.elapsed.as_secs() < 30, "took {:?}", report.elapsed);
}

/// A deeper bound still holds (and still fits a CI budget).
#[test]
fn depth_sixteen_also_holds() {
    let report = check(&ModelConfig { depth: 16, ..ModelConfig::small() });
    println!("model_check[d16]: {}", report.summary());
    assert!(report.counterexample.is_none());
    assert!(report.states > report.transitions as usize / 4, "visited-set must dedupe");
}

// ---------------------------------------------------------------------------
// Intentionally broken protocol variants must produce counterexamples.
// ---------------------------------------------------------------------------

/// The acceptance-criteria example: skipping the fence raise on
/// promote must yield a split-brain counterexample with its full
/// action trace.
#[test]
fn skipping_fence_raise_on_promote_yields_a_counterexample_trace() {
    let report = check(&ModelConfig::with_mutation(Mutation::SkipFenceRaiseOnPromote));
    let ce = report
        .counterexample
        .expect("skip-fence-raise must break invariant 1");
    println!("counterexample:\n{}", ce.render());
    assert_eq!(ce.violation.invariant(), 1, "split brain is invariant 1: {}", ce.violation);
    // The trace is a real protocol history: it must actually promote
    // and must end at the violating action.
    assert!(
        ce.trace.contains(&Action::PromoteFence),
        "a fence-raise counterexample must involve a promotion:\n{}",
        ce.render()
    );
    assert!(!ce.trace.is_empty() && ce.trace.len() <= ModelConfig::small().depth as usize);
}

/// Every mutation in the catalogue is caught, each violating the
/// invariant its protocol window attacks.
#[test]
fn every_mutation_in_the_catalogue_is_caught() {
    for mutation in Mutation::ALL {
        let report = check(&ModelConfig::with_mutation(mutation));
        println!("{}: {}", mutation.name(), report.summary());
        let ce = report
            .counterexample
            .unwrap_or_else(|| panic!("{} produced no counterexample", mutation.name()));
        let expected_invariant = match mutation {
            Mutation::AckDespiteFailedFlush | Mutation::PromoteSkipsFinalPoll => 2,
            _ => 1,
        };
        assert_eq!(
            ce.violation.invariant(),
            expected_invariant,
            "{} hit the wrong invariant: {}",
            mutation.name(),
            ce.violation
        );
    }
}

/// BFS returns a *shortest* trace: the ack-despite-failed-flush window
/// needs exactly write → backend-write → wal-append → promote-fence →
/// flush, and the checker must not return anything longer.
#[test]
fn counterexamples_are_shortest_traces() {
    let report = check(&ModelConfig::with_mutation(Mutation::AckDespiteFailedFlush));
    let ce = report.counterexample.expect("counterexample");
    assert_eq!(
        ce.trace.len(),
        5,
        "expected the minimal 5-action window:\n{}",
        ce.render()
    );
    assert!(matches!(
        ce.violation,
        Violation::AckedWriteNotDurable { .. }
    ));
}

// ---------------------------------------------------------------------------
// Counterexamples transcribed against the real Controller/Standby
// stack. Each test replays, deterministically, the action trace a
// mutation produced in the model, and pins the behaviour of the fix.
// ---------------------------------------------------------------------------

fn ins(v: i64) -> Request {
    Request::Insert {
        record: Record::from_pairs([("FILE", Value::str("g"))]).with("x", Value::Int(v)),
    }
}

/// A [`LogStore`] wrapper that raises the shared fence immediately
/// before the group-commit flush lands — the deterministic replay of a
/// promotion winning the race against a batch commit.
struct FenceBeforeFlush {
    inner: MemLog,
    armed: Arc<AtomicBool>,
}

impl LogStore for FenceBeforeFlush {
    fn append_line(&mut self, line: &str) -> Result<(), Error> {
        self.inner.append_line(line)
    }
    fn append_lines_fenced(&mut self, lines: &[String], epoch: u64) -> Result<(), Error> {
        if self.armed.swap(false, Ordering::SeqCst) {
            self.inner.set_fence_epoch(epoch + 1)?;
        }
        self.inner.append_lines_fenced(lines, epoch)
    }
    fn append_line_fenced(&mut self, line: &str, epoch: u64) -> Result<(), Error> {
        self.inner.append_line_fenced(line, epoch)
    }
    fn install_snapshot_fenced(&mut self, text: &str, epoch: u64) -> Result<(), Error> {
        self.inner.install_snapshot_fenced(text, epoch)
    }
    fn log_lines(&self) -> Result<Vec<String>, Error> {
        self.inner.log_lines()
    }
    fn read_snapshot(&self) -> Result<Option<String>, Error> {
        self.inner.read_snapshot()
    }
    fn install_snapshot(&mut self, text: &str) -> Result<(), Error> {
        self.inner.install_snapshot(text)
    }
    fn has_state(&self) -> Result<bool, Error> {
        self.inner.has_state()
    }
    fn drop_torn_tail(&mut self, keep: usize) -> Result<(), Error> {
        self.inner.drop_torn_tail(keep)
    }
    fn fence_epoch(&self) -> Result<u64, Error> {
        self.inner.fence_epoch()
    }
    fn set_fence_epoch(&mut self, epoch: u64) -> Result<(), Error> {
        self.inner.set_fence_epoch(epoch)
    }
    fn generation(&self) -> Result<u64, Error> {
        self.inner.generation()
    }
}

/// Transcribed `ack-despite-failed-flush` counterexample —
/// client-write → backend-write → wal-append → promote-fence →
/// group-commit-flush. The fence wins the race against the flush, so
/// the batch's log records never land: the controller must retract
/// the batch's write acknowledgements (pre-fix, the flush failure was
/// stashed while every per-request result stayed `Ok`).
#[test]
fn fenced_flush_retracts_the_batch_acknowledgements() {
    let log = MemLog::new();
    let armed = Arc::new(AtomicBool::new(false));
    let store = FenceBeforeFlush { inner: log.clone(), armed: Arc::clone(&armed) };
    let mut c = Controller::durable_with(2, 1, store).unwrap();
    c.create_file("g");
    c.execute(&ins(0)).unwrap();
    let lines_before = log.log_len();

    // The promotion lands between the batch's appends and its flush.
    armed.store(true, Ordering::SeqCst);
    let read = parse_request("RETRIEVE (FILE = g) (*)").unwrap();
    let results = c.execute_batch(&[ins(1), read.clone(), ins(2)]);

    assert_eq!(results.len(), 3);
    assert!(
        results[0].is_err() && results[2].is_err(),
        "writes whose group-commit flush was fenced must not be acknowledged"
    );
    assert!(results[1].is_ok(), "reads saw committed state and stand");
    assert_eq!(
        log.log_len(),
        lines_before,
        "the fenced batch must leave no lines in the store"
    );
    // The controller knows it is fenced: the stashed flush error
    // surfaces on the next request.
    assert!(c.execute(&ins(3)).is_err());
}

/// Transcribed `racy-flush-fence` counterexample — flush-fence-check →
/// promote-fence → flush-land. The fence value read by an earlier
/// check is stale by landing time; the store-side check, atomic with
/// the write, is the one that must hold. This wrapper's
/// `fence_epoch()` *always* answers with the stale value, so only the
/// store's internal check stands between a demoted primary and the
/// promoted lineage's log.
#[test]
fn stale_fence_read_cannot_bypass_the_atomic_store_check() {
    struct StaleFenceRead {
        inner: MemLog,
    }
    impl LogStore for StaleFenceRead {
        fn fence_epoch(&self) -> Result<u64, Error> {
            Ok(0) // the stale pre-promotion read, forever
        }
        fn append_line(&mut self, line: &str) -> Result<(), Error> {
            self.inner.append_line(line)
        }
        fn append_line_fenced(&mut self, line: &str, epoch: u64) -> Result<(), Error> {
            self.inner.append_line_fenced(line, epoch)
        }
        fn append_lines_fenced(&mut self, lines: &[String], epoch: u64) -> Result<(), Error> {
            self.inner.append_lines_fenced(lines, epoch)
        }
        fn install_snapshot_fenced(&mut self, text: &str, epoch: u64) -> Result<(), Error> {
            self.inner.install_snapshot_fenced(text, epoch)
        }
        fn log_lines(&self) -> Result<Vec<String>, Error> {
            self.inner.log_lines()
        }
        fn read_snapshot(&self) -> Result<Option<String>, Error> {
            self.inner.read_snapshot()
        }
        fn install_snapshot(&mut self, text: &str) -> Result<(), Error> {
            self.inner.install_snapshot(text)
        }
        fn has_state(&self) -> Result<bool, Error> {
            self.inner.has_state()
        }
        fn drop_torn_tail(&mut self, keep: usize) -> Result<(), Error> {
            self.inner.drop_torn_tail(keep)
        }
        fn set_fence_epoch(&mut self, epoch: u64) -> Result<(), Error> {
            self.inner.set_fence_epoch(epoch)
        }
        fn generation(&self) -> Result<u64, Error> {
            self.inner.generation()
        }
    }

    let log = MemLog::new();
    let mut promoter = log.clone();
    promoter.set_fence_epoch(1).unwrap(); // the promotion has landed
    let mut wal = Wal::create(Box::new(StaleFenceRead { inner: log.clone() }));

    // The Wal's own pre-check consults the (stale) fence read and
    // passes; the store's atomic check must still refuse the append.
    let err = wal.append(&LogRecord::ReserveKey { key: 1 }).unwrap_err();
    assert!(format!("{err}").contains("fenced"), "got: {err}");
    assert_eq!(log.log_len(), 0, "no stale-epoch line may reach the store");

    // The batched path hits the same wall at flush time.
    wal.begin_batch();
    wal.append(&LogRecord::ReserveKey { key: 2 }).unwrap();
    let err = wal.commit_batch().unwrap_err();
    assert!(format!("{err}").contains("fenced"), "got: {err}");
    assert_eq!(log.log_len(), 0);
}

/// Transcribed `recover-without-refence` counterexample — crash →
/// promote-fence → promote-install → recover → two controllers
/// writing the same epoch. Cold recovery must start a *new* lineage:
/// bump past everything the store has seen and fence out the promoted
/// controller (last recovery wins), rather than adopting — and
/// sharing — its epoch.
#[test]
fn cold_recovery_fences_out_the_promoted_controller() {
    let log = MemLog::new();
    let mut c = Controller::durable_with(2, 2, log.clone()).unwrap();
    c.create_file("g");
    c.execute(&ins(0)).unwrap();

    let sb = c.standby(Box::new(log.clone())).unwrap();
    let mut promoted = sb.promote().unwrap();
    drop(c); // the old primary is gone; the promoted controller serves
    promoted.execute(&ins(1)).unwrap();

    // Operator error: the same store is cold-recovered while the
    // promoted controller is still alive. Pre-fix, both ended up
    // stamping epoch 1 — the model checker's split-brain trace. Now
    // recovery refences: exactly one of the two can keep writing.
    let mut recovered = Controller::recover_with(log.clone()).unwrap();
    assert!(
        LogStore::fence_epoch(&log).unwrap() >= 2,
        "recovery must raise the fence past the promoted epoch"
    );
    let err = promoted.execute(&ins(2)).unwrap_err();
    assert!(format!("{err}").contains("fenced"), "got: {err}");
    recovered.execute(&ins(3)).unwrap();

    // And the surviving lineage recovers cleanly on its own.
    let digest = recovered.state_digest().unwrap();
    drop(recovered);
    let mut again = Controller::recover_with(log).unwrap();
    assert_eq!(again.state_digest().unwrap(), digest);
}

/// Satellite regression: a [`LogCursor`] mid-tail across a racing
/// snapshot install. The store wrapper injects the install *between*
/// the cursor's generation read and its log read — the exact
/// interleaving the cursor's generation sandwich exists for. A naïve
/// cursor would consume the new generation's lines as a continuation
/// (their fresh sequence numbers can collide with what it expects)
/// and silently skip the snapshot; the fixed cursor retries, resyncs
/// from the snapshot, and yields every post-install entry exactly
/// once.
#[test]
fn cursor_resyncs_across_a_racing_snapshot_install() {
    struct InstallBetweenReads {
        inner: MemLog,
        armed: Arc<AtomicBool>,
    }
    impl InstallBetweenReads {
        /// The racing primary: install a snapshot and append a fresh
        /// tail whose sequence numbering restarts at 1.
        fn install_and_extend(&self) {
            let mut writer = self.inner.clone();
            writer.install_snapshot("RACY-SNAPSHOT").unwrap();
            for (i, key) in (100u64..105).enumerate() {
                let body =
                    format!("{} 0 {}", i as u64 + 1, LogRecord::ReserveKey { key }.encode());
                self.inner.push_raw_line(&format!("{:08x} {body}", crc32(body.as_bytes())));
            }
        }
    }
    impl LogStore for InstallBetweenReads {
        fn generation(&self) -> Result<u64, Error> {
            let generation = self.inner.generation()?;
            if self.armed.swap(false, Ordering::SeqCst) {
                // The install lands after the cursor read the
                // generation but before it reads the log.
                self.install_and_extend();
            }
            Ok(generation)
        }
        fn append_line(&mut self, line: &str) -> Result<(), Error> {
            self.inner.append_line(line)
        }
        fn log_lines(&self) -> Result<Vec<String>, Error> {
            self.inner.log_lines()
        }
        fn read_snapshot(&self) -> Result<Option<String>, Error> {
            self.inner.read_snapshot()
        }
        fn install_snapshot(&mut self, text: &str) -> Result<(), Error> {
            self.inner.install_snapshot(text)
        }
        fn has_state(&self) -> Result<bool, Error> {
            self.inner.has_state()
        }
        fn drop_torn_tail(&mut self, keep: usize) -> Result<(), Error> {
            self.inner.drop_torn_tail(keep)
        }
        fn fence_epoch(&self) -> Result<u64, Error> {
            self.inner.fence_epoch()
        }
        fn set_fence_epoch(&mut self, epoch: u64) -> Result<(), Error> {
            self.inner.set_fence_epoch(epoch)
        }
    }

    let log = MemLog::new();
    let mut wal = Wal::create(Box::new(log.clone()));
    for key in 0..3 {
        wal.append(&LogRecord::ReserveKey { key }).unwrap();
    }

    let armed = Arc::new(AtomicBool::new(false));
    let mut cursor = LogCursor::new(Box::new(InstallBetweenReads {
        inner: log.clone(),
        armed: Arc::clone(&armed),
    }));
    // Mid-tail: the cursor has consumed the pre-install log.
    match cursor.poll().unwrap() {
        CursorUpdate::Entries(entries) => assert_eq!(entries.len(), 3),
        CursorUpdate::Snapshot(_) => panic!("no snapshot installed yet"),
    }

    // The racing install: 3 entries compacted away, 5 fresh entries
    // whose sequence numbers restart at 1 — the 4th new line carries
    // seq 4, exactly what the cursor expects next.
    armed.store(true, Ordering::SeqCst);
    match cursor.poll().unwrap() {
        CursorUpdate::Snapshot(text) => assert_eq!(text, "RACY-SNAPSHOT"),
        CursorUpdate::Entries(entries) => {
            panic!("cursor consumed a wrong-generation tail: {entries:?}")
        }
    }
    match cursor.poll().unwrap() {
        CursorUpdate::Entries(entries) => {
            let keys: Vec<u64> = entries
                .iter()
                .map(|e| match e {
                    LogRecord::ReserveKey { key } => *key,
                    other => panic!("unexpected entry {other:?}"),
                })
                .collect();
            assert_eq!(keys, vec![100, 101, 102, 103, 104], "no torn or duplicated entries");
        }
        CursorUpdate::Snapshot(_) => panic!("generation already resynced"),
    }
    assert_eq!(cursor.consumed(), 5);
}

// ---------------------------------------------------------------------------
// Flight-scheduling model: overlapped reads never observe a torn batch.
// ---------------------------------------------------------------------------

use mlds::mbds::model::flight::{check_flights, FlightConfig, FlightMutation};

/// The read pipeline's safety/liveness pair, machine-checked: with the
/// scheduler's two fences in place (reads wait for earlier-admitted
/// conflicting writes to drain; later-admitted writes wait for the
/// probes), every interleaving of two reader sessions against a
/// replicated write batch yields exactly the admission-prefix deleted
/// set — and the two readers' probe envelopes still genuinely overlap.
#[test]
fn overlapped_reads_never_observe_a_torn_write_batch() {
    let report = check_flights(&FlightConfig::small());
    println!("flight_model: {}", report.summary());
    if let Some(ce) = &report.counterexample {
        panic!("the read pipeline violated the prefix invariant:\n{}", ce.render());
    }
    assert!(
        report.overlap_reached,
        "conflict fences must not serialise read against read"
    );
}

/// Deleting either fence must produce a counterexample — the fences
/// are load-bearing, not incidental.
#[test]
fn every_flight_mutation_is_caught() {
    for mutation in FlightMutation::ALL {
        let report = check_flights(&FlightConfig::with_mutation(mutation));
        println!("{}: {}", mutation.name(), report.summary());
        let ce = report
            .counterexample
            .unwrap_or_else(|| panic!("{} produced no counterexample", mutation.name()));
        assert!(!ce.trace.is_empty());
    }
}

// ---------------------------------------------------------------------------
// Rebalance model: WAL-bracketed group moves vs reads, crash, promotion.
// ---------------------------------------------------------------------------

use mlds::mbds::model::rebalance::{check_rebalance, RebalanceConfig, RebalanceMutation};

/// The live-move protocol's two invariants, machine-checked: reads
/// route to the old placement until the commit point and to the new
/// one after (never a partial copy set), and a committed move survives
/// both a cold recovery and a standby promotion — including crashes
/// landing strictly inside the bracket.
#[test]
fn bracketed_group_moves_hold_both_invariants() {
    let report = check_rebalance(&RebalanceConfig::small());
    println!("rebalance_model: {}", report.summary());
    if let Some(ce) = &report.counterexample {
        panic!("the move protocol violated an invariant:\n{}", ce.render());
    }
    assert!(report.mid_move_crash_reached, "mid-bracket crashes must be explored");
    assert!(report.committed_crash_reached, "post-commit crashes must be explored");
}

/// Deleting either guard — commit-point routing, or the recovery redo
/// at an unmatched begin marker — must produce a counterexample.
#[test]
fn every_rebalance_mutation_is_caught() {
    for mutation in RebalanceMutation::ALL {
        let report = check_rebalance(&RebalanceConfig::with_mutation(mutation));
        println!("{}: {}", mutation.name(), report.summary());
        let ce = report
            .counterexample
            .unwrap_or_else(|| panic!("{} produced no counterexample", mutation.name()));
        assert!(!ce.trace.is_empty());
    }
}
