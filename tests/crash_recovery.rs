//! Deterministic crash-recovery harness for the durable MBDS
//! controller.
//!
//! The headline property: kill the controller immediately after the
//! Nth write-ahead-log append — for **every** N in a seeded randomized
//! workload — recover from the surviving log, resume, and the final
//! directory state, key-allocator high-water mark and query results
//! are byte-identical to a run that never crashed.
//!
//! The crash point is `Controller::set_wal_crash_after(n)`: the nth
//! append writes its entry durably and then fails the controller (the
//! model of a process dying right after its log write), and every
//! later append is refused. The harness drops the crashed controller,
//! rebuilds one with `Controller::recover_with` from the shared
//! [`MemLog`] (the in-memory analogue of a disk surviving a process
//! crash) and replays the remainder of the workload.
//!
//! Resume rule: every operation performs its single log append only
//! after its effects are fully applied, so an op whose append crashed
//! is durably complete — the harness skips it and resumes at the next
//! one. The exception is `restart_backend`, which logs two entries
//! (RestartBegin/RestartEnd); re-running a completed restart is a
//! no-op, so the harness always re-runs the crashed restart.

use mlds::abdl::parse::parse_request;
use mlds::abdl::prng::Prng;
use mlds::abdl::{Kernel, Record, Request, Transaction, Value};
use mlds::mbds::{Controller, MemLog};

const BACKENDS: usize = 4;
const REPLICATION: usize = 2;

/// One step of the randomized workload. Generated ahead of time from a
/// seed (with a private model of which backends are alive), so the
/// same list replays identically on the reference run, the crashed
/// run and the resumed run.
#[derive(Clone, Debug)]
enum Op {
    CreateFile,
    AddUnique,
    Insert { v: i64 },
    /// Insert carrying a `u` value under a `DUPLICATES NOT ALLOWED`
    /// constraint — collisions are rejected by the controller's unique
    /// index (appending nothing, deterministically).
    InsertU { v: i64, u: i64 },
    Update { below: i64, set: i64 },
    /// Update that rewrites the constrained attribute, exercising the
    /// index's tuple-move path.
    UpdateU { below: i64, set: i64 },
    Delete { v: i64 },
    Retrieve { below: i64 },
    Kill { backend: usize },
    Restart { backend: usize },
    /// A multi-insert transaction: its WAL appends are group-committed
    /// (buffered, one sync). Values are drawn from a disjoint range and
    /// carry no `u`, so every insert appends exactly one entry.
    Txn { vs: Vec<i64> },
}

fn txn_insert(v: i64) -> Request {
    Request::Insert {
        record: Record::from_pairs([("FILE", Value::str("f"))]).with("v", Value::Int(v)),
    }
}

fn gen_ops(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = Prng::seed_from_u64(seed);
    let mut alive = [true; BACKENDS];
    let mut ops = vec![Op::CreateFile];
    while ops.len() <= n {
        let live: Vec<usize> = (0..BACKENDS).filter(|&i| alive[i]).collect();
        let dead: Vec<usize> = (0..BACKENDS).filter(|&i| !alive[i]).collect();
        let roll = rng.gen_range(0, 100);
        let op = if roll < 50 {
            Op::Insert { v: rng.gen_range(0, 1000) }
        } else if roll < 62 {
            Op::Update { below: rng.gen_range(0, 1000), set: rng.gen_range(0, 10) }
        } else if roll < 72 {
            Op::Delete { v: rng.gen_range(0, 1000) }
        } else if roll < 82 {
            Op::Retrieve { below: rng.gen_range(0, 1000) }
        } else if roll < 91 && live.len() > 2 {
            // Keep at least two alive so adjacent k=2 replica groups
            // never lose both members and answers stay complete.
            let b = *rng.pick(&live);
            alive[b] = false;
            Op::Kill { backend: b }
        } else if !dead.is_empty() {
            let b = *rng.pick(&dead);
            alive[b] = true;
            Op::Restart { backend: b }
        } else {
            Op::Insert { v: rng.gen_range(0, 1000) }
        };
        ops.push(op);
    }
    ops
}

/// A workload over a `DUPLICATES NOT ALLOWED` file: unique-index
/// checks, tuple-moving updates, group-committed transactions. Kills
/// keep at least three of four backends alive (at most one down at a
/// time), so adjacent k=2 replica groups never lose both members and
/// no record data is ever permanently lost — the rebuilt unique index
/// must then match the live one exactly.
fn gen_ops_unique(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = Prng::seed_from_u64(seed);
    let mut alive = [true; BACKENDS];
    let mut ops = vec![Op::CreateFile, Op::AddUnique];
    while ops.len() <= n {
        let live: Vec<usize> = (0..BACKENDS).filter(|&i| alive[i]).collect();
        let dead: Vec<usize> = (0..BACKENDS).filter(|&i| !alive[i]).collect();
        let roll = rng.gen_range(0, 100);
        let op = if roll < 40 {
            // A small u-space, so duplicate rejections actually happen.
            Op::InsertU { v: rng.gen_range(0, 1000), u: rng.gen_range(0, 40) }
        } else if roll < 50 {
            let len = rng.gen_range(2, 5);
            Op::Txn { vs: (0..len).map(|_| rng.gen_range(2000, 3000)).collect() }
        } else if roll < 58 {
            Op::UpdateU { below: rng.gen_range(0, 1000), set: rng.gen_range(0, 40) }
        } else if roll < 68 {
            Op::Delete { v: rng.gen_range(0, 1000) }
        } else if roll < 78 {
            Op::Retrieve { below: rng.gen_range(0, 1000) }
        } else if roll < 89 && live.len() == BACKENDS {
            let b = *rng.pick(&live);
            alive[b] = false;
            Op::Kill { backend: b }
        } else if !dead.is_empty() {
            let b = *rng.pick(&dead);
            alive[b] = true;
            Op::Restart { backend: b }
        } else {
            Op::InsertU { v: rng.gen_range(0, 1000), u: rng.gen_range(0, 40) }
        };
        ops.push(op);
    }
    ops
}

/// Apply one op, ignoring the result — a crashed append surfaces as an
/// error here, and the harness decides what to do from `wal_crashed`.
fn apply(c: &mut Controller, op: &Op) {
    match op {
        Op::CreateFile => {
            let _ = c.try_create_file("f");
        }
        Op::AddUnique => c.add_unique_constraint("f", vec!["u".to_owned()]),
        Op::Insert { v } => {
            let rec =
                Record::from_pairs([("FILE", Value::str("f"))]).with("v", Value::Int(*v));
            let _ = c.execute(&Request::Insert { record: rec });
        }
        Op::InsertU { v, u } => {
            let rec = Record::from_pairs([("FILE", Value::str("f"))])
                .with("v", Value::Int(*v))
                .with("u", Value::Int(*u));
            let _ = c.execute(&Request::Insert { record: rec });
        }
        Op::Update { below, set } => {
            let req =
                parse_request(&format!("UPDATE ((FILE = f) and (v < {below})) (m = {set})"))
                    .unwrap();
            let _ = c.execute(&req);
        }
        Op::UpdateU { below, set } => {
            let req =
                parse_request(&format!("UPDATE ((FILE = f) and (v < {below})) (u = {set})"))
                    .unwrap();
            let _ = c.execute(&req);
        }
        Op::Delete { v } => {
            let req = parse_request(&format!("DELETE ((FILE = f) and (v = {v}))")).unwrap();
            let _ = c.execute(&req);
        }
        Op::Retrieve { below } => {
            let req =
                parse_request(&format!("RETRIEVE ((FILE = f) and (v < {below})) (*)")).unwrap();
            let _ = c.execute(&req);
        }
        Op::Kill { backend } => c.kill_backend(*backend),
        Op::Restart { backend } => {
            let _ = c.restart_backend(*backend);
        }
        Op::Txn { vs } => {
            let txn = Transaction::new(vs.iter().map(|v| txn_insert(*v)).collect());
            let _ = c.execute_transaction(&txn);
        }
    }
}

/// Run ops until the armed crash point fires. Returns the index of the
/// op whose append crashed and the WAL append count just before that
/// op started (so a partially logged transaction knows how many of its
/// inserts are durable), or None if the workload finished.
fn run_until_crash(c: &mut Controller, ops: &[Op]) -> Option<(usize, u64)> {
    for (i, op) in ops.iter().enumerate() {
        let before = c.wal_appends();
        apply(c, op);
        if c.wal_crashed() {
            return Some((i, before));
        }
    }
    None
}

/// Query results that must match byte-for-byte between the reference
/// and every recovered run.
fn probe(c: &mut Controller) -> Vec<String> {
    [
        "RETRIEVE (FILE = f) (*)",
        "RETRIEVE ((FILE = f) and (v < 500)) (*)",
        "RETRIEVE (FILE = f) (COUNT(v)) BY m",
        // Key-scoped: when `u` is constrained unique, this routes
        // through the rebuilt index rather than a broadcast.
        "RETRIEVE ((FILE = f) and (u = 3)) (*)",
    ]
    .iter()
    .map(|q| {
        let resp = c.execute(&parse_request(q).unwrap()).unwrap();
        let mut records = resp.records().to_vec();
        records.sort_by_key(|(k, _)| *k);
        format!("{records:?} {:?}", resp.groups)
    })
    .collect()
}

struct Reference {
    digest: String,
    index_digest: String,
    high_water: u64,
    answers: Vec<String>,
    total_appends: u64,
}

fn reference_run(ops: &[Op], snapshot_every: u64) -> Reference {
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, MemLog::new()).unwrap();
    c.set_snapshot_every(snapshot_every);
    for op in ops {
        apply(&mut c, op);
    }
    Reference {
        digest: c.state_digest().unwrap(),
        index_digest: c.unique_index_digest(),
        high_water: c.key_high_water(),
        answers: probe(&mut c),
        total_appends: c.wal_appends(),
    }
}

/// Crash after append `crash_n`, recover, resume, and check the final
/// state against the reference.
fn crash_recover_check(ops: &[Op], crash_n: u64, snapshot_every: u64, want: &Reference) {
    let log = MemLog::new();
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, log.clone()).unwrap();
    c.set_snapshot_every(snapshot_every);
    c.set_wal_crash_after(crash_n);
    let (crashed_at, appends_before) = run_until_crash(&mut c, ops)
        .unwrap_or_else(|| panic!("crash point {crash_n} never fired"));
    drop(c);

    let mut r = Controller::recover_with(log).unwrap();
    r.set_snapshot_every(snapshot_every);
    // Single-append ops are durably complete once their append is on
    // disk — skip them. A restart is two appends and idempotent, so
    // re-run it whichever of the two crashed. A transaction appends one
    // entry per insert (group-committed, but the crashing append is
    // still flushed durably): the first `crash_n - appends_before`
    // inserts are durable and applied, the rest never ran — finish the
    // tail, then continue with the next op.
    let resume_from = match &ops[crashed_at] {
        Op::Restart { .. } => crashed_at,
        Op::Txn { vs } => {
            let done = (crash_n - appends_before) as usize;
            for v in &vs[done..] {
                let _ = r.execute(&txn_insert(*v));
            }
            crashed_at + 1
        }
        _ => crashed_at + 1,
    };
    for op in &ops[resume_from..] {
        apply(&mut r, op);
    }
    let ctx = format!("crash after append {crash_n} (op {crashed_at}: {:?})", ops[crashed_at]);
    assert_eq!(r.state_digest().unwrap(), want.digest, "digest diverged: {ctx}");
    assert_eq!(r.unique_index_digest(), want.index_digest, "unique index diverged: {ctx}");
    assert_eq!(r.key_high_water(), want.high_water, "key allocator diverged: {ctx}");
    assert_eq!(probe(&mut r), want.answers, "query answers diverged: {ctx}");
}

/// The acceptance property: a 200-op seeded workload, crashed after
/// every single WAL append index, always recovers to the exact state
/// and answers of the never-crashed run.
#[test]
fn every_crash_point_in_a_200_op_workload_recovers_identically() {
    let ops = gen_ops(0xC0FFEE, 200);
    let want = reference_run(&ops, 0);
    assert!(want.total_appends > 100, "workload too light: {} appends", want.total_appends);
    for crash_n in 1..=want.total_appends {
        crash_recover_check(&ops, crash_n, 0, &want);
    }
}

/// The same sweep with snapshot compaction enabled: crash points land
/// before, at and after snapshot installs, and recovery must not care.
#[test]
fn every_crash_point_recovers_identically_with_snapshots() {
    let ops = gen_ops(0xBEEF, 120);
    let want = reference_run(&ops, 13);
    for crash_n in 1..=want.total_appends {
        crash_recover_check(&ops, crash_n, 13, &want);
    }
}

/// Focused satellite: crashes landing exactly on the two appends of a
/// `restart_backend` re-replication (RestartBegin and RestartEnd).
#[test]
fn crash_during_restart_re_replication_recovers() {
    let mut ops = vec![Op::CreateFile];
    for v in 0..12 {
        ops.push(Op::Insert { v });
    }
    ops.push(Op::Kill { backend: 1 });
    for v in 12..18 {
        ops.push(Op::Insert { v });
    }
    ops.push(Op::Restart { backend: 1 });
    let want = reference_run(&ops, 0);
    // The restart is the final op: its RestartBegin/RestartEnd entries
    // are the last two appends.
    for crash_n in [want.total_appends - 1, want.total_appends] {
        crash_recover_check(&ops, crash_n, 0, &want);
    }
}

/// Satellite property: with no crash at all, a controller rebuilt from
/// snapshot + WAL equals the live one — directory, alive set, key
/// allocator — across seeds, with and without compaction.
#[test]
fn rebuilt_controller_equals_live_across_seeds() {
    for (seed, snapshot_every) in [(1u64, 0u64), (7, 0), (99, 9), (1234, 17)] {
        let ops = gen_ops(seed, 60);
        let log = MemLog::new();
        let mut live = Controller::durable_with(BACKENDS, REPLICATION, log.clone()).unwrap();
        live.set_snapshot_every(snapshot_every);
        for op in &ops {
            apply(&mut live, op);
        }
        let mut back = Controller::recover_with(log).unwrap();
        assert_eq!(
            back.state_digest().unwrap(),
            live.state_digest().unwrap(),
            "seed {seed} snapshot_every {snapshot_every}"
        );
        assert_eq!(back.key_high_water(), live.key_high_water(), "seed {seed}");
        assert_eq!(back.alive_count(), live.alive_count(), "seed {seed}");
        assert_eq!(probe(&mut back), probe(&mut live), "seed {seed}");
    }
}

/// A torn tail — the final log line half-written at the crash — loses
/// at most the append in flight, and is physically discarded so a
/// second crash+recovery does not resurrect it over resumed appends.
#[test]
fn torn_tail_loses_only_the_last_append_even_across_double_crash() {
    let log = MemLog::new();
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, log.clone()).unwrap();
    c.try_create_file("f").unwrap();
    for v in 0..10 {
        apply(&mut c, &Op::Insert { v });
    }
    drop(c);
    log.corrupt_line(log.log_len() - 1); // tear the 10th insert
    let mut r = Controller::recover_with(log.clone()).unwrap();
    let all = parse_request("RETRIEVE (FILE = f) (*)").unwrap();
    assert_eq!(r.execute(&all).unwrap().records().len(), 9);
    // Resume writing, crash again, recover again: the resumed insert
    // must survive the second recovery.
    apply(&mut r, &Op::Insert { v: 99 });
    drop(r);
    let mut r2 = Controller::recover_with(log).unwrap();
    assert_eq!(r2.execute(&all).unwrap().records().len(), 10);
}

/// Apply one op to the simulated cluster, mirroring [`apply`].
fn apply_sim(s: &mut mlds::mbds::SimCluster, op: &Op) {
    match op {
        Op::CreateFile => s.create_file("f"),
        Op::AddUnique => s.add_unique_constraint("f", vec!["u".to_owned()]),
        Op::Insert { v } => {
            let rec =
                Record::from_pairs([("FILE", Value::str("f"))]).with("v", Value::Int(*v));
            let _ = s.execute(&Request::Insert { record: rec });
        }
        Op::InsertU { v, u } => {
            let rec = Record::from_pairs([("FILE", Value::str("f"))])
                .with("v", Value::Int(*v))
                .with("u", Value::Int(*u));
            let _ = s.execute(&Request::Insert { record: rec });
        }
        Op::Update { below, set } => {
            let req =
                parse_request(&format!("UPDATE ((FILE = f) and (v < {below})) (m = {set})"))
                    .unwrap();
            let _ = s.execute(&req);
        }
        Op::UpdateU { below, set } => {
            let req =
                parse_request(&format!("UPDATE ((FILE = f) and (v < {below})) (u = {set})"))
                    .unwrap();
            let _ = s.execute(&req);
        }
        Op::Delete { v } => {
            let req = parse_request(&format!("DELETE ((FILE = f) and (v = {v}))")).unwrap();
            let _ = s.execute(&req);
        }
        Op::Retrieve { below } => {
            let req =
                parse_request(&format!("RETRIEVE ((FILE = f) and (v < {below})) (*)")).unwrap();
            let _ = s.execute(&req);
        }
        Op::Kill { backend } => s.kill_backend(*backend),
        Op::Restart { backend } => {
            let _ = s.restart_backend(*backend);
        }
        Op::Txn { vs } => {
            let txn = Transaction::new(vs.iter().map(|v| txn_insert(*v)).collect());
            let _ = s.execute_transaction(&txn);
        }
    }
}

/// The threaded controller and the simulated cluster produce the same
/// snapshot text (and hence the same recovered state) for the same
/// operation sequence — the durable analogue of E13's equivalence.
#[test]
fn controller_and_sim_cluster_agree_on_durable_state() {
    use mlds::mbds::{CostModel, SimCluster};
    let ops = gen_ops(0xD15C, 50);
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, MemLog::new()).unwrap();
    let mut s =
        SimCluster::durable_with(BACKENDS, REPLICATION, CostModel::default(), MemLog::new())
            .unwrap();
    for op in &ops {
        apply(&mut c, op);
        apply_sim(&mut s, op);
    }
    assert_eq!(c.state_digest().unwrap(), s.state_digest());
    assert_eq!(c.key_high_water(), s.key_high_water());
}

/// The same twin-kernel equivalence over a unique-constrained workload:
/// scoped routing, index-based duplicate rejection, tuple-moving
/// updates and group-committed transactions all produce identical
/// durable state — and identical unique indexes — in both kernels.
#[test]
fn controller_and_sim_cluster_agree_on_unique_constrained_state() {
    use mlds::mbds::{CostModel, SimCluster};
    let ops = gen_ops_unique(0xA11CE, 80);
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, MemLog::new()).unwrap();
    let mut s =
        SimCluster::durable_with(BACKENDS, REPLICATION, CostModel::default(), MemLog::new())
            .unwrap();
    for op in &ops {
        apply(&mut c, op);
        apply_sim(&mut s, op);
    }
    assert_eq!(c.state_digest().unwrap(), s.state_digest());
    assert_eq!(c.unique_index_digest(), s.unique_index_digest());
    assert!(!c.unique_index_digest().is_empty(), "workload never populated the index");
    assert_eq!(c.key_high_water(), s.key_high_water());
}

/// The headline sweep over the unique-constrained workload: crash
/// after every WAL append — including appends buffered inside
/// group-committed transactions and duplicate-rejecting inserts —
/// recover, resume, and state, answers *and the rebuilt unique index*
/// match the never-crashed run.
#[test]
fn every_crash_point_in_a_unique_constrained_workload_recovers_identically() {
    let ops = gen_ops_unique(0x1DECAFE, 140);
    let want = reference_run(&ops, 0);
    assert!(want.total_appends > 100, "workload too light: {} appends", want.total_appends);
    assert!(!want.index_digest.is_empty(), "workload never populated the index");
    for crash_n in 1..=want.total_appends {
        crash_recover_check(&ops, crash_n, 0, &want);
    }
}

/// The unique-constrained sweep with snapshot compaction: the index
/// must also rebuild correctly from a snapshot + log suffix.
#[test]
fn unique_constrained_crash_sweep_recovers_with_snapshots() {
    let ops = gen_ops_unique(0x5EED, 100);
    let want = reference_run(&ops, 11);
    for crash_n in 1..=want.total_appends {
        crash_recover_check(&ops, crash_n, 11, &want);
    }
}

/// Focused group-commit coverage: a single large transaction, crashed
/// at each of its buffered appends in turn. The crashing append is
/// flushed durably (flush-through-crash), so exactly the first
/// `crash_n` inserts survive; the harness finishes the tail and the
/// final state matches the uninterrupted run.
#[test]
fn crash_inside_a_group_committed_transaction_recovers() {
    let mut ops = vec![Op::CreateFile, Op::AddUnique];
    for v in 0..4 {
        ops.push(Op::InsertU { v, u: v });
    }
    ops.push(Op::Txn { vs: (2000..2008).collect() });
    ops.push(Op::InsertU { v: 50, u: 20 });
    let want = reference_run(&ops, 0);
    for crash_n in 1..=want.total_appends {
        crash_recover_check(&ops, crash_n, 0, &want);
    }
}
