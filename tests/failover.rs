//! Deterministic failover harness for the hot-standby controller.
//!
//! The headline property: attach a standby that continuously tails the
//! primary's write-ahead log, kill the primary immediately after the
//! Nth WAL append — for **every** N in a seeded randomized workload —
//! promote the standby over the *same live backends* without replaying
//! the log, resume, and the final directory state, key-allocator
//! high-water mark and query results are byte-identical to a run that
//! never crashed (the same reference `tests/crash_recovery.rs` uses).
//!
//! The crash point is `Controller::set_wal_crash_after(n)`: the nth
//! append writes its entry durably and then fails the controller, the
//! model of a process dying right after its log write. Unlike cold
//! recovery, the backends' worker threads survive the controller crash;
//! promotion installs the standby's warm mirror of the directory, key
//! allocator, placement rotors and health board over the existing
//! threads under a bumped, fenced epoch — the demoted primary's drop
//! must detach rather than shut the shared backends down, which is why
//! every check promotes *before* dropping the crashed primary.
//!
//! Resume rule (shared with crash recovery): every operation performs
//! its single log append only after its effects are fully applied, so
//! an op whose append crashed is durably complete — skip it. A
//! `restart_backend` is two appends and idempotent, so the crashed
//! restart is always re-run; a crash on its `RestartBegin` leaves the
//! real backend dead while the shipped log says it restarted, and
//! promotion itself finishes the interrupted restart. A transaction's
//! appends are group-committed but the crashing append still flushes
//! durably, so exactly the first `crash_n - appends_before` inserts
//! survive and the harness finishes the tail.

use mlds::abdl::parse::parse_request;
use mlds::abdl::prng::Prng;
use mlds::abdl::{Kernel, Record, Request, Transaction, Value};
use mlds::mbds::{Controller, MemLog};

const BACKENDS: usize = 4;
const REPLICATION: usize = 2;

/// One step of the randomized workload, generated ahead of time from a
/// seed so the same list replays identically on the reference run, the
/// crashed run and the promoted run.
#[derive(Clone, Debug)]
enum Op {
    CreateFile,
    AddUnique,
    Insert { v: i64 },
    /// Insert carrying a `u` value under a `DUPLICATES NOT ALLOWED`
    /// constraint — collisions are rejected by the controller's unique
    /// index (appending nothing, deterministically).
    InsertU { v: i64, u: i64 },
    Update { below: i64, set: i64 },
    /// Update that rewrites the constrained attribute, exercising the
    /// index's tuple-move path in the standby's mirror.
    UpdateU { below: i64, set: i64 },
    Delete { v: i64 },
    Retrieve { below: i64 },
    Kill { backend: usize },
    Restart { backend: usize },
    /// A multi-insert transaction: its WAL appends are group-committed
    /// (buffered, one sync). Values are drawn from a disjoint range and
    /// carry no `u`, so every insert appends exactly one entry.
    Txn { vs: Vec<i64> },
}

fn txn_insert(v: i64) -> Request {
    Request::Insert {
        record: Record::from_pairs([("FILE", Value::str("f"))]).with("v", Value::Int(v)),
    }
}

fn gen_ops(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = Prng::seed_from_u64(seed);
    let mut alive = [true; BACKENDS];
    let mut ops = vec![Op::CreateFile];
    while ops.len() <= n {
        let live: Vec<usize> = (0..BACKENDS).filter(|&i| alive[i]).collect();
        let dead: Vec<usize> = (0..BACKENDS).filter(|&i| !alive[i]).collect();
        let roll = rng.gen_range(0, 100);
        let op = if roll < 50 {
            Op::Insert { v: rng.gen_range(0, 1000) }
        } else if roll < 62 {
            Op::Update { below: rng.gen_range(0, 1000), set: rng.gen_range(0, 10) }
        } else if roll < 72 {
            Op::Delete { v: rng.gen_range(0, 1000) }
        } else if roll < 82 {
            Op::Retrieve { below: rng.gen_range(0, 1000) }
        } else if roll < 91 && live.len() > 2 {
            // Keep at least two alive so adjacent k=2 replica groups
            // never lose both members and answers stay complete.
            let b = *rng.pick(&live);
            alive[b] = false;
            Op::Kill { backend: b }
        } else if !dead.is_empty() {
            let b = *rng.pick(&dead);
            alive[b] = true;
            Op::Restart { backend: b }
        } else {
            Op::Insert { v: rng.gen_range(0, 1000) }
        };
        ops.push(op);
    }
    ops
}

/// A workload over a `DUPLICATES NOT ALLOWED` file: unique-index
/// checks, tuple-moving updates, group-committed transactions. Kills
/// keep at most one backend down at a time, so no record data is ever
/// permanently lost — the promoted unique index must then match the
/// never-crashed one exactly.
fn gen_ops_unique(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = Prng::seed_from_u64(seed);
    let mut alive = [true; BACKENDS];
    let mut ops = vec![Op::CreateFile, Op::AddUnique];
    while ops.len() <= n {
        let live: Vec<usize> = (0..BACKENDS).filter(|&i| alive[i]).collect();
        let dead: Vec<usize> = (0..BACKENDS).filter(|&i| !alive[i]).collect();
        let roll = rng.gen_range(0, 100);
        let op = if roll < 40 {
            // A small u-space, so duplicate rejections actually happen.
            Op::InsertU { v: rng.gen_range(0, 1000), u: rng.gen_range(0, 40) }
        } else if roll < 50 {
            let len = rng.gen_range(2, 5);
            Op::Txn { vs: (0..len).map(|_| rng.gen_range(2000, 3000)).collect() }
        } else if roll < 58 {
            Op::UpdateU { below: rng.gen_range(0, 1000), set: rng.gen_range(0, 40) }
        } else if roll < 68 {
            Op::Delete { v: rng.gen_range(0, 1000) }
        } else if roll < 78 {
            Op::Retrieve { below: rng.gen_range(0, 1000) }
        } else if roll < 89 && live.len() == BACKENDS {
            let b = *rng.pick(&live);
            alive[b] = false;
            Op::Kill { backend: b }
        } else if !dead.is_empty() {
            let b = *rng.pick(&dead);
            alive[b] = true;
            Op::Restart { backend: b }
        } else {
            Op::InsertU { v: rng.gen_range(0, 1000), u: rng.gen_range(0, 40) }
        };
        ops.push(op);
    }
    ops
}

/// Apply one op, ignoring the result — a crashed append surfaces as an
/// error here, and the harness decides what to do from `wal_crashed`.
fn apply(c: &mut Controller, op: &Op) {
    match op {
        Op::CreateFile => {
            let _ = c.try_create_file("f");
        }
        Op::AddUnique => c.add_unique_constraint("f", vec!["u".to_owned()]),
        Op::Insert { v } => {
            let rec =
                Record::from_pairs([("FILE", Value::str("f"))]).with("v", Value::Int(*v));
            let _ = c.execute(&Request::Insert { record: rec });
        }
        Op::InsertU { v, u } => {
            let rec = Record::from_pairs([("FILE", Value::str("f"))])
                .with("v", Value::Int(*v))
                .with("u", Value::Int(*u));
            let _ = c.execute(&Request::Insert { record: rec });
        }
        Op::Update { below, set } => {
            let req =
                parse_request(&format!("UPDATE ((FILE = f) and (v < {below})) (m = {set})"))
                    .unwrap();
            let _ = c.execute(&req);
        }
        Op::UpdateU { below, set } => {
            let req =
                parse_request(&format!("UPDATE ((FILE = f) and (v < {below})) (u = {set})"))
                    .unwrap();
            let _ = c.execute(&req);
        }
        Op::Delete { v } => {
            let req = parse_request(&format!("DELETE ((FILE = f) and (v = {v}))")).unwrap();
            let _ = c.execute(&req);
        }
        Op::Retrieve { below } => {
            let req =
                parse_request(&format!("RETRIEVE ((FILE = f) and (v < {below})) (*)")).unwrap();
            let _ = c.execute(&req);
        }
        Op::Kill { backend } => c.kill_backend(*backend),
        Op::Restart { backend } => {
            let _ = c.restart_backend(*backend);
        }
        Op::Txn { vs } => {
            let txn = Transaction::new(vs.iter().map(|v| txn_insert(*v)).collect());
            let _ = c.execute_transaction(&txn);
        }
    }
}

/// Query results that must match byte-for-byte between the reference
/// run and every promoted run.
fn probe(c: &mut Controller) -> Vec<String> {
    [
        "RETRIEVE (FILE = f) (*)",
        "RETRIEVE ((FILE = f) and (v < 500)) (*)",
        "RETRIEVE (FILE = f) (COUNT(v)) BY m",
        // Key-scoped: when `u` is constrained unique, this routes
        // through the promoted index rather than a broadcast.
        "RETRIEVE ((FILE = f) and (u = 3)) (*)",
    ]
    .iter()
    .map(|q| {
        let resp = c.execute(&parse_request(q).unwrap()).unwrap();
        let mut records = resp.records().to_vec();
        records.sort_by_key(|(k, _)| *k);
        format!("{records:?} {:?}", resp.groups)
    })
    .collect()
}

struct Reference {
    digest: String,
    index_digest: String,
    high_water: u64,
    answers: Vec<String>,
    total_appends: u64,
}

fn reference_run(ops: &[Op], snapshot_every: u64) -> Reference {
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, MemLog::new()).unwrap();
    c.set_snapshot_every(snapshot_every);
    for op in ops {
        apply(&mut c, op);
    }
    Reference {
        digest: c.state_digest().unwrap(),
        index_digest: c.unique_index_digest(),
        high_water: c.key_high_water(),
        answers: probe(&mut c),
        total_appends: c.wal_appends(),
    }
}

/// Crash the primary after append `crash_n` with a standby tailing its
/// log, promote the standby over the surviving backends, resume, and
/// check the final state against the never-crashed reference.
fn failover_check(ops: &[Op], crash_n: u64, snapshot_every: u64, want: &Reference) {
    let log = MemLog::new();
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, log.clone()).unwrap();
    c.set_snapshot_every(snapshot_every);
    // The standby tails the same store the primary appends to — the
    // in-memory analogue of a warm replica reading the shared disk.
    let mut sb = c.standby(Box::new(log.clone())).unwrap();
    c.set_wal_crash_after(crash_n);

    let mut crashed = None;
    for (i, op) in ops.iter().enumerate() {
        let before = c.wal_appends();
        apply(&mut c, op);
        // Continuous tailing: ship after every primary operation, so
        // promotion later has at most the crash-point tail to catch up.
        sb.poll().unwrap();
        if c.wal_crashed() {
            crashed = Some((i, before));
            break;
        }
    }
    let (crashed_at, appends_before) =
        crashed.unwrap_or_else(|| panic!("crash point {crash_n} never fired"));
    let ctx = format!("crash after append {crash_n} (op {crashed_at}: {:?})", ops[crashed_at]);

    // Promote *before* dropping the primary: the fence must rise while
    // the primary still exists, so its drop detaches from the shared
    // backend threads instead of shutting them down.
    let mut p = sb.promote().unwrap_or_else(|e| panic!("promotion failed: {ctx}: {e}"));
    drop(c);
    assert_eq!(p.epoch(), 1, "promotion must bump the fenced epoch: {ctx}");
    p.set_snapshot_every(snapshot_every);

    // Resume rule — see the module docs. Promotion already finished an
    // interrupted restart, and re-running a completed one is a no-op,
    // so the crashed restart is always safe to re-run.
    let resume_from = match &ops[crashed_at] {
        Op::Restart { .. } => crashed_at,
        Op::Txn { vs } => {
            let done = (crash_n - appends_before) as usize;
            for v in &vs[done..] {
                let _ = p.execute(&txn_insert(*v));
            }
            crashed_at + 1
        }
        _ => crashed_at + 1,
    };
    for op in &ops[resume_from..] {
        apply(&mut p, op);
    }
    assert_eq!(p.state_digest().unwrap(), want.digest, "digest diverged: {ctx}");
    assert_eq!(p.unique_index_digest(), want.index_digest, "unique index diverged: {ctx}");
    assert_eq!(p.key_high_water(), want.high_water, "key allocator diverged: {ctx}");
    assert_eq!(probe(&mut p), want.answers, "query answers diverged: {ctx}");
}

/// The acceptance property: a 200-op seeded workload, with the primary
/// crashed after every single WAL append index, always promotes to the
/// exact state and answers of the never-crashed run.
#[test]
fn every_crash_point_in_a_200_op_workload_fails_over_identically() {
    let ops = gen_ops(0xC0FFEE, 200);
    let want = reference_run(&ops, 0);
    assert!(want.total_appends > 100, "workload too light: {} appends", want.total_appends);
    for crash_n in 1..=want.total_appends {
        failover_check(&ops, crash_n, 0, &want);
    }
}

/// The same sweep with snapshot compaction enabled: crash points land
/// before, at and after snapshot installs, so the standby's cursor
/// crosses log truncations (rebuilding its mirror from the installed
/// snapshot) while the primary keeps appending — and promotion must
/// not care.
#[test]
fn every_crash_point_fails_over_identically_with_snapshots() {
    let ops = gen_ops(0xBEEF, 120);
    let want = reference_run(&ops, 13);
    for crash_n in 1..=want.total_appends {
        failover_check(&ops, crash_n, 13, &want);
    }
}

/// The unique-constrained sweep: duplicate-rejecting inserts,
/// tuple-moving updates and group-committed transactions all ship to
/// the standby, and the promoted unique index matches the reference at
/// every crash point.
#[test]
fn unique_constrained_workload_fails_over_identically() {
    let ops = gen_ops_unique(0x1DECAFE, 100);
    let want = reference_run(&ops, 0);
    assert!(!want.index_digest.is_empty(), "workload never populated the index");
    for crash_n in 1..=want.total_appends {
        failover_check(&ops, crash_n, 0, &want);
    }
}

/// Focused: crashes landing exactly on the two appends of a
/// `restart_backend` re-replication. A crash on `RestartBegin` is the
/// nasty case — the shipped log says the backend restarted (and the
/// standby's mirror applied the full restart), but the real worker
/// thread was never respawned; promotion must finish the restart for
/// real before serving.
#[test]
fn failover_finishes_an_interrupted_restart() {
    let mut ops = vec![Op::CreateFile];
    for v in 0..12 {
        ops.push(Op::Insert { v });
    }
    ops.push(Op::Kill { backend: 1 });
    for v in 12..18 {
        ops.push(Op::Insert { v });
    }
    ops.push(Op::Restart { backend: 1 });
    let want = reference_run(&ops, 0);
    // The restart is the final op: its RestartBegin/RestartEnd entries
    // are the last two appends.
    for crash_n in [want.total_appends - 1, want.total_appends] {
        failover_check(&ops, crash_n, 0, &want);
    }
}

/// Focused group-commit coverage: a single large transaction, crashed
/// at each of its buffered appends in turn. The crashing append is
/// flushed durably, so exactly the first `crash_n` inserts ship to the
/// standby; the harness finishes the tail on the promoted controller.
#[test]
fn failover_inside_a_group_committed_transaction() {
    let mut ops = vec![Op::CreateFile, Op::AddUnique];
    for v in 0..4 {
        ops.push(Op::InsertU { v, u: v });
    }
    ops.push(Op::Txn { vs: (2000..2008).collect() });
    ops.push(Op::InsertU { v: 50, u: 20 });
    let want = reference_run(&ops, 0);
    for crash_n in 1..=want.total_appends {
        failover_check(&ops, crash_n, 0, &want);
    }
}

/// While tailing, the standby's warm mirror is byte-identical to the
/// primary — the live-replication analogue of the recovery equivalence
/// pinned by `tests/crash_recovery.rs`.
#[test]
fn standby_mirror_matches_primary_digest_while_tailing() {
    let ops = gen_ops(0xD15C, 60);
    let log = MemLog::new();
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, log.clone()).unwrap();
    let mut sb = c.standby(Box::new(log)).unwrap();
    for (i, op) in ops.iter().enumerate() {
        apply(&mut c, op);
        sb.poll().unwrap();
        if i % 20 == 0 {
            assert_eq!(sb.state_digest(), c.state_digest().unwrap(), "diverged at op {i}");
        }
    }
    assert_eq!(sb.state_digest(), c.state_digest().unwrap());
    let lag = sb.lag();
    assert_eq!(lag.bytes_behind, 0, "caught-up standby must report zero lag");
    assert!(lag.records_shipped > 0);
}

/// Epoch fencing end-to-end: after promotion the demoted primary is
/// still running, but every write it issues — backend requests and log
/// appends alike — is rejected, and the shared log gains no records
/// from the dead epoch. Split-brain is structurally impossible.
#[test]
fn demoted_primary_writes_are_fenced_after_failover() {
    let ops = gen_ops(0xFE2CE, 40);
    let log = MemLog::new();
    let mut c = Controller::durable_with(BACKENDS, REPLICATION, log.clone()).unwrap();
    let mut sb = c.standby(Box::new(log.clone())).unwrap();
    for op in &ops {
        apply(&mut c, op);
        sb.poll().unwrap();
    }
    let want_digest = c.state_digest().unwrap();
    let want_answers = probe(&mut c);

    let mut p = sb.promote().unwrap();
    assert_eq!(p.epoch(), 1);

    // The demoted primary keeps issuing writes from its dead epoch.
    let appends_before = log.log_len();
    for v in 5000..5010 {
        let err = c
            .execute(&txn_insert(v))
            .expect_err("a fenced primary must not accept writes");
        let msg = err.to_string();
        assert!(msg.contains("fenced") || msg.contains("epoch"), "unexpected error: {msg}");
    }
    assert!(c.try_create_file("g").is_err(), "a fenced primary must not create files");
    assert_eq!(log.log_len(), appends_before, "the dead epoch appended to the shared log");

    // The promoted controller serves the exact pre-failover state and
    // keeps accepting writes.
    assert_eq!(p.state_digest().unwrap(), want_digest);
    assert_eq!(probe(&mut p), want_answers);
    p.execute(&txn_insert(7777)).unwrap();
    drop(c); // the demoted primary detaches; the backends stay up
    p.execute(&txn_insert(7778)).unwrap();
    let all = parse_request("RETRIEVE ((FILE = f) and (v > 7000)) (*)").unwrap();
    assert_eq!(p.execute(&all).unwrap().records().len(), 2);
}
