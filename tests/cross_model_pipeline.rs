//! The thesis's headline, end to end: a functional database created
//! from Daplex DDL, loaded through the Daplex interface, then accessed
//! and *modified* through CODASYL-DML — with both interfaces observing
//! each other's effects, on single- and multi-backend kernels.

use mlds::abdl::Value;
use mlds::{daplex, Mlds};

#[test]
fn full_lifecycle_across_both_languages() {
    let mut m = Mlds::single_backend();
    m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();

    // Build the population entirely through the Daplex interface.
    let mut dap = m.connect_daplex("shipman", "university").unwrap();
    m.execute_daplex(
        &mut dap,
        "CREATE department (dname := 'Computer Science', building := 'Spanagel');
         CREATE faculty (ename := 'Hsiao', salary := 68000.0, rank := 'full');
         CREATE student (name := 'Coker', age := 28, major := 'Computer Science', gpa := 3.6);
         CREATE course (title := 'Advanced Database', semester := 'F87', credits := 4);
         INCLUDE course SUCH THAT title(course) = 'Advanced Database'
             IN teaching(faculty) SUCH THAT ename(faculty) = 'Hsiao';",
    )
    .unwrap();

    // The CODASYL user reads what the Daplex user wrote …
    let mut net = m.connect_codasyl("coker", "university").unwrap();
    assert!(net.is_cross_model());
    let out = m
        .execute_codasyl(
            &mut net,
            "MOVE 'Advanced Database' TO title IN course\n\
             FIND ANY course USING title IN course\n\
             FIND FIRST LINK_1 WITHIN taught_by\n\
             FIND OWNER WITHIN teaching",
        )
        .unwrap();
    assert!(out[3].display.contains("rank = 'full'"), "{}", out[3].display);

    // … and modifies it.
    m.execute_codasyl(
        &mut net,
        "MOVE 'Advanced Database' TO title IN course\n\
         FIND ANY course USING title IN course\n\
         MOVE 5 TO credits IN course\n\
         MODIFY credits IN course",
    )
    .unwrap();

    // The Daplex user sees the CODASYL modification.
    let rows = m
        .execute_daplex(
            &mut dap,
            "FOR EACH course SUCH THAT title(course) = 'Advanced Database' PRINT credits(course);",
        )
        .unwrap();
    assert!(rows[0].display.contains("credits = 5"), "{}", rows[0].display);
}

#[test]
fn codasyl_store_builds_a_valid_functional_entity() {
    let mut m = Mlds::single_backend();
    m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();

    // Build a person+student entirely through CODASYL-DML.
    let mut net = m.connect_codasyl("coker", "university").unwrap();
    m.execute_codasyl(
        &mut net,
        "MOVE 'Tran' TO name IN person\n\
         MOVE 24 TO age IN person\n\
         STORE person\n\
         MOVE 'Physics' TO major IN student\n\
         MOVE 3.5 TO gpa IN student\n\
         STORE student",
    )
    .unwrap();

    // The Daplex user sees one coherent entity with inherited values.
    let mut dap = m.connect_daplex("shipman", "university").unwrap();
    let rows = m
        .execute_daplex(
            &mut dap,
            "FOR EACH student SUCH THAT major(student) = 'Physics' \
             PRINT name(student), age(student), gpa(student);",
        )
        .unwrap();
    assert_eq!(rows[0].affected, 1);
    assert!(rows[0].display.contains("name = 'Tran'"));
    assert!(rows[0].display.contains("age = 24"));
}

#[test]
fn same_results_on_single_and_multi_backend_kernels() {
    let script = "MOVE 'Computer Science' TO major IN student\n\
                  FIND ANY student USING major IN student\n\
                  FIND OWNER WITHIN person_student\n\
                  GET person";
    let run = |out: Vec<mlds::StatementOutput>| -> Vec<String> {
        out.into_iter().map(|o| o.display).collect()
    };

    let mut single = Mlds::single_backend();
    single.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
    single.populate_university("university").unwrap();
    let mut s1 = single.connect_codasyl("u", "university").unwrap();
    let a = run(single.execute_codasyl(&mut s1, script).unwrap());

    let mut multi = Mlds::multi_backend(4);
    multi.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
    multi.populate_university("university").unwrap();
    let mut s2 = multi.connect_codasyl("u", "university").unwrap();
    let b = run(multi.execute_codasyl(&mut s2, script).unwrap());

    assert_eq!(a, b, "kernel choice must be invisible to the language interfaces");
}

#[test]
fn overlap_constraint_reaches_the_codasyl_user() {
    // The network user cannot destroy the functional schema's overlap
    // integrity: storing a disjoint second subtype part is rejected.
    let ddl = "
DATABASE firm IS
TYPE worker IS
  ENTITY
    wname : STRING(20);
  END ENTITY;
TYPE engineer IS
  ENTITY SUBTYPE OF worker
    grade : INTEGER;
  END ENTITY;
TYPE manager IS
  ENTITY SUBTYPE OF worker
    level : INTEGER;
  END ENTITY;
END DATABASE;";
    let mut m = Mlds::single_backend();
    m.create_database(ddl).unwrap();
    let mut s = m.connect_codasyl("u", "firm").unwrap();
    m.execute_codasyl(
        &mut s,
        "MOVE 'Ada' TO wname IN worker\n\
         STORE worker\n\
         MOVE 2 TO grade IN engineer\n\
         STORE engineer",
    )
    .unwrap();
    // No OVERLAP engineer WITH manager declared → the second subtype
    // part is rejected.
    let err = m
        .execute_codasyl(&mut s, "MOVE 1 TO level IN manager\nSTORE manager")
        .unwrap_err();
    assert!(matches!(
        err,
        mlds::Error::Translator(mlds::translator::Error::OverlapViolation { .. })
    ));
}

#[test]
fn uwa_and_cit_are_per_session() {
    let mut m = Mlds::single_backend();
    m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
    m.populate_university("university").unwrap();
    let mut a = m.connect_codasyl("a", "university").unwrap();
    let mut b = m.connect_codasyl("b", "university").unwrap();
    m.execute_codasyl(&mut a, "MOVE 'X' TO title IN course").unwrap();
    assert_eq!(a.uwa().get("course", "title"), Value::str("X"));
    assert!(b.uwa().get("course", "title").is_null());
    m.execute_codasyl(
        &mut b,
        "MOVE 'F87' TO semester IN course\nFIND ANY course USING semester IN course",
    )
    .unwrap();
    assert!(b.cit().run_unit().is_some());
    assert!(a.cit().run_unit().is_none());
}

#[test]
fn non_entity_integrity_survives_the_transformation() {
    // §V.C: "preventing the network user from destroying the integrity
    // of the functional schema." Ranges and enumerations of the Daplex
    // non-entity types are enforced on STORE and MODIFY.
    let mut m = Mlds::single_backend();
    m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
    m.populate_university("university").unwrap();
    let mut s = m.connect_codasyl("u", "university").unwrap();

    // credits is credit_type = NEW INTEGER RANGE 1..5.
    let err = m
        .execute_codasyl(
            &mut s,
            "MOVE 'Overload' TO title IN course\n\
             MOVE 'S88' TO semester IN course\n\
             MOVE 9 TO credits IN course\n\
             STORE course",
        )
        .unwrap_err();
    assert!(err.to_string().contains("RANGE 1..5"), "{err}");

    // rank is an enumeration. Store a fresh employee so the ISA
    // occurrence is current, then attempt a bad rank.
    m.execute_codasyl(
        &mut s,
        "MOVE 'Freshman Prof' TO ename IN employee\n\
         MOVE 50000.0 TO salary IN employee\n\
         STORE employee",
    )
    .unwrap();
    let err = m
        .execute_codasyl(
            &mut s,
            "MOVE 'emeritus' TO rank IN faculty\nSTORE faculty",
        )
        .unwrap_err();
    assert!(err.to_string().contains("VALUES"), "{err}");

    // MODIFY is checked too.
    let err = m
        .execute_codasyl(
            &mut s,
            "MOVE 'Advanced Database' TO title IN course\n\
             FIND ANY course USING title IN course\n\
             MOVE 0 TO credits IN course\n\
             MODIFY credits IN course",
        )
        .unwrap_err();
    assert!(err.to_string().contains("RANGE 1..5"), "{err}");

    // In-range values still pass.
    m.execute_codasyl(
        &mut s,
        "MOVE 5 TO credits IN course\nMODIFY credits IN course",
    )
    .unwrap();
}
