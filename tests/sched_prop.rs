//! Property tests for the `mbds::sched` footprint algebra.
//!
//! The batch scheduler flies two requests concurrently exactly when
//! `Footprint::conflicts` says they commute. Two properties back that
//! claim, over seeded random request pairs:
//!
//! 1. **Symmetry** — `conflicts(a, b) == conflicts(b, a)` for every
//!    generated pair (the scheduler consults the predicate in
//!    admission order, so an asymmetric classification would make
//!    flight formation order-dependent).
//! 2. **Either-order equivalence** — any *insert* pair the scheduler
//!    would fly in parallel (non-conflicting, non-broadcast) produces
//!    the same kernel contents executed in either serial order, and
//!    the scheduler's own batched execution matches the
//!    admission-order serial digest byte-for-byte.
//!
//! Record *contents* are compared order-invariantly (sorted canonical
//! record text per file): swapping two inserts swaps which database
//! key and placement rotor step each consumes, so the literal
//! directory digest legitimately differs — commutativity is about
//! what the database contains, not which internal id each row drew.

use mlds::abdl::parse::parse_request;
use mlds::abdl::prng::Prng;
use mlds::abdl::{Kernel, Record, Request, Value};
use mlds::mbds::sched::UniqueGroups;
use mlds::mbds::{Controller, Footprint};
use std::collections::HashMap;

const FILES: [&str; 3] = ["g", "h", "k"];

/// The constraint registry under test: `g` has a single-attribute
/// unique group, `k` a composite one, `h` none.
fn uniques() -> UniqueGroups {
    HashMap::from([
        ("g".to_owned(), vec![vec!["u".to_owned()]]),
        ("k".to_owned(), vec![vec!["u".to_owned(), "v".to_owned()]]),
    ])
}

/// A fresh controller with the three files and their constraints.
fn kernel() -> Controller {
    let mut c = Controller::new(4);
    for f in FILES {
        c.create_file(f);
    }
    for (file, groups) in uniques() {
        for attrs in groups {
            c.add_unique_constraint(&file, attrs);
        }
    }
    c
}

/// One seeded random request: inserts (sometimes FILE-less, i.e.
/// broadcast), deletes, updates, scoped and unscoped retrieves.
fn gen_request(rng: &mut Prng) -> Request {
    let file = FILES[rng.gen_range(0, FILES.len() as i64) as usize];
    let roll = rng.gen_range(0, 100);
    if roll < 50 {
        let mut record = if roll < 4 {
            // No FILE keyword: classifies as a broadcast write.
            Record::from_pairs([("x", Value::Int(rng.gen_range(0, 1000)))])
        } else {
            Record::from_pairs([("FILE", Value::str(file))])
        };
        record = record.with("u", Value::Int(rng.gen_range(0, 8)));
        if rng.gen_range(0, 2) == 0 {
            record = record.with("v", Value::Int(rng.gen_range(0, 4)));
        }
        record = record.with("x", Value::Int(rng.gen_range(0, 1000)));
        Request::Insert { record }
    } else {
        let text = match rng.gen_range(0, 6) {
            0 => format!("DELETE ((FILE = {file}) and (x < {}))", rng.gen_range(0, 1000)),
            1 => format!(
                "UPDATE ((FILE = {file}) and (x < {})) (x = {})",
                rng.gen_range(0, 1000),
                rng.gen_range(0, 10)
            ),
            2 => format!("RETRIEVE ((FILE = {file}) and (x < {})) (*)", rng.gen_range(0, 1000)),
            3 => format!("RETRIEVE (FILE = {file}) (*)"),
            // Key-scoped point read: pins g's unique group.
            4 => format!("RETRIEVE ((FILE = g) and (u = {})) (*)", rng.gen_range(0, 8)),
            // Unscoped query: a broadcast read.
            _ => format!("RETRIEVE (x < {}) (*)", rng.gen_range(0, 1000)),
        };
        parse_request(&text).expect("generated request parses")
    }
}

/// One seeded random *read*: scoped and unscoped range reads, full
/// scans, key-pinned point reads (single- and composite-group), and a
/// mixed disjunction.
fn gen_read(rng: &mut Prng) -> Request {
    let file = FILES[rng.gen_range(0, FILES.len() as i64) as usize];
    let text = match rng.gen_range(0, 6) {
        0 => format!("RETRIEVE ((FILE = {file}) and (x < {})) (*)", rng.gen_range(0, 1000)),
        1 => format!("RETRIEVE (FILE = {file}) (*)"),
        // Unscoped: a broadcast read.
        2 => format!("RETRIEVE (x < {}) (*)", rng.gen_range(0, 1000)),
        3 => format!("RETRIEVE ((FILE = g) and (u = {})) (*)", rng.gen_range(0, 8)),
        4 => format!(
            "RETRIEVE ((FILE = k) and (u = {}) and (v = {})) (*)",
            rng.gen_range(0, 8),
            rng.gen_range(0, 4)
        ),
        _ => format!(
            "RETRIEVE (((FILE = g) and (u = {})) or ((FILE = {file}) and (x < {}))) (*)",
            rng.gen_range(0, 8),
            rng.gen_range(0, 1000)
        ),
    };
    parse_request(&text).expect("generated read parses")
}

/// Property 1: classification is symmetric over 2000 seeded pairs.
#[test]
fn conflicts_classify_symmetrically() {
    let uniques = uniques();
    let mut rng = Prng::seed_from_u64(0x5EED_F00D);
    let mut conflicting = 0u32;
    for _ in 0..2000 {
        let (a, b) = (gen_request(&mut rng), gen_request(&mut rng));
        let (fa, fb) = (Footprint::of(&a, &uniques), Footprint::of(&b, &uniques));
        assert_eq!(
            fa.conflicts(&fb),
            fb.conflicts(&fa),
            "asymmetric classification:\n  a = {a:?}\n  b = {b:?}"
        );
        conflicting += u32::from(fa.conflicts(&fb));
    }
    // The generator must actually exercise both classes.
    assert!(conflicting > 200, "only {conflicting} conflicting pairs generated");
    assert!(conflicting < 1800, "only {} commuting pairs generated", 2000 - conflicting);
}

/// The order-invariant contents digest: per file, the sorted canonical
/// record texts. Internal ids (database keys, rotor positions) are
/// excluded on purpose — they are allocation order, not contents.
fn contents_digest(c: &mut Controller) -> String {
    let mut out = String::new();
    for file in FILES {
        let resp = c
            .execute(&parse_request(&format!("RETRIEVE (FILE = {file}) (*)")).unwrap())
            .expect("retrieve all");
        let mut rows: Vec<String> =
            resp.records().iter().map(|(_, r)| r.to_string()).collect();
        rows.sort();
        out.push_str(&format!("{file}: {}\n", rows.join(" | ")));
    }
    out
}

/// Property 2: every insert pair the scheduler would fly in parallel
/// commutes — same contents either serial order, and the batched
/// (flight-scheduled) execution equals the admission-order serial run
/// on the *literal* state digest.
#[test]
fn parallel_flights_commute_in_either_serial_order() {
    let uniques = uniques();
    let mut rng = Prng::seed_from_u64(0xF1EE7);
    let mut flown = 0u32;
    while flown < 120 {
        let (a, b) = (gen_request(&mut rng), gen_request(&mut rng));
        if !matches!(a, Request::Insert { .. }) || !matches!(b, Request::Insert { .. }) {
            continue;
        }
        let (fa, fb) = (Footprint::of(&a, &uniques), Footprint::of(&b, &uniques));
        if fa.broadcast || fb.broadcast || fa.conflicts(&fb) {
            continue;
        }
        flown += 1;

        // Either serial order: identical contents.
        let mut ab = kernel();
        let ra = ab.execute(&a);
        let rb = ab.execute(&b);
        let mut ba = kernel();
        let rb2 = ba.execute(&b);
        let ra2 = ba.execute(&a);
        assert_eq!(ra.is_ok(), ra2.is_ok(), "a's outcome depends on order: {a:?} / {b:?}");
        assert_eq!(rb.is_ok(), rb2.is_ok(), "b's outcome depends on order: {a:?} / {b:?}");
        assert_eq!(
            contents_digest(&mut ab),
            contents_digest(&mut ba),
            "contents diverge for commuting pair:\n  a = {a:?}\n  b = {b:?}"
        );

        // The scheduler's own parallel flight ≡ serial admission order,
        // on the literal digest (keys and rotors included).
        let mut batched = kernel();
        let results = batched.execute_batch(&[a.clone(), b.clone()]);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].is_ok(), ra.is_ok());
        assert_eq!(results[1].is_ok(), rb.is_ok());
        assert_eq!(
            batched.state_digest().unwrap(),
            ab.state_digest().unwrap(),
            "flight execution diverges from serial admission order:\n  a = {a:?}\n  b = {b:?}"
        );
    }
}

/// Satellite property of the read pipeline: reads always commute, so a
/// seeded read-only batch — whatever mix of scopes, broadcast scans
/// included — forms exactly one flight with zero conflict stalls.
#[test]
fn read_only_batches_always_form_a_single_flight() {
    let uniques = uniques();
    let mut rng = Prng::seed_from_u64(0xBEAD_5EED);
    for round in 0..40u64 {
        let n = 2 + (round % 7) as usize;
        let batch: Vec<Request> = (0..n).map(|_| gen_read(&mut rng)).collect();
        let fps: Vec<Footprint> =
            batch.iter().map(|r| Footprint::of(r, &uniques)).collect();
        for (i, fa) in fps.iter().enumerate() {
            for (j, fb) in fps.iter().enumerate().skip(i + 1) {
                assert!(
                    !fa.conflicts(fb),
                    "read pair classified conflicting:\n  a = {:?}\n  b = {:?}",
                    batch[i],
                    batch[j]
                );
            }
        }
        // Integration: the scheduler actually flies the whole batch as
        // one read flight. (The socket transport executes batches on
        // the solo path — one in-flight request per link — so the
        // flight counters are an in-process claim.)
        let mut c = kernel();
        for i in 0..6 {
            let rec = Record::from_pairs([("FILE", Value::str("g"))])
                .with("u", Value::Int(i))
                .with("x", Value::Int(i * 100));
            c.execute(&Request::Insert { record: rec }).expect("seed insert");
        }
        let results = c.execute_batch(&batch);
        assert!(results.iter().all(|r| r.is_ok()), "{results:?}");
        if std::env::var("MBDS_TRANSPORT").is_ok_and(|v| v == "tcp") {
            continue;
        }
        let t = c.exec_totals();
        assert_eq!(t.sched_flights, 1, "batch of {n} reads split into flights");
        assert_eq!(t.sched_read_flights, 1);
        assert_eq!(t.sched_mixed_flights, 0);
        assert_eq!(t.conflict_stalls, 0, "a read stalled on a read");
        assert_eq!(t.sched_max_flight, n as u64);
    }
}

/// The refinement the flight scheduler actually relies on: same-file
/// inserts claiming the same unique tuple must classify as conflicting
/// — running them in parallel could double-admit the tuple. Check the
/// classifier against ground truth: for seeded same-file insert pairs,
/// if the pair is classified non-conflicting, both orders must admit
/// and reject identically (the unique check of one cannot observe the
/// other).
#[test]
fn non_conflicting_inserts_have_order_independent_unique_outcomes() {
    let uniques = uniques();
    let mut rng = Prng::seed_from_u64(0xD1CE);
    let mut checked = 0u32;
    for _ in 0..4000 {
        if checked >= 150 {
            break;
        }
        let (a, b) = (gen_request(&mut rng), gen_request(&mut rng));
        let (Request::Insert { .. }, Request::Insert { .. }) = (&a, &b) else { continue };
        let (fa, fb) = (Footprint::of(&a, &uniques), Footprint::of(&b, &uniques));
        if fa.broadcast || fb.broadcast || fa.files != fb.files || fa.conflicts(&fb) {
            continue;
        }
        checked += 1;
        let mut ab = kernel();
        let outcomes_ab = (ab.execute(&a).is_ok(), ab.execute(&b).is_ok());
        let mut ba = kernel();
        let (b_ok, a_ok) = (ba.execute(&b).is_ok(), ba.execute(&a).is_ok());
        assert_eq!(
            outcomes_ab,
            (a_ok, b_ok),
            "unique admission depends on order for non-conflicting pair:\n  a = {a:?}\n  b = {b:?}"
        );
    }
    assert!(checked >= 150, "generator produced too few same-file commuting pairs: {checked}");
}
