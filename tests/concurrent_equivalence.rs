//! Concurrency is a scheduling optimisation, not a semantics change.
//!
//! The property (same technique as `routing_equivalence.rs`): a seeded
//! workload pushed through the concurrent front door — N session
//! threads submitting over an [`mlds::MldsService`], the controller's
//! batch scheduler keeping non-conflicting requests in flight together
//! and group-committing their WAL appends — is equivalent to *some*
//! serial order, namely the dispatcher's admission order. The service
//! records that order in its admission log; replaying the log one
//! request at a time on a fresh, identically-configured system must
//! reproduce every per-request outcome (records, affected counts,
//! duplicate-key rejections) and the same final controller state.
//!
//! Three hardening variants ride along: the equivalence must survive a
//! unique-index constraint being fought over by every session, a hot
//! standby tailing the concurrent primary must promote to its exact
//! state, and a controller killed mid cross-session group commit must
//! recover to an admission-order *prefix* of the workload.
//!
//! The controller transport is chosen by `MBDS_TRANSPORT` (in-process
//! channels by default, `tcp` for real sockets), so CI runs the main
//! equivalence property in both modes without test changes.

use mlds::abdl::parse::parse_request;
use mlds::abdl::prng::Prng;
use mlds::abdl::{Kernel, Request};
use mlds::mbds::{Controller, MemLog};
use mlds::service::outcome_of;
use mlds::{Mlds, MldsService, NamespacedKernel};

const BACKENDS: usize = 4;
const SESSIONS: u64 = 8;
const REQUESTS_PER_SESSION: usize = 40;

/// The two databases the sessions are spread over — both declare a
/// file `t` with a unique constraint on `u`, so the namespace mapping
/// and the per-database scope of constraints are both exercised.
const DATABASES: [&str; 2] = ["dba", "dbb"];

fn configure(kernel: &mut impl Kernel) {
    for db in DATABASES {
        let mut ns = NamespacedKernel::new(kernel, db);
        ns.create_file("t");
        ns.add_unique_constraint("t", vec!["u".to_owned()]);
    }
}

fn db_of(session: u64) -> &'static str {
    DATABASES[(session % 2) as usize]
}

/// One session's seeded request stream: inserts whose unique attribute
/// collides with other sessions', point lookups on it, range reads,
/// aggregates, updates and deletes — all against the session's own
/// database.
fn session_requests(session: u64, n: usize) -> Vec<Request> {
    let mut rng = Prng::seed_from_u64(0xC0C0 + session);
    (0..n)
        .map(|_| {
            let roll = rng.gen_range(0, 100);
            let text = if roll < 40 {
                // The contended range is shared by every session, so
                // concurrent duplicates are frequent and some session
                // must lose each collision.
                format!(
                    "INSERT (<FILE, t>, <u, {}>, <v, {}>, <m, {}>)",
                    rng.gen_range(0, 60),
                    rng.gen_range(0, 1000),
                    rng.gen_range(0, 7)
                )
            } else if roll < 55 {
                format!("RETRIEVE ((FILE = t) and (u = {})) (*)", rng.gen_range(0, 60))
            } else if roll < 70 {
                format!("RETRIEVE ((FILE = t) and (v < {})) (*)", rng.gen_range(0, 1000))
            } else if roll < 80 {
                "RETRIEVE (FILE = t) (COUNT(v)) BY m".to_owned()
            } else if roll < 90 {
                format!(
                    "UPDATE ((FILE = t) and (v < {})) (m = {})",
                    rng.gen_range(0, 300),
                    rng.gen_range(0, 7)
                )
            } else {
                format!("DELETE ((FILE = t) and (v = {}))", rng.gen_range(0, 1000))
            };
            parse_request(&text).unwrap()
        })
        .collect()
}

/// A 90%-read variant of the session stream: mostly key-scoped point
/// reads (the scheduler's probe fast path), plus range reads,
/// aggregates, full scans, and enough contended inserts to keep mixed
/// read/insert flights forming.
fn read_heavy_requests(session: u64, n: usize) -> Vec<Request> {
    let mut rng = Prng::seed_from_u64(0x5EAD + session);
    (0..n)
        .map(|_| {
            let roll = rng.gen_range(0, 100);
            let text = if roll < 10 {
                format!(
                    "INSERT (<FILE, t>, <u, {}>, <v, {}>, <m, {}>)",
                    rng.gen_range(0, 60),
                    rng.gen_range(0, 1000),
                    rng.gen_range(0, 7)
                )
            } else if roll < 60 {
                format!("RETRIEVE ((FILE = t) and (u = {})) (*)", rng.gen_range(0, 60))
            } else if roll < 75 {
                format!("RETRIEVE ((FILE = t) and (v < {})) (*)", rng.gen_range(0, 1000))
            } else if roll < 85 {
                "RETRIEVE (FILE = t) (COUNT(v)) BY m".to_owned()
            } else {
                // Broadcast scan: rides read-only flights.
                "RETRIEVE (FILE = t) (*)".to_owned()
            };
            parse_request(&text).unwrap()
        })
        .collect()
}

/// Records every session's reads can hit from the first admission on.
fn prepopulate(kernel: &mut impl Kernel) {
    for db in DATABASES {
        let mut ns = NamespacedKernel::new(kernel, db);
        for u in 0..30 {
            let text = format!(
                "INSERT (<FILE, t>, <u, {u}>, <v, {}>, <m, {}>)",
                u * 37 % 1000,
                u % 7
            );
            ns.execute(&parse_request(&text).unwrap()).expect("prepopulate insert");
        }
    }
}

/// Drive a seeded workload through `svc` with one thread per session,
/// every thread released by a barrier at once.
fn drive_with(
    svc: &mut MldsService<Controller>,
    sessions: u64,
    per_session: usize,
    gen: fn(u64, usize) -> Vec<Request>,
) {
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(sessions as usize));
    let mut joins = Vec::new();
    for s in 0..sessions {
        let session = svc.open(&format!("user{s}"), db_of(s));
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || {
            let reqs = gen(s, per_session);
            barrier.wait();
            for req in reqs {
                // Errors (duplicate-key losses) are outcomes, not
                // failures; the admission log records them.
                let _ = session.submit(req);
            }
        }));
    }
    for j in joins {
        j.join().expect("session thread panicked");
    }
}

fn drive(svc: &mut MldsService<Controller>, sessions: u64, per_session: usize) {
    drive_with(svc, sessions, per_session, session_requests);
}

fn tcp_transport() -> bool {
    std::env::var("MBDS_TRANSPORT").is_ok_and(|v| v == "tcp")
}

/// The property test proper: N concurrent sessions over two databases,
/// every admitted request's outcome compared against a serial replay,
/// then the final controller state compared digest-for-digest.
#[test]
fn concurrent_execution_matches_serial_admission_order() {
    let mut live = Mlds::multi_backend(BACKENDS);
    configure(live.kernel_mut());
    let mut svc = MldsService::start(live);
    drive(&mut svc, SESSIONS, REQUESTS_PER_SESSION);
    let (mut live, report) = svc.into_parts();

    assert_eq!(
        report.admissions.len(),
        SESSIONS as usize * REQUESTS_PER_SESSION,
        "every submitted request must be admitted exactly once"
    );
    let totals = live.exec_totals();
    assert!(
        totals.batched_requests > 0,
        "eight concurrent sessions never formed a single admission batch"
    );

    // Serial replay in admission order on a fresh identical system.
    let mut serial = Mlds::multi_backend(BACKENDS);
    configure(serial.kernel_mut());
    for (i, entry) in report.admissions.iter().enumerate() {
        let mut ns = NamespacedKernel::new(serial.kernel_mut(), &entry.db);
        let outcome = outcome_of(&ns.execute(&entry.request));
        assert_eq!(
            outcome, entry.outcome,
            "admission {i} (session {}, {:?}) diverged from the serial replay",
            entry.session, entry.request
        );
    }
    assert_eq!(
        live.kernel_mut().state_digest().unwrap(),
        serial.kernel_mut().state_digest().unwrap(),
        "concurrent and serial final states differ"
    );
    assert_eq!(
        live.kernel_mut().unique_index_digest(),
        serial.kernel_mut().unique_index_digest(),
        "concurrent and serial unique indexes differ"
    );
}

/// The read pipeline under real concurrency: a 90%-read seeded mix
/// over prepopulated databases must form read flights (and send
/// single-backend probes) in-process, and — transport-independently —
/// every admitted outcome and the final state must match the serial
/// admission-order replay.
#[test]
fn read_heavy_concurrent_execution_matches_serial_admission_order() {
    let mut live = Mlds::multi_backend(BACKENDS);
    configure(live.kernel_mut());
    prepopulate(live.kernel_mut());
    let mut svc = MldsService::start(live);
    drive_with(&mut svc, SESSIONS, REQUESTS_PER_SESSION, read_heavy_requests);
    let (mut live, report) = svc.into_parts();

    assert_eq!(report.admissions.len(), SESSIONS as usize * REQUESTS_PER_SESSION);
    let totals = live.exec_totals();
    if !tcp_transport() {
        // The socket transport falls back to the solo path (one
        // in-flight request per link); the counters are an in-process
        // claim, the equivalence below holds on both.
        assert!(
            totals.sched_read_flights > 0,
            "a 90%-read concurrent mix never formed a read flight: {totals:?}"
        );
        assert!(
            totals.read_probes > 0,
            "key-scoped point reads never probed a single backend: {totals:?}"
        );
    }

    let mut serial = Mlds::multi_backend(BACKENDS);
    configure(serial.kernel_mut());
    prepopulate(serial.kernel_mut());
    for (i, entry) in report.admissions.iter().enumerate() {
        let mut ns = NamespacedKernel::new(serial.kernel_mut(), &entry.db);
        let outcome = outcome_of(&ns.execute(&entry.request));
        assert_eq!(
            outcome, entry.outcome,
            "admission {i} (session {}, {:?}) diverged from the serial replay",
            entry.session, entry.request
        );
    }
    assert_eq!(
        live.kernel_mut().state_digest().unwrap(),
        serial.kernel_mut().state_digest().unwrap(),
        "concurrent-read and serial final states differ"
    );
    assert_eq!(
        live.kernel_mut().unique_index_digest(),
        serial.kernel_mut().unique_index_digest(),
        "concurrent-read and serial unique indexes differ"
    );
}

/// The same property through the sharded dispatcher: admission workers
/// own the two databases' namespace slices, the executor concatenates
/// their runs — the admission log it records must still replay.
#[test]
fn sharded_dispatcher_matches_serial_admission_order() {
    let mut live = Mlds::multi_backend(BACKENDS);
    configure(live.kernel_mut());
    prepopulate(live.kernel_mut());
    let mut svc = MldsService::start_sharded(live, 2);
    drive_with(&mut svc, SESSIONS, REQUESTS_PER_SESSION, read_heavy_requests);
    let (mut live, report) = svc.into_parts();

    assert_eq!(report.admissions.len(), SESSIONS as usize * REQUESTS_PER_SESSION);
    let mut serial = Mlds::multi_backend(BACKENDS);
    configure(serial.kernel_mut());
    prepopulate(serial.kernel_mut());
    for (i, entry) in report.admissions.iter().enumerate() {
        let mut ns = NamespacedKernel::new(serial.kernel_mut(), &entry.db);
        let outcome = outcome_of(&ns.execute(&entry.request));
        assert_eq!(
            outcome, entry.outcome,
            "sharded admission {i} (session {}, {:?}) diverged from the serial replay",
            entry.session, entry.request
        );
    }
    assert_eq!(
        live.kernel_mut().state_digest().unwrap(),
        serial.kernel_mut().state_digest().unwrap(),
        "sharded and serial final states differ"
    );
}

/// Deterministic mixed-flight check, no thread timing involved: a
/// hand-built batch of key-disjoint inserts and reads must fly as one
/// mixed flight (with the point reads probing single backends) and
/// still produce exactly the serial admission-order results and state.
#[test]
fn mixed_read_insert_flight_matches_serial_semantics() {
    let build = || {
        let mut c = Controller::new(BACKENDS);
        c.create_file("t");
        c.add_unique_constraint("t", vec!["u".to_owned()]);
        for u in 0..8 {
            let text = format!("INSERT (<FILE, t>, <u, {u}>, <v, {}>)", u * 10);
            c.execute(&parse_request(&text).unwrap()).unwrap();
        }
        c
    };
    let batch: Vec<Request> = [
        "INSERT (<FILE, t>, <u, 100>, <v, 1>)",
        "RETRIEVE ((FILE = t) and (u = 3)) (*)",
        "INSERT (<FILE, t>, <u, 101>, <v, 2>)",
        "RETRIEVE ((FILE = t) and (u = 5)) (*)",
        "RETRIEVE ((FILE = t) and (u = 7)) (*)",
    ]
    .iter()
    .map(|t| parse_request(t).unwrap())
    .collect();

    let mut batched = build();
    let batch_results = batched.execute_batch(&batch);
    let mut serial = build();
    let serial_results: Vec<_> = batch.iter().map(|r| serial.execute(r)).collect();
    for (i, (b, s)) in batch_results.iter().zip(&serial_results).enumerate() {
        assert_eq!(outcome_of(b), outcome_of(s), "request {i} diverged");
    }
    assert_eq!(
        batched.state_digest().unwrap(),
        serial.state_digest().unwrap(),
        "mixed flight diverged from serial execution"
    );
    if !tcp_transport() {
        let t = batched.exec_totals();
        assert_eq!(t.sched_flights, 1, "batch should fly as one flight: {t:?}");
        assert_eq!(t.sched_mixed_flights, 1);
        assert_eq!(t.sched_max_flight, 5);
        assert_eq!(t.conflict_stalls, 0);
        assert!(t.read_probes >= 3, "point reads should probe single backends: {t:?}");
    }
}

/// A hot standby tailing the concurrent primary's group-committed log
/// must promote to the primary's exact state: cross-session batches
/// are flushed as admission-order line groups, so the tailer sees the
/// same serial history the replay sees.
#[test]
fn tailing_standby_promotes_to_the_concurrent_primary_state() {
    let log = MemLog::new();
    let mut c = Controller::durable_with(BACKENDS, 2, log.clone()).unwrap();
    let mut sb = c.standby(Box::new(log)).unwrap();
    configure(&mut c);
    let mut svc = MldsService::start(Mlds::with_kernel(c));
    drive(&mut svc, SESSIONS, REQUESTS_PER_SESSION / 2);
    let (mut live, _report) = svc.into_parts();

    sb.poll().unwrap();
    // Digest the primary *before* promotion: the promoted epoch fences
    // the old primary off the shared backends.
    let want_state = live.kernel_mut().state_digest().unwrap();
    let want_index = live.kernel_mut().unique_index_digest();
    let mut promoted = sb.promote().unwrap();
    drop(live);
    assert_eq!(promoted.state_digest().unwrap(), want_state, "promoted state diverged");
    assert_eq!(promoted.unique_index_digest(), want_index, "promoted unique index diverged");
}

fn batch_insert(u: i64) -> Request {
    parse_request(&format!("INSERT (<FILE, f>, <u, {u}>, <v, {}>)", u * 3 % 100)).unwrap()
}

/// Kill the controller mid cross-session group commit —
/// deterministically, by arming the WAL crash point at an append index
/// inside one `execute_batch` flight — and recover. The injector
/// flushes the open batch *through* the crashing entry, so the
/// recovered state must be exactly the first `M + 1` admitted inserts
/// (`M` reported Ok live; the crashing one is durable but was reported
/// as the crash error).
#[test]
fn crash_mid_group_commit_recovers_an_admission_order_prefix() {
    let log = MemLog::new();
    let mut c = Controller::durable_with(BACKENDS, 2, log.clone()).unwrap();
    c.try_create_file("f").unwrap();
    c.add_unique_constraint("f", vec!["u".to_owned()]);
    let base = c.wal_appends();
    c.set_wal_crash_after(base + 5);

    let reqs: Vec<Request> = (0..12).map(batch_insert).collect();
    let results = c.execute_batch(&reqs);
    let ok = results.iter().take_while(|r| r.is_ok()).count();
    assert!(results[ok..].iter().all(Result::is_err), "Ok results must form a prefix");
    assert_eq!(ok, 4, "appends {} through {} should have landed", base + 1, base + 4);
    drop(c);

    let mut r = Controller::recover_with(log).unwrap();
    let resp = r.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
    let mut got: Vec<i64> = resp
        .records()
        .iter()
        .map(|(_, rec)| match rec.get("u").unwrap() {
            mlds::abdl::Value::Int(u) => *u,
            other => panic!("unexpected u value {other:?}"),
        })
        .collect();
    got.sort_unstable();
    assert_eq!(got, vec![0, 1, 2, 3, 4], "recovered inserts must be the admission-order prefix");
}

/// The same crash under real concurrency: session threads race over
/// the service while the WAL crash point fires inside one of their
/// group commits. Whatever interleaving the scheduler produced, the
/// recovered state must be an admission-order prefix of the admitted
/// inserts — the Ok ones plus exactly the one durable crashing entry.
#[test]
fn concurrent_crash_recovers_an_admission_order_prefix() {
    const CRASH_SESSIONS: u64 = 4;
    const PER_SESSION: u64 = 16;
    let log = MemLog::new();
    let mut c = Controller::durable_with(BACKENDS, 2, log.clone()).unwrap();
    {
        let mut ns = NamespacedKernel::new(&mut c, "db");
        ns.create_file("t");
        ns.add_unique_constraint("t", vec!["u".to_owned()]);
    }
    let base = c.wal_appends();
    c.set_wal_crash_after(base + 20);

    let mut svc = MldsService::start(Mlds::with_kernel(c));
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(CRASH_SESSIONS as usize));
    let mut joins = Vec::new();
    for s in 0..CRASH_SESSIONS {
        let session = svc.open(&format!("user{s}"), "db");
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || {
            barrier.wait();
            for i in 0..PER_SESSION {
                // Session-unique keys: every pre-crash insert succeeds,
                // every post-crash one fails, nothing is a duplicate.
                let u = (s * 1000 + i) as i64;
                let req = parse_request(&format!("INSERT (<FILE, t>, <u, {u}>)")).unwrap();
                let _ = session.submit(req);
            }
        }));
    }
    for j in joins {
        j.join().expect("session thread panicked");
    }
    let (_live, report) = svc.into_parts();

    // Admission-order insert keys and how many were reported Ok.
    let admitted: Vec<i64> = report
        .admissions
        .iter()
        .map(|e| match &e.request {
            Request::Insert { record } => match record.get("u").unwrap() {
                mlds::abdl::Value::Int(u) => *u,
                other => panic!("unexpected u value {other:?}"),
            },
            other => panic!("workload submits only inserts, got {other:?}"),
        })
        .collect();
    let ok = report.admissions.iter().filter(|e| e.outcome.starts_with("ok")).count();
    assert!(ok > 0, "the crash fired before any insert landed");
    assert!(ok < admitted.len(), "the crash never fired");

    let mut r = Controller::recover_with(log).unwrap();
    let mut ns = NamespacedKernel::new(&mut r, "db");
    let resp = ns.execute(&parse_request("RETRIEVE (FILE = t) (*)").unwrap()).unwrap();
    let mut got: Vec<i64> = resp
        .records()
        .iter()
        .map(|(_, rec)| match rec.get("u").unwrap() {
            mlds::abdl::Value::Int(u) => *u,
            other => panic!("unexpected u value {other:?}"),
        })
        .collect();
    got.sort_unstable();
    let mut want: Vec<i64> = admitted[..ok + 1].to_vec();
    want.sort_unstable();
    assert_eq!(
        got, want,
        "recovered inserts are not the admission-order prefix (ok = {ok}, admitted = {})",
        admitted.len()
    );
}
