//! Drive the `mlds-shell` binary in batch mode: the user-facing LIL
//! loop, exercised end-to-end as a process.

use std::process::Command;

fn run_shell(script: &str) -> (String, String) {
    let dir = std::env::temp_dir().join(format!("mlds-shell-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("script.mlds");
    std::fs::write(&path, script).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_mlds-shell"))
        .arg(&path)
        .output()
        .expect("shell runs");
    let _ = std::fs::remove_dir_all(&dir);
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn batch_script_runs_the_demo_pipeline() {
    let (stdout, stderr) = run_shell(
        "# batch demo\n\
         .demo\n\
         .dbs\n\
         .open university\n\
         MOVE 'Advanced Database' TO title IN course\n\
         FIND ANY course USING title IN course\n\
         GET course\n\
         .open university daplex\n\
         FOR EACH student SUCH THAT major(student) = 'Computer Science' PRINT name(student);\n\
         .quit\n",
    );
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(stdout.contains("university (functional)"), "{stdout}");
    assert!(stdout.contains("cross-model") || stdout.contains("schema transformed"), "{stdout}");
    assert!(stdout.contains("title = 'Advanced Database'"), "{stdout}");
    assert!(stdout.contains("name = 'Coker'"), "{stdout}");
}

#[test]
fn batch_script_reports_errors_without_dying() {
    let (stdout, stderr) = run_shell(
        ".demo\n\
         .open ghost\n\
         .open university\n\
         FROBNICATE course\n\
         FIND ANY course USING ghost_item IN course\n\
         MOVE 'F87' TO semester IN course\n\
         FIND ANY course USING semester IN course\n",
    );
    assert!(stderr.contains("no database named `ghost`"), "{stderr}");
    assert!(stderr.contains("FROBNICATE") || stderr.contains("unknown"), "{stderr}");
    assert!(stderr.contains("ghost_item"), "{stderr}");
    // The session survived all of it.
    assert!(stdout.contains("semester = 'F87'"), "{stdout}");
}

/// Durable-kernel satellite: a CODASYL run unit's currency indicators
/// stay valid across `.recover` — the WAL preserves every database
/// key, and the shell swaps the kernel in place without touching open
/// sessions.
#[test]
fn codasyl_currency_survives_controller_recovery() {
    let dir = std::env::temp_dir().join(format!("mlds-shell-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("wal");
    let (stdout, stderr) = run_shell(&format!(
        ".durable {wal} 4\n\
         .demo\n\
         .open university\n\
         MOVE 'Advanced Database' TO title IN course\n\
         FIND ANY course USING title IN course\n\
         .recover {wal}\n\
         GET course\n\
         FIND FIRST course WITHIN system_course\n\
         FIND NEXT course WITHIN system_course\n\
         .quit\n",
        wal = wal.display()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(stdout.contains("durable 4-backend kernel"), "{stdout}");
    assert!(stdout.contains("schemas and sessions kept"), "{stdout}");
    // GET after .recover reads through the pre-crash currency
    // indicator: the found course is still current of run unit.
    assert!(stdout.contains("title = 'Advanced Database'"), "{stdout}");
    // And fresh FINDs keep walking the recovered sets: GET plus two
    // FINDs each print a course record.
    assert!(stdout.matches("title = ").count() >= 3, "{stdout}");
}

/// `.stats` surfaces the kernel work counters. The single-store kernel
/// never sends backend messages; a durable multi-backend kernel running
/// the same demo must report a non-zero message count.
#[test]
fn stats_reports_kernel_work_counters() {
    let field = |stdout: &str, name: &str| -> u64 {
        stdout
            .lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("no `{name}` line in {stdout}"))
            .split_whitespace()
            .last()
            .unwrap()
            .parse()
            .unwrap_or_else(|_| panic!("unparsable `{name}` line in {stdout}"))
    };

    let (stdout, stderr) = run_shell(".demo\n.stats\n.quit\n");
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(field(&stdout, "requests executed:") > 0, "{stdout}");
    assert_eq!(field(&stdout, "backend messages:"), 0, "{stdout}");

    let dir = std::env::temp_dir().join(format!("mlds-shell-stats-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("wal");
    let (stdout, stderr) =
        run_shell(&format!(".durable {} 4\n.demo\n.stats\n.quit\n", wal.display()));
    let _ = std::fs::remove_dir_all(&dir);
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(field(&stdout, "requests executed:") > 0, "{stdout}");
    assert!(field(&stdout, "backend messages:") > 0, "{stdout}");
    assert!(stdout.contains("backends:           4 (0 down)"), "{stdout}");
}

#[test]
fn save_and_load_round_trip_through_the_shell() {
    let dir = std::env::temp_dir().join(format!("mlds-shell-save-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dump = dir.join("kernel.abdl");
    let (_, stderr) = run_shell(&format!(
        ".demo\n.save {}\n.quit\n",
        dump.display()
    ));
    assert!(stderr.is_empty(), "stderr: {stderr}");
    let (stdout, stderr) = run_shell(&format!(
        ".demo\n.load {}\n.open university\n\
         MOVE 'Advanced Database' TO title IN course\n\
         FIND ANY course USING title IN course\n",
        dump.display()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    assert!(stderr.is_empty(), "stderr: {stderr}");
    assert!(stdout.contains("title = 'Advanced Database'"), "{stdout}");
}
