//! The MMDS matrix's other direction: a *network* database accessed
//! through *Daplex* — enabled by the reverse schema transformer and the
//! shared member-side kernel layout.

use mlds::Mlds;

const COMPANY_DDL: &str = "
SCHEMA NAME IS company.

RECORD NAME IS department.
  02 dname TYPE IS CHARACTER 20.
  DUPLICATES ARE NOT ALLOWED FOR dname.

RECORD NAME IS employee.
  02 ename TYPE IS CHARACTER 20.
  02 salary TYPE IS FIXED.
  02 grade TYPE IS FIXED RANGE 1..9.

SET NAME IS system_department.
  OWNER IS SYSTEM.
  MEMBER IS department.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.

SET NAME IS system_employee.
  OWNER IS SYSTEM.
  MEMBER IS employee.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.

SET NAME IS works_in.
  OWNER IS department.
  MEMBER IS employee.
  INSERTION IS MANUAL.
  RETENTION IS OPTIONAL.
  SET SELECTION IS BY APPLICATION.
";

fn company() -> Mlds {
    let mut m = Mlds::single_backend();
    m.create_database(COMPANY_DDL).unwrap();
    m
}

#[test]
fn daplex_reads_what_codasyl_stored() {
    let mut m = company();
    // Load through the native CODASYL interface.
    let mut net = m.connect_codasyl("loader", "company").unwrap();
    m.execute_codasyl(
        &mut net,
        "MOVE 'Research' TO dname IN department\n\
         STORE department\n\
         MOVE 'Jones' TO ename IN employee\n\
         MOVE 50000 TO salary IN employee\n\
         MOVE 7 TO grade IN employee\n\
         STORE employee\n\
         CONNECT employee TO works_in\n\
         MOVE 'Smith' TO ename IN employee\n\
         MOVE 45000 TO salary IN employee\n\
         MOVE 5 TO grade IN employee\n\
         STORE employee\n\
         CONNECT employee TO works_in",
    )
    .unwrap();

    // Read through Daplex: LIL reverse-transforms the network schema.
    let mut dap = m.connect_daplex("shipman", "company").unwrap();
    assert!(m.reversed_schema("company").is_some());
    let rows = m
        .execute_daplex(
            &mut dap,
            "FOR EACH employee SUCH THAT salary(employee) >= 48000 PRINT ename(employee);",
        )
        .unwrap();
    assert_eq!(rows[0].affected, 1);
    assert!(rows[0].display.contains("ename = 'Jones'"));

    // Function composition follows the set-derived function.
    let rows = m
        .execute_daplex(
            &mut dap,
            "FOR EACH employee SUCH THAT dname(works_in(employee)) = 'Research' \
             PRINT ename(employee);",
        )
        .unwrap();
    assert_eq!(rows[0].affected, 2);
}

#[test]
fn codasyl_reads_what_daplex_created() {
    let mut m = company();
    let mut dap = m.connect_daplex("shipman", "company").unwrap();
    m.execute_daplex(
        &mut dap,
        "CREATE department (dname := 'Ops');
         CREATE employee (ename := 'Rivera', salary := 42000, grade := 3);
         INCLUDE employee SUCH THAT ename(employee) = 'Rivera'
             IN works_in(department) SUCH THAT dname(department) = 'Ops';",
    )
    .unwrap();

    let mut net = m.connect_codasyl("coker", "company").unwrap();
    let out = m
        .execute_codasyl(
            &mut net,
            "MOVE 'Ops' TO dname IN department\n\
             FIND ANY department USING dname IN department\n\
             FIND FIRST employee WITHIN works_in\n\
             GET employee",
        )
        .unwrap();
    assert!(out[3].display.contains("ename = 'Rivera'"), "{}", out[3].display);
    // Daplex-created entities are members of the (conventionally named)
    // SYSTEM sets too.
    let out = m
        .execute_codasyl(&mut net, "FIND FIRST employee WITHIN system_employee")
        .unwrap();
    assert!(out[0].display.contains("Rivera"));
}

#[test]
fn daplex_respects_network_constraints() {
    let mut m = company();
    let mut dap = m.connect_daplex("shipman", "company").unwrap();
    m.execute_daplex(&mut dap, "CREATE department (dname := 'Research');").unwrap();
    // DUPLICATES ARE NOT ALLOWED FOR dname → the uniqueness carries
    // into the Daplex view.
    let err = m
        .execute_daplex(&mut dap, "CREATE department (dname := 'Research');")
        .unwrap_err();
    assert!(err.to_string().contains("duplicate") || err.to_string().contains("Duplicate"));
    // The grade RANGE 1..9 check carries too.
    let err = m
        .execute_daplex(&mut dap, "CREATE employee (ename := 'X', grade := 12);")
        .unwrap_err();
    assert!(err.to_string().contains("1..9"), "{err}");
}

#[test]
fn daplex_include_connects_like_connect() {
    // INCLUDE on the set-derived function writes exactly the kernel
    // attribute CONNECT writes — the two interfaces are interchangeable.
    let mut m = company();
    let mut dap = m.connect_daplex("shipman", "company").unwrap();
    m.execute_daplex(
        &mut dap,
        "CREATE department (dname := 'QA');
         CREATE employee (ename := 'Kim', salary := 40000, grade := 2);",
    )
    .unwrap();
    let mut net = m.connect_codasyl("coker", "company").unwrap();
    // CONNECT through CODASYL …
    m.execute_codasyl(
        &mut net,
        "MOVE 'QA' TO dname IN department\n\
         FIND ANY department USING dname IN department\n\
         MOVE 'Kim' TO ename IN employee\n\
         FIND ANY employee USING ename IN employee\n\
         CONNECT employee TO works_in",
    )
    .unwrap();
    // … is observable through Daplex …
    let rows = m
        .execute_daplex(
            &mut dap,
            "FOR EACH employee SUCH THAT dname(works_in(employee)) = 'QA' PRINT ename(employee);",
        )
        .unwrap();
    assert_eq!(rows[0].affected, 1);
    // … and EXCLUDE undoes it for the CODASYL view.
    m.execute_daplex(
        &mut dap,
        "EXCLUDE employee SUCH THAT ename(employee) = 'Kim'
             IN works_in(department) SUCH THAT dname(department) = 'QA';",
    )
    .unwrap();
    let res = m.execute_codasyl(&mut net, "FIND FIRST employee WITHIN works_in");
    assert!(matches!(
        res,
        Err(mlds::Error::Translator(mlds::translator::Error::EndOfSet { .. }))
    ));
}
