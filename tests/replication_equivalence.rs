//! Property test: the k = 2 replicated controller is observationally
//! identical to a single kernel store — for arbitrary seeded request
//! sequences, *including one backend killed at a random point*. The
//! single store never fails; the controller must hide its failure
//! completely (same records, same groups, same affected counts,
//! `degraded == false` throughout).

use mlds::abdl::prng::Prng;
use mlds::abdl::{parse::parse_request, Kernel, Record, Request, Store, Value};
use mlds::mbds::Controller;

const CASES: usize = 12;
const OPS: usize = 40;

fn gen_record(rng: &mut Prng) -> Record {
    Record::from_pairs([("FILE", Value::str("f"))])
        .with("a", Value::Int(rng.gen_range(0, 5)))
        .with("b", Value::Int(rng.gen_range(0, 100)))
}

/// One random request, as canonical ABDL text (so the same text drives
/// both kernels).
fn gen_request(rng: &mut Prng) -> Option<String> {
    match rng.index(10) {
        // Inserts dominate so the database keeps growing.
        0..=4 => None, // caller inserts a generated record
        5 => Some(format!("DELETE ((FILE = f) and (a = {}))", rng.gen_range(0, 5))),
        6 => Some(format!(
            "UPDATE ((FILE = f) and (a = {})) (b = {})",
            rng.gen_range(0, 5),
            rng.gen_range(0, 100)
        )),
        7 => Some(format!("RETRIEVE ((FILE = f) and (a = {})) (*)", rng.gen_range(0, 5))),
        8 => Some(format!("RETRIEVE ((FILE = f) and (b >= {})) (a, b)", rng.gen_range(0, 100))),
        _ => Some("RETRIEVE (FILE = f) (COUNT(a), AVG(b)) BY a".to_owned()),
    }
}

#[test]
fn replicated_controller_equals_single_store_despite_one_failure() {
    for case in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xfa11_0000 + case as u64);
        let mut single = Store::new();
        let mut multi = Controller::new(4);
        assert_eq!(multi.replication(), 2);
        single.create_file("f");
        multi.create_file("f");

        let kill_at = rng.index(OPS);
        let victim = rng.index(4);

        for op in 0..OPS {
            if op == kill_at {
                multi.kill_backend(victim);
            }
            let (a, b) = match gen_request(&mut rng) {
                None => {
                    let rec = gen_record(&mut rng);
                    (
                        single.execute(&Request::Insert { record: rec.clone() }),
                        multi.execute(&Request::Insert { record: rec }),
                    )
                }
                Some(text) => {
                    let req = parse_request(&text).unwrap();
                    (single.execute(&req), multi.execute(&req))
                }
            };
            let (a, b) = (a.unwrap(), b.unwrap());
            let ctx = format!("case {case}, op {op}, victim {victim}@{kill_at}");
            assert_eq!(a.records(), b.records(), "records diverged ({ctx})");
            assert_eq!(a.groups, b.groups, "groups diverged ({ctx})");
            assert_eq!(a.affected, b.affected, "affected diverged ({ctx})");
            assert!(!b.degraded, "one failure under k=2 must never degrade ({ctx})");
        }

        // Final full-table scan: byte-identical end state.
        let scan = parse_request("RETRIEVE (FILE = f) (*)").unwrap();
        let a = single.execute(&scan).unwrap();
        let b = multi.execute(&scan).unwrap();
        assert_eq!(a.records(), b.records(), "case {case}: end states diverged");
    }
}
