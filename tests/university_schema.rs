//! E1 — Figures 2.1/2.2: the University Daplex schema.
//!
//! Parses the schema shipped in `daplex::university`, checks the
//! entity/subtype/function census against the figure, and verifies the
//! printer/parser round trip.

use mlds::daplex::{self, FnRange};

#[test]
fn census_matches_figure_2_1() {
    let s = daplex::university::schema();
    assert_eq!(s.name, "university");

    let entity_names: Vec<&str> = s.entities.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(entity_names, vec!["person", "employee", "department", "course"]);

    let subtype_names: Vec<&str> = s.subtypes.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(subtype_names, vec!["student", "faculty", "support_staff"]);

    // Subtype → supertype edges (the ISA arrows of Figure 2.2).
    assert_eq!(s.supertypes("student"), ["person".to_owned()]);
    assert_eq!(s.supertypes("faculty"), ["employee".to_owned()]);
    assert_eq!(s.supertypes("support_staff"), ["employee".to_owned()]);

    // Function census per type (own functions).
    let fn_names = |t: &str| -> Vec<String> {
        s.own_functions(t).iter().map(|f| f.name.clone()).collect()
    };
    assert_eq!(fn_names("person"), ["name", "age"]);
    assert_eq!(fn_names("employee"), ["ename", "salary"]);
    assert_eq!(fn_names("department"), ["dname", "building"]);
    assert_eq!(fn_names("course"), ["title", "semester", "credits", "taught_by"]);
    assert_eq!(fn_names("student"), ["major", "gpa", "advisor"]);
    assert_eq!(fn_names("faculty"), ["rank", "degrees", "dept", "teaching"]);
    assert_eq!(fn_names("support_staff"), ["supervisor", "hours"]);

    // Value inheritance: students expose the person functions too.
    let all: Vec<&str> = s.all_functions("student").iter().map(|f| f.name.as_str()).collect();
    assert!(all.contains(&"name"));
    assert!(all.contains(&"age"));
}

#[test]
fn function_classification_matches_the_model() {
    let s = daplex::university::schema();

    // Scalar single-valued.
    let title = s.function("course", "title").unwrap();
    assert!(!title.set_valued);
    assert!(matches!(title.range, FnRange::Str { len: 30 }));

    // Scalar through a named non-entity type with a range.
    let age = s.function("person", "age").unwrap();
    assert!(matches!(&age.range, FnRange::NonEntity(t) if t == "age_type"));
    let age_type = s.non_entity("age_type").unwrap();
    assert_eq!(age_type.range, Some((16, 99)));

    // Scalar multi-valued.
    let degrees = s.function("faculty", "degrees").unwrap();
    assert!(degrees.set_valued);
    assert!(s.entity_range(degrees).is_none());

    // Single-valued entity function.
    let advisor = s.function("student", "advisor").unwrap();
    assert!(!advisor.set_valued);
    assert_eq!(s.entity_range(advisor), Some("faculty"));

    // Many-to-many multi-valued pair.
    assert!(s.m2m_pair_of("faculty", "teaching").is_some());
    assert!(s.m2m_pair_of("course", "taught_by").is_some());

    // Constraints.
    assert_eq!(s.uniques.len(), 1);
    assert_eq!(s.uniques[0].within, "course");
    assert_eq!(s.overlaps.len(), 1);
}

#[test]
fn schema_round_trips_through_the_printer() {
    let s = daplex::university::schema();
    let printed = daplex::ddl::print_schema(&s);
    let reparsed = daplex::ddl::parse_schema(&printed).unwrap();
    assert_eq!(s, reparsed);
}

#[test]
fn terminality_follows_the_subtype_graph() {
    let s = daplex::university::schema();
    assert!(!s.is_terminal("person"));
    assert!(!s.is_terminal("employee"));
    assert!(s.is_terminal("department"));
    assert!(s.is_terminal("course"));
    assert!(s.is_terminal("student"));
    assert!(s.is_terminal("faculty"));
    assert!(s.is_terminal("support_staff"));
}
