//! E4/E5 — Figure 5.1: the functional University schema transformed to
//! a network schema, compared against a golden rendering, plus the
//! per-construct transformation examples of Figures 5.3 and 5.5.

use mlds::codasyl::schema::{Insertion, Owner, Retention, SetOrigin};
use mlds::{codasyl, daplex, transform};

/// The golden Figure-5.1 DDL: eight record types (LINK_1 included),
/// four SYSTEM sets, three ISA sets (AUTOMATIC/FIXED), three
/// single-valued function sets and the teaching/taught_by pair
/// (MANUAL/OPTIONAL), with the title/semester DUPLICATES clause.
const FIGURE_5_1: &str = r#"SCHEMA NAME IS university.

RECORD NAME IS person.
  02 name TYPE IS CHARACTER 30.
  02 age TYPE IS FIXED RANGE 16..99.

RECORD NAME IS employee.
  02 ename TYPE IS CHARACTER 30.
  02 salary TYPE IS FLOAT 2.

RECORD NAME IS department.
  02 dname TYPE IS CHARACTER 20.
  02 building TYPE IS CHARACTER 20.

RECORD NAME IS course.
  02 title TYPE IS CHARACTER 30.
  02 semester TYPE IS CHARACTER 10.
  02 credits TYPE IS FIXED RANGE 1..5.
  DUPLICATES ARE NOT ALLOWED FOR title, semester.

RECORD NAME IS student.
  02 major TYPE IS CHARACTER 20.
  02 gpa TYPE IS FLOAT 2.

RECORD NAME IS faculty.
  02 rank TYPE IS CHARACTER 10 VALUES (instructor, assistant, associate, full).
  02 degrees TYPE IS CHARACTER 10.

RECORD NAME IS support_staff.
  02 hours TYPE IS FIXED.

RECORD NAME IS LINK_1.

SET NAME IS system_person.
  OWNER IS SYSTEM.
  MEMBER IS person.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.

SET NAME IS system_employee.
  OWNER IS SYSTEM.
  MEMBER IS employee.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.

SET NAME IS system_department.
  OWNER IS SYSTEM.
  MEMBER IS department.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.

SET NAME IS system_course.
  OWNER IS SYSTEM.
  MEMBER IS course.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.

SET NAME IS person_student.
  OWNER IS person.
  MEMBER IS student.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.

SET NAME IS employee_faculty.
  OWNER IS employee.
  MEMBER IS faculty.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.

SET NAME IS employee_support_staff.
  OWNER IS employee.
  MEMBER IS support_staff.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.

SET NAME IS taught_by.
  OWNER IS course.
  MEMBER IS LINK_1.
  INSERTION IS MANUAL.
  RETENTION IS OPTIONAL.
  SET SELECTION IS BY APPLICATION.

SET NAME IS advisor.
  OWNER IS faculty.
  MEMBER IS student.
  INSERTION IS MANUAL.
  RETENTION IS OPTIONAL.
  SET SELECTION IS BY APPLICATION.

SET NAME IS dept.
  OWNER IS department.
  MEMBER IS faculty.
  INSERTION IS MANUAL.
  RETENTION IS OPTIONAL.
  SET SELECTION IS BY APPLICATION.

SET NAME IS teaching.
  OWNER IS faculty.
  MEMBER IS LINK_1.
  INSERTION IS MANUAL.
  RETENTION IS OPTIONAL.
  SET SELECTION IS BY APPLICATION.

SET NAME IS supervisor.
  OWNER IS employee.
  MEMBER IS support_staff.
  INSERTION IS MANUAL.
  RETENTION IS OPTIONAL.
  SET SELECTION IS BY APPLICATION.
"#;

#[test]
fn transformed_university_matches_figure_5_1_golden() {
    let net = transform::transform(&daplex::university::schema()).unwrap();
    let printed = codasyl::ddl::print_schema(&net);
    assert_eq!(printed, FIGURE_5_1);
}

#[test]
fn golden_ddl_reparses_into_a_valid_schema() {
    let schema = codasyl::ddl::parse_schema(FIGURE_5_1).unwrap();
    schema.validate().unwrap();
    assert_eq!(schema.records.len(), 8);
    assert_eq!(schema.sets.len(), 12);
}

/// Figure 5.3: a functional entity type (course) and its network
/// representation.
#[test]
fn figure_5_3_entity_type_representation() {
    let net = transform::transform(&daplex::university::schema()).unwrap();
    let course = net.record("course").unwrap();
    // Scalar functions became attributes.
    assert!(course.attr("title").is_some());
    assert!(course.attr("credits").is_some());
    // The entity-valued taught_by did not.
    assert!(course.attr("taught_by").is_none());
    // "DUPLICATES ARE NOT ALLOWED FOR title, semester".
    assert!(!course.attr("title").unwrap().dup_allowed);
    assert!(!course.attr("semester").unwrap().dup_allowed);
    // Member of a SYSTEM-owned set.
    let sys = net.set("system_course").unwrap();
    assert_eq!(sys.owner, Owner::System);
    assert_eq!((sys.insertion, sys.retention), (Insertion::Automatic, Retention::Fixed));
}

/// Figure 5.5: a functional entity subtype (student) and its network
/// representation.
#[test]
fn figure_5_5_subtype_representation() {
    let net = transform::transform(&daplex::university::schema()).unwrap();
    assert!(net.record("student").is_some());
    let isa = net.set("person_student").unwrap();
    assert_eq!(isa.owner, Owner::Record("person".into()));
    assert_eq!(isa.member, "student");
    assert_eq!((isa.insertion, isa.retention), (Insertion::Automatic, Retention::Fixed));
    assert!(matches!(isa.origin, SetOrigin::Isa { .. }));
    // The subtype's single-valued function became a MANUAL/OPTIONAL set
    // owned by the range.
    let advisor = net.set("advisor").unwrap();
    assert_eq!(advisor.owner, Owner::Record("faculty".into()));
    assert_eq!(advisor.member, "student");
    assert_eq!((advisor.insertion, advisor.retention), (Insertion::Manual, Retention::Optional));
}

/// The transformation is deterministic (the one-step direct language
/// interface caches it; two runs must agree).
#[test]
fn transformation_is_deterministic() {
    let a = transform::transform(&daplex::university::schema()).unwrap();
    let b = transform::transform(&daplex::university::schema()).unwrap();
    assert_eq!(a, b);
}
