//! Kernel-equivalence: the multi-backend kernels (threaded controller
//! and simulated cluster) must be observationally identical to the
//! single store for any request stream. Complements the per-crate unit
//! tests with a randomized sweep.

use mlds::abdl::{Kernel, Record, Request, Store, Value};
use mlds::mbds::{Controller, SimCluster};

/// A deterministic pseudo-random request stream (no external RNG needed;
/// a simple LCG keeps the test reproducible).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_workload(seed: u64, len: usize) -> Vec<Request> {
    let mut rng = Lcg(seed);
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let kind = rng.below(10);
        let file = if rng.below(2) == 0 { "alpha" } else { "beta" };
        let v = rng.below(20) as i64;
        let req = match kind {
            0..=4 => Request::Insert {
                record: Record::from_pairs([("FILE", Value::str(file))])
                    .with(file.to_owned(), Value::Int(i as i64))
                    .with("v", Value::Int(v))
                    .with("w", Value::Int((v * 7) % 13)),
            },
            5 | 6 => mlds::abdl::parse::parse_request(&format!(
                "RETRIEVE ((FILE = {file}) and (v >= {v})) (*)"
            ))
            .unwrap(),
            7 => mlds::abdl::parse::parse_request(&format!(
                "UPDATE ((FILE = {file}) and (v = {v})) (w = {})",
                rng.below(13)
            ))
            .unwrap(),
            8 => mlds::abdl::parse::parse_request(&format!(
                "DELETE ((FILE = {file}) and (w = {}))",
                rng.below(13)
            ))
            .unwrap(),
            _ => mlds::abdl::parse::parse_request(&format!(
                "RETRIEVE (FILE = {file}) (COUNT(v), AVG(v), MIN(w), MAX(w)) BY w"
            ))
            .unwrap(),
        };
        out.push(req);
    }
    out
}

fn observe<K: Kernel>(kernel: &mut K, workload: &[Request]) -> Vec<String> {
    let mut log = Vec::with_capacity(workload.len());
    kernel.create_file("alpha");
    kernel.create_file("beta");
    for req in workload {
        match kernel.execute(req) {
            Ok(resp) => {
                // Observe record payloads without database keys: key
                // assignment order differs between kernels (controller
                // keys interleave with placement), so compare contents.
                let mut rows: Vec<String> =
                    resp.records().iter().map(|(_, r)| r.to_string()).collect();
                rows.sort();
                log.push(format!(
                    "ok affected={} rows={:?} groups={:?}",
                    resp.affected, rows, resp.groups
                ));
            }
            Err(e) => log.push(format!("err {e}")),
        }
    }
    log
}

#[test]
fn controller_matches_store_on_random_workloads() {
    for seed in [1u64, 42, 1987] {
        let workload = random_workload(seed, 150);
        let mut single = Store::new();
        let a = observe(&mut single, &workload);
        let mut multi = Controller::new(3);
        let b = observe(&mut multi, &workload);
        assert_eq!(a, b, "controller diverged from single store (seed {seed})");
    }
}

#[test]
fn sim_cluster_matches_store_on_random_workloads() {
    for seed in [7u64, 99, 2026] {
        let workload = random_workload(seed, 150);
        let mut single = Store::new();
        let a = observe(&mut single, &workload);
        let mut sim = SimCluster::new(5);
        let b = observe(&mut sim, &workload);
        assert_eq!(a, b, "sim cluster diverged from single store (seed {seed})");
    }
}

#[test]
fn backend_count_does_not_change_results() {
    let workload = random_workload(1234, 120);
    let mut base = SimCluster::new(1);
    let a = observe(&mut base, &workload);
    for n in [2usize, 3, 8, 16] {
        let mut sim = SimCluster::new(n);
        let b = observe(&mut sim, &workload);
        assert_eq!(a, b, "results changed with {n} backends");
    }
}
