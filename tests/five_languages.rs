//! The full Figure-1.2 interface family on one MLDS instance: DL/I,
//! SQL, CODASYL-DML, Daplex and raw ABDL, all over the same kernel.

use mlds::{daplex, Mlds};

const SQL_DDL: &str = "
CREATE DATABASE suppliers;
CREATE TABLE supplier (
    sno INTEGER NOT NULL, sname CHAR(20), city CHAR(15), PRIMARY KEY (sno));
CREATE TABLE part (
    pno INTEGER NOT NULL, pname CHAR(20), city CHAR(15), PRIMARY KEY (pno));
";

const DBD: &str = "
HIERARCHY NAME IS school.
SEGMENT department.
  02 dno TYPE IS FIXED.
  02 dname TYPE IS CHARACTER 20.
  SEQUENCE IS dno.
SEGMENT course PARENT IS department.
  02 cno TYPE IS FIXED.
  02 title TYPE IS CHARACTER 30.
  SEQUENCE IS cno.
";

const NET_DDL: &str = "
SCHEMA NAME IS airline.
RECORD NAME IS flight.
  02 num TYPE IS FIXED.
SET NAME IS system_flight.
  OWNER IS SYSTEM.
  MEMBER IS flight.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.
";

#[test]
fn all_five_data_models_coexist_on_one_kernel() {
    let mut m = Mlds::single_backend();
    // LIL auto-detects every DDL's data model.
    assert_eq!(m.create_database(daplex::university::UNIVERSITY_DDL).unwrap(), "university");
    assert_eq!(m.create_database(SQL_DDL).unwrap(), "suppliers");
    assert_eq!(m.create_database(DBD).unwrap(), "school");
    assert_eq!(m.create_database(NET_DDL).unwrap(), "airline");
    assert_eq!(m.database_names().len(), 4);
    assert!(m.functional_schema("university").is_some());
    assert!(m.relational_schema("suppliers").is_some());
    assert!(m.hierarchical_schema("school").is_some());
    assert!(m.network_schema("airline").is_some());

    // --- Daplex on the functional database ---
    m.populate_university("university").unwrap();
    let mut dap = m.connect_daplex("shipman", "university").unwrap();
    let rows = m
        .execute_daplex(&mut dap, "FOR EACH student PRINT name(student);")
        .unwrap();
    assert_eq!(rows[0].affected, 4);

    // --- CODASYL-DML (cross-model!) on the same functional database ---
    let mut net = m.connect_codasyl("coker", "university").unwrap();
    let out = m
        .execute_codasyl(
            &mut net,
            "MOVE 'Advanced Database' TO title IN course\nFIND ANY course USING title IN course",
        )
        .unwrap();
    assert!(out[1].display.contains("Advanced Database"));

    // --- SQL on the relational database ---
    let mut sql = m.connect_sql("codd", "suppliers").unwrap();
    m.execute_sql(
        &mut sql,
        "INSERT INTO supplier (sno, sname, city) VALUES (1, 'Smith', 'London');
         INSERT INTO supplier (sno, sname, city) VALUES (2, 'Jones', 'Paris');
         INSERT INTO part (pno, pname, city) VALUES (1, 'Nut', 'Paris');",
    )
    .unwrap();
    let out = m
        .execute_sql(
            &mut sql,
            "SELECT s.sname, p.pname FROM supplier s, part p WHERE s.city = p.city;",
        )
        .unwrap();
    assert!(out[0].display.contains("Jones"), "{}", out[0].display);
    assert!(out[0].display.contains("Nut"));

    // --- DL/I on the hierarchical database ---
    let mut ims = m.connect_dli("ibm", "school").unwrap();
    m.execute_dli(
        &mut ims,
        "ISRT department (dno = 1, dname = 'CS')
         ISRT course (cno = 10, title = 'Databases')",
    )
    .unwrap();
    let out = m
        .execute_dli(&mut ims, "GU department (dno = 1) course (cno = 10)")
        .unwrap();
    assert!(out[0].display.contains("Databases"), "{}", out[0].display);

    // --- raw ABDL against the shared kernel (kernel files are
    //     namespaced per database: `suppliers.supplier`) ---
    let resp = m
        .kernel_mut()
        .execute(
            &mlds::abdl::parse::parse_request(
                "RETRIEVE (FILE = 'suppliers.supplier') (COUNT(sno))",
            )
            .unwrap(),
        )
        .unwrap();
    assert_eq!(resp.groups.unwrap()[0].values[0], mlds::abdl::Value::Int(2));

    // All four databases share one kernel but separate files: count them.
    let files = m.kernel_mut().file_names().count();
    assert!(files > 8 + 2 + 2, "files from all four databases, saw {files}");
}

#[test]
fn sql_fanout_matches_the_translation_table() {
    let mut m = Mlds::single_backend();
    m.create_database(SQL_DDL).unwrap();
    let mut sql = m.connect_sql("codd", "suppliers").unwrap();
    let out = m
        .execute_sql(
            &mut sql,
            "INSERT INTO supplier (sno, sname) VALUES (1, 'A');
             SELECT * FROM supplier;
             UPDATE supplier SET sname = 'B', city = 'C' WHERE sno = 1;
             DELETE FROM supplier WHERE sno = 1;",
        )
        .unwrap();
    let fanout: Vec<usize> = out.iter().map(|o| o.abdl.len()).collect();
    // INSERT→1, SELECT→1, UPDATE→one per SET column, DELETE→1.
    assert_eq!(fanout, vec![1, 1, 2, 1]);
}

#[test]
fn dli_runs_on_the_multi_backend_kernel_too() {
    let mut m = Mlds::multi_backend(3);
    m.create_database(DBD).unwrap();
    let mut ims = m.connect_dli("ibm", "school").unwrap();
    m.execute_dli(
        &mut ims,
        "ISRT department (dno = 1, dname = 'CS')
         ISRT course (cno = 10, title = 'Databases')
         ISRT course (cno = 20, title = 'Compilers')",
    )
    .unwrap();
    let out = m.execute_dli(&mut ims, "GU department (dno = 1)\nDLET department").unwrap();
    assert_eq!(out[1].affected, 3, "cascade across partitions");
}

#[test]
fn kernel_dump_restore_preserves_every_database() {
    let mut m = Mlds::single_backend();
    m.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
    m.populate_university("university").unwrap();
    m.create_database(SQL_DDL).unwrap();
    let mut sql = m.connect_sql("codd", "suppliers").unwrap();
    m.execute_sql(&mut sql, "INSERT INTO supplier (sno, sname) VALUES (1, 'Smith');")
        .unwrap();

    let dump = m.dump_kernel();

    // A fresh MLDS: schemas recreated, kernel restored.
    let mut m2 = Mlds::single_backend();
    m2.create_database(daplex::university::UNIVERSITY_DDL).unwrap();
    m2.create_database(SQL_DDL).unwrap();
    m2.restore_kernel(&dump).unwrap();

    let mut net = m2.connect_codasyl("u", "university").unwrap();
    let out = m2
        .execute_codasyl(
            &mut net,
            "MOVE 'Advanced Database' TO title IN course\nFIND ANY course USING title IN course",
        )
        .unwrap();
    assert!(out[1].display.contains("Advanced Database"));
    let mut sql2 = m2.connect_sql("codd", "suppliers").unwrap();
    let out = m2.execute_sql(&mut sql2, "SELECT sname FROM supplier;").unwrap();
    assert!(out[0].display.contains("Smith"));
    // Constraints survive too: the primary key still rejects duplicates.
    let err = m2
        .execute_sql(&mut sql2, "INSERT INTO supplier (sno, sname) VALUES (1, 'Dup');")
        .unwrap_err();
    assert!(err.to_string().contains("duplicate"));
}

#[test]
fn sql_reads_a_hierarchical_database_through_the_derived_view() {
    // The Zawis edge: "accessing a hierarchical database via SQL".
    let mut m = Mlds::single_backend();
    m.create_database(DBD).unwrap();
    let mut ims = m.connect_dli("ibm", "school").unwrap();
    m.execute_dli(
        &mut ims,
        "ISRT department (dno = 1, dname = 'CS')
         ISRT course (cno = 10, title = 'Databases')
         ISRT course (cno = 20, title = 'Compilers')
         ISRT department (dno = 2, dname = 'Math')
         ISRT course (cno = 30, title = 'Algebra')",
    )
    .unwrap();

    let mut sql = m.connect_sql("zawis", "school").unwrap();
    assert!(m.sql_view("school").is_some());
    // Parent-child traversal is an equi-join through the arc column.
    let out = m
        .execute_sql(
            &mut sql,
            "SELECT d.dname, c.title FROM department d, course c \
             WHERE c.department_course = d.department_key AND d.dname = 'CS' \
             ORDER BY title;",
        )
        .unwrap();
    assert!(out[0].display.contains("Compilers"), "{}", out[0].display);
    assert!(out[0].display.contains("Databases"));
    assert!(!out[0].display.contains("Algebra"));
    // The view is read-only: hierarchy maintenance stays with DL/I.
    let err = m
        .execute_sql(&mut sql, "DELETE FROM course;")
        .unwrap_err();
    assert!(err.to_string().contains("read-only"), "{err}");
}
