//! The native functional interface: the same University database
//! manipulated through the Daplex DML subset — the MLDS language
//! interface the thesis's cross-model work builds upon.
//!
//! ```sh
//! cargo run --example daplex_interface
//! ```

use mlds::{daplex, Mlds};

fn run(
    mlds: &mut Mlds,
    session: &mut mlds::DaplexSession,
    script: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    for out in mlds.execute_daplex(session, script)? {
        println!("> {}", script.trim().replace('\n', " "));
        if out.display.is_empty() {
            println!("    ({} affected)", out.affected);
        } else {
            for line in out.display.lines() {
                println!("    {line}");
            }
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mlds = Mlds::single_backend();
    mlds.create_database(daplex::university::UNIVERSITY_DDL)?;
    mlds.populate_university("university")?;
    let mut s = mlds.connect_daplex("shipman", "university")?;

    println!("=== Retrieval with inherited functions ===");
    run(
        &mut mlds,
        &mut s,
        "FOR EACH student SUCH THAT major(student) = 'Computer Science'
             PRINT name(student), age(student), gpa(student);",
    )?;

    println!("\n=== Scalar multi-valued functions (repeated kernel records) ===");
    run(&mut mlds, &mut s, "FOR EACH faculty PRINT ename(faculty), degrees(faculty);")?;

    println!("\n=== Entity lifecycle ===");
    run(
        &mut mlds,
        &mut s,
        "CREATE student (name := 'Jones', age := 22, major := 'History', gpa := 2.9);",
    )?;
    run(
        &mut mlds,
        &mut s,
        "ASSIGN gpa(student) := 3.2 SUCH THAT name(student) = 'Jones';",
    )?;
    run(
        &mut mlds,
        &mut s,
        "FOR EACH student SUCH THAT name(student) = 'Jones' PRINT gpa(student);",
    )?;
    run(&mut mlds, &mut s, "DESTROY student SUCH THAT name(student) = 'Jones';")?;

    println!("\n=== Set-valued manipulation (INCLUDE / EXCLUDE) ===");
    run(
        &mut mlds,
        &mut s,
        "INCLUDE course SUCH THAT title(course) = 'Linear Algebra'
             IN teaching(faculty) SUCH THAT ename(faculty) = 'Hsiao';",
    )?;
    run(
        &mut mlds,
        &mut s,
        "FOR EACH faculty SUCH THAT ename(faculty) = 'Hsiao' PRINT teaching(faculty);",
    )?;
    run(
        &mut mlds,
        &mut s,
        "EXCLUDE course SUCH THAT title(course) = 'Linear Algebra'
             IN teaching(faculty) SUCH THAT ename(faculty) = 'Hsiao';",
    )?;

    println!("\n=== Function composition (Shipman's derived paths) ===");
    run(
        &mut mlds,
        &mut s,
        "FOR EACH student SUCH THAT dname(dept(advisor(student))) = 'Computer Science'
             PRINT name(student), dname(dept(advisor(student)));",
    )?;

    println!("\n=== The DESTROY reference check ===");
    let err = mlds
        .execute_daplex(&mut s, "DESTROY faculty SUCH THAT ename(faculty) = 'Hsiao';")
        .unwrap_err();
    println!("DESTROY referenced faculty -> {err}");
    Ok(())
}
