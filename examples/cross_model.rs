//! The thesis's headline scenario in full: a functional (Daplex)
//! database accessed and *modified* through CODASYL-DML transactions —
//! schema transformation, ISA navigation, many-to-many link traversal,
//! STORE with shared entity keys, overlap enforcement, and the ERASE
//! constraint checks.
//!
//! ```sh
//! cargo run --example cross_model
//! ```

use mlds::{codasyl, daplex, transform, Mlds};

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

fn run(
    mlds: &mut Mlds,
    session: &mut mlds::CodasylSession,
    script: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    for out in mlds.execute_codasyl(session, script)? {
        println!("> {}", out.statement);
        for req in &out.abdl {
            println!("    ABDL: {req}");
        }
        if !out.display.is_empty() {
            println!("    => {}", out.display);
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mlds = Mlds::single_backend();
    mlds.create_database(daplex::university::UNIVERSITY_DDL)?;
    mlds.populate_university("university")?;

    banner("The functional schema (Figure 2.1) transformed to a network schema (Figure 5.1)");
    let net = transform::transform(&daplex::university::schema())?;
    println!("{}", codasyl::ddl::print_schema(&net));

    let mut s = mlds.connect_codasyl("coker", "university")?;

    banner("FIND ANY + GET (the Chapter VI opening example)");
    run(
        &mut mlds,
        &mut s,
        "MOVE 'Advanced Database' TO title IN course
         FIND ANY course USING title IN course
         GET course",
    )?;

    banner("ISA navigation: a student's person part via FIND OWNER");
    run(
        &mut mlds,
        &mut s,
        "MOVE 'Mathematics' TO major IN student
         FIND ANY student USING major IN student
         FIND OWNER WITHIN person_student",
    )?;

    banner("Many-to-many: the courses Hsiao teaches, through LINK_1");
    run(
        &mut mlds,
        &mut s,
        "MOVE 'Hsiao' TO ename IN employee
         FIND ANY employee USING ename IN employee
         FIND FIRST faculty WITHIN employee_faculty
         FIND FIRST LINK_1 WITHIN teaching
         FIND OWNER WITHIN taught_by",
    )?;
    run(
        &mut mlds,
        &mut s,
        "FIND NEXT LINK_1 WITHIN teaching
         FIND OWNER WITHIN taught_by",
    )?;

    banner("STORE: building a person + student entity (shared artificial key)");
    run(
        &mut mlds,
        &mut s,
        "MOVE 'Newman' TO name IN person
         MOVE 30 TO age IN person
         STORE person
         MOVE 'Physics' TO major IN student
         MOVE 3.0 TO gpa IN student
         STORE student",
    )?;

    banner("Constraint enforcement seen by the network user");
    // Duplicate course (UNIQUE title, semester WITHIN course).
    let err = mlds
        .execute_codasyl(
            &mut s,
            "MOVE 'Advanced Database' TO title IN course
             MOVE 'F87' TO semester IN course
             MOVE 4 TO credits IN course
             STORE course",
        )
        .unwrap_err();
    println!("STORE duplicate course   -> {err}");
    // ERASE a record owning non-empty occurrences.
    mlds.execute_codasyl(
        &mut s,
        "MOVE 'Computer Science' TO dname IN department
         FIND ANY department USING dname IN department",
    )?;
    let err = mlds.execute_codasyl(&mut s, "ERASE department").unwrap_err();
    println!("ERASE occupied owner     -> {err}");
    // ERASE ALL clashes with Daplex constraints.
    let err = mlds.execute_codasyl(&mut s, "ERASE ALL department").unwrap_err();
    println!("ERASE ALL (functional)   -> {err}");

    banner("Per-statement ABDL fan-out for this session");
    let mut counts: std::collections::BTreeMap<&str, (usize, usize)> = Default::default();
    for (verb, n) in &s.history {
        let e = counts.entry(verb.as_str()).or_default();
        e.0 += 1;
        e.1 += n;
    }
    println!("{:<22} {:>6} {:>14}", "statement", "count", "ABDL requests");
    for (verb, (count, reqs)) in counts {
        println!("{verb:<22} {count:>6} {reqs:>14}");
    }
    Ok(())
}
