//! The Emdi baseline: a *native* network database defined in CODASYL
//! DDL and driven with CODASYL-DML — the `AB(network)` path the
//! thesis's cross-model translation modifies.
//!
//! ```sh
//! cargo run --example native_network
//! ```

use mlds::Mlds;

const AIRLINE_DDL: &str = "
SCHEMA NAME IS airline.

RECORD NAME IS airport.
  02 code TYPE IS CHARACTER 3.
  02 city TYPE IS CHARACTER 20.
  DUPLICATES ARE NOT ALLOWED FOR code.

RECORD NAME IS flight.
  02 num TYPE IS FIXED.
  02 fare TYPE IS FLOAT 2.

SET NAME IS system_airport.
  OWNER IS SYSTEM.
  MEMBER IS airport.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.

SET NAME IS departures.
  OWNER IS airport.
  MEMBER IS flight.
  INSERTION IS MANUAL.
  RETENTION IS OPTIONAL.
  SET SELECTION IS BY APPLICATION.
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mlds = Mlds::single_backend();
    let db = mlds.create_database(AIRLINE_DDL)?;
    let mut s = mlds.connect_codasyl("pilot", &db)?;
    assert!(!s.is_cross_model(), "a native network database needs no transformation");

    // Load airports and flights through STORE + CONNECT.
    for (code, city) in [("MRY", "Monterey"), ("SFO", "San Francisco")] {
        mlds.execute_codasyl(
            &mut s,
            &format!(
                "MOVE '{code}' TO code IN airport\nMOVE '{city}' TO city IN airport\nSTORE airport"
            ),
        )?;
        // The airport just stored is the current occurrence of
        // `departures`; connect a couple of flights to it.
        for (num, fare) in [(100, 89.0), (200, 120.5)] {
            mlds.execute_codasyl(
                &mut s,
                &format!(
                    "MOVE {num} TO num IN flight\nMOVE {fare} TO fare IN flight\n\
                     STORE flight\nCONNECT flight TO departures"
                ),
            )?;
        }
    }

    // Walk each airport's departures.
    println!("=== departures per airport ===");
    let mut res = mlds.execute_codasyl(&mut s, "FIND FIRST airport WITHIN system_airport");
    while let Ok(out) = res {
        println!("{}", out.last().unwrap().display);
        let mut flight = mlds.execute_codasyl(&mut s, "FIND FIRST flight WITHIN departures");
        while let Ok(fo) = flight {
            println!("    {}", fo.last().unwrap().display);
            flight = mlds.execute_codasyl(&mut s, "FIND NEXT flight WITHIN departures");
        }
        res = mlds.execute_codasyl(&mut s, "FIND NEXT airport WITHIN system_airport");
    }

    // Uniqueness is enforced on STORE.
    let err = mlds
        .execute_codasyl(
            &mut s,
            "MOVE 'MRY' TO code IN airport\nMOVE 'Duplicate' TO city IN airport\nSTORE airport",
        )
        .unwrap_err();
    println!("\nduplicate airport code -> {err}");

    // ERASE ALL cascades in the network baseline.
    mlds.execute_codasyl(
        &mut s,
        "MOVE 'MRY' TO code IN airport\nFIND ANY airport USING code IN airport",
    )?;
    let out = mlds.execute_codasyl(&mut s, "ERASE ALL airport")?;
    println!("ERASE ALL airport -> {} record(s) removed (airport + its flights)", out[0].affected);
    Ok(())
}
