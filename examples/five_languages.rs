//! Figure 1.2, live: one MLDS, five data languages — DL/I, SQL,
//! CODASYL-DML, Daplex and raw ABDL — over one attribute-based kernel.
//!
//! ```sh
//! cargo run --example five_languages
//! ```

use mlds::{daplex, Mlds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mlds = Mlds::single_backend();

    // LIL auto-detects every DDL's data model.
    mlds.create_database(daplex::university::UNIVERSITY_DDL)?; // functional
    mlds.create_database(
        "CREATE DATABASE suppliers;
         CREATE TABLE supplier (sno INTEGER NOT NULL, sname CHAR(20), city CHAR(15),
                                PRIMARY KEY (sno));
         CREATE TABLE part (pno INTEGER NOT NULL, pname CHAR(20), city CHAR(15),
                            PRIMARY KEY (pno));",
    )?; // relational
    mlds.create_database(
        "HIERARCHY NAME IS school.
         SEGMENT department.
           02 dno TYPE IS FIXED.
           02 dname TYPE IS CHARACTER 20.
           SEQUENCE IS dno.
         SEGMENT course PARENT IS department.
           02 cno TYPE IS FIXED.
           02 title TYPE IS CHARACTER 30.",
    )?; // hierarchical
    mlds.populate_university("university")?;
    println!("databases: {:?}\n", mlds.database_names());

    // --- Daplex (functional) ---
    println!("== Daplex ==");
    let mut dap = mlds.connect_daplex("shipman", "university")?;
    for out in mlds.execute_daplex(
        &mut dap,
        "FOR EACH student SUCH THAT dname(dept(advisor(student))) = 'Computer Science'
             PRINT name(student);",
    )? {
        println!("{}", out.display);
    }

    // --- CODASYL-DML on the same functional database (cross-model) ---
    println!("\n== CODASYL-DML (on the functional database) ==");
    let mut net = mlds.connect_codasyl("coker", "university")?;
    for out in mlds.execute_codasyl(
        &mut net,
        "MOVE 'Advanced Database' TO title IN course
         FIND ANY course USING title IN course
         GET course",
    )? {
        if !out.display.is_empty() {
            println!("{}", out.display);
        }
    }

    // --- SQL (relational) ---
    println!("\n== SQL ==");
    let mut sql = mlds.connect_sql("codd", "suppliers")?;
    mlds.execute_sql(
        &mut sql,
        "INSERT INTO supplier (sno, sname, city) VALUES (1, 'Smith', 'London');
         INSERT INTO supplier (sno, sname, city) VALUES (2, 'Jones', 'Paris');
         INSERT INTO part (pno, pname, city) VALUES (7, 'Bolt', 'Paris');",
    )?;
    for out in mlds.execute_sql(
        &mut sql,
        "SELECT s.sname, p.pname FROM supplier s, part p WHERE s.city = p.city;",
    )? {
        println!("{}", out.display);
    }

    // --- DL/I (hierarchical) ---
    println!("\n== DL/I ==");
    let mut ims = mlds.connect_dli("ibm", "school")?;
    mlds.execute_dli(
        &mut ims,
        "ISRT department (dno = 1, dname = 'CS')
         ISRT course (cno = 10, title = 'Databases')
         ISRT course (cno = 20, title = 'Compilers')",
    )?;
    for out in mlds.execute_dli(&mut ims, "GU department (dno = 1) course (cno = 20)")? {
        println!("{}", out.display);
    }

    // --- the Zawis edge: SQL over the *hierarchical* database ---
    println!("\n== SQL on the hierarchical database (read-only view) ==");
    let mut zawis = mlds.connect_sql("zawis", "school")?;
    for out in mlds.execute_sql(
        &mut zawis,
        "SELECT d.dname, c.title FROM department d, course c
         WHERE c.department_course = d.department_key ORDER BY title;",
    )? {
        println!("{}", out.display);
    }

    // --- raw ABDL (the kernel language itself) ---
    println!("\n== ABDL ==");
    let req = mlds::abdl::parse::parse_request(
        "RETRIEVE (FILE = 'suppliers.supplier') (COUNT(sno)) BY city",
    )?;
    println!("> {req}");
    print!("{}", mlds.kernel_mut().execute(&req)?);
    Ok(())
}
