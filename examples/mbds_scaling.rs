//! The MBDS performance claims (§I.B.2), printed as response-time
//! tables from the deterministic simulator — experiments E7/E8 in
//! miniature (the full sweeps live in the `mlds-bench` experiment
//! harness).
//!
//! ```sh
//! cargo run --release --example mbds_scaling
//! ```

use mlds::abdl::{Kernel, Record, Request, Value};
use mlds::mbds::SimCluster;

const DB_SIZE: usize = 40_000;
const SELECT: i64 = 4_000;

fn load(cluster: &mut SimCluster, records: usize) {
    cluster.create_file("f");
    for i in 0..records {
        let rec = Record::from_pairs([("FILE", Value::str("f"))])
            .with("f", Value::Int(i as i64))
            .with("payload", Value::Int((i * 37 % 1000) as i64));
        cluster.execute(&Request::Insert { record: rec }).unwrap();
    }
    cluster.reset_clock();
}

fn retrieval(limit: i64) -> Request {
    mlds::abdl::parse::parse_request(&format!("RETRIEVE ((FILE = f) and (f < {limit})) (*)"))
        .unwrap()
}

fn main() {
    println!("Claim 1 — fixed database ({DB_SIZE} records), growing backends:");
    println!("{:>9} {:>18} {:>9} {:>11}", "backends", "response (ms)", "speedup", "ideal");
    let mut base = None;
    for n in [1usize, 2, 4, 6, 8, 12, 16] {
        let mut cluster = SimCluster::unreplicated(n);
        load(&mut cluster, DB_SIZE);
        cluster.execute(&retrieval(SELECT)).unwrap();
        let ms = cluster.last_response_us() / 1000.0;
        let base_ms = *base.get_or_insert(ms);
        println!("{n:>9} {ms:>18.1} {:>8.2}x {:>10}x", base_ms / ms, n);
    }

    println!("\nClaim 2 — database grows with the backends ({} records each):", DB_SIZE / 8);
    println!("{:>9} {:>10} {:>18} {:>10}", "backends", "records", "response (ms)", "ratio");
    let mut base = None;
    for n in [1usize, 2, 4, 6, 8, 12, 16] {
        let per_backend = DB_SIZE / 8;
        let mut cluster = SimCluster::unreplicated(n);
        load(&mut cluster, per_backend * n);
        cluster.execute(&retrieval((SELECT / 8) * n as i64)).unwrap();
        let ms = cluster.last_response_us() / 1000.0;
        let base_ms = *base.get_or_insert(ms);
        println!("{n:>9} {:>10} {ms:>18.1} {:>10.3}", per_backend * n, ms / base_ms);
    }

    println!(
        "\n(Deterministic cost model: 30 ms/block disk, 2 ms bus message, 0.2 ms/record merge; \
         the threaded controller is benchmarked separately by `cargo bench`.)"
    );
}
