//! The MMDS matrix's reverse edge: a *network* database accessed via
//! *Daplex*. LIL reverse-transforms the CODASYL schema into a
//! functional view — native 1:N sets surface as single-valued
//! functions on the member record.
//!
//! ```sh
//! cargo run --example network_via_daplex
//! ```

use mlds::{daplex, Mlds};

const COMPANY_DDL: &str = "
SCHEMA NAME IS company.

RECORD NAME IS department.
  02 dname TYPE IS CHARACTER 20.
  DUPLICATES ARE NOT ALLOWED FOR dname.

RECORD NAME IS employee.
  02 ename TYPE IS CHARACTER 20.
  02 salary TYPE IS FIXED.
  02 grade TYPE IS FIXED RANGE 1..9.

SET NAME IS system_department.
  OWNER IS SYSTEM.
  MEMBER IS department.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.

SET NAME IS system_employee.
  OWNER IS SYSTEM.
  MEMBER IS employee.
  INSERTION IS AUTOMATIC.
  RETENTION IS FIXED.
  SET SELECTION IS BY APPLICATION.

SET NAME IS works_in.
  OWNER IS department.
  MEMBER IS employee.
  INSERTION IS MANUAL.
  RETENTION IS OPTIONAL.
  SET SELECTION IS BY APPLICATION.
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mlds = Mlds::single_backend();
    mlds.create_database(COMPANY_DDL)?;

    // A CODASYL user loads the data natively…
    let mut net = mlds.connect_codasyl("loader", "company")?;
    for (dept, people) in [
        ("Research", vec![("Jones", 50_000, 7), ("Wu", 48_000, 6)]),
        ("Operations", vec![("Smith", 45_000, 5)]),
    ] {
        mlds.execute_codasyl(
            &mut net,
            &format!("MOVE '{dept}' TO dname IN department\nSTORE department"),
        )?;
        for (name, salary, grade) in people {
            mlds.execute_codasyl(
                &mut net,
                &format!(
                    "MOVE '{name}' TO ename IN employee\nMOVE {salary} TO salary IN employee\n\
                     MOVE {grade} TO grade IN employee\nSTORE employee\nCONNECT employee TO works_in"
                ),
            )?;
        }
    }

    // …and a Daplex user opens the same database.
    let mut dap = mlds.connect_daplex("shipman", "company")?;
    println!("=== the reverse-transformed functional view ===");
    print!("{}", daplex::ddl::print_schema(dap.schema()));

    println!("\n=== Daplex over network data ===");
    for script in [
        "FOR EACH employee SUCH THAT salary(employee) >= 48000 PRINT ename(employee), salary(employee);",
        "FOR EACH employee SUCH THAT dname(works_in(employee)) = 'Research' PRINT ename(employee);",
        "CREATE employee (ename := 'Rivera', salary := 42000, grade := 3);",
        "INCLUDE employee SUCH THAT ename(employee) = 'Rivera' \
             IN works_in(department) SUCH THAT dname(department) = 'Operations';",
        "FOR EACH employee SUCH THAT dname(works_in(employee)) = 'Operations' PRINT ename(employee);",
    ] {
        println!("> {script}");
        for out in mlds.execute_daplex(&mut dap, script)? {
            if out.display.is_empty() {
                println!("    ({} affected)", out.affected);
            } else {
                for line in out.display.lines() {
                    println!("    {line}");
                }
            }
        }
    }

    // Constraints of the network schema bind the Daplex user too.
    println!("\n=== network constraints bind the Daplex user ===");
    let err = mlds
        .execute_daplex(&mut dap, "CREATE employee (ename := 'Bad', grade := 12);")
        .unwrap_err();
    println!("grade out of RANGE 1..9 -> {err}");
    let err = mlds
        .execute_daplex(&mut dap, "CREATE department (dname := 'Research');")
        .unwrap_err();
    println!("duplicate dname        -> {err}");
    Ok(())
}
