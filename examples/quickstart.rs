//! Quickstart: create the University functional database, populate it,
//! and run the thesis's first worked transaction through the
//! CODASYL-DML interface.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mlds::{daplex, Mlds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Bring up MLDS over a single-site kernel.
    let mut mlds = Mlds::single_backend();

    // 2. Load the University database from its Daplex DDL (Figure 2.1)
    //    — LIL detects the data model automatically.
    let db = mlds.create_database(daplex::university::UNIVERSITY_DDL)?;
    println!("created functional database `{db}`");

    // 3. Populate it with the thesis's sample data.
    mlds.populate_university(&db)?;

    // 4. A CODASYL-DML user connects. The database is *functional*, so
    //    LIL transforms its schema into a network schema on the fly —
    //    the thesis's direct-language-interface strategy.
    let mut session = mlds.connect_codasyl("coker", &db)?;
    println!(
        "connected; cross-model session: {} (schema `{}` has {} record types, {} sets)\n",
        session.is_cross_model(),
        session.schema().name,
        session.schema().records.len(),
        session.schema().sets.len(),
    );

    // 5. The FIND ANY example of Chapter VI.
    let outputs = mlds.execute_codasyl(
        &mut session,
        "MOVE 'Advanced Database' TO title IN course
         FIND ANY course USING title IN course
         GET course",
    )?;
    for out in &outputs {
        println!("> {}", out.statement);
        for req in &out.abdl {
            println!("    KMS: {req}");
        }
        if !out.display.is_empty() {
            println!("    KFS: {}", out.display);
        }
    }
    Ok(())
}
