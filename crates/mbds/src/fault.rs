//! Deterministic, seeded fault injection for the multi-backend kernel.
//!
//! A [`FaultPlan`] is a fixed list of events, each firing when a given
//! backend processes its N-th message: drop the reply, delay it, crash
//! the backend silently, or panic inside it. The threaded controller
//! applies the plan inside `backend_loop`; the simulated cluster
//! mirrors it on the same per-backend message counters. Because each
//! backend's message stream is a FIFO fed by a deterministic
//! controller, the same plan produces bit-identical failure sequences
//! on every run — which is what makes availability experiments (E13)
//! and failure regression tests reproducible.

use abdl::prng::Prng;

/// What happens when a fault event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Execute the request but never send the reply (the controller
    /// sees a reply-window timeout and demotes the backend).
    DropReply,
    /// Reply only after this many milliseconds (may or may not exceed
    /// the controller's patience).
    DelayReplyMs(u64),
    /// Exit the worker loop without replying: the channel closes and
    /// the backend is immediately dead.
    Crash,
    /// Panic inside the worker (poisoning nothing — each backend owns
    /// its store privately); observable as a closed channel.
    Panic,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Backend the fault fires on.
    pub backend: usize,
    /// Fires when the backend processes its `at_request`-th message
    /// (1-based, counting every message: creates, inserts, execs).
    pub at_request: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of backend faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add an event: backend `backend` faults with `kind` when it
    /// processes its `at_request`-th message.
    pub fn with(mut self, backend: usize, at_request: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { backend, at_request, kind });
        self
    }

    /// A seeded random plan over `backends` backends: each backend
    /// independently has a ~1-in-3 chance of one fault somewhere in its
    /// first `horizon` messages. Equal seeds yield equal plans.
    pub fn seeded(seed: u64, backends: usize, horizon: u64) -> Self {
        let mut rng = Prng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for backend in 0..backends {
            if !rng.chance(1, 3) {
                continue;
            }
            let at_request = 1 + rng.next_u64() % horizon.max(1);
            let kind = match rng.index(4) {
                0 => FaultKind::DropReply,
                1 => FaultKind::DelayReplyMs(1 + rng.next_u64() % 20),
                2 => FaultKind::Crash,
                _ => FaultKind::Panic,
            };
            plan.events.push(FaultEvent { backend, at_request, kind });
        }
        plan
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The fault (if any) that fires when `backend` processes its
    /// `request_no`-th message.
    pub fn action(&self, backend: usize, request_no: u64) -> Option<FaultKind> {
        self.events
            .iter()
            .find(|e| e.backend == backend && e.at_request == request_no)
            .map(|e| e.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(99, 8, 50);
        let b = FaultPlan::seeded(99, 8, 50);
        assert_eq!(a, b);
        // Different seeds should (for these values) differ.
        let c = FaultPlan::seeded(100, 8, 50);
        assert_ne!(a, c);
    }

    #[test]
    fn lookup_matches_events() {
        let plan = FaultPlan::new()
            .with(2, 5, FaultKind::Crash)
            .with(0, 1, FaultKind::DropReply);
        assert_eq!(plan.action(2, 5), Some(FaultKind::Crash));
        assert_eq!(plan.action(2, 4), None);
        assert_eq!(plan.action(0, 1), Some(FaultKind::DropReply));
        assert_eq!(plan.action(1, 1), None);
    }
}
