//! Durable controller state: a checksummed write-ahead log plus
//! periodic compacted snapshots.
//!
//! The 1987 MBDS controller kept the record directory, the key
//! allocator and the placement rotors only in memory — a controller
//! crash lost the record-to-backend mapping even though every backend
//! still held its partition. This module makes that state durable:
//!
//! * every directory mutation (file create, key allocation, record
//!   placement, kill/restart) is appended to a **write-ahead log**
//!   before the operation completes, one line per entry, each line
//!   carrying a sequence number and a CRC-32 checksum;
//! * a **snapshot** is a full compacted rendering of controller state
//!   (metadata *and* record data — the backends here are in-process
//!   worker threads, so their stores die with the controller and must
//!   be rebuilt from the log); installing a snapshot truncates the log;
//! * recovery ([`Wal::load`]) reads the snapshot, then replays log
//!   entries in order, verifying checksum and sequence continuity and
//!   stopping at the first torn or corrupt line (a crash mid-append
//!   loses at most the entry being written, never earlier state).
//!
//! Storage is behind the [`LogStore`] trait: [`FileLog`] persists to a
//! directory (`snapshot.mbds` + `wal.log`, snapshot installs via
//! atomic rename), while [`MemLog`] keeps everything in a shared
//! in-memory buffer for the deterministic crash-recovery harness and
//! the simulated cluster.
//!
//! The crash-point injector ([`Wal::set_crash_after`]) makes the Nth
//! append *succeed durably and then fail the controller*, which is
//! exactly the adversarial schedule the recovery property tests sweep.
//!
//! For hot-standby replication (the [`crate::Standby`] subsystem) the
//! log doubles as the replication stream: every line carries the
//! writing controller's **epoch** next to its sequence number, a
//! [`LogCursor`] tails the store incrementally (tolerating in-flight
//! group-commit batches, torn tails, and snapshot installs that
//! truncate the log underneath it), and the store itself holds a
//! **fence epoch** — once a standby promotes and raises the fence,
//! every append from the demoted lower-epoch [`Wal`] is refused before
//! it reaches the store, so a zombie primary can never write again.

use abdl::parse::parse_request;
use abdl::{Error, Record, Request, Result};
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Table-free bitwise
/// implementation — the log appends dozens of bytes per entry, so
/// throughput is irrelevant next to the `fsync`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One logged directory mutation. The payload grammar reuses ABDL's
/// canonical text (records and requests print and re-parse exactly),
/// so the log is human-readable and diffable like an ABDL dump.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A kernel file was created (acknowledged by at least one backend).
    CreateFile {
        /// The file name.
        name: String,
    },
    /// A `DUPLICATES ARE NOT ALLOWED` group was registered.
    Unique {
        /// The constrained file.
        file: String,
        /// The attribute group.
        attrs: Vec<String>,
    },
    /// A database key was handed out through the public `reserve_key`
    /// (language interfaces mint entity ids this way; losing these
    /// would re-issue ids after recovery).
    ReserveKey {
        /// The reserved key.
        key: u64,
    },
    /// An insert consumed a key and a placement rotor step but placed
    /// nothing (no backend accepted it). Logged so the recovered
    /// allocator and rotor agree with the live run.
    Alloc {
        /// The consumed key.
        key: u64,
        /// The file whose rotor advanced.
        file: String,
    },
    /// A record was placed on a replica group.
    Insert {
        /// The record's database key.
        key: u64,
        /// The backends that acknowledged the copy.
        group: Vec<usize>,
        /// The record itself (backends are in-process; their stores are
        /// rebuilt from the log on recovery).
        record: Record,
    },
    /// A mutation (UPDATE/DELETE) executed successfully; replayed
    /// verbatim on recovery.
    Exec {
        /// The request, re-executed on replay.
        request: Request,
    },
    /// A backend died (killed or detected dead mid-operation).
    Dead {
        /// The backend index.
        backend: usize,
    },
    /// A `restart_backend` re-replication began. Replay performs the
    /// whole restart here; the matching [`LogRecord::RestartEnd`] marks
    /// it completed (its absence means the controller crashed
    /// mid-restart — re-running the restart is idempotent).
    RestartBegin {
        /// The backend index.
        backend: usize,
    },
    /// The matching restart completed.
    RestartEnd {
        /// The backend index.
        backend: usize,
    },
    /// One *chunk* of a live group move began: the records with exactly
    /// these `keys`, placed on replica group `from`, are being copied so
    /// they live on group `to` instead. Large groups move as a sequence
    /// of bounded chunks, each its own complete bracket, so foreground
    /// traffic is never stalled behind a whole-group copy. Replay
    /// re-performs exactly the listed keys here; the matching
    /// [`LogRecord::MoveEnd`] marks the chunk committed (its absence
    /// means the controller crashed mid-chunk — re-running the chunk is
    /// idempotent).
    MoveBegin {
        /// The replica group being vacated (its member set identifies
        /// it; interned group ids are not stable across snapshots).
        from: Vec<usize>,
        /// The replica group the records now live on.
        to: Vec<usize>,
        /// The database keys of this chunk.
        keys: Vec<u64>,
    },
    /// The matching group move committed: reads switch to `to`.
    MoveEnd {
        /// The vacated replica group.
        from: Vec<usize>,
        /// The now-serving replica group.
        to: Vec<usize>,
    },
    /// A new backend joined the cluster at index `backend`, growing the
    /// cluster to `backend + 1` members and starting the unwrap
    /// rebalance (groups that wrapped around the old ring are moved to
    /// contiguous slots on the grown ring).
    AddBackend {
        /// The new backend's index.
        backend: usize,
    },
    /// The unwrap rebalance following [`LogRecord::AddBackend`]
    /// finished: no wrapped groups remain.
    AddEnd {
        /// The backend whose join triggered the rebalance.
        backend: usize,
    },
    /// A backend drain began: every group it serves is being moved to
    /// the remaining members.
    DrainBegin {
        /// The backend being drained.
        backend: usize,
    },
    /// The matching drain finished; the backend left service for good.
    DrainEnd {
        /// The drained backend.
        backend: usize,
    },
}

fn bad(msg: impl Into<String>) -> Error {
    Error::Internal(msg.into())
}

impl LogRecord {
    /// The entry payload (without sequence number or checksum).
    pub fn encode(&self) -> String {
        match self {
            LogRecord::CreateFile { name } => format!("create {name}"),
            LogRecord::Unique { file, attrs } => format!("unique {file} {}", attrs.join(" ")),
            LogRecord::ReserveKey { key } => format!("key {key}"),
            LogRecord::Alloc { key, file } => format!("alloc {key} {file}"),
            LogRecord::Insert { key, group, record } => {
                let group: Vec<String> = group.iter().map(usize::to_string).collect();
                format!("insert {key} {} {record}", group.join(","))
            }
            LogRecord::Exec { request } => format!("exec {request}"),
            LogRecord::Dead { backend } => format!("dead {backend}"),
            LogRecord::RestartBegin { backend } => format!("restart-begin {backend}"),
            LogRecord::RestartEnd { backend } => format!("restart-end {backend}"),
            LogRecord::MoveBegin { from, to, keys } => {
                let keys: Vec<String> = keys.iter().map(u64::to_string).collect();
                format!("move-begin {} {} {}", join_members(from), join_members(to), keys.join(","))
            }
            LogRecord::MoveEnd { from, to } => {
                format!("move-end {} {}", join_members(from), join_members(to))
            }
            LogRecord::AddBackend { backend } => format!("add-backend {backend}"),
            LogRecord::AddEnd { backend } => format!("add-end {backend}"),
            LogRecord::DrainBegin { backend } => format!("drain-begin {backend}"),
            LogRecord::DrainEnd { backend } => format!("drain-end {backend}"),
        }
    }

    /// Parse an entry payload produced by [`LogRecord::encode`].
    pub fn decode(payload: &str) -> Result<LogRecord> {
        let (verb, rest) = payload.split_once(' ').unwrap_or((payload, ""));
        match verb {
            "create" if !rest.is_empty() => Ok(LogRecord::CreateFile { name: rest.to_owned() }),
            "unique" => {
                let mut parts = rest.split(' ').filter(|s| !s.is_empty());
                let file = parts.next().ok_or_else(|| bad("wal: unique without file"))?;
                let attrs: Vec<String> = parts.map(str::to_owned).collect();
                if attrs.is_empty() {
                    return Err(bad("wal: unique without attributes"));
                }
                Ok(LogRecord::Unique { file: file.to_owned(), attrs })
            }
            "key" => Ok(LogRecord::ReserveKey { key: parse_u64(rest)? }),
            "alloc" => {
                let (key, file) =
                    rest.split_once(' ').ok_or_else(|| bad("wal: alloc without file"))?;
                Ok(LogRecord::Alloc { key: parse_u64(key)?, file: file.to_owned() })
            }
            "insert" => {
                let (key, rest) =
                    rest.split_once(' ').ok_or_else(|| bad("wal: insert without group"))?;
                let (group, record) =
                    rest.split_once(' ').ok_or_else(|| bad("wal: insert without record"))?;
                match parse_request(&format!("INSERT {record}"))? {
                    Request::Insert { record } => Ok(LogRecord::Insert {
                        key: parse_u64(key)?,
                        group: parse_members(group)?,
                        record,
                    }),
                    _ => Err(bad("wal: insert payload did not parse as a record")),
                }
            }
            "exec" => Ok(LogRecord::Exec { request: parse_request(rest)? }),
            "dead" => Ok(LogRecord::Dead { backend: parse_usize(rest)? }),
            "restart-begin" => Ok(LogRecord::RestartBegin { backend: parse_usize(rest)? }),
            "restart-end" => Ok(LogRecord::RestartEnd { backend: parse_usize(rest)? }),
            "move-begin" => {
                let (from, rest) =
                    rest.split_once(' ').ok_or_else(|| bad("wal: move without target group"))?;
                let (to, keys) =
                    rest.split_once(' ').ok_or_else(|| bad("wal: move-begin without keys"))?;
                let keys = keys
                    .split(',')
                    .filter(|k| !k.is_empty())
                    .map(parse_u64)
                    .collect::<Result<Vec<u64>>>()?;
                Ok(LogRecord::MoveBegin { from: parse_members(from)?, to: parse_members(to)?, keys })
            }
            "move-end" => {
                let (from, to) =
                    rest.split_once(' ').ok_or_else(|| bad("wal: move without target group"))?;
                Ok(LogRecord::MoveEnd { from: parse_members(from)?, to: parse_members(to)? })
            }
            "add-backend" => Ok(LogRecord::AddBackend { backend: parse_usize(rest)? }),
            "add-end" => Ok(LogRecord::AddEnd { backend: parse_usize(rest)? }),
            "drain-begin" => Ok(LogRecord::DrainBegin { backend: parse_usize(rest)? }),
            "drain-end" => Ok(LogRecord::DrainEnd { backend: parse_usize(rest)? }),
            _ => Err(bad(format!("wal: unknown entry `{payload}`"))),
        }
    }
}

/// Render a replica-group member list as the log's `a,b,c` form.
fn join_members(group: &[usize]) -> String {
    let members: Vec<String> = group.iter().map(usize::to_string).collect();
    members.join(",")
}

/// Parse a `a,b,c` replica-group member list.
fn parse_members(s: &str) -> Result<Vec<usize>> {
    s.split(',')
        .map(|m| m.parse::<usize>().map_err(|_| bad(format!("wal: bad group member `{m}`"))))
        .collect()
}

fn parse_u64(s: &str) -> Result<u64> {
    s.parse().map_err(|_| bad(format!("wal: bad number `{s}`")))
}

fn parse_usize(s: &str) -> Result<usize> {
    s.parse().map_err(|_| bad(format!("wal: bad backend index `{s}`")))
}

/// The snapshot-format header line.
pub const SNAPSHOT_HEADER: &str = "--! mbds-snapshot v1";

/// A full compacted rendering of controller state. Rendering is
/// deterministic (directory, rotors and constraints are emitted in
/// sorted order), so the text doubles as a byte-comparable state
/// digest for the recovery property tests.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotData {
    /// Total backend count (alive or dead).
    pub backends: usize,
    /// Copies kept per record.
    pub replication: usize,
    /// The key allocator's high-water mark.
    pub next_key: u64,
    /// Dead backends, ascending.
    pub dead: Vec<usize>,
    /// Backends mid-drain, ascending: their groups were still being
    /// moved off when the snapshot was taken — recovery re-plans and
    /// finishes the drain.
    pub draining: Vec<usize>,
    /// True while an add-backend unwrap rebalance is in progress:
    /// recovery re-plans the remaining wrapped-group moves.
    pub unwrap: bool,
    /// Per-file placement rotor positions, sorted by file.
    pub rotors: Vec<(String, usize)>,
    /// Kernel files in creation order.
    pub files: Vec<String>,
    /// Uniqueness groups, sorted by file (insertion order within).
    pub uniques: Vec<(String, Vec<String>)>,
    /// The directory sorted by key: each record's replica group and,
    /// when at least one live replica still held it, the record data.
    /// A `None` record is a directory entry whose every replica is
    /// dead — the mapping survives even though the data currently does
    /// not.
    pub places: Vec<(u64, Vec<usize>, Option<Record>)>,
}

impl SnapshotData {
    /// Render as snapshot text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{SNAPSHOT_HEADER}");
        let _ = writeln!(out, "--! backends {} replication {}", self.backends, self.replication);
        let _ = writeln!(out, "--! next-key {}", self.next_key);
        if !self.dead.is_empty() {
            let dead: Vec<String> = self.dead.iter().map(usize::to_string).collect();
            let _ = writeln!(out, "--! dead {}", dead.join(" "));
        }
        if !self.draining.is_empty() {
            let draining: Vec<String> = self.draining.iter().map(usize::to_string).collect();
            let _ = writeln!(out, "--! draining {}", draining.join(" "));
        }
        if self.unwrap {
            let _ = writeln!(out, "--! rebalance unwrap");
        }
        for (file, v) in &self.rotors {
            let _ = writeln!(out, "--! rotor {file} {v}");
        }
        for file in &self.files {
            let _ = writeln!(out, "--! file {file}");
        }
        for (file, attrs) in &self.uniques {
            let _ = writeln!(out, "--! unique {file} {}", attrs.join(" "));
        }
        for (key, group, record) in &self.places {
            let group: Vec<String> = group.iter().map(usize::to_string).collect();
            let _ = writeln!(out, "--! place {key} {}", group.join(","));
            if let Some(record) = record {
                let _ = writeln!(out, "INSERT {record}");
            }
        }
        out
    }

    /// Parse snapshot text produced by [`SnapshotData::to_text`].
    pub fn parse(text: &str) -> Result<SnapshotData> {
        let mut lines = text.lines();
        match lines.next() {
            Some(line) if line.trim() == SNAPSHOT_HEADER => {}
            other => {
                return Err(bad(format!(
                    "not an MBDS snapshot (expected `{SNAPSHOT_HEADER}`, found {other:?})"
                )))
            }
        }
        let mut snap = SnapshotData::default();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(directive) = line.strip_prefix("--! ") {
                let (verb, rest) = directive.split_once(' ').unwrap_or((directive, ""));
                match verb {
                    "backends" => {
                        let mut parts = rest.split(' ');
                        snap.backends = parse_usize(parts.next().unwrap_or(""))?;
                        match (parts.next(), parts.next()) {
                            (Some("replication"), Some(k)) => snap.replication = parse_usize(k)?,
                            _ => return Err(bad("snapshot: malformed backends line")),
                        }
                    }
                    "next-key" => snap.next_key = parse_u64(rest)?,
                    "dead" => {
                        snap.dead = rest
                            .split(' ')
                            .filter(|s| !s.is_empty())
                            .map(parse_usize)
                            .collect::<Result<_>>()?;
                    }
                    "draining" => {
                        snap.draining = rest
                            .split(' ')
                            .filter(|s| !s.is_empty())
                            .map(parse_usize)
                            .collect::<Result<_>>()?;
                    }
                    "rebalance" => match rest {
                        "unwrap" => snap.unwrap = true,
                        other => {
                            return Err(bad(format!("snapshot: unknown rebalance state `{other}`")))
                        }
                    },
                    "rotor" => {
                        let (file, v) =
                            rest.split_once(' ').ok_or_else(|| bad("snapshot: malformed rotor"))?;
                        snap.rotors.push((file.to_owned(), parse_usize(v)?));
                    }
                    "file" => snap.files.push(rest.to_owned()),
                    "unique" => {
                        let (file, attrs) = rest
                            .split_once(' ')
                            .ok_or_else(|| bad("snapshot: malformed unique"))?;
                        snap.uniques.push((
                            file.to_owned(),
                            attrs.split(' ').filter(|s| !s.is_empty()).map(str::to_owned).collect(),
                        ));
                    }
                    "place" => {
                        let (key, group) = rest
                            .split_once(' ')
                            .ok_or_else(|| bad("snapshot: malformed place"))?;
                        let group: Result<Vec<usize>> = group
                            .split(',')
                            .map(|s| {
                                s.parse::<usize>()
                                    .map_err(|_| bad(format!("snapshot: bad group member `{s}`")))
                            })
                            .collect();
                        snap.places.push((parse_u64(key)?, group?, None));
                    }
                    other => return Err(bad(format!("snapshot: unknown directive `{other}`"))),
                }
            } else if let Some(rest) = line.strip_prefix("INSERT ") {
                let record = match parse_request(&format!("INSERT {rest}"))? {
                    Request::Insert { record } => record,
                    _ => return Err(bad("snapshot: record line did not parse")),
                };
                match snap.places.last_mut() {
                    Some((_, _, slot @ None)) => *slot = Some(record),
                    _ => return Err(bad("snapshot: record line without a place directive")),
                }
            } else {
                return Err(bad(format!("snapshot: unrecognized line `{line}`")));
            }
        }
        if snap.backends == 0 {
            return Err(bad("snapshot: missing backends directive"));
        }
        Ok(snap)
    }
}

/// The error an epoch-fenced store operation returns when the fence
/// has passed the writer's epoch.
pub(crate) fn fence_refused(epoch: u64, fence: u64) -> Error {
    Error::Unavailable(format!("controller fenced: epoch {epoch} superseded by {fence}"))
}

/// Where the snapshot and the log physically live.
pub trait LogStore: Send {
    /// Durably append one log line.
    fn append_line(&mut self, line: &str) -> Result<()>;
    /// Durably append several log lines with (at most) one sync — the
    /// group-commit path. The default writes them one at a time; stores
    /// with an expensive sync override this to batch it.
    fn append_lines(&mut self, lines: &[String]) -> Result<()> {
        for line in lines {
            self.append_line(line)?;
        }
        Ok(())
    }
    /// [`LogStore::append_line`], refused when the store's fence epoch
    /// has passed `epoch` — *checked atomically with the append* where
    /// the store can (the model checker's `racy-flush-fence` mutation
    /// shows why: with a separate check-then-act, a promotion landing
    /// between the two lets a demoted primary's line into the new
    /// lineage's log). The default is the best a store without shared
    /// locking can do; shared stores ([`MemLog`], `RemoteLog`) override
    /// it to check under the same lock as the write.
    fn append_line_fenced(&mut self, line: &str, epoch: u64) -> Result<()> {
        let fence = self.fence_epoch()?;
        if fence > epoch {
            return Err(fence_refused(epoch, fence));
        }
        self.append_line(line)
    }
    /// [`LogStore::append_lines`] with the same atomic fence check as
    /// [`LogStore::append_line_fenced`] — the group-commit flush path.
    fn append_lines_fenced(&mut self, lines: &[String], epoch: u64) -> Result<()> {
        let fence = self.fence_epoch()?;
        if fence > epoch {
            return Err(fence_refused(epoch, fence));
        }
        self.append_lines(lines)
    }
    /// [`LogStore::install_snapshot`] with the same atomic fence check
    /// — a demoted primary must not truncate the promoted lineage's
    /// log with a stale compaction.
    fn install_snapshot_fenced(&mut self, text: &str, epoch: u64) -> Result<()> {
        let fence = self.fence_epoch()?;
        if fence > epoch {
            return Err(fence_refused(epoch, fence));
        }
        self.install_snapshot(text)
    }
    /// All log lines appended since the last snapshot install.
    fn log_lines(&self) -> Result<Vec<String>>;
    /// The installed snapshot text, if any.
    fn read_snapshot(&self) -> Result<Option<String>>;
    /// Atomically install a snapshot and truncate the log.
    fn install_snapshot(&mut self, text: &str) -> Result<()>;
    /// True when the store already holds a snapshot or log entries.
    fn has_state(&self) -> Result<bool>;
    /// Drop every log line after the first `keep` — recovery discards a
    /// torn tail so appends that follow are not shadowed by it. Must be
    /// safe under concurrent readers: a [`LogCursor`] tailing the same
    /// store observes either the old or the new log, never a partial
    /// rewrite.
    fn drop_torn_tail(&mut self, keep: usize) -> Result<()>;
    /// The store's fence epoch: the highest controller epoch allowed to
    /// append. Raised by standby promotion; a [`Wal`] at a lower epoch
    /// refuses every subsequent append.
    fn fence_epoch(&self) -> Result<u64>;
    /// Raise the fence epoch (monotonic; lowering is ignored).
    fn set_fence_epoch(&mut self, epoch: u64) -> Result<()>;
    /// Number of snapshot installs this store has seen — a generation
    /// counter that lets a [`LogCursor`] detect that the log was
    /// truncated (and its sequence numbering reset) underneath it.
    fn generation(&self) -> Result<u64>;
}

#[derive(Debug, Default)]
struct MemLogInner {
    snapshot: Option<String>,
    lines: Vec<String>,
    fence: u64,
    generation: u64,
}

/// An in-memory [`LogStore`]. Cloning shares the underlying buffer, so
/// the crash-recovery harness can keep a handle that survives dropping
/// the crashed controller — the in-memory analogue of a disk surviving
/// a process crash.
#[derive(Debug, Clone, Default)]
pub struct MemLog {
    inner: Arc<Mutex<MemLogInner>>,
}

impl MemLog {
    /// An empty in-memory log.
    pub fn new() -> Self {
        MemLog::default()
    }

    /// Number of log lines since the last snapshot install.
    pub fn log_len(&self) -> usize {
        self.inner.lock().expect("memlog lock").lines.len()
    }

    /// Test hook: flip one byte of line `idx` (corruption the reader's
    /// checksum must catch).
    pub fn corrupt_line(&self, idx: usize) {
        let mut inner = self.inner.lock().expect("memlog lock");
        if let Some(line) = inner.lines.get_mut(idx) {
            let mut bytes = std::mem::take(line).into_bytes();
            if let Some(last) = bytes.last_mut() {
                *last ^= 0x01;
            }
            *line = String::from_utf8_lossy(&bytes).into_owned();
        }
    }

    /// Test hook: keep only the first `keep` log lines (a torn tail).
    pub fn truncate_log(&self, keep: usize) {
        self.inner.lock().expect("memlog lock").lines.truncate(keep);
    }

    /// Test hook: append a raw (possibly garbage) line, as a crash
    /// mid-append would leave behind.
    pub fn push_raw_line(&self, line: &str) {
        self.inner.lock().expect("memlog lock").lines.push(line.to_owned());
    }
}

impl LogStore for MemLog {
    fn append_line(&mut self, line: &str) -> Result<()> {
        self.inner.lock().expect("memlog lock").lines.push(line.to_owned());
        Ok(())
    }

    // The fenced variants hold the one lock across check *and* write:
    // a concurrent promotion raises the fence either before this append
    // (refused) or after it (the line is part of the prefix the
    // promotion consumed) — never in between.

    fn append_line_fenced(&mut self, line: &str, epoch: u64) -> Result<()> {
        let mut inner = self.inner.lock().expect("memlog lock");
        if inner.fence > epoch {
            return Err(fence_refused(epoch, inner.fence));
        }
        inner.lines.push(line.to_owned());
        Ok(())
    }

    fn append_lines_fenced(&mut self, lines: &[String], epoch: u64) -> Result<()> {
        let mut inner = self.inner.lock().expect("memlog lock");
        if inner.fence > epoch {
            return Err(fence_refused(epoch, inner.fence));
        }
        inner.lines.extend(lines.iter().cloned());
        Ok(())
    }

    fn install_snapshot_fenced(&mut self, text: &str, epoch: u64) -> Result<()> {
        let mut inner = self.inner.lock().expect("memlog lock");
        if inner.fence > epoch {
            return Err(fence_refused(epoch, inner.fence));
        }
        inner.snapshot = Some(text.to_owned());
        inner.lines.clear();
        inner.generation += 1;
        Ok(())
    }

    fn log_lines(&self) -> Result<Vec<String>> {
        Ok(self.inner.lock().expect("memlog lock").lines.clone())
    }

    fn read_snapshot(&self) -> Result<Option<String>> {
        Ok(self.inner.lock().expect("memlog lock").snapshot.clone())
    }

    fn install_snapshot(&mut self, text: &str) -> Result<()> {
        let mut inner = self.inner.lock().expect("memlog lock");
        inner.snapshot = Some(text.to_owned());
        inner.lines.clear();
        inner.generation += 1;
        Ok(())
    }

    fn has_state(&self) -> Result<bool> {
        let inner = self.inner.lock().expect("memlog lock");
        Ok(inner.snapshot.is_some() || !inner.lines.is_empty())
    }

    fn drop_torn_tail(&mut self, keep: usize) -> Result<()> {
        self.truncate_log(keep);
        Ok(())
    }

    fn fence_epoch(&self) -> Result<u64> {
        Ok(self.inner.lock().expect("memlog lock").fence)
    }

    fn set_fence_epoch(&mut self, epoch: u64) -> Result<()> {
        let mut inner = self.inner.lock().expect("memlog lock");
        inner.fence = inner.fence.max(epoch);
        Ok(())
    }

    fn generation(&self) -> Result<u64> {
        Ok(self.inner.lock().expect("memlog lock").generation)
    }
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Internal(format!("wal: {what} {}: {e}", path.display()))
}

/// A directory-backed [`LogStore`]: `wal.log` (appended and synced per
/// entry) plus `snapshot.mbds` (installed via write-to-temp + atomic
/// rename, after which the log is truncated).
#[derive(Debug)]
pub struct FileLog {
    dir: PathBuf,
    appender: Option<fs::File>,
}

impl FileLog {
    /// Open (creating if needed) the log directory.
    pub fn open(dir: impl AsRef<Path>) -> Result<FileLog> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("create dir", &dir, e))?;
        Ok(FileLog { dir, appender: None })
    }

    fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.mbds")
    }

    fn fence_path(&self) -> PathBuf {
        self.dir.join("fence.epoch")
    }

    fn generation_path(&self) -> PathBuf {
        self.dir.join("snapshot.gen")
    }

    /// Read a small counter file, treating "missing" as zero.
    fn read_counter(&self, path: &Path) -> Result<u64> {
        match fs::read_to_string(path) {
            Ok(text) => parse_u64(text.trim()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(io_err("read", path, e)),
        }
    }

    /// Durably replace a small counter file via write-to-temp + rename.
    fn write_counter(&self, path: &Path, value: u64) -> Result<()> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, format!("{value}\n")).map_err(|e| io_err("write", &tmp, e))?;
        fs::rename(&tmp, path).map_err(|e| io_err("install", path, e))?;
        Ok(())
    }
}

impl LogStore for FileLog {
    fn append_line(&mut self, line: &str) -> Result<()> {
        let path = self.wal_path();
        if self.appender.is_none() {
            let f = fs::OpenOptions::new()
                .append(true)
                .create(true)
                .open(&path)
                .map_err(|e| io_err("open", &path, e))?;
            self.appender = Some(f);
        }
        let f = self.appender.as_mut().expect("appender");
        writeln!(f, "{line}").map_err(|e| io_err("append", &path, e))?;
        f.sync_data().map_err(|e| io_err("sync", &path, e))?;
        Ok(())
    }

    fn append_lines(&mut self, lines: &[String]) -> Result<()> {
        if lines.is_empty() {
            return Ok(());
        }
        // Group commit: write every line, then pay for one sync.
        let path = self.wal_path();
        if self.appender.is_none() {
            let f = fs::OpenOptions::new()
                .append(true)
                .create(true)
                .open(&path)
                .map_err(|e| io_err("open", &path, e))?;
            self.appender = Some(f);
        }
        let f = self.appender.as_mut().expect("appender");
        for line in lines {
            writeln!(f, "{line}").map_err(|e| io_err("append", &path, e))?;
        }
        f.sync_data().map_err(|e| io_err("sync", &path, e))?;
        Ok(())
    }

    fn log_lines(&self) -> Result<Vec<String>> {
        let path = self.wal_path();
        match fs::read_to_string(&path) {
            Ok(text) => Ok(text.lines().map(str::to_owned).collect()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(io_err("read", &path, e)),
        }
    }

    fn read_snapshot(&self) -> Result<Option<String>> {
        let path = self.snapshot_path();
        match fs::read_to_string(&path) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", &path, e)),
        }
    }

    fn install_snapshot(&mut self, text: &str) -> Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        fs::write(&tmp, text).map_err(|e| io_err("write", &tmp, e))?;
        let snap = self.snapshot_path();
        fs::rename(&tmp, &snap).map_err(|e| io_err("install", &snap, e))?;
        // Bump the generation *before* truncating: a cursor that sees
        // the old generation with an already-truncated log just finds no
        // new lines; one that sees the new generation reloads the
        // snapshot either way.
        let gen_path = self.generation_path();
        let generation = self.read_counter(&gen_path)? + 1;
        self.write_counter(&gen_path, generation)?;
        // Truncate the log only after the snapshot is durably in place.
        self.appender = None;
        let wal = self.wal_path();
        fs::write(&wal, "").map_err(|e| io_err("truncate", &wal, e))?;
        Ok(())
    }

    fn has_state(&self) -> Result<bool> {
        Ok(self.snapshot_path().exists()
            || self.wal_path().metadata().map(|m| m.len() > 0).unwrap_or(false))
    }

    fn drop_torn_tail(&mut self, keep: usize) -> Result<()> {
        let kept: Vec<String> = self.log_lines()?.into_iter().take(keep).collect();
        self.appender = None;
        let wal = self.wal_path();
        let mut text = kept.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        // Rewrite via temp + atomic rename so a concurrent reader (a
        // standby's [`LogCursor`] tailing this store) observes either
        // the old log or the truncated one, never a half-written file.
        let tmp = self.dir.join("wal.tmp");
        fs::write(&tmp, text).map_err(|e| io_err("write", &tmp, e))?;
        fs::rename(&tmp, &wal).map_err(|e| io_err("truncate", &wal, e))?;
        Ok(())
    }

    fn fence_epoch(&self) -> Result<u64> {
        self.read_counter(&self.fence_path())
    }

    fn set_fence_epoch(&mut self, epoch: u64) -> Result<()> {
        let path = self.fence_path();
        if epoch > self.read_counter(&path)? {
            self.write_counter(&path, epoch)?;
        }
        Ok(())
    }

    fn generation(&self) -> Result<u64> {
        self.read_counter(&self.generation_path())
    }
}

/// Cumulative write-ahead-log I/O counters, surfaced through
/// `Kernel::exec_totals` so experiments can attribute durability cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Entries appended (including those written through a batch).
    pub appends: u64,
    /// Group-commit batches flushed (each pays one sync for many lines).
    pub batches: u64,
    /// Store syncs paid: one per unbatched append plus one per flushed
    /// batch. For [`FileLog`] every sync is an `fsync`.
    pub syncs: u64,
    /// Compacted snapshots installed (each truncates the log).
    pub snapshot_installs: u64,
    /// Largest batch flushed: the most appends a single sync ever paid
    /// for. Under cross-session group commit this is the number of
    /// concurrent committers the one syncer served.
    pub max_batch: u64,
}

/// The write-ahead log: sequence numbering, per-line checksums,
/// snapshot cadence, epoch fencing, and the deterministic crash-point
/// injector used by the recovery harness.
pub struct Wal {
    store: Box<dyn LogStore>,
    /// Sequence number of the next entry; resets to 1 at each snapshot
    /// install (the log only ever holds post-snapshot entries).
    next_seq: u64,
    /// The writing controller's epoch, stamped into every line. Raised
    /// only by standby promotion; an append is refused once the store's
    /// fence epoch exceeds it.
    epoch: u64,
    appends_since_snapshot: u64,
    total_appends: u64,
    snapshot_every: Option<u64>,
    crash_after: Option<u64>,
    crashed: bool,
    /// Encoded lines buffered by an open group-commit batch, written
    /// (and synced) together when the outermost batch commits.
    buffered: Vec<String>,
    /// Open [`begin_batch`](Wal::begin_batch) nesting depth.
    batch_depth: u32,
    stats: WalStats,
}

impl Wal {
    /// A fresh log over `store` (which must not already hold state —
    /// callers enforce that with [`LogStore::has_state`]).
    pub fn create(store: Box<dyn LogStore>) -> Wal {
        Wal {
            store,
            next_seq: 1,
            epoch: 0,
            appends_since_snapshot: 0,
            total_appends: 0,
            snapshot_every: None,
            crash_after: None,
            crashed: false,
            buffered: Vec::new(),
            batch_depth: 0,
            stats: WalStats::default(),
        }
    }

    /// A log resuming an existing store at a known position — the
    /// promotion path, where the standby's cursor already knows the
    /// sequence high-water mark and the new (fenced) epoch, so no
    /// replay pass over the store is needed.
    pub(crate) fn resume(
        store: Box<dyn LogStore>,
        next_seq: u64,
        appends_since_snapshot: u64,
        epoch: u64,
    ) -> Wal {
        let mut wal = Wal::create(store);
        wal.next_seq = next_seq;
        wal.appends_since_snapshot = appends_since_snapshot;
        wal.epoch = epoch;
        wal
    }

    /// Read back a store written by a previous incarnation: the parsed
    /// snapshot (if any), the decoded post-snapshot entries in order,
    /// and a [`Wal`] positioned to continue appending. Entries after
    /// the first checksum, sequence-gap or parse failure are discarded
    /// (a torn tail loses at most the append in flight).
    pub fn load(store: Box<dyn LogStore>) -> Result<(Option<SnapshotData>, Vec<LogRecord>, Wal)> {
        let snapshot = match store.read_snapshot()? {
            Some(text) => Some(SnapshotData::parse(&text)?),
            None => None,
        };
        let mut store = store;
        let lines = store.log_lines()?;
        let mut entries = Vec::new();
        let mut next_seq = 1u64;
        let mut epoch = store.fence_epoch()?;
        for line in &lines {
            let Ok((seq, line_epoch, rec)) = decode_line(line) else { break };
            if seq != next_seq {
                break; // sequence gap: treat the rest as torn
            }
            entries.push(rec);
            next_seq += 1;
            epoch = epoch.max(line_epoch);
        }
        if entries.len() < lines.len() {
            // Physically drop the torn tail so entries appended after
            // this recovery are not shadowed by it on the next one.
            store.drop_torn_tail(entries.len())?;
        }
        let appends = entries.len() as u64;
        let mut wal = Wal::create(store);
        wal.next_seq = next_seq;
        wal.appends_since_snapshot = appends;
        // Continue at the highest epoch the store has seen (line stamps
        // or the fence itself) so recovery after a promotion keeps
        // writing at the promoted epoch rather than getting fenced.
        wal.epoch = epoch;
        Ok((snapshot, entries, wal))
    }

    /// Durably append one entry. With a crash point armed, the Nth
    /// append **writes the entry durably and then fails** — modelling a
    /// controller that dies immediately after its log write. Every
    /// append after the crash point fails without writing.
    pub fn append(&mut self, rec: &LogRecord) -> Result<()> {
        if self.crashed {
            return Err(Error::Unavailable("controller crashed (injected)".into()));
        }
        // Epoch fence: once a standby has promoted (raising the store's
        // fence), every append from this demoted log is refused *before*
        // anything is written — the store never sees a stale record.
        // This early check keeps already-fenced appends out of the batch
        // buffer; the authoritative check is the store-side one, atomic
        // with the write itself.
        let fence = self.store.fence_epoch()?;
        if fence > self.epoch {
            return Err(fence_refused(self.epoch, fence));
        }
        let seq = self.next_seq;
        let body = format!("{seq} {} {}", self.epoch, rec.encode());
        let line = format!("{:08x} {body}", crc32(body.as_bytes()));
        if self.batch_depth > 0 {
            self.buffered.push(line);
        } else {
            self.store.append_line_fenced(&line, self.epoch)?;
            self.stats.syncs += 1;
        }
        self.stats.appends += 1;
        self.next_seq += 1;
        self.appends_since_snapshot += 1;
        self.total_appends += 1;
        if self.crash_after.is_some_and(|n| self.total_appends >= n) {
            // The crashing append must still be durable (the injector
            // models a controller dying right *after* its log write),
            // so a pending batch is flushed through this entry first.
            let flush = self.flush_buffered();
            self.crashed = true;
            flush?;
            return Err(Error::Unavailable(format!(
                "injected controller crash after WAL append {}",
                self.total_appends
            )));
        }
        Ok(())
    }

    /// Open a group-commit batch: subsequent appends are buffered and
    /// written with one sync when the outermost batch commits. Batches
    /// nest (a transaction that triggers a backend restart, say).
    ///
    /// The batch is agnostic about *whose* appends it buffers: a
    /// single transaction's, or — under the controller's batch
    /// scheduler — one request from each of many concurrent sessions,
    /// whose committers all park on the open batch while the one
    /// closing caller pays the sync for all of them (cross-session
    /// group commit). Crash soundness is unchanged either way: an
    /// armed crash point flushes the open batch *through* the crashing
    /// entry (see [`Wal::append`]), so the durable log is always an
    /// admission-order prefix.
    pub fn begin_batch(&mut self) {
        self.batch_depth += 1;
    }

    /// Close a batch; the outermost close flushes the buffered appends
    /// durably in one [`LogStore::append_lines`] call.
    pub fn commit_batch(&mut self) -> Result<()> {
        self.batch_depth = self.batch_depth.saturating_sub(1);
        if self.batch_depth == 0 && !self.crashed {
            self.flush_buffered()?;
        }
        Ok(())
    }

    fn flush_buffered(&mut self) -> Result<()> {
        if self.buffered.is_empty() {
            return Ok(());
        }
        // The fence is re-checked at flush time, atomically with the
        // write: a promotion that landed between buffering and commit
        // must keep these lines out of the store (the demoted primary
        // leaves no post-fence records), and a promotion landing
        // *during* the flush must land on one side of it, not inside.
        let lines = std::mem::take(&mut self.buffered);
        self.stats.batches += 1;
        self.stats.syncs += 1;
        self.stats.max_batch = self.stats.max_batch.max(lines.len() as u64);
        self.store.append_lines_fenced(&lines, self.epoch)
    }

    /// Install a compacted snapshot and truncate the log.
    pub fn install_snapshot(&mut self, text: &str) -> Result<()> {
        // Entries still buffered by an open batch describe mutations the
        // snapshot already reflects; installing it makes them moot.
        self.buffered.clear();
        self.store.install_snapshot_fenced(text, self.epoch)?;
        self.stats.snapshot_installs += 1;
        self.appends_since_snapshot = 0;
        self.next_seq = 1;
        Ok(())
    }

    /// Raise this log's epoch to at least `epoch` and durably raise the
    /// store's fence to match. Cold recovery calls this to fence out
    /// every earlier incarnation writing the same store: without it, a
    /// recovered controller adopts the highest epoch the store has seen
    /// and *shares* it with whoever stamped it — the model checker's
    /// `recover-without-refence` mutation produces exactly that
    /// split-brain trace.
    pub fn refence(&mut self, epoch: u64) -> Result<()> {
        self.epoch = self.epoch.max(epoch);
        self.store.set_fence_epoch(self.epoch)
    }

    /// Snapshot every `every` appends (0 disables).
    pub fn set_snapshot_every(&mut self, every: u64) {
        self.snapshot_every = (every > 0).then_some(every);
    }

    /// Arm the crash-point injector: the `n`th append (counted across
    /// the log's lifetime, snapshots included) succeeds durably and
    /// then fails the controller.
    pub fn set_crash_after(&mut self, n: u64) {
        self.crash_after = Some(n);
    }

    /// True once the armed crash point has fired.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Appends performed over this log's lifetime.
    pub fn total_appends(&self) -> u64 {
        self.total_appends
    }

    /// This log's controller epoch (stamped into every line).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative I/O counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// True when the snapshot cadence says it is time to compact.
    pub fn needs_snapshot(&self) -> bool {
        !self.crashed && self.snapshot_every.is_some_and(|n| self.appends_since_snapshot >= n)
    }
}

fn decode_line(line: &str) -> Result<(u64, u64, LogRecord)> {
    let (crc_s, body) = line.split_once(' ').ok_or_else(|| bad("wal: malformed line"))?;
    let crc = u32::from_str_radix(crc_s, 16).map_err(|_| bad("wal: malformed checksum"))?;
    if crc32(body.as_bytes()) != crc {
        return Err(bad("wal: checksum mismatch"));
    }
    let (seq_s, rest) = body.split_once(' ').ok_or_else(|| bad("wal: missing seq"))?;
    let (epoch_s, payload) = rest.split_once(' ').ok_or_else(|| bad("wal: missing epoch"))?;
    Ok((parse_u64(seq_s)?, parse_u64(epoch_s)?, LogRecord::decode(payload)?))
}

/// What one [`LogCursor::poll`] observed.
#[derive(Debug, Clone, PartialEq)]
pub enum CursorUpdate {
    /// Fresh decoded log entries, in order. Empty when the cursor is
    /// caught up.
    Entries(Vec<LogRecord>),
    /// The store installed a snapshot since the last poll: the log was
    /// truncated and its sequence numbering reset, so the follower must
    /// rebuild from this snapshot text before consuming further
    /// entries.
    Snapshot(String),
}

/// An incremental reader tailing a [`LogStore`] — the shipping half of
/// the standby subsystem. Each [`poll`](LogCursor::poll) consumes
/// whatever complete, in-sequence entries the store has gained since
/// the last poll. A line that fails checksum or sequence checks stops
/// the poll *without* being consumed: it may be a torn tail (junk
/// forever) or the first half of an in-flight group-commit batch
/// (valid on the next poll), and the cursor cannot tell yet — so it
/// simply retries from the same spot next time.
pub struct LogCursor {
    store: Box<dyn LogStore>,
    /// Store generation as of the last poll; starts at a sentinel no
    /// store reports, so the first poll always loads the snapshot (if
    /// any).
    generation: u64,
    /// Log lines consumed from the current generation.
    consumed: usize,
    next_seq: u64,
    max_epoch: u64,
    bytes_behind: u64,
}

impl LogCursor {
    /// A cursor positioned at the very beginning of `store`. The first
    /// [`poll`](LogCursor::poll) reports the installed snapshot (when
    /// one exists) before any log entries.
    pub fn new(store: Box<dyn LogStore>) -> LogCursor {
        LogCursor {
            store,
            generation: u64::MAX,
            consumed: 0,
            next_seq: 1,
            max_epoch: 0,
            bytes_behind: 0,
        }
    }

    /// Read whatever the store has gained since the last poll. Returns
    /// `CursorUpdate::Snapshot` when the store's snapshot generation
    /// changed (the follower must rebuild), otherwise the fresh
    /// entries (possibly none).
    pub fn poll(&mut self) -> Result<CursorUpdate> {
        let lines = loop {
            let generation = self.store.generation()?;
            if generation != self.generation {
                // The log was truncated (snapshot install) since the
                // last poll — or this is the first poll ever. Restart
                // from the snapshot; sequence numbering reset with the
                // truncation.
                self.generation = generation;
                self.consumed = 0;
                self.next_seq = 1;
                self.bytes_behind = 0;
                if let Some(text) = self.store.read_snapshot()? {
                    return Ok(CursorUpdate::Snapshot(text));
                }
                // No snapshot installed yet (fresh store): fall through
                // and consume log entries directly.
            }
            let lines = self.store.log_lines()?;
            // Generation sandwich: a snapshot install landing between
            // the two reads above truncates the log and resets its
            // sequence numbering, so `lines` belongs to a generation
            // this cursor has not resynced to — its line at our
            // `consumed` offset can even carry the sequence number we
            // expect next, which a naïve read would consume as a
            // continuation, silently skipping the snapshot (and every
            // compacted entry in it). Re-read the generation and retry
            // until the pair is consistent.
            if self.store.generation()? == generation {
                break lines;
            }
        };
        let mut entries = Vec::new();
        let mut behind = 0u64;
        for line in lines.iter().skip(self.consumed) {
            match decode_line(line) {
                Ok((seq, epoch, rec)) if seq == self.next_seq => {
                    entries.push(rec);
                    self.consumed += 1;
                    self.next_seq += 1;
                    self.max_epoch = self.max_epoch.max(epoch);
                }
                // Torn tail or in-flight batch: stop here, do not
                // consume — the line may become valid by the next poll.
                _ => {
                    behind = lines
                        .iter()
                        .skip(self.consumed)
                        .map(|l| l.len() as u64 + 1)
                        .sum();
                    break;
                }
            }
        }
        self.bytes_behind = behind;
        Ok(CursorUpdate::Entries(entries))
    }

    /// Log lines consumed from the current generation.
    pub fn consumed(&self) -> usize {
        self.consumed
    }

    /// Sequence number the next consumed entry must carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Highest epoch stamp observed across all consumed entries.
    pub fn max_epoch(&self) -> u64 {
        self.max_epoch
    }

    /// Bytes of unconsumed log observed by the last poll (stuck lines
    /// the cursor is waiting on — the replication-lag gauge).
    pub fn bytes_behind(&self) -> u64 {
        self.bytes_behind
    }

    /// Surrender the underlying store (the promotion path takes it over
    /// for writing).
    pub fn into_store(self) -> Box<dyn LogStore> {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abdl::{Record, Value};

    fn rec(file: &str, v: i64) -> Record {
        Record::from_pairs([("FILE", Value::str(file))]).with(file.to_owned(), Value::Int(v))
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_entry_kind_round_trips() {
        let entries = vec![
            LogRecord::CreateFile { name: "university.course".into() },
            LogRecord::Unique { file: "f".into(), attrs: vec!["a".into(), "b".into()] },
            LogRecord::ReserveKey { key: 42 },
            LogRecord::Alloc { key: 7, file: "f".into() },
            LogRecord::Insert {
                key: 9,
                group: vec![2, 3],
                record: rec("f", 1).with("s", Value::str("it's quoted")),
            },
            LogRecord::Exec {
                request: parse_request("DELETE ((FILE = f) and (x = 1))").unwrap(),
            },
            LogRecord::Dead { backend: 3 },
            LogRecord::RestartBegin { backend: 0 },
            LogRecord::RestartEnd { backend: 0 },
            LogRecord::MoveBegin { from: vec![3, 0], to: vec![3, 4], keys: vec![7, 12, 40] },
            LogRecord::MoveEnd { from: vec![3, 0], to: vec![3, 4] },
            LogRecord::AddBackend { backend: 4 },
            LogRecord::AddEnd { backend: 4 },
            LogRecord::DrainBegin { backend: 1 },
            LogRecord::DrainEnd { backend: 1 },
        ];
        for e in entries {
            let decoded = LogRecord::decode(&e.encode()).unwrap();
            assert_eq!(decoded, e, "round trip failed for {e:?}");
        }
    }

    #[test]
    fn wal_appends_and_loads_with_sequence_continuity() {
        let log = MemLog::new();
        let mut wal = Wal::create(Box::new(log.clone()));
        for i in 0..5 {
            wal.append(&LogRecord::ReserveKey { key: i }).unwrap();
        }
        let (snap, entries, wal2) = Wal::load(Box::new(log)).unwrap();
        assert!(snap.is_none());
        assert_eq!(entries.len(), 5);
        assert_eq!(entries[3], LogRecord::ReserveKey { key: 3 });
        // The loaded wal continues the sequence — appending more and
        // reloading sees all entries.
        let mut wal2 = wal2;
        wal2.append(&LogRecord::Dead { backend: 1 }).unwrap();
        drop(wal);
        assert_eq!(wal2.next_seq, 7);
    }

    #[test]
    fn corruption_and_torn_tails_stop_the_replay_cleanly() {
        let log = MemLog::new();
        let mut wal = Wal::create(Box::new(log.clone()));
        for i in 0..10 {
            wal.append(&LogRecord::ReserveKey { key: i }).unwrap();
        }
        // A flipped byte in entry 6 discards it and everything after.
        log.corrupt_line(6);
        let (_, entries, _) = Wal::load(Box::new(log.clone())).unwrap();
        assert_eq!(entries.len(), 6);
        // A torn tail (partial final line) loses only that line.
        log.truncate_log(4);
        let (_, entries, _) = Wal::load(Box::new(log)).unwrap();
        assert_eq!(entries.len(), 4);
    }

    #[test]
    fn crash_point_fires_after_a_durable_append() {
        let log = MemLog::new();
        let mut wal = Wal::create(Box::new(log.clone()));
        wal.set_crash_after(3);
        wal.append(&LogRecord::ReserveKey { key: 0 }).unwrap();
        wal.append(&LogRecord::ReserveKey { key: 1 }).unwrap();
        let err = wal.append(&LogRecord::ReserveKey { key: 2 }).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)));
        assert!(wal.crashed());
        // The crashing append is on disk; later appends are refused and
        // leave no trace.
        assert!(wal.append(&LogRecord::ReserveKey { key: 3 }).is_err());
        assert_eq!(log.log_len(), 3);
    }

    #[test]
    fn snapshot_text_round_trips_and_is_deterministic() {
        let snap = SnapshotData {
            backends: 4,
            replication: 2,
            next_key: 17,
            dead: vec![1, 3],
            draining: vec![2],
            unwrap: true,
            rotors: vec![("a".into(), 2), ("b".into(), 0)],
            files: vec!["a".into(), "b".into()],
            uniques: vec![("a".into(), vec!["name".into()])],
            places: vec![
                (3, vec![0, 1], Some(rec("a", 3))),
                (5, vec![1, 2], None), // every replica dead: mapping survives, data does not
            ],
        };
        let text = snap.to_text();
        assert_eq!(SnapshotData::parse(&text).unwrap(), snap);
        assert_eq!(snap.to_text(), text, "rendering is deterministic");
        assert!(SnapshotData::parse("not a snapshot").is_err());
    }

    #[test]
    fn snapshot_install_truncates_and_resets_sequence() {
        let log = MemLog::new();
        let mut wal = Wal::create(Box::new(log.clone()));
        wal.set_snapshot_every(3);
        for i in 0..3 {
            assert!(!wal.needs_snapshot());
            wal.append(&LogRecord::ReserveKey { key: i }).unwrap();
        }
        assert!(wal.needs_snapshot());
        let snap = SnapshotData { backends: 2, replication: 1, ..Default::default() };
        wal.install_snapshot(&snap.to_text()).unwrap();
        assert!(!wal.needs_snapshot());
        assert_eq!(log.log_len(), 0);
        wal.append(&LogRecord::ReserveKey { key: 9 }).unwrap();
        let (loaded, entries, _) = Wal::load(Box::new(log)).unwrap();
        assert_eq!(loaded.unwrap().backends, 2);
        assert_eq!(entries, vec![LogRecord::ReserveKey { key: 9 }]);
    }

    #[test]
    fn fence_refuses_stale_epoch_appends_before_they_reach_the_store() {
        let log = MemLog::new();
        let mut wal = Wal::create(Box::new(log.clone()));
        wal.append(&LogRecord::ReserveKey { key: 0 }).unwrap();
        // A promotion elsewhere raises the store fence past our epoch 0.
        let mut fencer: Box<dyn LogStore> = Box::new(log.clone());
        fencer.set_fence_epoch(1).unwrap();
        let err = wal.append(&LogRecord::ReserveKey { key: 1 }).unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)), "fenced append must fail: {err:?}");
        assert_eq!(log.log_len(), 1, "the fenced append left no trace");
        // Batched appends are fenced at flush time too.
        wal.begin_batch();
        assert!(wal.append(&LogRecord::ReserveKey { key: 2 }).is_err());
        assert!(wal.commit_batch().is_ok(), "empty flush after refusal");
        assert_eq!(log.log_len(), 1);
        // Snapshot installs from the demoted writer are refused as well.
        let snap = SnapshotData { backends: 2, replication: 1, ..Default::default() };
        assert!(wal.install_snapshot(&snap.to_text()).is_err());
        assert_eq!(log.log_len(), 1);
    }

    #[test]
    fn fence_raise_is_monotonic_and_survives_load() {
        let log = MemLog::new();
        let mut store: Box<dyn LogStore> = Box::new(log.clone());
        store.set_fence_epoch(3).unwrap();
        store.set_fence_epoch(1).unwrap(); // lowering is ignored
        assert_eq!(store.fence_epoch().unwrap(), 3);
        // A Wal loaded from a fenced store adopts the fence epoch and
        // keeps writing (it *is* the promoted lineage).
        let (_, _, mut wal) = Wal::load(Box::new(log.clone())).unwrap();
        assert_eq!(wal.epoch(), 3);
        wal.append(&LogRecord::ReserveKey { key: 7 }).unwrap();
        let (_, entries, wal2) = Wal::load(Box::new(log)).unwrap();
        assert_eq!(entries, vec![LogRecord::ReserveKey { key: 7 }]);
        assert_eq!(wal2.epoch(), 3);
    }

    #[test]
    fn wal_counts_appends_batches_syncs_and_snapshots() {
        let log = MemLog::new();
        let mut wal = Wal::create(Box::new(log.clone()));
        wal.append(&LogRecord::ReserveKey { key: 0 }).unwrap();
        wal.begin_batch();
        wal.append(&LogRecord::ReserveKey { key: 1 }).unwrap();
        wal.append(&LogRecord::ReserveKey { key: 2 }).unwrap();
        wal.commit_batch().unwrap();
        let snap = SnapshotData { backends: 2, replication: 1, ..Default::default() };
        wal.install_snapshot(&snap.to_text()).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.appends, 3);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.syncs, 2, "one unbatched append + one batch flush");
        assert_eq!(stats.snapshot_installs, 1);
    }

    #[test]
    fn cursor_tails_the_log_incrementally() {
        let log = MemLog::new();
        let mut wal = Wal::create(Box::new(log.clone()));
        let mut cursor = LogCursor::new(Box::new(log.clone()));
        // Fresh store: first poll finds no snapshot and no entries.
        assert_eq!(cursor.poll().unwrap(), CursorUpdate::Entries(vec![]));
        wal.append(&LogRecord::ReserveKey { key: 0 }).unwrap();
        wal.append(&LogRecord::ReserveKey { key: 1 }).unwrap();
        assert_eq!(
            cursor.poll().unwrap(),
            CursorUpdate::Entries(vec![
                LogRecord::ReserveKey { key: 0 },
                LogRecord::ReserveKey { key: 1 },
            ])
        );
        // Caught up: the next poll is empty, and position advanced.
        assert_eq!(cursor.poll().unwrap(), CursorUpdate::Entries(vec![]));
        assert_eq!(cursor.consumed(), 2);
        assert_eq!(cursor.next_seq(), 3);
        wal.append(&LogRecord::Dead { backend: 1 }).unwrap();
        assert_eq!(
            cursor.poll().unwrap(),
            CursorUpdate::Entries(vec![LogRecord::Dead { backend: 1 }])
        );
    }

    #[test]
    fn cursor_waits_out_a_torn_tail_without_consuming_it() {
        let log = MemLog::new();
        let mut wal = Wal::create(Box::new(log.clone()));
        wal.append(&LogRecord::ReserveKey { key: 0 }).unwrap();
        wal.append(&LogRecord::ReserveKey { key: 1 }).unwrap();
        log.corrupt_line(1);
        let mut cursor = LogCursor::new(Box::new(log.clone()));
        assert_eq!(
            cursor.poll().unwrap(),
            CursorUpdate::Entries(vec![LogRecord::ReserveKey { key: 0 }])
        );
        assert!(cursor.bytes_behind() > 0, "the stuck line counts as lag");
        // Recovery truncates the torn tail; the cursor just stops seeing
        // the junk and resumes cleanly with post-recovery appends.
        let (_, entries, mut wal2) = Wal::load(Box::new(log.clone())).unwrap();
        assert_eq!(entries.len(), 1);
        wal2.append(&LogRecord::ReserveKey { key: 9 }).unwrap();
        assert_eq!(
            cursor.poll().unwrap(),
            CursorUpdate::Entries(vec![LogRecord::ReserveKey { key: 9 }])
        );
        assert_eq!(cursor.bytes_behind(), 0);
    }

    #[test]
    fn cursor_resets_across_a_snapshot_install() {
        let log = MemLog::new();
        let mut wal = Wal::create(Box::new(log.clone()));
        let mut cursor = LogCursor::new(Box::new(log.clone()));
        wal.append(&LogRecord::ReserveKey { key: 0 }).unwrap();
        assert_eq!(
            cursor.poll().unwrap(),
            CursorUpdate::Entries(vec![LogRecord::ReserveKey { key: 0 }])
        );
        // Install a snapshot: the log truncates and seq restarts at 1 —
        // the cursor must notice and hand the follower the snapshot.
        let snap = SnapshotData { backends: 2, replication: 1, next_key: 5, ..Default::default() };
        wal.install_snapshot(&snap.to_text()).unwrap();
        wal.append(&LogRecord::ReserveKey { key: 5 }).unwrap();
        match cursor.poll().unwrap() {
            CursorUpdate::Snapshot(text) => {
                assert_eq!(SnapshotData::parse(&text).unwrap(), snap);
            }
            other => panic!("expected snapshot reset, got {other:?}"),
        }
        assert_eq!(
            cursor.poll().unwrap(),
            CursorUpdate::Entries(vec![LogRecord::ReserveKey { key: 5 }])
        );
    }

    #[test]
    fn cursor_tracks_the_highest_epoch_stamp() {
        let log = MemLog::new();
        let mut wal = Wal::resume(Box::new(log.clone()), 1, 0, 4);
        wal.append(&LogRecord::ReserveKey { key: 0 }).unwrap();
        let mut cursor = LogCursor::new(Box::new(log));
        cursor.poll().unwrap();
        assert_eq!(cursor.max_epoch(), 4);
    }

    #[test]
    fn file_log_drop_torn_tail_is_atomic_under_a_concurrent_cursor() {
        let dir =
            std::env::temp_dir().join(format!("mbds-wal-tail-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut wal = Wal::create(Box::new(FileLog::open(&dir).unwrap()));
            for i in 0..4 {
                wal.append(&LogRecord::ReserveKey { key: i }).unwrap();
            }
        }
        // Simulate a crash mid-append: hand-mangle the final line.
        let wal_path = dir.join("wal.log");
        let mut text = fs::read_to_string(&wal_path).unwrap();
        text.truncate(text.len() - 10); // tear the last line
        fs::write(&wal_path, text).unwrap();
        // A standby cursor holds the store open across the recovery that
        // discards the tail.
        let mut cursor = LogCursor::new(Box::new(FileLog::open(&dir).unwrap()));
        match cursor.poll().unwrap() {
            CursorUpdate::Entries(entries) => assert_eq!(entries.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
        assert!(cursor.bytes_behind() > 0);
        let (_, entries, mut wal) = Wal::load(Box::new(FileLog::open(&dir).unwrap())).unwrap();
        assert_eq!(entries.len(), 3, "recovery keeps the intact prefix");
        // The rewrite went through a temp file + rename: no half-written
        // wal.log was ever observable, and no temp file is left behind.
        assert!(!dir.join("wal.tmp").exists());
        // The cursor keeps tailing seamlessly after the truncation.
        wal.append(&LogRecord::ReserveKey { key: 9 }).unwrap();
        match cursor.poll().unwrap() {
            CursorUpdate::Entries(entries) => {
                assert_eq!(entries, vec![LogRecord::ReserveKey { key: 9 }]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(cursor.bytes_behind(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_log_round_trips_through_a_directory() {
        let dir = std::env::temp_dir().join(format!("mbds-wal-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut wal = Wal::create(Box::new(FileLog::open(&dir).unwrap()));
            wal.append(&LogRecord::CreateFile { name: "f".into() }).unwrap();
            wal.append(&LogRecord::Insert { key: 1, group: vec![0], record: rec("f", 1) })
                .unwrap();
        }
        let store = FileLog::open(&dir).unwrap();
        assert!(store.has_state().unwrap());
        let (snap, entries, mut wal) = Wal::load(Box::new(store)).unwrap();
        assert!(snap.is_none());
        assert_eq!(entries.len(), 2);
        // Install a snapshot; reloading sees it and an empty log.
        let snap = SnapshotData { backends: 3, replication: 2, ..Default::default() };
        wal.install_snapshot(&snap.to_text()).unwrap();
        let (loaded, entries, _) = Wal::load(Box::new(FileLog::open(&dir).unwrap())).unwrap();
        assert_eq!(loaded.unwrap(), snap);
        assert!(entries.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
