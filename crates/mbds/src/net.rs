//! Socket transport for the multi-backend kernel: a binary wire codec,
//! a fault-injectable TCP link, the out-of-process backend server, and
//! the primary→standby WAL-shipping stream.
//!
//! The 1987 MBDS is a controller driving *separate* backend machines
//! over a communication bus; until this module the backends lived as
//! threads inside the controller's process, so the fault harness could
//! only simulate crashes. Here the bus becomes real: every message is a
//! length-prefixed, CRC-checksummed, epoch-stamped frame over TCP, and
//! every socket is wrapped in a [`TcpLink`] whose deterministic, seeded
//! [`NetFaultPlan`] can drop, delay, duplicate, reorder or sever
//! traffic per-link and per-direction — partitions and slow links as
//! first-class injectable faults alongside the crash injector.
//!
//! Design rules, mirroring the WAL's discipline:
//!
//! * **Framing**: `[len u32 LE][crc u32 LE][kind u8][seq u64][epoch
//!   u64][body]`; `crc` is [`wal::crc32`] over everything after it. A
//!   bit-flipped frame fails its checksum and is *skipped in place* —
//!   the reader consumed exactly `len` bytes, so the stream stays
//!   aligned, just as recovery skips a torn WAL line without losing the
//!   entries behind it. An insane length is fatal to the connection
//!   (re-established by the controller's retry path).
//! * **Idempotency**: the sequence number is a request id. The backend
//!   keeps a small per-client cache of recent replies and answers a
//!   retransmitted id from the cache without re-applying the operation,
//!   so retries never double-apply writes (an UPDATE's `affected` count
//!   is paid once).
//! * **Fencing**: every frame carries the sender's controller epoch.
//!   The backend raises its local fence to the highest epoch it has
//!   ever seen and rejects lower-epoch requests with the same error the
//!   in-process bus produces — so a promoted standby's first `Hello`
//!   fences an isolated old primary out of remote backends.

use crate::fault::{FaultKind, FaultPlan};
use crate::wal::{crc32, LogStore};
use abdl::engine::{ExecStats, GroupRow, Response, Store};
use abdl::parse::parse_request;
use abdl::{DbKey, Error, Record, Request, Result, Value};
use abdl::prng::Prng;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufRead, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Upper bound on a frame's payload length; anything larger is treated
/// as a desynced or hostile stream and kills the connection.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Fixed payload prefix: kind (1) + seq (8) + epoch (8).
const FRAME_HEAD: usize = 17;

/// Frame kind tags. A `u8` on the wire; unknown kinds are a decode
/// error (skipped by the caller like a corrupt frame).
pub mod kind {
    /// Client introduces itself: body = client id (u64).
    pub const HELLO: u8 = 0x01;
    /// Server acknowledges a Hello: body = current fence epoch (u64).
    pub const HELLO_ACK: u8 = 0x02;
    /// Create a kernel file: body = name.
    pub const CREATE_FILE: u8 = 0x03;
    /// Insert a record under a controller-allocated key.
    pub const INSERT_WITH_KEY: u8 = 0x04;
    /// Execute an ABDL request (canonical text).
    pub const EXEC: u8 = 0x05;
    /// Liveness / epoch probe; answered by [`PONG`].
    pub const PING: u8 = 0x06;
    /// Orderly shutdown of the backend process.
    pub const SHUTDOWN: u8 = 0x07;
    /// Install a classic backend [`FaultPlan`](crate::FaultPlan).
    pub const SET_FAULTS: u8 = 0x08;
    /// Successful reply carrying an encoded [`Response`](abdl::Response).
    pub const REPLY_OK: u8 = 0x09;
    /// Failed reply carrying an encoded [`Error`](abdl::Error).
    pub const REPLY_ERR: u8 = 0x0A;
    /// Reply to [`PING`]: body = current fence epoch (u64).
    pub const PONG: u8 = 0x0B;
    /// WAL-shipping pull: body = generation (u64) + lines held (u64).
    pub const PULL_LOG: u8 = 0x0C;
    /// WAL-shipping response: snapshot and/or delta log lines.
    pub const LOG_DELTA: u8 = 0x0D;
    /// Remove records by database key (rebalance move cleanup):
    /// body = count (u64) + that many keys (u64 each).
    pub const DELETE_KEYS: u8 = 0x0E;
    /// Fetch records by database key (rebalance chunk copy):
    /// body = count (u64) + that many keys (u64 each).
    pub const FETCH_KEYS: u8 = 0x0F;
}

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind (one of the [`kind`] constants).
    pub kind: u8,
    /// Request id; replies echo the id of the request they answer.
    pub seq: u64,
    /// The sender's controller epoch (fencing).
    pub epoch: u64,
    /// Kind-specific body bytes.
    pub body: Vec<u8>,
}

impl Frame {
    /// Encode the frame into its on-wire byte representation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(FRAME_HEAD + self.body.len());
        payload.push(self.kind);
        payload.extend_from_slice(&self.seq.to_le_bytes());
        payload.extend_from_slice(&self.epoch.to_le_bytes());
        payload.extend_from_slice(&self.body);
        let mut out = Vec::with_capacity(8 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

/// Outcome of pulling one frame off the stream.
#[derive(Debug)]
pub enum FrameRead {
    /// A checksum-verified frame.
    Frame(Frame),
    /// A frame-sized region whose checksum failed: consumed and
    /// skipped; the stream remains aligned on the next frame.
    Corrupt,
}

/// Incremental frame reader. Retains partial progress across read
/// timeouts, so a `WouldBlock`/`TimedOut` in the middle of a frame
/// never desyncs the stream — the next call resumes where it left off.
#[derive(Debug, Default)]
pub struct FrameReader {
    header: [u8; 8],
    header_fill: usize,
    payload: Vec<u8>,
    payload_fill: usize,
}

impl FrameReader {
    /// A reader with no partial progress.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Pull one frame from `r`. Timeout-style errors (`WouldBlock`,
    /// `TimedOut`) are returned to the caller with all partial progress
    /// retained; EOF surfaces as `UnexpectedEof`.
    pub fn read_from(&mut self, r: &mut impl Read) -> io::Result<FrameRead> {
        while self.header_fill < 8 {
            let n = r.read(&mut self.header[self.header_fill..8])?;
            if n == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            self.header_fill += n;
        }
        if self.payload.is_empty() {
            let len = u32::from_le_bytes(self.header[0..4].try_into().expect("4 bytes"));
            if len < FRAME_HEAD as u32 || len > MAX_FRAME {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame length {len} outside [{FRAME_HEAD}, {MAX_FRAME}]"),
                ));
            }
            self.payload = vec![0; len as usize];
            self.payload_fill = 0;
        }
        while self.payload_fill < self.payload.len() {
            let n = r.read(&mut self.payload[self.payload_fill..])?;
            if n == 0 {
                return Err(io::ErrorKind::UnexpectedEof.into());
            }
            self.payload_fill += n;
        }
        let expect = u32::from_le_bytes(self.header[4..8].try_into().expect("4 bytes"));
        let payload = std::mem::take(&mut self.payload);
        self.header_fill = 0;
        self.payload_fill = 0;
        if crc32(&payload) != expect {
            return Ok(FrameRead::Corrupt);
        }
        let kind = payload[0];
        let seq = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
        let epoch = u64::from_le_bytes(payload[9..17].try_into().expect("8 bytes"));
        Ok(FrameRead::Frame(Frame { kind, seq, epoch, body: payload[FRAME_HEAD..].to_vec() }))
    }
}

// ---------------------------------------------------------------------
// Body codecs
// ---------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Cursor over a frame body; every take is bounds-checked so a
/// malformed body decodes to an error, never a panic.
struct Take<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Take<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Take { buf, at: 0 }
    }

    fn bad(what: &str) -> Error {
        Error::Internal(format!("wire: malformed frame body ({what})"))
    }

    fn u8(&mut self) -> Result<u8> {
        let b = *self.buf.get(self.at).ok_or_else(|| Self::bad("u8"))?;
        self.at += 1;
        Ok(b)
    }

    fn u64(&mut self) -> Result<u64> {
        let end = self.at + 8;
        let bytes = self.buf.get(self.at..end).ok_or_else(|| Self::bad("u64"))?;
        self.at = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u64()? as usize;
        let end = self.at.checked_add(len).ok_or_else(|| Self::bad("len"))?;
        let b = self.buf.get(self.at..end).ok_or_else(|| Self::bad("bytes"))?;
        self.at = end;
        Ok(b)
    }

    fn str(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| Self::bad("utf8"))
    }

    fn done(&self) -> Result<()> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(Self::bad("trailing bytes"))
        }
    }
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            put_u64(out, *i as u64);
        }
        Value::Float(f) => {
            out.push(2);
            put_u64(out, f.to_bits());
        }
        Value::Str(s) => {
            out.push(3);
            put_str(out, s);
        }
    }
}

fn take_value(t: &mut Take<'_>) -> Result<Value> {
    Ok(match t.u8()? {
        0 => Value::Null,
        1 => Value::Int(t.u64()? as i64),
        2 => Value::Float(f64::from_bits(t.u64()?)),
        3 => Value::Str(t.str()?),
        tag => return Err(Take::bad(&format!("value tag {tag}"))),
    })
}

/// Records cross the wire as their canonical ABDL text — the same
/// `Display` ↔ [`parse_request`] round-trip the WAL's durability
/// discipline already proves exact.
fn put_record(out: &mut Vec<u8>, r: &Record) {
    put_str(out, &r.to_string());
}

fn take_record(t: &mut Take<'_>) -> Result<Record> {
    let text = t.str()?;
    match parse_request(&format!("INSERT {text}"))? {
        Request::Insert { record } => Ok(record),
        _ => Err(Take::bad("record text")),
    }
}

fn put_stats(out: &mut Vec<u8>, s: &ExecStats) {
    put_u64(out, s.records_examined);
    put_u64(out, s.records_matched);
    put_u64(out, s.records_returned);
    put_u64(out, s.records_written);
    put_u64(out, s.index_probes);
    put_u64(out, s.blocks_touched);
}

fn take_stats(t: &mut Take<'_>) -> Result<ExecStats> {
    Ok(ExecStats {
        records_examined: t.u64()?,
        records_matched: t.u64()?,
        records_returned: t.u64()?,
        records_written: t.u64()?,
        index_probes: t.u64()?,
        blocks_touched: t.u64()?,
    })
}

/// Encode a [`Response`] into body bytes.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, resp.records().len() as u64);
    for (key, rec) in resp.records() {
        put_u64(&mut out, key.0);
        put_record(&mut out, rec);
    }
    match &resp.groups {
        None => out.push(0),
        Some(rows) => {
            out.push(1);
            put_u64(&mut out, rows.len() as u64);
            for row in rows {
                match &row.group {
                    None => out.push(0),
                    Some(g) => {
                        out.push(1);
                        put_value(&mut out, g);
                    }
                }
                put_u64(&mut out, row.values.len() as u64);
                for v in &row.values {
                    put_value(&mut out, v);
                }
            }
        }
    }
    put_u64(&mut out, resp.affected as u64);
    put_stats(&mut out, &resp.stats);
    out.push(resp.degraded as u8);
    put_u64(&mut out, resp.unavailable_backends.len() as u64);
    for b in &resp.unavailable_backends {
        put_u64(&mut out, *b as u64);
    }
    put_u64(&mut out, resp.messages_sent);
    out
}

/// Decode a [`Response`] from body bytes.
pub fn decode_response(body: &[u8]) -> Result<Response> {
    let mut t = Take::new(body);
    let n = t.u64()? as usize;
    let mut records = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let key = DbKey(t.u64()?);
        let rec = take_record(&mut t)?;
        records.push((key, rec));
    }
    let groups = match t.u8()? {
        0 => None,
        1 => {
            let rows = t.u64()? as usize;
            let mut out = Vec::with_capacity(rows.min(4096));
            for _ in 0..rows {
                let group = match t.u8()? {
                    0 => None,
                    1 => Some(take_value(&mut t)?),
                    tag => return Err(Take::bad(&format!("group tag {tag}"))),
                };
                let vals = t.u64()? as usize;
                let mut values = Vec::with_capacity(vals.min(4096));
                for _ in 0..vals {
                    values.push(take_value(&mut t)?);
                }
                out.push(GroupRow { group, values });
            }
            Some(out)
        }
        tag => return Err(Take::bad(&format!("groups tag {tag}"))),
    };
    let affected = t.u64()? as usize;
    let stats = take_stats(&mut t)?;
    let degraded = t.u8()? != 0;
    let unav = t.u64()? as usize;
    let mut unavailable_backends = Vec::with_capacity(unav.min(4096));
    for _ in 0..unav {
        unavailable_backends.push(t.u64()? as usize);
    }
    let messages_sent = t.u64()?;
    t.done()?;
    let mut resp = Response::with_records(records, stats);
    resp.groups = groups;
    resp.affected = affected;
    resp.degraded = degraded;
    resp.unavailable_backends = unavailable_backends;
    resp.messages_sent = messages_sent;
    Ok(resp)
}

/// Encode an [`Error`] into body bytes.
pub fn encode_error(err: &Error) -> Vec<u8> {
    let mut out = Vec::new();
    match err {
        Error::Parse { msg, offset } => {
            out.push(0);
            put_str(&mut out, msg);
            put_u64(&mut out, *offset as u64);
        }
        Error::UnknownFile(name) => {
            out.push(1);
            put_str(&mut out, name);
        }
        Error::DuplicateKey { file, attrs } => {
            out.push(2);
            put_str(&mut out, file);
            put_u64(&mut out, attrs.len() as u64);
            for a in attrs {
                put_str(&mut out, a);
            }
        }
        Error::MissingFileKeyword => out.push(3),
        Error::NonNumericAggregate { attr } => {
            out.push(4);
            put_str(&mut out, attr);
        }
        Error::Unavailable(msg) => {
            out.push(5);
            put_str(&mut out, msg);
        }
        Error::Internal(msg) => {
            out.push(6);
            put_str(&mut out, msg);
        }
    }
    out
}

/// Decode an [`Error`] from body bytes.
pub fn decode_error(body: &[u8]) -> Result<Error> {
    let mut t = Take::new(body);
    let err = match t.u8()? {
        0 => Error::Parse { msg: t.str()?, offset: t.u64()? as usize },
        1 => Error::UnknownFile(t.str()?),
        2 => {
            let file = t.str()?;
            let n = t.u64()? as usize;
            let mut attrs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                attrs.push(t.str()?);
            }
            Error::DuplicateKey { file, attrs }
        }
        3 => Error::MissingFileKeyword,
        4 => Error::NonNumericAggregate { attr: t.str()? },
        5 => Error::Unavailable(t.str()?),
        6 => Error::Internal(t.str()?),
        tag => return Err(Take::bad(&format!("error tag {tag}"))),
    };
    t.done()?;
    Ok(err)
}

/// Text codec for a classic [`FaultPlan`], so the controller can ship
/// an installed plan to its backend processes.
pub fn fault_plan_to_text(plan: &FaultPlan) -> String {
    let mut out = String::new();
    for e in plan.events() {
        let kind = match e.kind {
            FaultKind::DropReply => "drop".to_string(),
            FaultKind::DelayReplyMs(ms) => format!("delay:{ms}"),
            FaultKind::Crash => "crash".to_string(),
            FaultKind::Panic => "panic".to_string(),
        };
        out.push_str(&format!("{} {} {}\n", e.backend, e.at_request, kind));
    }
    out
}

/// Parse the [`fault_plan_to_text`] representation back into a plan.
pub fn fault_plan_from_text(text: &str) -> Result<FaultPlan> {
    let mut plan = FaultPlan::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = || Error::Internal(format!("wire: bad fault plan line `{line}`"));
        let backend: usize = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let at: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let kind = match parts.next().ok_or_else(bad)? {
            "drop" => FaultKind::DropReply,
            "crash" => FaultKind::Crash,
            "panic" => FaultKind::Panic,
            d if d.starts_with("delay:") => {
                FaultKind::DelayReplyMs(d[6..].parse().map_err(|_| bad())?)
            }
            _ => return Err(bad()),
        };
        plan = plan.with(backend, at, kind);
    }
    Ok(plan)
}

/// Operations a controller (or standby) sends to a backend process.
#[derive(Debug, Clone, PartialEq)]
pub enum WireOp {
    /// Client introduction; the id keys the backend's idempotency
    /// cache and stays constant across reconnects.
    Hello {
        /// Stable client identity.
        client_id: u64,
    },
    /// Create a kernel file.
    CreateFile(String),
    /// Insert a record under a controller-allocated key.
    InsertWithKey(DbKey, Record),
    /// Execute an ABDL request.
    Exec(Request),
    /// Physically remove records by key — the cleanup half of a
    /// rebalance group move (a moved-away copy must not survive to be
    /// resurrected by a later broadcast read).
    DeleteKeys(Vec<DbKey>),
    /// Fetch records by key — the key-scoped read under a rebalance
    /// chunk copy (a whole-file scan per chunk would make every move
    /// O(database)).
    FetchKeys(Vec<DbKey>),
    /// Liveness and epoch probe.
    Ping,
    /// Orderly process shutdown.
    Shutdown,
    /// Install a classic backend fault plan.
    SetFaults(FaultPlan),
    /// WAL-shipping pull from the generation/line position held.
    PullLog {
        /// Snapshot generation the puller holds.
        generation: u64,
        /// Log lines the puller already has at that generation.
        have: u64,
    },
}

impl WireOp {
    /// Encode into a [`Frame`] stamped with `seq` and `epoch`.
    pub fn into_frame(self, seq: u64, epoch: u64) -> Frame {
        let (kind, body) = match self {
            WireOp::Hello { client_id } => {
                let mut b = Vec::new();
                put_u64(&mut b, client_id);
                (kind::HELLO, b)
            }
            WireOp::CreateFile(name) => {
                let mut b = Vec::new();
                put_str(&mut b, &name);
                (kind::CREATE_FILE, b)
            }
            WireOp::InsertWithKey(key, record) => {
                let mut b = Vec::new();
                put_u64(&mut b, key.0);
                put_record(&mut b, &record);
                (kind::INSERT_WITH_KEY, b)
            }
            WireOp::Exec(request) => {
                let mut b = Vec::new();
                put_str(&mut b, &request.to_string());
                (kind::EXEC, b)
            }
            WireOp::DeleteKeys(keys) => {
                let mut b = Vec::new();
                put_u64(&mut b, keys.len() as u64);
                for k in &keys {
                    put_u64(&mut b, k.0);
                }
                (kind::DELETE_KEYS, b)
            }
            WireOp::FetchKeys(keys) => {
                let mut b = Vec::new();
                put_u64(&mut b, keys.len() as u64);
                for k in &keys {
                    put_u64(&mut b, k.0);
                }
                (kind::FETCH_KEYS, b)
            }
            WireOp::Ping => (kind::PING, Vec::new()),
            WireOp::Shutdown => (kind::SHUTDOWN, Vec::new()),
            WireOp::SetFaults(plan) => {
                let mut b = Vec::new();
                put_str(&mut b, &fault_plan_to_text(&plan));
                (kind::SET_FAULTS, b)
            }
            WireOp::PullLog { generation, have } => {
                let mut b = Vec::new();
                put_u64(&mut b, generation);
                put_u64(&mut b, have);
                (kind::PULL_LOG, b)
            }
        };
        Frame { kind, seq, epoch, body }
    }

    /// Decode a request frame.
    pub fn from_frame(frame: &Frame) -> Result<WireOp> {
        let mut t = Take::new(&frame.body);
        let op = match frame.kind {
            kind::HELLO => WireOp::Hello { client_id: t.u64()? },
            kind::CREATE_FILE => WireOp::CreateFile(t.str()?),
            kind::INSERT_WITH_KEY => {
                let key = DbKey(t.u64()?);
                let record = take_record(&mut t)?;
                WireOp::InsertWithKey(key, record)
            }
            kind::EXEC => WireOp::Exec(parse_request(&t.str()?)?),
            kind::DELETE_KEYS => {
                let count = t.u64()?;
                if count > MAX_FRAME as u64 / 8 {
                    return Err(Take::bad("delete-keys count"));
                }
                let mut keys = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    keys.push(DbKey(t.u64()?));
                }
                WireOp::DeleteKeys(keys)
            }
            kind::FETCH_KEYS => {
                let count = t.u64()?;
                if count > MAX_FRAME as u64 {
                    return Err(Take::bad("fetch-keys count"));
                }
                let mut keys = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    keys.push(DbKey(t.u64()?));
                }
                WireOp::FetchKeys(keys)
            }
            kind::PING => WireOp::Ping,
            kind::SHUTDOWN => WireOp::Shutdown,
            kind::SET_FAULTS => WireOp::SetFaults(fault_plan_from_text(&t.str()?)?),
            kind::PULL_LOG => WireOp::PullLog { generation: t.u64()?, have: t.u64()? },
            k => return Err(Take::bad(&format!("request kind {k:#x}"))),
        };
        t.done()?;
        Ok(op)
    }
}

/// Replies a backend (or WAL shipper) sends back.
#[derive(Debug, Clone, PartialEq)]
pub enum WireReply {
    /// Hello acknowledgement with the backend's fence epoch.
    HelloAck {
        /// The backend's current fence epoch.
        fence: u64,
    },
    /// Successful operation result.
    Ok(Response),
    /// Failed operation result.
    Err(Error),
    /// Ping acknowledgement with the backend's fence epoch.
    Pong {
        /// The backend's current fence epoch.
        fence: u64,
    },
    /// WAL-shipping delta (or full state when `full`).
    LogDelta {
        /// Shipper's snapshot generation.
        generation: u64,
        /// Shipper's fence epoch.
        fence: u64,
        /// Snapshot text, present only on a full transfer.
        snapshot: Option<String>,
        /// Log lines: all of them when `full`, the tail past the
        /// puller's position otherwise.
        lines: Vec<String>,
        /// True when the puller's generation was stale and the whole
        /// state (snapshot + every line) was sent.
        full: bool,
    },
}

impl WireReply {
    /// Encode into a [`Frame`] stamped with `seq` and `epoch`.
    pub fn into_frame(self, seq: u64, epoch: u64) -> Frame {
        let (kind, body) = match self {
            WireReply::HelloAck { fence } => {
                let mut b = Vec::new();
                put_u64(&mut b, fence);
                (kind::HELLO_ACK, b)
            }
            WireReply::Ok(resp) => (kind::REPLY_OK, encode_response(&resp)),
            WireReply::Err(err) => (kind::REPLY_ERR, encode_error(&err)),
            WireReply::Pong { fence } => {
                let mut b = Vec::new();
                put_u64(&mut b, fence);
                (kind::PONG, b)
            }
            WireReply::LogDelta { generation, fence, snapshot, lines, full } => {
                let mut b = Vec::new();
                put_u64(&mut b, generation);
                put_u64(&mut b, fence);
                b.push(full as u8);
                match &snapshot {
                    None => b.push(0),
                    Some(text) => {
                        b.push(1);
                        put_str(&mut b, text);
                    }
                }
                put_u64(&mut b, lines.len() as u64);
                for line in &lines {
                    put_str(&mut b, line);
                }
                (kind::LOG_DELTA, b)
            }
        };
        Frame { kind, seq, epoch, body }
    }

    /// Decode a reply frame.
    pub fn from_frame(frame: &Frame) -> Result<WireReply> {
        let mut t = Take::new(&frame.body);
        let reply = match frame.kind {
            kind::HELLO_ACK => WireReply::HelloAck { fence: t.u64()? },
            kind::REPLY_OK => return decode_response(&frame.body).map(WireReply::Ok),
            kind::REPLY_ERR => return decode_error(&frame.body).map(WireReply::Err),
            kind::PONG => WireReply::Pong { fence: t.u64()? },
            kind::LOG_DELTA => {
                let generation = t.u64()?;
                let fence = t.u64()?;
                let full = t.u8()? != 0;
                let snapshot = match t.u8()? {
                    0 => None,
                    1 => Some(t.str()?),
                    tag => return Err(Take::bad(&format!("snapshot tag {tag}"))),
                };
                let n = t.u64()? as usize;
                let mut lines = Vec::with_capacity(n.min(65536));
                for _ in 0..n {
                    lines.push(t.str()?);
                }
                WireReply::LogDelta { generation, fence, snapshot, lines, full }
            }
            k => return Err(Take::bad(&format!("reply kind {k:#x}"))),
        };
        t.done()?;
        Ok(reply)
    }
}

// ---------------------------------------------------------------------
// Network fault plan
// ---------------------------------------------------------------------

/// Which direction of a link a network fault applies to, from the
/// client's (controller's) point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDir {
    /// Frames the controller sends toward the backend.
    Send,
    /// Frames the backend sends toward the controller.
    Recv,
}

/// What a network fault does to the frame it fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFaultKind {
    /// The frame vanishes (the retry path must recover it).
    Drop,
    /// The frame is delivered only after this many milliseconds.
    DelayMs(u64),
    /// The frame is delivered twice (idempotency must absorb it).
    Duplicate,
    /// The frame is held and delivered *after* the next frame on the
    /// same link and direction.
    Reorder,
    /// The link is severed: every later frame in both directions fails
    /// until [`TcpLink::heal`] — a real partition.
    Sever,
}

/// One scheduled network fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFaultEvent {
    /// Link (backend index) the fault fires on.
    pub link: usize,
    /// Direction it applies to.
    pub dir: LinkDir,
    /// Fires on the `at_frame`-th frame in that direction (1-based).
    pub at_frame: u64,
    /// What happens.
    pub kind: NetFaultKind,
}

/// A deterministic schedule of per-link, per-direction network faults.
/// The socket transport consults it on every frame it moves; equal
/// plans produce bit-identical fault sequences, which is what lets the
/// lossy-link convergence test compare digests against a clean run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetFaultPlan {
    events: Vec<NetFaultEvent>,
}

impl NetFaultPlan {
    /// An empty plan (a perfect network).
    pub fn new() -> Self {
        NetFaultPlan::default()
    }

    /// Add an event: link `link`, direction `dir`, firing on that
    /// direction's `at_frame`-th frame.
    pub fn with(mut self, link: usize, dir: LinkDir, at_frame: u64, kind: NetFaultKind) -> Self {
        self.events.push(NetFaultEvent { link, dir, at_frame, kind });
        self
    }

    /// A seeded lossy-but-recoverable plan over `links` links: each
    /// direction of each link independently has a ~1-in-2 chance of one
    /// drop/delay/duplicate/reorder somewhere in its first `horizon`
    /// frames. Severs are deliberately excluded — a seeded plan must
    /// stay inside the retry budget so the workload converges; real
    /// partitions are scheduled explicitly with [`with`](Self::with).
    pub fn seeded(seed: u64, links: usize, horizon: u64) -> Self {
        let mut rng = Prng::seed_from_u64(seed);
        let mut plan = NetFaultPlan::new();
        for link in 0..links {
            for dir in [LinkDir::Send, LinkDir::Recv] {
                if !rng.chance(1, 2) {
                    continue;
                }
                let at_frame = 2 + rng.next_u64() % horizon.max(1);
                let kind = match rng.index(4) {
                    0 => NetFaultKind::Drop,
                    1 => NetFaultKind::DelayMs(1 + rng.next_u64() % 10),
                    2 => NetFaultKind::Duplicate,
                    _ => NetFaultKind::Reorder,
                };
                plan.events.push(NetFaultEvent { link, dir, at_frame, kind });
            }
        }
        plan
    }

    /// The scheduled events.
    pub fn events(&self) -> &[NetFaultEvent] {
        &self.events
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The fault (if any) firing on `link`'s `frame_no`-th frame in
    /// direction `dir`.
    pub fn action(&self, link: usize, dir: LinkDir, frame_no: u64) -> Option<NetFaultKind> {
        self.events
            .iter()
            .find(|e| e.link == link && e.dir == dir && e.at_frame == frame_no)
            .map(|e| e.kind)
    }
}

// ---------------------------------------------------------------------
// Client link
// ---------------------------------------------------------------------

/// Why a [`TcpLink`] receive produced no frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkError {
    /// The wait window expired with no frame (retry candidate).
    Timeout,
    /// The connection is gone (closed, reset, or severed).
    Closed,
}

/// A fault-injectable framed TCP connection from the controller to one
/// backend. All injected faults are applied on the client side — the
/// send direction on the write path, the receive direction on the read
/// path — which keeps a seeded plan deterministic: the controller is
/// single-threaded per request round, so frame counters advance in
/// program order.
#[derive(Debug)]
pub struct TcpLink {
    index: usize,
    addr: SocketAddr,
    client_id: u64,
    plan: Arc<Mutex<NetFaultPlan>>,
    stream: Option<TcpStream>,
    reader: FrameReader,
    frames_sent: u64,
    frames_recv: u64,
    /// Frame held back by a send-direction Reorder, written after the
    /// next outgoing frame.
    held_send: Option<Vec<u8>>,
    /// Frame held back by a recv-direction Reorder, delivered after
    /// the next incoming frame.
    held_recv: Option<Frame>,
    /// Frames ready to deliver before touching the socket (duplicates,
    /// released reorders).
    pending_in: VecDeque<Frame>,
    severed: bool,
}

impl TcpLink {
    /// A link to `addr` identifying itself as `client_id`; faults on
    /// this link consult `plan` under link id `index`.
    pub fn new(
        index: usize,
        addr: SocketAddr,
        client_id: u64,
        plan: Arc<Mutex<NetFaultPlan>>,
    ) -> Self {
        TcpLink {
            index,
            addr,
            client_id,
            plan,
            stream: None,
            reader: FrameReader::new(),
            frames_sent: 0,
            frames_recv: 0,
            held_send: None,
            held_recv: None,
            pending_in: VecDeque::new(),
            severed: false,
        }
    }

    /// The backend address this link dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sever the link: sends and receives fail until [`heal`](Self::heal).
    pub fn sever(&mut self) {
        self.severed = true;
        self.stream = None;
        self.reader = FrameReader::new();
        self.pending_in.clear();
        self.held_recv = None;
        self.held_send = None;
    }

    /// Heal a severed link (the next send reconnects).
    pub fn heal(&mut self) {
        self.severed = false;
    }

    /// True while the link is severed.
    pub fn is_severed(&self) -> bool {
        self.severed
    }

    /// True when a TCP connection is currently established.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Establish (or re-establish) the connection: dial, send `Hello`
    /// at `epoch`, and wait up to `timeout` for the `HelloAck`.
    /// Returns the backend's fence epoch.
    pub fn connect(&mut self, epoch: u64, timeout: Duration) -> std::result::Result<u64, LinkError> {
        if self.severed {
            return Err(LinkError::Closed);
        }
        let stream = TcpStream::connect_timeout(&self.addr, timeout).map_err(|_| LinkError::Closed)?;
        stream.set_nodelay(true).ok();
        self.stream = Some(stream);
        self.reader = FrameReader::new();
        let hello = WireOp::Hello { client_id: self.client_id }.into_frame(0, epoch);
        self.write_raw(&hello.to_bytes())?;
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return Err(LinkError::Timeout);
            }
            match self.recv_raw(left)? {
                Some(frame) if frame.kind == kind::HELLO_ACK => {
                    let mut t = Take::new(&frame.body);
                    return t.u64().map_err(|_| LinkError::Closed);
                }
                Some(_) => continue,
                None => return Err(LinkError::Timeout),
            }
        }
    }

    fn write_raw(&mut self, bytes: &[u8]) -> std::result::Result<(), LinkError> {
        let stream = self.stream.as_mut().ok_or(LinkError::Closed)?;
        match stream.write_all(bytes).and_then(|_| stream.flush()) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.stream = None;
                Err(LinkError::Closed)
            }
        }
    }

    /// Send one frame, applying send-direction faults. `Drop` consumes
    /// the frame silently (the caller's retry path recovers it);
    /// `Sever` partitions the link.
    pub fn send(&mut self, frame: &Frame) -> std::result::Result<(), LinkError> {
        if self.severed {
            return Err(LinkError::Closed);
        }
        if self.stream.is_none() {
            return Err(LinkError::Closed);
        }
        self.frames_sent += 1;
        let action = {
            let plan = self.plan.lock().expect("net plan lock");
            plan.action(self.index, LinkDir::Send, self.frames_sent)
        };
        let bytes = frame.to_bytes();
        match action {
            Some(NetFaultKind::Drop) => return Ok(()),
            Some(NetFaultKind::DelayMs(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                self.write_raw(&bytes)?;
            }
            Some(NetFaultKind::Duplicate) => {
                self.write_raw(&bytes)?;
                self.write_raw(&bytes)?;
            }
            Some(NetFaultKind::Reorder) => {
                self.held_send = Some(bytes);
                return Ok(());
            }
            Some(NetFaultKind::Sever) => {
                self.sever();
                return Err(LinkError::Closed);
            }
            None => self.write_raw(&bytes)?,
        }
        if let Some(held) = self.held_send.take() {
            self.write_raw(&held)?;
        }
        Ok(())
    }

    /// Receive one frame within `timeout`, applying recv-direction
    /// faults. Corrupt frames are skipped in place; `Ok(None)` means
    /// the window expired.
    pub fn recv(&mut self, timeout: Duration) -> std::result::Result<Option<Frame>, LinkError> {
        if self.severed {
            return Err(LinkError::Closed);
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(frame) = self.pending_in.pop_front() {
                return Ok(Some(frame));
            }
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return Ok(None);
            }
            let frame = match self.recv_raw(left)? {
                Some(frame) => frame,
                None => return Ok(None),
            };
            self.frames_recv += 1;
            let action = {
                let plan = self.plan.lock().expect("net plan lock");
                plan.action(self.index, LinkDir::Recv, self.frames_recv)
            };
            let deliver = match action {
                Some(NetFaultKind::Drop) => continue,
                Some(NetFaultKind::DelayMs(ms)) => {
                    std::thread::sleep(Duration::from_millis(ms));
                    frame
                }
                Some(NetFaultKind::Duplicate) => {
                    self.pending_in.push_back(frame.clone());
                    frame
                }
                Some(NetFaultKind::Reorder) => {
                    self.held_recv = Some(frame);
                    continue;
                }
                Some(NetFaultKind::Sever) => {
                    self.sever();
                    return Err(LinkError::Closed);
                }
                None => frame,
            };
            if let Some(held) = self.held_recv.take() {
                self.pending_in.push_back(held);
            }
            return Ok(Some(deliver));
        }
    }

    /// Read one verified frame off the socket (no fault injection),
    /// skipping corrupt regions, within `timeout`. `Ok(None)` = window
    /// expired; partial frame progress is retained for the next call.
    fn recv_raw(&mut self, timeout: Duration) -> std::result::Result<Option<Frame>, LinkError> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return Ok(None);
            }
            let stream = self.stream.as_mut().ok_or(LinkError::Closed)?;
            stream.set_read_timeout(Some(left.max(Duration::from_millis(1)))).ok();
            match self.reader.read_from(stream) {
                Ok(FrameRead::Frame(frame)) => return Ok(Some(frame)),
                Ok(FrameRead::Corrupt) => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(_) => {
                    self.stream = None;
                    self.reader = FrameReader::new();
                    return Err(LinkError::Closed);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Backend process: launcher and server
// ---------------------------------------------------------------------

/// Locate the `mbds-backend` helper binary: the `MBDS_BACKEND_BIN`
/// environment variable wins; otherwise look next to the current
/// executable and one directory up (test binaries live in
/// `target/*/deps`, sibling bins in `target/*`).
pub fn backend_binary() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("MBDS_BACKEND_BIN") {
        let path = PathBuf::from(path);
        if path.exists() {
            return Some(path);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let name = format!("mbds-backend{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent();
    for _ in 0..2 {
        let d = dir?;
        let cand = d.join(&name);
        if cand.exists() {
            return Some(cand);
        }
        dir = d.parent();
    }
    None
}

/// A spawned backend process and the address it listens on.
#[derive(Debug)]
pub struct BackendProc {
    /// The OS child process. Dropping (or killing) it closes its stdin
    /// pipe, which the backend's watchdog treats as an exit order — no
    /// backend outlives every controller handle.
    pub child: Child,
    /// The backend's listening address.
    pub addr: SocketAddr,
}

/// Spawn one backend process for logical index `index` and wait for
/// its `MBDS-PORT` handshake line.
pub fn spawn_backend_process(index: usize) -> Result<BackendProc> {
    let bin = backend_binary().ok_or_else(|| {
        Error::Internal(
            "mbds-backend binary not found (build it, or set MBDS_BACKEND_BIN)".to_string(),
        )
    })?;
    let mut child = Command::new(&bin)
        .arg(index.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| Error::Internal(format!("spawn {}: {e}", bin.display())))?;
    let stdout = child.stdout.take().ok_or_else(|| {
        Error::Internal("backend child stdout not captured".to_string())
    })?;
    let mut lines = io::BufReader::new(stdout).lines();
    let line = match lines.next() {
        Some(Ok(line)) => line,
        other => {
            child.kill().ok();
            return Err(Error::Internal(format!(
                "backend {index} did not hand its port over: {other:?}"
            )));
        }
    };
    let port: u16 = line
        .strip_prefix("MBDS-PORT ")
        .and_then(|p| p.trim().parse().ok())
        .ok_or_else(|| {
            Error::Internal(format!("backend {index} handshake was `{line}`, not MBDS-PORT"))
        })?;
    // Keep stdout drained so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    let addr = SocketAddr::from(([127, 0, 0, 1], port));
    Ok(BackendProc { child, addr })
}

/// Per-process state of one backend server.
struct ServerState {
    index: usize,
    store: Store,
    /// Highest controller epoch ever seen on any frame; lower-epoch
    /// requests are fenced with the same error the in-process bus uses.
    fence: u64,
    /// Messages handled (creates, inserts, execs — not probes or
    /// retransmitted duplicates), driving the classic fault plan on the
    /// same counter the in-process backend loop uses.
    handled: u64,
    faults: FaultPlan,
    /// Per-client reply cache: `client_id → seq → encoded reply frame`.
    /// A retransmitted seq is answered from here without re-applying
    /// the operation.
    replies: BTreeMap<u64, BTreeMap<u64, Frame>>,
}

/// How many past replies are retained per client for idempotent
/// retransmission. The controller's retry budget is tiny, so a short
/// window is plenty.
const REPLY_CACHE: u64 = 256;

fn apply_op(state: &mut ServerState, op: &WireOp) -> Result<Response> {
    match op {
        WireOp::CreateFile(name) => {
            state.store.create_file(name);
            Ok(Response::default())
        }
        WireOp::InsertWithKey(key, record) => state
            .store
            .insert_with_key(*key, record.clone())
            .map(|()| Response::with_affected(1, Default::default())),
        WireOp::Exec(request) => state.store.execute(request),
        WireOp::DeleteKeys(keys) => {
            let removed =
                keys.iter().filter(|&&k| state.store.remove_by_key(k).is_some()).count();
            Ok(Response::with_affected(removed, Default::default()))
        }
        WireOp::FetchKeys(keys) => {
            let records: Vec<(DbKey, Record)> = keys
                .iter()
                .filter_map(|&k| state.store.record_by_key(k).map(|r| (k, r.clone())))
                .collect();
            Ok(Response::with_records(records, Default::default()))
        }
        _ => Err(Error::Internal("wire: apply_op on a non-apply op".to_string())),
    }
}

/// Serve one accepted connection against the shared state. Returns
/// when the peer hangs up; `Shutdown` exits the whole process.
fn serve_conn(stream: TcpStream, state: &Arc<Mutex<ServerState>>) {
    stream.set_nodelay(true).ok();
    let mut reader = FrameReader::new();
    let mut read_side = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut write_side = stream;
    let mut client_id = 0u64;
    loop {
        let frame = match reader.read_from(&mut read_side) {
            Ok(FrameRead::Frame(frame)) => frame,
            Ok(FrameRead::Corrupt) => continue,
            Err(_) => return,
        };
        let op = match WireOp::from_frame(&frame) {
            Ok(op) => op,
            Err(_) => continue,
        };
        let mut st = state.lock().expect("server state lock");
        if frame.epoch > st.fence {
            st.fence = frame.epoch;
        }
        let fenced = frame.epoch < st.fence;
        let mut delay_ms = 0u64;
        let reply: Option<Frame> = match &op {
            WireOp::Hello { client_id: id } => {
                client_id = *id;
                Some(WireReply::HelloAck { fence: st.fence }.into_frame(frame.seq, st.fence))
            }
            WireOp::Ping => {
                Some(WireReply::Pong { fence: st.fence }.into_frame(frame.seq, st.fence))
            }
            WireOp::Shutdown => {
                if fenced {
                    // A stale controller may not stop a fenced backend.
                    None
                } else {
                    std::process::exit(0);
                }
            }
            WireOp::SetFaults(plan) => {
                st.faults = plan.clone();
                Some(WireReply::Ok(Response::default()).into_frame(frame.seq, st.fence))
            }
            WireOp::PullLog { .. } => {
                let err = Error::Internal("wire: backend does not ship logs".to_string());
                Some(WireReply::Err(err).into_frame(frame.seq, st.fence))
            }
            WireOp::CreateFile(_)
            | WireOp::InsertWithKey(..)
            | WireOp::Exec(_)
            | WireOp::DeleteKeys(_)
            | WireOp::FetchKeys(_) => {
                if fenced {
                    let index = st.index;
                    let err = Error::Unavailable(format!(
                        "backend {index}: request fenced (epoch {} < fence {})",
                        frame.epoch, st.fence
                    ));
                    Some(WireReply::Err(err).into_frame(frame.seq, st.fence))
                } else if let Some(cached) =
                    st.replies.get(&client_id).and_then(|m| m.get(&frame.seq)).cloned()
                {
                    // Retransmission: answer from the cache, apply nothing.
                    Some(cached)
                } else {
                    st.handled += 1;
                    let action = st.faults.action(st.index, st.handled);
                    match action {
                        Some(FaultKind::Crash) => std::process::exit(1),
                        Some(FaultKind::Panic) => std::process::abort(),
                        _ => {}
                    }
                    let result = apply_op(&mut st, &op);
                    let reply = match result {
                        Ok(resp) => WireReply::Ok(resp).into_frame(frame.seq, st.fence),
                        Err(err) => WireReply::Err(err).into_frame(frame.seq, st.fence),
                    };
                    let cache = st.replies.entry(client_id).or_default();
                    cache.insert(frame.seq, reply.clone());
                    while let Some((&low, _)) = cache.first_key_value() {
                        if low + REPLY_CACHE < frame.seq {
                            cache.remove(&low);
                        } else {
                            break;
                        }
                    }
                    match action {
                        Some(FaultKind::DropReply) => None,
                        Some(FaultKind::DelayReplyMs(ms)) => {
                            delay_ms = ms;
                            Some(reply)
                        }
                        _ => Some(reply),
                    }
                }
            }
        };
        drop(st);
        if delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        if let Some(reply) = reply {
            if write_side.write_all(&reply.to_bytes()).and_then(|_| write_side.flush()).is_err() {
                return;
            }
        }
    }
}

/// Run a backend server for logical index `index` on an ephemeral
/// loopback port, announce it as `MBDS-PORT <port>` on stdout, and
/// serve until `Shutdown` (or stdin EOF — the watchdog that ties the
/// process's life to its last controller handle). This is the body of
/// the `mbds-backend` binary.
pub fn backend_process_main(index: usize) -> ! {
    let listener = match TcpListener::bind("127.0.0.1:0") {
        Ok(l) => l,
        Err(e) => {
            eprintln!("mbds-backend {index}: bind: {e}");
            std::process::exit(3);
        }
    };
    let port = listener.local_addr().map(|a| a.port()).unwrap_or(0);
    println!("MBDS-PORT {port}");
    io::stdout().flush().ok();
    // Watchdog: when every holder of our stdin pipe is gone, so is the
    // cluster that owned us.
    std::thread::spawn(|| {
        let mut sink = Vec::new();
        let _ = io::stdin().lock().read_to_end(&mut sink);
        std::process::exit(0);
    });
    let state = Arc::new(Mutex::new(ServerState {
        index,
        store: Store::new(),
        fence: 0,
        handled: 0,
        faults: FaultPlan::new(),
        replies: BTreeMap::new(),
    }));
    for conn in listener.incoming() {
        match conn {
            Ok(stream) => {
                let state = Arc::clone(&state);
                std::thread::spawn(move || serve_conn(stream, &state));
            }
            Err(_) => continue,
        }
    }
    std::process::exit(0);
}

// ---------------------------------------------------------------------
// WAL shipping: ShipServer (primary side) and RemoteLog (standby side)
// ---------------------------------------------------------------------

/// Serves the primary's log store to remote pullers — the network form
/// of handing the standby a cloned [`MemLog`](crate::MemLog). Holds its
/// own read handle onto the same underlying store.
pub struct ShipServer {
    addr: SocketAddr,
    stop: Arc<Mutex<bool>>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ShipServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShipServer").field("addr", &self.addr).finish()
    }
}

impl ShipServer {
    /// Start serving `store` on an ephemeral loopback port.
    pub fn spawn(store: Box<dyn LogStore>) -> Result<ShipServer> {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| Error::Internal(format!("ship server bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| Error::Internal(format!("ship server addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Internal(format!("ship server nonblocking: {e}")))?;
        let stop = Arc::new(Mutex::new(false));
        let stop2 = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            let store = Mutex::new(store);
            loop {
                if *stop2.lock().expect("ship stop lock") {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => Self::serve_pull(stream, &store),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => return,
                }
            }
        });
        Ok(ShipServer { addr, stop, join: Some(join) })
    }

    /// The address pullers dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn serve_pull(mut stream: TcpStream, store: &Mutex<Box<dyn LogStore>>) {
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_millis(500))).ok();
        let mut reader = FrameReader::new();
        loop {
            let frame = match reader.read_from(&mut stream) {
                Ok(FrameRead::Frame(frame)) => frame,
                Ok(FrameRead::Corrupt) => continue,
                Err(_) => return,
            };
            let (have_gen, have) = match WireOp::from_frame(&frame) {
                Ok(WireOp::PullLog { generation, have }) => (generation, have),
                _ => continue,
            };
            let reply = {
                let store = store.lock().expect("ship store lock");
                let generation = store.generation().unwrap_or(0);
                let fence = store.fence_epoch().unwrap_or(0);
                let lines = store.log_lines().unwrap_or_default();
                if generation != have_gen {
                    let snapshot = store.read_snapshot().ok().flatten();
                    WireReply::LogDelta { generation, fence, snapshot, lines, full: true }
                } else {
                    let tail = lines.get(have as usize..).unwrap_or(&[]).to_vec();
                    WireReply::LogDelta { generation, fence, snapshot: None, lines: tail, full: false }
                }
            };
            let bytes = reply.into_frame(frame.seq, 0).to_bytes();
            if stream.write_all(&bytes).and_then(|_| stream.flush()).is_err() {
                return;
            }
        }
    }
}

impl Drop for ShipServer {
    fn drop(&mut self) {
        *self.stop.lock().expect("ship stop lock") = true;
        if let Some(join) = self.join.take() {
            join.join().ok();
        }
    }
}

#[derive(Debug, Default)]
struct RemoteLogInner {
    snapshot: Option<String>,
    lines: Vec<String>,
    fence: u64,
    generation: u64,
    /// While true, reads sync from the primary first. Any local write
    /// permanently detaches — after promotion the new lineage's log is
    /// local, never the partitioned old primary's.
    online: bool,
    seq: u64,
    /// Send-direction frame counter for the fault plan (pull requests).
    pulls: u64,
    /// Recv-direction frame counter for the fault plan (pull replies).
    replies: u64,
    /// Reply held back by a recv-direction `Reorder`, with the `have`
    /// offset its pull carried; delivered after the next reply.
    held: Option<(WireReply, u64)>,
    /// A `Sever` fault partitions the ship link: later syncs serve the
    /// cached mirror, exactly like an unreachable primary.
    severed: bool,
}

/// The standby's view of the primary's log, pulled over TCP. Implements
/// [`LogStore`] against a local replica: reads first sync from the
/// primary when reachable (serving the cached state when it is not —
/// a partition must not wedge the standby), and the first local *write*
/// permanently detaches the replica, because a write means promotion
/// has begun and the log's ownership has moved here.
pub struct RemoteLog {
    addr: SocketAddr,
    inner: Arc<Mutex<RemoteLogInner>>,
    /// How long one pull may take before the standby falls back to its
    /// cached state.
    timeout: Duration,
    /// Optional fault plan consulted on every pull (send direction) and
    /// reply (recv direction) under link id `link`.
    plan: Option<Arc<Mutex<NetFaultPlan>>>,
    link: usize,
}

impl std::fmt::Debug for RemoteLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteLog").field("addr", &self.addr).finish()
    }
}

impl RemoteLog {
    /// A remote log pulling from `addr` (a [`ShipServer`]).
    pub fn connect(addr: SocketAddr) -> RemoteLog {
        RemoteLog {
            addr,
            inner: Arc::new(Mutex::new(RemoteLogInner { online: true, ..Default::default() })),
            timeout: Duration::from_millis(500),
            plan: None,
            link: 0,
        }
    }

    /// Override the per-pull timeout (tests shorten it).
    pub fn with_timeout(mut self, timeout: Duration) -> RemoteLog {
        self.timeout = timeout;
        self
    }

    /// Subject the ship link to `plan` under link id `link`: the send
    /// direction counts pull requests, the recv direction counts pull
    /// replies. Because each pull is its own one-shot connection, a
    /// send-direction `Reorder` degenerates to a short delay (there is
    /// no later frame on the same connection to slip behind); a
    /// recv-direction `Reorder` holds the reply and delivers it — by
    /// then stale — after the *next* pull's reply.
    pub fn with_fault_plan(mut self, link: usize, plan: Arc<Mutex<NetFaultPlan>>) -> RemoteLog {
        self.plan = Some(plan);
        self.link = link;
        self
    }

    fn plan_action(&self, dir: LinkDir, frame_no: u64) -> Option<NetFaultKind> {
        let plan = self.plan.as_ref()?;
        let plan = plan.lock().expect("net plan lock");
        plan.action(self.link, dir, frame_no)
    }

    /// True while reads still sync from the primary.
    pub fn is_online(&self) -> bool {
        self.inner.lock().expect("remote log lock").online
    }

    /// Pull the newest state from the primary into the local replica.
    /// Unreachable or severed primaries leave the cache untouched.
    fn sync(&self) {
        let mut inner = self.inner.lock().expect("remote log lock");
        if !inner.online || inner.severed {
            return;
        }
        inner.seq += 1;
        let seq = inner.seq;
        let have = inner.lines.len() as u64;
        let pull = WireOp::PullLog { generation: inner.generation, have }.into_frame(seq, 0);

        // Send-direction faults on the pull request.
        inner.pulls += 1;
        match self.plan_action(LinkDir::Send, inner.pulls) {
            Some(NetFaultKind::Drop) => return, // pull lost; the next read retries
            Some(NetFaultKind::DelayMs(ms)) => std::thread::sleep(Duration::from_millis(ms)),
            Some(NetFaultKind::Reorder) => std::thread::sleep(Duration::from_millis(1)),
            Some(NetFaultKind::Sever) => {
                inner.severed = true;
                return;
            }
            Some(NetFaultKind::Duplicate) | None => {}
        }
        let duplicate_pull =
            matches!(self.plan_action(LinkDir::Send, inner.pulls), Some(NetFaultKind::Duplicate));

        let reply = (|| -> std::io::Result<Option<Frame>> {
            let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(self.timeout)).ok();
            stream.write_all(&pull.to_bytes())?;
            if duplicate_pull {
                // The wire delivers the pull twice; the server answers
                // twice. Only the first reply is read — the apply path
                // must make the duplicate harmless either way.
                stream.write_all(&pull.to_bytes())?;
            }
            stream.flush()?;
            let mut reader = FrameReader::new();
            loop {
                match reader.read_from(&mut stream) {
                    Ok(FrameRead::Frame(frame)) => return Ok(Some(frame)),
                    Ok(FrameRead::Corrupt) => continue,
                    Err(e) => return Err(e),
                }
            }
        })();
        let Ok(Some(frame)) = reply else { return };
        let Ok(reply) = WireReply::from_frame(&frame) else { return };

        // Recv-direction faults on the reply.
        inner.replies += 1;
        match self.plan_action(LinkDir::Recv, inner.replies) {
            Some(NetFaultKind::Drop) => return,
            Some(NetFaultKind::DelayMs(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                Self::apply_reply(&mut inner, reply, have);
            }
            Some(NetFaultKind::Duplicate) => {
                Self::apply_reply(&mut inner, reply.clone(), have);
                Self::apply_reply(&mut inner, reply, have);
            }
            Some(NetFaultKind::Reorder) => {
                // Held back: this reply arrives — stale — after the
                // next pull's reply.
                inner.held = Some((reply, have));
                return;
            }
            Some(NetFaultKind::Sever) => {
                inner.severed = true;
                return;
            }
            None => Self::apply_reply(&mut inner, reply, have),
        }
        if let Some((stale, stale_have)) = inner.held.take() {
            Self::apply_reply(&mut inner, stale, stale_have);
        }
    }

    /// Fold one pull reply into the replica. Replies can arrive late,
    /// twice, or out of order under a fault plan, so application is
    /// guarded: a tail reply splices only when the mirror still sits
    /// exactly at the `have` offset its pull asked for (a duplicate or
    /// stale tail would double-append), and a full reply never regresses
    /// the mirror to an older generation or a shorter same-generation
    /// history. The fence is monotonic regardless — fences only rise.
    fn apply_reply(inner: &mut RemoteLogInner, reply: WireReply, have: u64) {
        let WireReply::LogDelta { generation, fence, snapshot, lines, full } = reply else {
            return;
        };
        if full {
            let regresses = generation < inner.generation
                || (generation == inner.generation && lines.len() < inner.lines.len());
            if !regresses {
                inner.snapshot = snapshot;
                inner.lines = lines;
                inner.generation = generation;
            }
        } else if generation == inner.generation && inner.lines.len() as u64 == have {
            inner.lines.extend(lines);
        }
        inner.fence = inner.fence.max(fence);
    }

    fn detach(inner: &mut RemoteLogInner) {
        inner.online = false;
    }
}

impl LogStore for RemoteLog {
    fn append_line(&mut self, line: &str) -> Result<()> {
        let mut inner = self.inner.lock().expect("remote log lock");
        Self::detach(&mut inner);
        inner.lines.push(line.to_owned());
        Ok(())
    }

    fn log_lines(&self) -> Result<Vec<String>> {
        self.sync();
        Ok(self.inner.lock().expect("remote log lock").lines.clone())
    }

    fn read_snapshot(&self) -> Result<Option<String>> {
        self.sync();
        Ok(self.inner.lock().expect("remote log lock").snapshot.clone())
    }

    fn install_snapshot(&mut self, text: &str) -> Result<()> {
        let mut inner = self.inner.lock().expect("remote log lock");
        Self::detach(&mut inner);
        inner.snapshot = Some(text.to_owned());
        inner.lines.clear();
        inner.generation += 1;
        Ok(())
    }

    fn has_state(&self) -> Result<bool> {
        self.sync();
        let inner = self.inner.lock().expect("remote log lock");
        Ok(inner.snapshot.is_some() || !inner.lines.is_empty())
    }

    fn drop_torn_tail(&mut self, keep: usize) -> Result<()> {
        let mut inner = self.inner.lock().expect("remote log lock");
        Self::detach(&mut inner);
        inner.lines.truncate(keep);
        Ok(())
    }

    fn fence_epoch(&self) -> Result<u64> {
        self.sync();
        Ok(self.inner.lock().expect("remote log lock").fence)
    }

    fn set_fence_epoch(&mut self, epoch: u64) -> Result<()> {
        let mut inner = self.inner.lock().expect("remote log lock");
        Self::detach(&mut inner);
        inner.fence = inner.fence.max(epoch);
        Ok(())
    }

    fn generation(&self) -> Result<u64> {
        self.sync();
        Ok(self.inner.lock().expect("remote log lock").generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemLog;

    fn seeded_record(rng: &mut Prng) -> Record {
        let mut rec = Record::from_pairs([("FILE", Value::str("wire"))]);
        for i in 0..rng.index(4) {
            let val = match rng.index(4) {
                0 => Value::Null,
                1 => Value::Int(rng.next_u64() as i64),
                2 => Value::Float((rng.next_u64() % 10_000) as f64 / 7.0),
                _ => Value::str(format!("s{}", rng.next_u64() % 1000)),
            };
            rec.set(format!("a{i}"), val);
        }
        rec
    }

    fn seeded_frame(rng: &mut Prng) -> Frame {
        let seq = rng.next_u64();
        let epoch = rng.next_u64() % 16;
        match rng.index(6) {
            0 => WireOp::Hello { client_id: rng.next_u64() }.into_frame(seq, epoch),
            1 => WireOp::CreateFile(format!("f{}", rng.next_u64() % 100)).into_frame(seq, epoch),
            2 => WireOp::InsertWithKey(DbKey(rng.next_u64()), seeded_record(rng))
                .into_frame(seq, epoch),
            3 => WireOp::Ping.into_frame(seq, epoch),
            4 => {
                let mut resp = Response::with_records(
                    vec![(DbKey(rng.next_u64() % 50), seeded_record(rng))],
                    ExecStats { records_examined: rng.next_u64() % 99, ..Default::default() },
                );
                resp.degraded = rng.chance(1, 2);
                resp.unavailable_backends = vec![rng.index(8)];
                resp.messages_sent = rng.next_u64() % 30;
                if rng.chance(1, 3) {
                    resp.groups = Some(vec![GroupRow {
                        group: Some(Value::Int(rng.next_u64() as i64)),
                        values: vec![Value::Float(0.5 + rng.index(9) as f64)],
                    }]);
                }
                WireReply::Ok(resp).into_frame(seq, epoch)
            }
            _ => WireReply::Err(Error::DuplicateKey {
                file: "wire".into(),
                attrs: vec![format!("a{}", rng.index(3))],
            })
            .into_frame(seq, epoch),
        }
    }

    /// Fuzz-style property test: random envelopes survive the byte
    /// round-trip exactly, including float bit patterns.
    #[test]
    fn random_envelopes_round_trip() {
        let mut rng = Prng::seed_from_u64(2024);
        for _ in 0..500 {
            let frame = seeded_frame(&mut rng);
            let bytes = frame.to_bytes();
            let mut reader = FrameReader::new();
            let mut cursor = io::Cursor::new(&bytes);
            match reader.read_from(&mut cursor).expect("read") {
                FrameRead::Frame(out) => {
                    assert_eq!(out, frame);
                    // And the typed layer round-trips too.
                    match out.kind {
                        k if k >= kind::REPLY_OK => {
                            let reply = WireReply::from_frame(&out).expect("reply decode");
                            assert_eq!(reply.into_frame(out.seq, out.epoch), frame);
                        }
                        _ => {
                            let op = WireOp::from_frame(&out).expect("op decode");
                            assert_eq!(op.into_frame(out.seq, out.epoch), frame);
                        }
                    }
                }
                FrameRead::Corrupt => panic!("clean frame read as corrupt"),
            }
        }
    }

    /// A bit-flipped frame fails its CRC and is skipped in place; the
    /// stream stays aligned and the next frame decodes (the torn-tail
    /// discipline, on a socket).
    #[test]
    fn bit_flipped_frame_is_skipped_without_desync() {
        let a = WireOp::CreateFile("alpha".into()).into_frame(1, 0);
        let b = WireOp::CreateFile("beta".into()).into_frame(2, 0);
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..64 {
            let mut bytes = a.to_bytes();
            // Flip one payload bit (past the 8-byte len+crc header).
            let at = 8 + rng.index(bytes.len() - 8);
            bytes[at] ^= 1 << rng.index(8);
            bytes.extend_from_slice(&b.to_bytes());
            let mut reader = FrameReader::new();
            let mut cursor = io::Cursor::new(&bytes);
            assert!(
                matches!(reader.read_from(&mut cursor).expect("read"), FrameRead::Corrupt),
                "flipped frame must fail its checksum"
            );
            match reader.read_from(&mut cursor).expect("read") {
                FrameRead::Frame(out) => assert_eq!(out, b),
                FrameRead::Corrupt => panic!("second frame lost: stream desynced"),
            }
        }
    }

    /// A truncated stream surfaces as EOF, never a bogus frame, and an
    /// interrupted read keeps its partial progress.
    #[test]
    fn truncated_frames_are_eof_and_partial_reads_resume() {
        let frame = WireOp::Exec(parse_request("RETRIEVE (FILE = f) (*)").unwrap())
            .into_frame(9, 3);
        let bytes = frame.to_bytes();
        for cut in 0..bytes.len() {
            let mut reader = FrameReader::new();
            let mut cursor = io::Cursor::new(&bytes[..cut]);
            let err = reader.read_from(&mut cursor).expect_err("truncated");
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
            // Feed the remainder: the reader resumes and completes.
            let mut rest = io::Cursor::new(&bytes[cut..]);
            match reader.read_from(&mut rest).expect("resume") {
                FrameRead::Frame(out) => assert_eq!(out, frame),
                FrameRead::Corrupt => panic!("resumed frame corrupt"),
            }
        }
    }

    #[test]
    fn insane_length_is_fatal() {
        let mut bytes = WireOp::Ping.into_frame(1, 0).to_bytes();
        bytes[0..4].copy_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut reader = FrameReader::new();
        let err = reader
            .read_from(&mut io::Cursor::new(&bytes))
            .expect_err("oversized length must be fatal");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn fault_plan_text_round_trips() {
        let plan = FaultPlan::new()
            .with(0, 3, FaultKind::DropReply)
            .with(2, 7, FaultKind::DelayReplyMs(15))
            .with(1, 1, FaultKind::Crash)
            .with(3, 9, FaultKind::Panic);
        let text = fault_plan_to_text(&plan);
        assert_eq!(fault_plan_from_text(&text).expect("parse"), plan);
        assert_eq!(fault_plan_from_text("").expect("empty"), FaultPlan::new());
        assert!(fault_plan_from_text("x y z").is_err());
    }

    #[test]
    fn seeded_net_plans_are_reproducible_and_never_sever() {
        let a = NetFaultPlan::seeded(41, 6, 40);
        let b = NetFaultPlan::seeded(41, 6, 40);
        assert_eq!(a, b);
        assert_ne!(a, NetFaultPlan::seeded(42, 6, 40));
        assert!(!a.is_empty(), "seed 41 over 12 link-directions should fire something");
        for e in a.events() {
            assert_ne!(e.kind, NetFaultKind::Sever, "seeded plans must stay recoverable");
        }
    }

    #[test]
    fn net_plan_lookup_matches_events() {
        let plan = NetFaultPlan::new()
            .with(1, LinkDir::Send, 4, NetFaultKind::Drop)
            .with(1, LinkDir::Recv, 4, NetFaultKind::Duplicate);
        assert_eq!(plan.action(1, LinkDir::Send, 4), Some(NetFaultKind::Drop));
        assert_eq!(plan.action(1, LinkDir::Recv, 4), Some(NetFaultKind::Duplicate));
        assert_eq!(plan.action(1, LinkDir::Send, 5), None);
        assert_eq!(plan.action(0, LinkDir::Send, 4), None);
    }

    /// ShipServer + RemoteLog: the standby's replica tracks the
    /// primary's log over TCP — snapshot installs (generation bumps)
    /// included — and a local write permanently detaches it.
    #[test]
    fn remote_log_tracks_primary_and_detaches_on_write() {
        let primary = MemLog::new();
        let mut writer: Box<dyn LogStore> = Box::new(primary.clone());
        writer.append_line("one").unwrap();
        writer.set_fence_epoch(2).unwrap();
        let server = ShipServer::spawn(Box::new(primary.clone())).expect("ship server");
        let mut remote = RemoteLog::connect(server.addr());
        assert_eq!(remote.log_lines().unwrap(), vec!["one".to_string()]);
        assert_eq!(remote.fence_epoch().unwrap(), 2);
        assert!(remote.has_state().unwrap());

        // Delta pull.
        writer.append_line("two").unwrap();
        assert_eq!(remote.log_lines().unwrap(), vec!["one".to_string(), "two".to_string()]);

        // Generation bump forces a full refresh.
        writer.install_snapshot("snap!").unwrap();
        writer.append_line("three").unwrap();
        assert_eq!(remote.read_snapshot().unwrap().as_deref(), Some("snap!"));
        assert_eq!(remote.log_lines().unwrap(), vec!["three".to_string()]);
        assert_eq!(remote.generation().unwrap(), 1);

        // A local write detaches: later primary appends are invisible.
        remote.set_fence_epoch(9).unwrap();
        assert!(!remote.is_online());
        writer.append_line("four").unwrap();
        assert_eq!(remote.log_lines().unwrap(), vec!["three".to_string()]);
        assert_eq!(remote.fence_epoch().unwrap(), 9);
        remote.append_line("local").unwrap();
        assert_eq!(
            remote.log_lines().unwrap(),
            vec!["three".to_string(), "local".to_string()]
        );
    }

    /// Reply application is at-most-once and never regresses: duplicated
    /// tails don't double-append, stale tails and stale full refreshes
    /// are ignored, and the fence stays monotonic even on ignored
    /// replies. This is the guard the ship-link fault plan leans on.
    #[test]
    fn ship_reply_application_is_at_most_once_and_never_regresses() {
        let full = |generation: u64, fence: u64, lines: &[&str]| WireReply::LogDelta {
            generation,
            fence,
            snapshot: Some("S".to_owned()),
            lines: lines.iter().map(|s| (*s).to_owned()).collect(),
            full: true,
        };
        let tail = |generation: u64, fence: u64, lines: &[&str]| WireReply::LogDelta {
            generation,
            fence,
            snapshot: None,
            lines: lines.iter().map(|s| (*s).to_owned()).collect(),
            full: false,
        };
        let mut inner = RemoteLogInner { online: true, ..Default::default() };

        RemoteLog::apply_reply(&mut inner, full(1, 0, &["a", "b"]), 0);
        assert_eq!((inner.generation, inner.lines.len()), (1, 2));

        // A tail at the offset its pull asked for extends…
        RemoteLog::apply_reply(&mut inner, tail(1, 0, &["c"]), 2);
        assert_eq!(inner.lines, ["a", "b", "c"]);
        // …its duplicate (same have, mirror moved on) does not.
        RemoteLog::apply_reply(&mut inner, tail(1, 0, &["c"]), 2);
        assert_eq!(inner.lines, ["a", "b", "c"]);
        // A reordered tail from an older pull is stale: ignored.
        RemoteLog::apply_reply(&mut inner, tail(1, 0, &["b", "c"]), 1);
        assert_eq!(inner.lines, ["a", "b", "c"]);
        // A wrong-generation tail never splices.
        RemoteLog::apply_reply(&mut inner, tail(0, 0, &["x"]), 3);
        assert_eq!(inner.lines, ["a", "b", "c"]);

        // A stale full refresh (same generation, shorter history) and
        // an older-generation refresh both leave the mirror alone — but
        // their fences still count.
        RemoteLog::apply_reply(&mut inner, full(1, 5, &["a", "b"]), 0);
        RemoteLog::apply_reply(&mut inner, full(0, 6, &["z"]), 0);
        assert_eq!((inner.generation, inner.fence), (1, 6));
        assert_eq!(inner.lines, ["a", "b", "c"]);

        // A genuinely newer generation installs.
        RemoteLog::apply_reply(&mut inner, full(2, 6, &["n"]), 0);
        assert_eq!((inner.generation, inner.fence), (2, 6));
        assert_eq!(inner.lines, ["n"]);
    }

    /// End-to-end ship link under faults: duplicated and reordered pull
    /// replies (plus a dropped pull) still converge the replica to the
    /// primary's exact log.
    #[test]
    fn faulty_ship_link_still_converges() {
        let primary = MemLog::new();
        let mut writer: Box<dyn LogStore> = Box::new(primary.clone());
        let server = ShipServer::spawn(Box::new(primary.clone())).expect("ship server");
        let plan = Arc::new(Mutex::new(
            NetFaultPlan::new()
                .with(7, LinkDir::Send, 2, NetFaultKind::Drop)
                .with(7, LinkDir::Send, 4, NetFaultKind::Duplicate)
                .with(7, LinkDir::Recv, 2, NetFaultKind::Duplicate)
                .with(7, LinkDir::Recv, 3, NetFaultKind::Reorder)
                .with(7, LinkDir::Recv, 5, NetFaultKind::Drop),
        ));
        let remote = RemoteLog::connect(server.addr()).with_fault_plan(7, Arc::clone(&plan));
        let mut want = Vec::new();
        for i in 0..8 {
            let line = format!("line-{i}");
            writer.append_line(&line).unwrap();
            want.push(line);
            remote.log_lines().unwrap(); // one faulty pull per append
        }
        // Faults exhausted: the next pulls are clean and must land the
        // replica on the primary's exact log, nothing torn or doubled.
        remote.log_lines().unwrap();
        assert_eq!(remote.log_lines().unwrap(), want);
        assert_eq!(primary.log_lines().unwrap(), want);
    }

    /// A RemoteLog whose primary is unreachable serves its cache — a
    /// partition never wedges the standby.
    #[test]
    fn remote_log_serves_cache_when_primary_unreachable() {
        let primary = MemLog::new();
        let mut writer: Box<dyn LogStore> = Box::new(primary.clone());
        writer.append_line("kept").unwrap();
        let server = ShipServer::spawn(Box::new(primary.clone())).expect("ship server");
        let remote =
            RemoteLog::connect(server.addr()).with_timeout(Duration::from_millis(200));
        assert_eq!(remote.log_lines().unwrap(), vec!["kept".to_string()]);
        drop(server);
        // Primary gone: reads still answer from the replica.
        assert_eq!(remote.log_lines().unwrap(), vec!["kept".to_string()]);
        assert!(remote.has_state().unwrap());
    }
}
