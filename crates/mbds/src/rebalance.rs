//! Online cluster rebalancing: the planners and move queue behind
//! [`Controller::add_backend`](crate::Controller::add_backend) and
//! [`Controller::drain_backend`](crate::Controller::drain_backend).
//!
//! Membership changes never move records eagerly. They enqueue *group
//! moves* — each one relocating every record of a single interned
//! replica group — which the controller works through a throttled
//! queue interleaved with foreground traffic. Each move is bracketed
//! in the WAL ([`LogRecord::MoveBegin`](crate::LogRecord::MoveBegin) …
//! [`LogRecord::MoveEnd`](crate::LogRecord::MoveEnd), mirroring the
//! restart brackets), so a crash mid-move replays the whole move
//! idempotently; reads keep serving from the old placement until the
//! directory retarget inside the move commits.
//!
//! Planning is **state-based**: a plan is a pure function of the
//! directory's current in-use groups and the membership goal, so
//! re-planning after a crash, a snapshot rebuild, or a standby
//! promotion re-derives exactly the not-yet-done moves — finished
//! moves no longer match the predicate and drop out, which is what
//! makes the crash-at-every-append sweep converge to the same state.
//!
//! * **Add (unwrap the ring).** New inserts immediately rotate over
//!   the grown ring. Existing groups laid out contiguously mod the old
//!   ring are already valid contiguous slots of the new ring — except
//!   the ones that *wrapped* past the old edge (`(3,0)` on a 4-ring).
//!   Those are re-laid from the same primary on the new ring
//!   (`(3,0) → (3,4)` growing 4 → 5), spreading load onto the new
//!   member without touching any unwrapped group.
//! * **Drain.** Every group containing the draining backend swaps it
//!   for the first serving, non-draining backend scanning upward from
//!   the drained index — deterministic, replication-preserving, and a
//!   no-op for groups that already dropped it.

use std::collections::VecDeque;

/// One unit of rebalance work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MoveJob {
    /// Relocate every record of replica group `from` to `to`.
    Move {
        /// The group being vacated (identified by member-set value).
        from: Vec<usize>,
        /// The destination member set.
        to: Vec<usize>,
    },
    /// All unwrap moves for the add of `backend` are queued ahead of
    /// this marker: reaching it commits the add
    /// ([`LogRecord::AddEnd`](crate::LogRecord::AddEnd)).
    FinishAdd {
        /// The added backend.
        backend: usize,
    },
    /// All drain moves for `backend` are queued ahead of this marker:
    /// reaching it retires the backend
    /// ([`LogRecord::DrainEnd`](crate::LogRecord::DrainEnd)).
    FinishDrain {
        /// The draining backend.
        backend: usize,
    },
}

/// Default bound on group moves performed per foreground request — the
/// rebalance throttle that keeps foreground degradation proportional
/// and measurable.
pub const DEFAULT_THROTTLE: usize = 1;

/// Default bound on records relocated per WAL bracket. A large group
/// moves as a sequence of chunks, each its own complete
/// `move-begin` … `move-end` bracket, so one pump step behind a
/// foreground request costs O(throttle × chunk) records instead of
/// O(group) — the knob that makes foreground degradation bounded
/// rather than proportional to the biggest group.
pub const DEFAULT_MOVE_CHUNK: usize = 512;

/// The throttled queue of pending rebalance work.
#[derive(Debug, Clone, Default)]
pub struct Rebalancer {
    queue: VecDeque<MoveJob>,
    throttle: usize,
}

impl Rebalancer {
    /// An idle rebalancer with the default throttle.
    pub fn new() -> Rebalancer {
        Rebalancer { queue: VecDeque::new(), throttle: DEFAULT_THROTTLE }
    }

    /// Append a job.
    pub fn push(&mut self, job: MoveJob) {
        self.queue.push_back(job);
    }

    /// Take the next job.
    pub fn pop(&mut self) -> Option<MoveJob> {
        self.queue.pop_front()
    }

    /// Put a job back at the *front* of the queue — used when a move
    /// ran one chunk and has more, or when a job failed and must retry
    /// before anything queued behind it (a `FinishDrain` marker must
    /// never overtake the moves that vacate its backend).
    pub fn requeue(&mut self, job: MoveJob) {
        self.queue.push_front(job);
    }

    /// Jobs still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// True when no rebalance is in progress.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Group moves to perform per foreground request (at least 1 per
    /// explicit `rebalance_step`).
    pub fn throttle(&self) -> usize {
        self.throttle
    }

    /// Bound the moves piggybacked on each foreground request.
    pub fn set_throttle(&mut self, throttle: usize) {
        self.throttle = throttle.max(1);
    }

    /// Drop all queued work (promotion hand-off re-plans from state).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

/// True when `group` is laid out as consecutive ring slots mod `n`
/// starting from its first member *and wraps past the ring edge* —
/// the only layout an add invalidates.
fn is_wrapped(group: &[usize], n: usize) -> bool {
    if group.is_empty() || group.len() > n {
        return false;
    }
    let p = group[0];
    group.iter().enumerate().all(|(j, &m)| m == (p + j) % n) && p + group.len() > n
}

/// Plan the unwrap rebalance for growing `old_n → new_n` backends:
/// `(from, to)` per wrapped group, sorted for determinism. Pure in the
/// directory's in-use groups, so re-planning after a partial rebalance
/// yields exactly the remaining moves.
pub fn plan_unwrap(
    groups_in_use: impl Iterator<Item = Vec<usize>>,
    old_n: usize,
    new_n: usize,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut moves: Vec<(Vec<usize>, Vec<usize>)> = groups_in_use
        .filter(|g| is_wrapped(g, old_n))
        .filter_map(|g| {
            let p = g[0];
            let to: Vec<usize> = (0..g.len()).map(|j| (p + j) % new_n).collect();
            (to != g).then_some((g, to))
        })
        .collect();
    moves.sort();
    moves.dedup();
    moves
}

/// Plan the moves that vacate `drained`: each in-use group containing
/// it swaps it for the first backend scanning upward from
/// `drained + 1` (mod `n`) that is serving, not draining, and not
/// already a member. Groups with no legal substitute are skipped (the
/// capacity guard in `drain_backend` makes that unreachable in
/// practice). Sorted for determinism; pure in the in-use groups.
pub fn plan_drain(
    groups_in_use: impl Iterator<Item = Vec<usize>>,
    drained: usize,
    n: usize,
    eligible: impl Fn(usize) -> bool,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut moves: Vec<(Vec<usize>, Vec<usize>)> = groups_in_use
        .filter(|g| g.contains(&drained))
        .filter_map(|g| {
            let substitute = (1..n)
                .map(|step| (drained + step) % n)
                .find(|&i| eligible(i) && !g.contains(&i))?;
            let to: Vec<usize> =
                g.iter().map(|&m| if m == drained { substitute } else { m }).collect();
            Some((g, to))
        })
        .collect();
    moves.sort();
    moves.dedup();
    moves
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_moves_only_wrapped_groups() {
        let groups = vec![vec![0, 1], vec![2, 3], vec![3, 0], vec![1, 3]];
        let moves = plan_unwrap(groups.into_iter(), 4, 5);
        // Only (3,0) wraps the 4-ring; (1,3) is non-contiguous (a
        // dead-substitution shape) and is left alone.
        assert_eq!(moves, vec![(vec![3, 0], vec![3, 4])]);
    }

    #[test]
    fn unwrap_is_idempotent_after_completion() {
        // Re-planning against the post-move state finds nothing.
        let groups = vec![vec![0, 1], vec![2, 3], vec![3, 4]];
        assert!(plan_unwrap(groups.into_iter(), 4, 5).is_empty());
    }

    #[test]
    fn unwrap_handles_multi_member_wraps() {
        let moves = plan_unwrap(vec![vec![2, 0, 1]].into_iter(), 3, 4);
        assert_eq!(moves, vec![(vec![2, 0, 1], vec![2, 3, 0])]);
    }

    #[test]
    fn drain_substitutes_next_eligible_backend() {
        let groups = vec![vec![0, 1], vec![1, 2], vec![3, 1]];
        let moves = plan_drain(groups.into_iter(), 1, 4, |_| true);
        assert_eq!(
            moves,
            vec![
                (vec![0, 1], vec![0, 2]),
                (vec![1, 2], vec![3, 2]),
                (vec![3, 1], vec![3, 2]),
            ]
        );
    }

    #[test]
    fn drain_skips_dead_and_already_member_substitutes() {
        let groups = vec![vec![1, 2]];
        // Backend 2 is already a member and 3 is ineligible (dead or
        // draining): the scan wraps to 0.
        let moves = plan_drain(groups.into_iter(), 1, 4, |i| i != 3);
        assert_eq!(moves, vec![(vec![1, 2], vec![0, 2])]);
        // No eligible substitute at all: the group is skipped.
        let moves = plan_drain(vec![vec![1, 2]].into_iter(), 1, 4, |_| false);
        assert!(moves.is_empty());
    }

    #[test]
    fn drain_replan_after_partial_completion_finds_the_rest() {
        // First move done: (0,1)→(0,2) already applied, so only the
        // remaining group still names backend 1.
        let groups = vec![vec![0, 2], vec![1, 3]];
        let moves = plan_drain(groups.into_iter(), 1, 4, |_| true);
        assert_eq!(moves, vec![(vec![1, 3], vec![2, 3])]);
    }

    #[test]
    fn rebalancer_queue_and_throttle() {
        let mut r = Rebalancer::new();
        assert!(r.is_idle());
        r.push(MoveJob::Move { from: vec![3, 0], to: vec![3, 4] });
        r.push(MoveJob::FinishAdd { backend: 4 });
        assert_eq!(r.pending(), 2);
        assert_eq!(r.pop(), Some(MoveJob::Move { from: vec![3, 0], to: vec![3, 4] }));
        assert_eq!(r.pop(), Some(MoveJob::FinishAdd { backend: 4 }));
        assert!(r.pop().is_none());
        r.set_throttle(0);
        assert_eq!(r.throttle(), 1, "throttle floors at one move per step");
    }
}
