//! Hot-standby controller replication: log shipping with epoch-fenced
//! failover.
//!
//! A [`Standby`] tails the primary controller's write-ahead log through
//! a [`crate::wal::LogCursor`] and applies every shipped record to a
//! warm in-process mirror (a [`SimCluster`] with no log of its own — the
//! same serial twin the digest tests already trust). Because the mirror
//! replays continuously, [`Standby::promote`] needs no cold replay: it
//! fences the old primary by raising the cluster epoch, resumes the WAL
//! at the shipped high-water mark, and installs a [`Controller`] over
//! the *existing* backend threads with all warm state — key allocator,
//! directory, unique-value index, placement rotors and health board —
//! copied straight out of the mirror.
//!
//! The protocol, end to end:
//!
//! 1. **Ship** — the primary appends to its [`crate::wal::LogStore`];
//!    the standby's cursor polls the store, skipping in-flight
//!    group-commit batches and torn tails until they become whole.
//! 2. **Apply** — each decoded [`crate::LogRecord`] is replayed into
//!    the mirror; a snapshot install on the primary resets the cursor
//!    and the mirror rebuilds from the snapshot text.
//! 3. **Promote** — [`Standby::promote`] drops any torn tail, bumps the
//!    store's fence epoch past everything the log has seen, and builds
//!    the new controller without touching the demoted primary.
//! 4. **Fence** — backend threads reject every envelope stamped with an
//!    epoch below the shared fence, and the WAL refuses appends once
//!    the store's fence passes its epoch, so a demoted primary's stray
//!    writes reach neither the data nor the log: no split brain.

use crate::controller::{ClusterLink, Controller};
use crate::sim::{CostModel, SimCluster};
use crate::wal::{CursorUpdate, LogCursor, LogRecord, LogStore, SnapshotData, Wal};
use abdl::{Error, Result};
use std::collections::BTreeSet;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Replication-lag counters for one [`Standby`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LagStats {
    /// Log records shipped from the primary and applied to the mirror.
    pub records_shipped: u64,
    /// Bytes of primary log the standby has seen but not yet consumed
    /// (torn tails and in-flight batches it is waiting out).
    pub bytes_behind: u64,
    /// Total wall-clock time spent applying shipped state, µs.
    pub apply_micros: u64,
}

/// A warm controller replica tailing a primary's write-ahead log.
///
/// Create one with [`Controller::standby`], keep it fresh with
/// [`Standby::poll`], and on primary failure consume it with
/// [`Standby::promote`]. Promotion must happen *before* the failed
/// primary object is dropped: the backend threads are shared, and only
/// a fenced (already demoted) primary detaches from them instead of
/// shutting them down.
pub struct Standby {
    cursor: LogCursor,
    mirror: SimCluster,
    link: ClusterLink,
    /// Backends whose `RestartBegin` shipped without a matching
    /// `RestartEnd`: the primary crashed mid-restart. The mirror has
    /// already applied the full restart (exactly as cold replay would),
    /// but the real backend thread was never respawned — promotion
    /// finishes these restarts for real.
    mid_restart: BTreeSet<usize>,
    /// Move chunks whose `MoveBegin` shipped without a matching
    /// `MoveEnd`: the primary crashed mid-chunk. The mirror has already
    /// applied the chunk (exactly as cold replay would), but the
    /// physical copy on the real backends was interrupted — promotion
    /// redoes exactly these keys for real.
    mid_move: Vec<(Vec<usize>, Vec<usize>, Vec<u64>)>,
    records_shipped: u64,
    apply_micros: u64,
}

impl Standby {
    /// Attach to a primary's log store and bootstrap the mirror from
    /// its snapshot (a durable controller writes one at creation).
    pub(crate) fn attach(link: ClusterLink, store: Box<dyn LogStore>) -> Result<Standby> {
        let mut cursor = LogCursor::new(store);
        let update = cursor.poll()?;
        let CursorUpdate::Snapshot(text) = update else {
            return Err(Error::Internal(
                "standby: primary's log holds no snapshot to bootstrap from".into(),
            ));
        };
        let mut standby = Standby {
            cursor,
            mirror: Standby::mirror_of(&text)?,
            link,
            mid_restart: BTreeSet::new(),
            mid_move: Vec::new(),
            records_shipped: 0,
            apply_micros: 0,
        };
        standby.poll()?;
        Ok(standby)
    }

    /// A fresh mirror rebuilt from snapshot text.
    fn mirror_of(text: &str) -> Result<SimCluster> {
        let snap = SnapshotData::parse(text)?;
        if snap.backends == 0 || !(1..=snap.backends).contains(&snap.replication) {
            return Err(Error::Internal(format!(
                "standby: snapshot has invalid configuration: {} backends, replication {}",
                snap.backends, snap.replication
            )));
        }
        let mut mirror = SimCluster::with_config(snap.backends, snap.replication, CostModel::default());
        mirror.apply_snapshot(&snap)?;
        Ok(mirror)
    }

    /// Ship everything new from the primary's log into the mirror.
    /// Returns the number of log records applied by this call. Safe to
    /// call at any cadence: a poll that races an in-flight group-commit
    /// batch or a torn tail simply stops short and catches up next
    /// time.
    pub fn poll(&mut self) -> Result<usize> {
        let start = Instant::now();
        let mut shipped = 0usize;
        loop {
            match self.cursor.poll()? {
                CursorUpdate::Snapshot(text) => {
                    // The primary compacted its log: rebuild and keep
                    // polling — entries may already follow the install.
                    // Snapshots are never taken between begin/end
                    // markers, so nothing is mid-restart or mid-move.
                    self.mirror = Standby::mirror_of(&text)?;
                    self.mid_restart.clear();
                    self.mid_move.clear();
                }
                CursorUpdate::Entries(entries) => {
                    for entry in &entries {
                        match entry {
                            LogRecord::RestartBegin { backend } => {
                                self.mid_restart.insert(*backend);
                            }
                            LogRecord::RestartEnd { backend } => {
                                self.mid_restart.remove(backend);
                            }
                            LogRecord::MoveBegin { from, to, keys } => {
                                self.mid_move.push((from.clone(), to.clone(), keys.clone()));
                            }
                            LogRecord::MoveEnd { from, to } => {
                                self.mid_move.retain(|(f, t, _)| f != from || t != to);
                            }
                            _ => {}
                        }
                        self.mirror.apply_entry(entry)?;
                    }
                    shipped += entries.len();
                    break;
                }
            }
        }
        self.records_shipped += shipped as u64;
        self.apply_micros += u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        Ok(shipped)
    }

    /// Replication-lag counters: how much has shipped, how far behind
    /// the cursor is, and how long applying has cost.
    pub fn lag(&self) -> LagStats {
        LagStats {
            records_shipped: self.records_shipped,
            bytes_behind: self.cursor.bytes_behind(),
            apply_micros: self.apply_micros,
        }
    }

    /// The mirror's deterministic state digest — byte-comparable with
    /// [`Controller::state_digest`] and [`SimCluster::state_digest`].
    pub fn state_digest(&self) -> String {
        self.mirror.state_digest()
    }

    /// Epoch-fenced failover: consume the standby and install a new
    /// [`Controller`] over the cluster's existing backends.
    ///
    /// Ships any final consumable log records, discards a torn tail the
    /// crashed primary left behind, raises the store's fence epoch past
    /// everything the log has seen, and resumes the WAL at the shipped
    /// high-water mark — no replay. From the moment the fence rises,
    /// every envelope and every WAL append the demoted primary attempts
    /// is rejected.
    ///
    /// Call this *before* dropping the failed primary object: a
    /// not-yet-fenced primary's drop shuts the shared backend threads
    /// down.
    pub fn promote(mut self) -> Result<Controller> {
        self.poll()?;
        let unfinished: Vec<usize> = self.mid_restart.iter().copied().collect();
        let unfinished_moves = std::mem::take(&mut self.mid_move);
        let consumed = self.cursor.consumed();
        let next_seq = self.cursor.next_seq();
        let max_epoch = self.cursor.max_epoch();
        let torn = self.cursor.bytes_behind() > 0;
        let mut store = self.cursor.into_store();
        if torn {
            // The crashed primary left unconsumable bytes (a torn line
            // or an unfinished batch) past the shipped prefix; the new
            // lineage starts from what was durably whole.
            store.drop_torn_tail(consumed)?;
        }
        let new_epoch = max_epoch.max(store.fence_epoch()?) + 1;
        store.set_fence_epoch(new_epoch)?;
        self.link.fence.store(new_epoch, Ordering::SeqCst);
        let wal = Wal::resume(store, next_seq, consumed as u64, new_epoch);
        let mirror_n = self.mirror.backend_count();
        let mut c = Controller::promoted(self.link, wal, new_epoch, self.mirror.promoted_parts());
        // Elastic membership: an `add-backend` record may have shipped
        // while the primary died before spawning the worker — the shared
        // bus is still the old width. Adopt the missing backends before
        // any heal touches them.
        c.adopt_missing_backends(mirror_n)?;
        // A restart the primary began but never finished: the log (and
        // the mirror) say the backend is alive again, but its thread
        // was never respawned. Redo the restart for real, exactly as
        // cold replay would.
        for i in unfinished {
            c.finish_interrupted_restart(i)?;
        }
        // A move chunk the primary began but never committed: the
        // mirror (and so the promoted directory) already routes the
        // chunk's keys to the new placement, but the physical copy was
        // interrupted — heal exactly those keys for real, then
        // re-derive whatever rebalance work the crashed membership
        // change still owes from the warm state (remaining chunks
        // included: the group still matches the state-based plan).
        for (from, to, keys) in unfinished_moves {
            c.finish_interrupted_move(&from, &to, &keys)?;
        }
        c.replan_rebalance();
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abdl::{Kernel, Record, Request, Value};
    use crate::MemLog;

    fn insert(c: &mut Controller, file: &str, v: i64) {
        c.execute(&Request::Insert {
            record: Record::from_pairs([("FILE", Value::str(file))]).with("v", Value::Int(v)),
        })
        .unwrap();
    }

    fn retrieve_all(c: &mut Controller, file: &str) -> String {
        let req = abdl::parse::parse_request(&format!("RETRIEVE ((FILE = {file})) (*)")).unwrap();
        let mut rows: Vec<String> =
            c.execute(&req).unwrap().records().iter().map(|(k, r)| format!("{k:?} {r}")).collect();
        rows.sort();
        rows.join("\n")
    }

    #[test]
    fn standby_tails_the_primary_and_mirrors_its_digest() {
        let log = MemLog::new();
        let mut c = Controller::durable_with(3, 2, log.clone()).unwrap();
        let mut sb = c.standby(Box::new(log.clone())).unwrap();
        c.try_create_file("f").unwrap();
        for i in 0..20 {
            insert(&mut c, "f", i);
        }
        sb.poll().unwrap();
        assert_eq!(sb.state_digest(), c.state_digest().unwrap());
        let lag = sb.lag();
        assert!(lag.records_shipped >= 21, "shipped {}", lag.records_shipped);
        assert_eq!(lag.bytes_behind, 0, "caught-up standby reports no lag");
    }

    #[test]
    fn standby_rebuilds_across_primary_snapshot_installs() {
        let log = MemLog::new();
        let mut c = Controller::durable_with(3, 2, log.clone()).unwrap();
        c.set_snapshot_every(5);
        let mut sb = c.standby(Box::new(log.clone())).unwrap();
        c.try_create_file("f").unwrap();
        for i in 0..23 {
            insert(&mut c, "f", i);
            if i % 7 == 0 {
                sb.poll().unwrap();
            }
        }
        sb.poll().unwrap();
        assert_eq!(sb.state_digest(), c.state_digest().unwrap());
    }

    #[test]
    fn promotion_installs_a_serving_controller_without_replay() {
        let log = MemLog::new();
        let mut c = Controller::durable_with(4, 2, log.clone()).unwrap();
        c.try_create_file("f").unwrap();
        c.add_unique_constraint("f", vec!["v".into()]);
        for i in 0..30 {
            insert(&mut c, "f", i);
        }
        let reference = c.state_digest().unwrap();
        let answers = retrieve_all(&mut c, "f");

        let sb = c.standby(Box::new(log.clone())).unwrap();
        // Promote while the primary still exists — the fence demotes it.
        let mut p = sb.promote().unwrap();
        drop(c);

        assert_eq!(p.state_digest().unwrap(), reference);
        assert_eq!(retrieve_all(&mut p, "f"), answers);
        // The promoted controller keeps serving writes: the allocator,
        // rotors and unique index all came over warm.
        insert(&mut p, "f", 999);
        let dup = p
            .execute(&Request::Insert {
                record: Record::from_pairs([("FILE", Value::str("f"))])
                    .with("v", Value::Int(999)),
            })
            .unwrap_err();
        assert!(
            matches!(dup, abdl::Error::DuplicateKey { .. }),
            "unique constraint survived promotion, got: {dup}"
        );
    }

    #[test]
    fn promoted_lineage_recovers_from_its_own_store() {
        let log = MemLog::new();
        let mut c = Controller::durable_with(3, 2, log.clone()).unwrap();
        c.try_create_file("f").unwrap();
        for i in 0..10 {
            insert(&mut c, "f", i);
        }
        let sb = c.standby(Box::new(log.clone())).unwrap();
        let mut p = sb.promote().unwrap();
        drop(c);
        insert(&mut p, "f", 100);
        let digest = p.state_digest().unwrap();
        drop(p);
        // Cold recovery starts a new lineage *above* the fenced epoch —
        // the store must not fence out its own recovery.
        let mut r = Controller::recover_with(log).unwrap();
        assert_eq!(r.state_digest().unwrap(), digest);
        insert(&mut r, "f", 101);
    }

    #[test]
    fn demoted_primary_is_fenced_out_of_backends_and_log() {
        let log = MemLog::new();
        let mut c = Controller::durable_with(3, 2, log.clone()).unwrap();
        c.try_create_file("f").unwrap();
        for i in 0..8 {
            insert(&mut c, "f", i);
        }
        let sb = c.standby(Box::new(log.clone())).unwrap();
        let mut p = sb.promote().unwrap();
        let log_len = log.log_len();

        // The demoted primary keeps issuing writes: every request must
        // be rejected and the WAL must gain no post-demotion records.
        for i in 100..110 {
            let err = c
                .execute(&Request::Insert {
                    record: Record::from_pairs([("FILE", Value::str("f"))])
                        .with("v", Value::Int(i)),
                })
                .unwrap_err();
            assert!(
                err.to_string().contains("fenced") || err.to_string().contains("epoch"),
                "stale write must be fenced, got: {err}"
            );
        }
        let stale_create = c.try_create_file("g").unwrap_err();
        assert!(stale_create.to_string().contains("fenced") || stale_create.to_string().contains("epoch"));
        assert_eq!(log.log_len(), log_len, "no post-demotion WAL records");

        // The promoted controller is unaffected by the stray traffic —
        // and dropping the demoted primary must not kill the shared
        // backend threads.
        drop(c);
        insert(&mut p, "f", 200);
        assert!(retrieve_all(&mut p, "f").contains("200"));
    }

    #[test]
    fn promotion_discards_a_torn_tail() {
        let log = MemLog::new();
        let mut c = Controller::durable_with(3, 2, log.clone()).unwrap();
        c.try_create_file("f").unwrap();
        for i in 0..6 {
            insert(&mut c, "f", i);
        }
        let reference = c.state_digest().unwrap();
        let sb = c.standby(Box::new(log.clone())).unwrap();
        // Simulate a primary that crashed mid-append: a torn final line.
        log.push_raw_line("deadbeef 99 0 garbage");
        let before = log.log_len();
        let mut p = sb.promote().unwrap();
        drop(c);
        assert!(log.log_len() < before, "promotion truncated the torn tail");
        assert_eq!(p.state_digest().unwrap(), reference);
        insert(&mut p, "f", 7);
    }
}
