//! Directory memory: the record directory with interned replica sets.
//!
//! The controller keeps one `DbKey → replica set` entry per live
//! record. With replication factor `k` over `n` backends there are at
//! most `n·(n-1)···(n-k+1)` distinct replica sets in play — a handful —
//! while records number in the millions. Storing a `Vec<usize>` per
//! record therefore wastes almost all of its bytes on duplicates of
//! the same few sets. [`Directory`] interns each distinct replica set
//! once, maps every key to a small group id, and keeps per-group
//! reference counts so degraded-mode detection can scan the *groups*
//! (O(distinct sets)) instead of the keys (O(records)).

use abdl::DbKey;
use std::collections::HashMap;

/// The record directory: `DbKey → replica set`, with replica sets
/// interned into shared groups.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    /// The interned replica sets, indexed by group id.
    groups: Vec<Vec<usize>>,
    /// Live entries currently pointing at each group.
    refcounts: Vec<u64>,
    /// Reverse lookup: replica set → its group id.
    ids: HashMap<Vec<usize>, u32>,
    /// The directory proper: one small id per record.
    map: HashMap<DbKey, u32>,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    fn intern(&mut self, group: Vec<usize>) -> u32 {
        if let Some(&id) = self.ids.get(&group) {
            return id;
        }
        let id = u32::try_from(self.groups.len()).expect("more than 2^32 distinct replica sets");
        self.groups.push(group.clone());
        self.refcounts.push(0);
        self.ids.insert(group, id);
        id
    }

    /// Map `key` to `group`, replacing any previous mapping.
    pub fn insert(&mut self, key: DbKey, group: Vec<usize>) {
        let id = self.intern(group);
        if let Some(old) = self.map.insert(key, id) {
            self.refcounts[old as usize] -= 1;
        }
        self.refcounts[id as usize] += 1;
    }

    /// The replica set holding `key`, if the record is live.
    pub fn get(&self, key: &DbKey) -> Option<&[usize]> {
        self.map.get(key).map(|&id| self.groups[id as usize].as_slice())
    }

    /// True when `key` has a directory entry.
    pub fn contains_key(&self, key: &DbKey) -> bool {
        self.map.contains_key(key)
    }

    /// Remove `key`, returning the replica set it mapped to.
    pub fn remove(&mut self, key: &DbKey) -> Option<Vec<usize>> {
        let id = self.map.remove(key)?;
        self.refcounts[id as usize] -= 1;
        Some(self.groups[id as usize].clone())
    }

    /// Number of live directory entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no record is mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Every live entry, in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (DbKey, &[usize])> + '_ {
        self.map.iter().map(|(&key, &id)| (key, self.groups[id as usize].as_slice()))
    }

    /// The distinct replica sets at least one live record points at —
    /// degraded-mode detection scans these instead of every key.
    pub fn groups_in_use(&self) -> impl Iterator<Item = &[usize]> + '_ {
        self.groups
            .iter()
            .zip(&self.refcounts)
            .filter(|(_, &rc)| rc > 0)
            .map(|(g, _)| g.as_slice())
    }

    /// Distinct replica sets ever interned (dead or alive).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Rough resident-byte estimate: per-entry cost (key + group id +
    /// hash-table overhead) plus the interned group storage. The point
    /// is the *scaling* — millions of entries cost ~tens of bytes each
    /// instead of a heap-allocated `Vec<usize>` each.
    pub fn estimated_bytes(&self) -> u64 {
        use std::mem::size_of;
        // One map slot: the key, the id, and ~one word of table overhead.
        let per_entry = size_of::<DbKey>() + size_of::<u32>() + size_of::<usize>();
        let entries = self.map.len() * per_entry;
        // Interned groups: the members plus the Vec header, counted for
        // both `groups` and the `ids` reverse index.
        let per_group_fixed = 2 * size_of::<Vec<usize>>() + size_of::<u32>() + size_of::<u64>();
        let groups: usize = self
            .groups
            .iter()
            .map(|g| 2 * g.len() * size_of::<usize>() + per_group_fixed)
            .sum();
        (entries + groups) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_replica_sets_share_one_group() {
        let mut d = Directory::new();
        for i in 0..100 {
            d.insert(DbKey(i), vec![0, 1]);
        }
        for i in 100..200 {
            d.insert(DbKey(i), vec![1, 2]);
        }
        assert_eq!(d.len(), 200);
        assert_eq!(d.group_count(), 2);
        assert_eq!(d.get(&DbKey(7)), Some(&[0, 1][..]));
        assert_eq!(d.get(&DbKey(150)), Some(&[1, 2][..]));
        assert_eq!(d.get(&DbKey(999)), None);
    }

    #[test]
    fn remove_and_reinsert_maintain_refcounts() {
        let mut d = Directory::new();
        d.insert(DbKey(1), vec![0, 1]);
        d.insert(DbKey(2), vec![0, 1]);
        assert_eq!(d.remove(&DbKey(1)), Some(vec![0, 1]));
        assert_eq!(d.remove(&DbKey(1)), None);
        assert_eq!(d.len(), 1);
        assert_eq!(d.groups_in_use().count(), 1);
        d.remove(&DbKey(2));
        assert_eq!(d.groups_in_use().count(), 0, "unreferenced groups drop out");
        assert_eq!(d.group_count(), 1, "but stay interned");
        // Re-mapping a key replaces its old group's reference.
        d.insert(DbKey(3), vec![0, 1]);
        d.insert(DbKey(3), vec![2, 3]);
        assert_eq!(d.get(&DbKey(3)), Some(&[2, 3][..]));
        let in_use: Vec<&[usize]> = d.groups_in_use().collect();
        assert_eq!(in_use, vec![&[2, 3][..]]);
    }

    #[test]
    fn estimated_bytes_scales_with_entries_not_groups() {
        let mut d = Directory::new();
        d.insert(DbKey(0), vec![0, 1]);
        let one = d.estimated_bytes();
        for i in 1..1000 {
            d.insert(DbKey(i), vec![0, 1]);
        }
        let thousand = d.estimated_bytes();
        // 999 more entries share the single interned group: the
        // per-entry cost is the map slot alone, far below a dedicated
        // Vec<usize> allocation per record.
        let per_entry = (thousand - one) / 999;
        assert!(per_entry <= 32, "per-entry cost {per_entry} bytes");
        assert_eq!(d.group_count(), 1);
    }
}
