//! Directory memory: the record directory with interned replica sets
//! and an interval-compressed key map.
//!
//! The controller keeps one `DbKey → replica set` entry per live
//! record. With replication factor `k` over `n` backends there are at
//! most `n·(n-1)···(n-k+1)` distinct replica sets in play — a handful —
//! while records number in the millions. Storing a `Vec<usize>` per
//! record therefore wastes almost all of its bytes on duplicates of
//! the same few sets. [`Directory`] interns each distinct replica set
//! once, maps every key to a small group id, and keeps per-group
//! reference counts so degraded-mode detection can scan the *groups*
//! (O(distinct sets)) instead of the keys (O(records)).
//!
//! The key map itself is interval-compressed: keys are allocated
//! sequentially and placement is round-robin, so long runs of
//! consecutive keys cycle through a short periodic pattern of group
//! ids. [`IntervalMap`] stores those runs as `(start, len, pattern)`
//! triples — a few words per *run* instead of a hash-table slot per
//! *key* — with a small overlay map for recent churn and a tombstone
//! set for deletions, folded back into runs by periodic compaction.
//! Group moves ([`Directory::retarget`]) rebind an interned group's
//! member set in place, so a rebalance touches zero per-key state.

use abdl::DbKey;
use std::collections::{HashMap, HashSet};

/// Longest id period a compacted run will search for. Round-robin
/// placement cycles with period ≈ backend count, so this comfortably
/// covers real clusters while keeping compaction linear.
const MAX_PATTERN: usize = 32;

/// A run of consecutive keys whose group ids repeat periodically:
/// key `start + i` maps to `pattern[i % pattern.len()]`.
#[derive(Debug, Clone)]
struct Run {
    start: u64,
    len: u64,
    pattern: Vec<u32>,
}

impl Run {
    fn contains(&self, key: u64) -> bool {
        key >= self.start && key - self.start < self.len
    }

    fn id_at(&self, key: u64) -> u32 {
        let off = (key - self.start) as usize % self.pattern.len();
        self.pattern[off]
    }
}

/// `u64 → u32` map compressed into periodic runs plus an overlay for
/// churn. All mutation goes through the overlay/tombstones; `compact`
/// folds them back into runs.
#[derive(Debug, Clone, Default)]
struct IntervalMap {
    /// Sorted, non-overlapping runs.
    runs: Vec<Run>,
    /// Keys written since the last compaction (also shadows runs).
    overlay: HashMap<u64, u32>,
    /// Keys deleted out of a run since the last compaction.
    tombstones: HashSet<u64>,
    /// Live entries (runs minus tombstones plus non-shadowing overlay).
    live: usize,
}

impl IntervalMap {
    /// The id stored inside a run for `key`, ignoring overlay and
    /// tombstones.
    fn run_id(&self, key: u64) -> Option<u32> {
        let i = self.runs.partition_point(|r| r.start <= key);
        let run = self.runs.get(i.checked_sub(1)?)?;
        run.contains(key).then(|| run.id_at(key))
    }

    fn get(&self, key: u64) -> Option<u32> {
        if self.tombstones.contains(&key) {
            return None;
        }
        if let Some(&id) = self.overlay.get(&key) {
            return Some(id);
        }
        self.run_id(key)
    }

    /// Insert or replace, returning the previous id.
    fn insert(&mut self, key: u64, id: u32) -> Option<u32> {
        let old = self.get(key);
        self.tombstones.remove(&key);
        match self.run_id(key) {
            // The run already stores this exact id: the overlay entry
            // (if any) is redundant.
            Some(rid) if rid == id => {
                self.overlay.remove(&key);
            }
            _ => {
                self.overlay.insert(key, id);
            }
        }
        if old.is_none() {
            self.live += 1;
        }
        self.maybe_compact();
        old
    }

    /// Remove, returning the stored id.
    fn remove(&mut self, key: u64) -> Option<u32> {
        let old = self.get(key)?;
        self.overlay.remove(&key);
        if self.run_id(key).is_some() {
            self.tombstones.insert(key);
        }
        self.live -= 1;
        self.maybe_compact();
        Some(old)
    }

    fn len(&self) -> usize {
        self.live
    }

    /// Every live `(key, id)` pair, unsorted.
    fn iter(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        let from_runs = self.runs.iter().flat_map(move |r| {
            (0..r.len).map(move |i| (r.start + i, r.id_at(r.start + i))).filter(move |(k, _)| {
                !self.tombstones.contains(k) && !self.overlay.contains_key(k)
            })
        });
        self.overlay.iter().map(|(&k, &id)| (k, id)).chain(from_runs)
    }

    /// Fold overlay and tombstones back into compressed runs once the
    /// churn outweighs the compression. Purely a memory-layout
    /// operation: the logical contents never change.
    fn maybe_compact(&mut self) {
        let churn = self.overlay.len() + self.tombstones.len();
        if churn > 64 && churn * 8 > self.live {
            self.compact();
        }
    }

    /// Rebuild the run list from the live contents.
    fn compact(&mut self) {
        let mut pairs: Vec<(u64, u32)> = self.iter().collect();
        pairs.sort_unstable();
        self.overlay = HashMap::new();
        self.tombstones = HashSet::new();
        self.runs = compress(&pairs);
        self.live = pairs.len();
    }

    /// Resident-byte estimate of the compressed representation.
    fn resident_bytes(&self) -> u64 {
        use std::mem::size_of;
        let runs: usize = self
            .runs
            .iter()
            .map(|r| size_of::<Run>() + r.pattern.len() * size_of::<u32>())
            .sum();
        let slot = size_of::<u64>() + size_of::<u32>() + size_of::<usize>();
        let overlay = self.overlay.len() * slot;
        let tombstones = self.tombstones.len() * (size_of::<u64>() + size_of::<usize>());
        (runs + overlay + tombstones) as u64
    }
}

/// Compress sorted `(key, id)` pairs into maximal periodic runs.
fn compress(pairs: &[(u64, u32)]) -> Vec<Run> {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < pairs.len() {
        // Extend over consecutive keys.
        let mut j = i + 1;
        while j < pairs.len() && pairs[j].0 == pairs[j - 1].0 + 1 {
            j += 1;
        }
        let ids: Vec<u32> = pairs[i..j].iter().map(|&(_, id)| id).collect();
        // Smallest period that reproduces the id sequence.
        let period = (1..=MAX_PATTERN.min(ids.len()))
            .find(|&p| ids.iter().enumerate().all(|(k, &id)| id == ids[k % p]))
            .unwrap_or(ids.len());
        runs.push(Run {
            start: pairs[i].0,
            len: (j - i) as u64,
            pattern: ids[..period].to_vec(),
        });
        i = j;
    }
    runs
}

/// Before/after view of the directory's key-map compression, for
/// `.stats`: what a flat hash map would cost versus what the
/// interval-compressed map actually holds resident.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompressionStats {
    /// Live key→group entries.
    pub entries: u64,
    /// Estimated bytes of an uncompressed flat map (one slot per key).
    pub flat_bytes: u64,
    /// Estimated resident bytes of the compressed map.
    pub resident_bytes: u64,
    /// Compressed runs currently held.
    pub runs: u64,
    /// Overlay (churn) entries not yet folded into runs.
    pub overlay: u64,
}

/// The record directory: `DbKey → replica set`, with replica sets
/// interned into shared groups and the key map interval-compressed.
#[derive(Debug, Clone, Default)]
pub struct Directory {
    /// The interned replica sets, indexed by group id.
    groups: Vec<Vec<usize>>,
    /// Live entries currently pointing at each group.
    refcounts: Vec<u64>,
    /// Reverse lookup: replica set → its group id.
    ids: HashMap<Vec<usize>, u32>,
    /// The directory proper: one small id per record.
    map: IntervalMap,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    fn intern(&mut self, group: Vec<usize>) -> u32 {
        if let Some(&id) = self.ids.get(&group) {
            return id;
        }
        let id = u32::try_from(self.groups.len()).expect("more than 2^32 distinct replica sets");
        self.groups.push(group.clone());
        self.refcounts.push(0);
        self.ids.insert(group, id);
        id
    }

    /// Map `key` to `group`, replacing any previous mapping.
    pub fn insert(&mut self, key: DbKey, group: Vec<usize>) {
        let id = self.intern(group);
        if let Some(old) = self.map.insert(key.0, id) {
            self.refcounts[old as usize] -= 1;
        }
        self.refcounts[id as usize] += 1;
    }

    /// The replica set holding `key`, if the record is live.
    pub fn get(&self, key: &DbKey) -> Option<&[usize]> {
        self.map.get(key.0).map(|id| self.groups[id as usize].as_slice())
    }

    /// True when `key` has a directory entry.
    pub fn contains_key(&self, key: &DbKey) -> bool {
        self.map.get(key.0).is_some()
    }

    /// Remove `key`, returning the replica set it mapped to.
    pub fn remove(&mut self, key: &DbKey) -> Option<Vec<usize>> {
        let id = self.map.remove(key.0)?;
        self.refcounts[id as usize] -= 1;
        Some(self.groups[id as usize].clone())
    }

    /// Number of live directory entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no record is mapped.
    pub fn is_empty(&self) -> bool {
        self.map.len() == 0
    }

    /// Every live entry, in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (DbKey, &[usize])> + '_ {
        self.map.iter().map(|(key, id)| (DbKey(key), self.groups[id as usize].as_slice()))
    }

    /// The distinct replica sets at least one live record points at —
    /// degraded-mode detection scans these instead of every key.
    pub fn groups_in_use(&self) -> impl Iterator<Item = &[usize]> + '_ {
        self.groups
            .iter()
            .zip(&self.refcounts)
            .filter(|(_, &rc)| rc > 0)
            .map(|(g, _)| g.as_slice())
    }

    /// Distinct replica sets ever interned (dead or alive).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Rebind the interned group whose member set is `from` to the
    /// member set `to`, retargeting every key that points at it in one
    /// O(1) step — no per-key state is touched. Returns the number of
    /// live entries that moved (0 when `from` is unknown, unused, or
    /// equal to `to`).
    ///
    /// Groups are identified by member-set *value*: interned ids are
    /// not stable across snapshot rebuilds, member sets are. If `to`
    /// was already interned separately the two ids simply share one
    /// member set afterwards — reads care about members, not ids.
    pub fn retarget(&mut self, from: &[usize], to: Vec<usize>) -> u64 {
        if from == to.as_slice() {
            return 0;
        }
        let Some(&id) = self.ids.get(from) else { return 0 };
        let moved = self.refcounts[id as usize];
        if moved == 0 {
            return 0;
        }
        self.ids.remove(from);
        self.groups[id as usize] = to.clone();
        self.ids.entry(to).or_insert(id);
        moved
    }

    /// Live entries currently placed on the replica set `members` —
    /// O(groups) via the interned refcounts, not O(keys). The move
    /// path polls this once per chunk, so it must stay cheap.
    pub fn group_live_entries(&self, members: &[usize]) -> u64 {
        self.groups
            .iter()
            .zip(&self.refcounts)
            .filter(|(g, _)| g.as_slice() == members)
            .map(|(_, &rc)| rc)
            .sum()
    }

    /// Every live key currently placed on the replica set `members`,
    /// ascending — the work list of one group move.
    pub fn keys_of_group(&self, members: &[usize]) -> Vec<DbKey> {
        let mut ids: Vec<u32> = self
            .groups
            .iter()
            .enumerate()
            .filter(|(i, g)| g.as_slice() == members && self.refcounts[*i] > 0)
            .map(|(i, _)| i as u32)
            .collect();
        ids.sort_unstable();
        let mut keys: Vec<DbKey> = self
            .map
            .iter()
            .filter(|(_, id)| ids.binary_search(id).is_ok())
            .map(|(k, _)| DbKey(k))
            .collect();
        keys.sort_unstable();
        keys
    }

    /// The key-map compression picture for `.stats`: flat-map cost
    /// versus compressed resident bytes.
    pub fn compression_stats(&self) -> CompressionStats {
        use std::mem::size_of;
        let slot = size_of::<DbKey>() + size_of::<u32>() + size_of::<usize>();
        CompressionStats {
            entries: self.map.len() as u64,
            flat_bytes: (self.map.len() * slot) as u64,
            resident_bytes: self.map.resident_bytes(),
            runs: self.map.runs.len() as u64,
            overlay: self.map.overlay.len() as u64,
        }
    }

    /// Rough resident-byte estimate: the compressed key map plus the
    /// interned group storage. The point is the *scaling* — millions of
    /// entries compress into periodic runs costing a few words each
    /// instead of a hash-table slot (let alone a heap-allocated
    /// `Vec<usize>`) per record.
    pub fn estimated_bytes(&self) -> u64 {
        use std::mem::size_of;
        let per_group_fixed = 2 * size_of::<Vec<usize>>() + size_of::<u32>() + size_of::<u64>();
        let groups: usize = self
            .groups
            .iter()
            .map(|g| 2 * g.len() * size_of::<usize>() + per_group_fixed)
            .sum();
        self.map.resident_bytes() + groups as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_replica_sets_share_one_group() {
        let mut d = Directory::new();
        for i in 0..100 {
            d.insert(DbKey(i), vec![0, 1]);
        }
        for i in 100..200 {
            d.insert(DbKey(i), vec![1, 2]);
        }
        assert_eq!(d.len(), 200);
        assert_eq!(d.group_count(), 2);
        assert_eq!(d.get(&DbKey(7)), Some(&[0, 1][..]));
        assert_eq!(d.get(&DbKey(150)), Some(&[1, 2][..]));
        assert_eq!(d.get(&DbKey(999)), None);
    }

    #[test]
    fn remove_and_reinsert_maintain_refcounts() {
        let mut d = Directory::new();
        d.insert(DbKey(1), vec![0, 1]);
        d.insert(DbKey(2), vec![0, 1]);
        assert_eq!(d.remove(&DbKey(1)), Some(vec![0, 1]));
        assert_eq!(d.remove(&DbKey(1)), None);
        assert_eq!(d.len(), 1);
        assert_eq!(d.groups_in_use().count(), 1);
        d.remove(&DbKey(2));
        assert_eq!(d.groups_in_use().count(), 0, "unreferenced groups drop out");
        assert_eq!(d.group_count(), 1, "but stay interned");
        // Re-mapping a key replaces its old group's reference.
        d.insert(DbKey(3), vec![0, 1]);
        d.insert(DbKey(3), vec![2, 3]);
        assert_eq!(d.get(&DbKey(3)), Some(&[2, 3][..]));
        let in_use: Vec<&[usize]> = d.groups_in_use().collect();
        assert_eq!(in_use, vec![&[2, 3][..]]);
    }

    #[test]
    fn round_robin_keys_compress_into_periodic_runs() {
        let mut d = Directory::new();
        // Round-robin placement over 4 backends, replication 2: keys
        // cycle through 4 replica sets.
        for i in 0..10_000u64 {
            let p = (i % 4) as usize;
            d.insert(DbKey(i + 1), vec![p, (p + 1) % 4]);
        }
        let stats = d.compression_stats();
        assert_eq!(stats.entries, 10_000);
        // Churn-triggered compaction has folded almost everything into
        // a handful of periodic runs.
        assert!(stats.runs <= 4, "runs: {}", stats.runs);
        assert!(
            stats.resident_bytes * 4 < stats.flat_bytes,
            "compressed {} flat {}",
            stats.resident_bytes,
            stats.flat_bytes
        );
        // Lookups still exact.
        assert_eq!(d.get(&DbKey(5)), Some(&[0, 1][..]));
        assert_eq!(d.get(&DbKey(6)), Some(&[1, 2][..]));
        assert_eq!(d.len(), 10_000);
    }

    #[test]
    fn deletions_and_rewrites_survive_compaction() {
        let mut d = Directory::new();
        for i in 1..=5_000u64 {
            let p = (i % 3) as usize;
            d.insert(DbKey(i), vec![p, (p + 1) % 3]);
        }
        let mut expect: HashMap<u64, Vec<usize>> = HashMap::new();
        for i in 1..=5_000u64 {
            let p = (i % 3) as usize;
            expect.insert(i, vec![p, (p + 1) % 3]);
        }
        // Interleave deletes and remaps to force overlay + tombstone
        // churn through several compactions.
        for i in (1..=5_000u64).step_by(7) {
            d.remove(&DbKey(i));
            expect.remove(&i);
        }
        for i in (2..=5_000u64).step_by(11) {
            d.insert(DbKey(i), vec![2, 0]);
            expect.insert(i, vec![2, 0]);
        }
        assert_eq!(d.len(), expect.len());
        for (k, g) in &expect {
            assert_eq!(d.get(&DbKey(*k)), Some(g.as_slice()), "key {k}");
        }
        for i in (1..=5_000u64).step_by(7) {
            if !expect.contains_key(&i) {
                assert_eq!(d.get(&DbKey(i)), None);
            }
        }
        let from_iter: usize = d.iter().count();
        assert_eq!(from_iter, expect.len());
    }

    #[test]
    fn retarget_moves_every_key_of_the_group_at_once() {
        let mut d = Directory::new();
        for i in 0..50 {
            d.insert(DbKey(i), vec![3, 0]);
        }
        for i in 50..80 {
            d.insert(DbKey(i), vec![1, 2]);
        }
        assert_eq!(d.keys_of_group(&[3, 0]).len(), 50);
        let moved = d.retarget(&[3, 0], vec![3, 4]);
        assert_eq!(moved, 50);
        for i in 0..50 {
            assert_eq!(d.get(&DbKey(i)), Some(&[3, 4][..]), "key {i}");
        }
        assert_eq!(d.get(&DbKey(60)), Some(&[1, 2][..]));
        assert!(d.keys_of_group(&[3, 0]).is_empty());
        assert_eq!(d.keys_of_group(&[3, 4]).len(), 50);
        // Unknown or identical source: no-op.
        assert_eq!(d.retarget(&[9, 9], vec![0, 1]), 0);
        assert_eq!(d.retarget(&[3, 4], vec![3, 4]), 0);
    }

    #[test]
    fn retarget_onto_an_existing_group_merges_member_sets() {
        let mut d = Directory::new();
        d.insert(DbKey(1), vec![0, 1]);
        d.insert(DbKey(2), vec![1, 2]);
        let moved = d.retarget(&[0, 1], vec![1, 2]);
        assert_eq!(moved, 1);
        assert_eq!(d.get(&DbKey(1)), Some(&[1, 2][..]));
        assert_eq!(d.get(&DbKey(2)), Some(&[1, 2][..]));
        // Both keys now report through keys_of_group despite living on
        // two interned ids that share one member set.
        assert_eq!(d.keys_of_group(&[1, 2]), vec![DbKey(1), DbKey(2)]);
        // New inserts of the old set re-intern cleanly.
        d.insert(DbKey(3), vec![0, 1]);
        assert_eq!(d.get(&DbKey(3)), Some(&[0, 1][..]));
    }

    #[test]
    fn estimated_bytes_scales_with_entries_not_groups() {
        let mut d = Directory::new();
        d.insert(DbKey(0), vec![0, 1]);
        for i in 1..1000 {
            d.insert(DbKey(i), vec![0, 1]);
        }
        // A single periodic run covers all thousand entries: total
        // resident cost stays near-constant instead of per-entry.
        assert_eq!(d.len(), 1000);
        assert_eq!(d.group_count(), 1);
        let stats = d.compression_stats();
        assert!(stats.resident_bytes * 4 < stats.flat_bytes, "{stats:?}");
    }
}
