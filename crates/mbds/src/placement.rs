//! Record placement across backends.
//!
//! MBDS distributes each file's records evenly over the backends so
//! that every retrieval parallelizes; round-robin per file is the
//! simplest placement with that property and keeps partition sizes
//! balanced within one record.

use std::collections::HashMap;

/// Round-robin per-file placement.
#[derive(Debug, Clone, Default)]
pub struct Partitioner {
    backends: usize,
    next: HashMap<String, usize>,
}

impl Partitioner {
    /// A partitioner over `backends` backends.
    pub fn new(backends: usize) -> Self {
        assert!(backends > 0, "MBDS needs at least one backend");
        Partitioner { backends, next: HashMap::new() }
    }

    /// Number of backends.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The backend that receives the next record of `file`.
    pub fn place(&mut self, file: &str) -> usize {
        let slot = self.next.entry(file.to_owned()).or_insert(0);
        let chosen = *slot;
        *slot = (*slot + 1) % self.backends;
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_balanced_per_file() {
        let mut p = Partitioner::new(3);
        let placements: Vec<usize> = (0..9).map(|_| p.place("f")).collect();
        assert_eq!(placements, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
        // Independent counter per file.
        assert_eq!(p.place("g"), 0);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn zero_backends_is_rejected() {
        let _ = Partitioner::new(0);
    }
}
