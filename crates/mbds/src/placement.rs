//! Record placement across backends.
//!
//! MBDS distributes each file's records evenly over the backends so
//! that every retrieval parallelizes; round-robin per file is the
//! simplest placement with that property and keeps partition sizes
//! balanced within one record.

use std::collections::HashMap;

/// Round-robin per-file placement.
#[derive(Debug, Clone, Default)]
pub struct Partitioner {
    backends: usize,
    next: HashMap<String, usize>,
}

impl Partitioner {
    /// A partitioner over `backends` backends.
    pub fn new(backends: usize) -> Self {
        assert!(backends > 0, "MBDS needs at least one backend");
        Partitioner { backends, next: HashMap::new() }
    }

    /// Number of backends.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The backend that receives the next record of `file`.
    pub fn place(&mut self, file: &str) -> usize {
        let slot = self.next.entry(file.to_owned()).or_insert(0);
        let chosen = *slot;
        *slot = (*slot + 1) % self.backends;
        chosen
    }

    /// The replica group for the next record of `file`: the primary
    /// from the round-robin rotation plus the `k - 1` following
    /// backends (mod n, all distinct). `k` is clamped to the backend
    /// count. Deterministic and independent of backend health — the
    /// controller substitutes live backends for dead group members so
    /// the preferred layout is restored after recovery.
    pub fn place_group(&mut self, file: &str, k: usize) -> Vec<usize> {
        let primary = self.place(file);
        let k = k.clamp(1, self.backends);
        (0..k).map(|j| (primary + j) % self.backends).collect()
    }

    /// Advance `file`'s rotor by one step without placing anything —
    /// used by WAL replay to re-consume the rotation a logged insert
    /// consumed, without re-running placement.
    pub fn advance(&mut self, file: &str) {
        let _ = self.place(file);
    }

    /// Current rotor positions, sorted by file name (deterministic,
    /// for snapshots).
    pub fn rotors(&self) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> =
            self.next.iter().map(|(f, v)| (f.clone(), *v)).collect();
        out.sort();
        out
    }

    /// Restore `file`'s rotor to `v` (snapshot replay).
    pub fn set_rotor(&mut self, file: &str, v: usize) {
        self.next.insert(file.to_owned(), v % self.backends);
    }

    /// Grow the ring to `backends` members (online backend add). Rotor
    /// positions are kept as-is: they are always used mod the current
    /// backend count, so existing files simply start rotating over the
    /// wider ring.
    pub fn grow(&mut self, backends: usize) {
        assert!(backends >= self.backends, "the ring only grows");
        self.backends = backends;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_balanced_per_file() {
        let mut p = Partitioner::new(3);
        let placements: Vec<usize> = (0..9).map(|_| p.place("f")).collect();
        assert_eq!(placements, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
        // Independent counter per file.
        assert_eq!(p.place("g"), 0);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn zero_backends_is_rejected() {
        let _ = Partitioner::new(0);
    }

    #[test]
    fn rotors_round_trip_through_snapshot_accessors() {
        let mut p = Partitioner::new(3);
        p.place("b");
        p.place("a");
        p.place("a");
        assert_eq!(p.rotors(), vec![("a".to_owned(), 2), ("b".to_owned(), 1)]);
        let mut q = Partitioner::new(3);
        for (f, v) in p.rotors() {
            q.set_rotor(&f, v);
        }
        assert_eq!(q.place("a"), 2);
        assert_eq!(q.place("b"), 1);
        // `advance` consumes one rotation exactly like `place`.
        q.advance("a");
        assert_eq!(q.place("a"), 1);
    }

    #[test]
    fn replica_groups_are_distinct_and_rotate() {
        let mut p = Partitioner::new(4);
        assert_eq!(p.place_group("f", 2), vec![0, 1]);
        assert_eq!(p.place_group("f", 2), vec![1, 2]);
        assert_eq!(p.place_group("f", 2), vec![2, 3]);
        assert_eq!(p.place_group("f", 2), vec![3, 0]);
        // k is clamped to the backend count.
        let mut p = Partitioner::new(2);
        assert_eq!(p.place_group("f", 5), vec![0, 1]);
    }
}
