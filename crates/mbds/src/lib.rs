#![warn(missing_docs)]

//! # MBDS — the Multi-Backend Database System
//!
//! "The Multi-Backend Database System (MBDS) uses a software
//! multiple-backend approach … utilizing multiple backends connected in
//! parallel. The backends have identical software and their own disks.
//! There is a backend controller, the master, which supervises the
//! execution of the database transactions … The backend controller is
//! connected to the individual backends by a communication bus."
//!
//! Two performance claims are made for MBDS (§I.B.2 of the thesis) and
//! reproduced by this crate's simulator:
//!
//! 1. *Response-time reduction*: "by increasing the number of backends,
//!    while maintaining the size of the database … at a constant level,
//!    MBDS yields a nearly reciprocal decrease in the response times."
//! 2. *Capacity growth*: "by increasing the number of backends
//!    proportionally with an increase in the size of the database …
//!    MBDS produces invariant response-times."
//!
//! Provided here:
//!
//! * [`Controller`] — a real threaded controller: N backend worker
//!   threads, each owning a private [`abdl::Store`] partition, connected
//!   by channels (the "communication bus"). Implements [`abdl::Kernel`],
//!   so every MLDS language interface runs on it unchanged. Records are
//!   placed round-robin per file; non-INSERT requests are broadcast and
//!   the partial responses merged (aggregates are re-aggregated
//!   globally). Backends can be killed for failure-injection tests.
//! * [`SimCluster`] — the deterministic simulated-time twin used for
//!   the experiment tables: the same placement and merge logic executed
//!   serially, with response time computed from a [`CostModel`] over the
//!   per-backend disk-block counters (`max` over backends + bus and
//!   merge costs), exactly the quantity whose *shape* the two claims
//!   describe.
//!
//! Beyond the 1987 design, both kernels are *fault tolerant*:
//!
//! * records are placed on **k-way replica groups** (default k = 2) and
//!   reads deduplicate by database key, so replicated answers equal a
//!   single store's byte-for-byte;
//! * the controller detects failures with reply timeouts and the
//!   [`HealthBoard`] (Alive → Suspect → Dead), keeps serving from
//!   survivors, reports `degraded`/`unavailable_backends` on every
//!   response, and `restart_backend` re-replicates lost records from
//!   surviving replicas;
//! * a seeded, deterministic [`FaultPlan`] injects reply drops, delays,
//!   crashes and panics at exact per-backend message counts —
//!   bit-identical across runs in both the threaded and the simulated
//!   kernel (experiment E13);
//! * controller state itself is **durable and recoverable** (the [`wal`]
//!   module): every directory mutation is written to a checksummed
//!   write-ahead log with periodic compacted snapshots, and
//!   [`Controller::recover`] rebuilds an equivalent controller —
//!   directory, key allocator, placement rotors, health board and
//!   backend contents — after a crash between any two operations
//!   (experiment E14, `tests/crash_recovery.rs`);
//! * a **hot standby** ([`Standby`], the [`standby`] module) tails the
//!   primary's log, mirrors the full controller state warm, and
//!   promotes over the *existing* backends without replay; promotion is
//!   epoch-fenced, so a demoted primary's stray writes reach neither
//!   the backends nor the log (experiment E16, `tests/failover.rs`).

//! ## Example
//!
//! ```
//! use abdl::{Kernel, Record, Request, Value};
//! use mbds::Controller;
//!
//! let mut mbds = Controller::new(4);
//! mbds.create_file("f");
//! for i in 0..20i64 {
//!     mbds.execute(&Request::Insert {
//!         record: Record::from_pairs([("FILE", Value::str("f"))])
//!             .with("f", Value::Int(i)),
//!     }).unwrap();
//! }
//! let resp = mbds
//!     .execute(&abdl::parse::parse_request("RETRIEVE ((FILE = f) and (f < 10)) (*)").unwrap())
//!     .unwrap();
//! assert_eq!(resp.records().len(), 10);
//! ```

mod controller;
mod directory;
pub mod fault;
pub mod health;
pub mod model;
pub mod net;
mod placement;
pub mod rebalance;
pub mod sched;
mod sim;
pub mod standby;
pub mod wal;

pub use controller::{Controller, DEFAULT_REPLICATION};
pub use directory::{CompressionStats, Directory};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use health::{BackendState, HealthBoard};
pub use model::{CheckReport, Counterexample, ModelConfig, Mutation, Violation};
pub use net::{
    Frame, FrameReader, LinkDir, NetFaultEvent, NetFaultKind, NetFaultPlan, RemoteLog, ShipServer,
    TcpLink,
};
pub use placement::Partitioner;
pub use rebalance::{MoveJob, Rebalancer};
pub use sched::Footprint;
pub use sim::{CostModel, SimCluster};
pub use standby::{LagStats, Standby};
pub use wal::{FileLog, LogCursor, LogRecord, LogStore, MemLog, SnapshotData, Wal};
