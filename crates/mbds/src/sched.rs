//! Request footprint classification for the controller's batch
//! scheduler.
//!
//! When several sessions' requests are admitted together
//! (`Kernel::execute_batch`), the controller wants to keep more than
//! one of them in flight on the backend bus at a time. That is safe
//! exactly when the requests *commute*: executing them concurrently
//! (in any interleaving the per-backend FIFO channels allow) produces
//! the same state as executing them in admission order. This module
//! computes a conservative **footprint** per request — the kernel
//! files it touches, and the unique-index tuples it would claim (an
//! insert) or has fully pinned with equality predicates (a read) — and
//! a pairwise [`Footprint::conflicts`] predicate:
//!
//! * two **reads** never conflict — reads change nothing, so any
//!   interleaving is equivalent to admission order, *whatever* their
//!   scope (even two broadcast reads commute);
//! * requests on **disjoint files** never conflict;
//! * two **inserts into the same file** conflict only when they claim
//!   the same `DUPLICATES ARE NOT ALLOWED` tuple (the unique check is
//!   the one piece of controller state an insert reads before its
//!   effects land);
//! * a **key-scoped read** (every disjunct pins a full unique group
//!   with equality predicates) commutes with same-file inserts whose
//!   claimed tuples are disjoint from the pinned ones: the inserted
//!   record cannot satisfy the read's equalities, so the read's answer
//!   is identical whether it runs before or after the insert — this is
//!   what lets **mixed read/insert flights** form;
//! * any *write* with a **broadcast** footprint (a record without a
//!   `FILE` keyword), or a write sharing a file with a broadcast read,
//!   conflicts — an unscoped footprint must observe (or mutate) the
//!   whole cluster at a well-defined point in the admission order;
//! * every other write overlap (delete/update vs. anything on a shared
//!   file) conflicts.
//!
//! The scheduler never reorders: a conflicting request simply closes
//! the current flight and waits for it to drain, so execution is
//! always equivalent to the serial admission order — the property
//! `tests/concurrent_equivalence.rs` pins.

use abdl::{Request, Value};
use std::collections::{BTreeSet, HashMap};

/// The unique-constraint registry the classifier consults: per file,
/// the declared `DUPLICATES ARE NOT ALLOWED` attribute groups, in
/// declaration order (group index = position).
pub type UniqueGroups = HashMap<String, Vec<Vec<String>>>;

/// What one request touches, as seen by the batch scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footprint {
    /// Kernel files named by the request's queries (or the inserted
    /// record's `FILE` keyword).
    pub files: BTreeSet<String>,
    /// Unique-index tuples this request touches — `(file, group index,
    /// value tuple)`. For an insert: one entry per constraint group of
    /// the target file whose attributes the record all carries. For a
    /// read: one entry per disjunct that pins a full constraint group
    /// with equality predicates.
    pub keys: BTreeSet<(String, usize, Vec<Value>)>,
    /// Files on which a *read* is key-scoped: every disjunct naming
    /// the file pins a full unique group with (non-null) equality
    /// predicates, so the read can only ever see the records those
    /// tuples name. Always empty for writes.
    pub key_scoped: BTreeSet<String>,
    /// True for mutations (insert, delete, update).
    pub write: bool,
    /// True for inserts specifically (the only write whose same-file
    /// overlap can be refined by key disjointness).
    pub insert: bool,
    /// True when the footprint cannot be scoped to `files` — the
    /// request must serialize against everything.
    pub broadcast: bool,
}

impl Footprint {
    /// Classify `request` against the declared unique groups.
    pub fn of(request: &Request, uniques: &UniqueGroups) -> Footprint {
        match request {
            Request::Insert { record } => {
                let Some(file) = record.file() else {
                    return Footprint::broadcast_write();
                };
                let mut keys = BTreeSet::new();
                for (gi, group) in
                    uniques.get(file).map(Vec::as_slice).unwrap_or_default().iter().enumerate()
                {
                    // Groups with absent attributes are not checked by
                    // the kernel, so they claim nothing.
                    if group.iter().all(|a| record.get(a).is_some()) {
                        let tuple: Vec<Value> =
                            group.iter().map(|a| record.get_or_null(a).clone()).collect();
                        keys.insert((file.to_owned(), gi, tuple));
                    }
                }
                Footprint {
                    files: BTreeSet::from([file.to_owned()]),
                    keys,
                    key_scoped: BTreeSet::new(),
                    write: true,
                    insert: true,
                    broadcast: false,
                }
            }
            Request::Delete { query } => Footprint::of_query(&[query], true, uniques),
            Request::Update { query, .. } => Footprint::of_query(&[query], true, uniques),
            Request::Retrieve { query, .. } => Footprint::of_query(&[query], false, uniques),
            Request::RetrieveCommon { left, right, .. } => {
                Footprint::of_query(&[left, right], false, uniques)
            }
        }
    }

    fn of_query(queries: &[&abdl::Query], write: bool, uniques: &UniqueGroups) -> Footprint {
        let mut files = BTreeSet::new();
        let mut keys = BTreeSet::new();
        // Files some disjunct touches without pinning a unique group:
        // they can never be key-scoped.
        let mut loose = BTreeSet::new();
        for q in queries {
            for conj in &q.disjuncts {
                let Some(file) = conj.file() else {
                    return Footprint { write, ..Footprint::broadcast_write() };
                };
                files.insert(file.to_owned());
                match (!write).then(|| Footprint::pinned_tuple(file, conj, uniques)).flatten() {
                    Some((gi, tuple)) => {
                        keys.insert((file.to_owned(), gi, tuple));
                    }
                    None => {
                        loose.insert(file.to_owned());
                    }
                }
            }
        }
        let key_scoped = files.difference(&loose).cloned().collect();
        Footprint { files, keys, key_scoped, write, insert: false, broadcast: false }
    }

    /// The first `DUPLICATES ARE NOT ALLOWED` group of `file` whose
    /// every attribute `conj` pins with a non-null equality predicate —
    /// the same fast-path condition the controller's key-scoped router
    /// uses. A pinned disjunct can only match the records holding
    /// exactly that tuple (further predicates only narrow the answer).
    fn pinned_tuple(
        file: &str,
        conj: &abdl::Conjunction,
        uniques: &UniqueGroups,
    ) -> Option<(usize, Vec<Value>)> {
        for (gi, group) in uniques.get(file)?.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let tuple: Option<Vec<Value>> = group
                .iter()
                .map(|a| {
                    conj.predicates
                        .iter()
                        .find(|p| p.attr == *a && p.op == abdl::RelOp::Eq)
                        .map(|p| p.value.clone())
                })
                .collect();
            // A null pin is not a scope: a record *lacking* the
            // attribute claims no tuple for the group yet could still
            // satisfy a null equality.
            let Some(tuple) = tuple else { continue };
            if tuple.iter().any(|v| matches!(v, Value::Null)) {
                continue;
            }
            return Some((gi, tuple));
        }
        None
    }

    fn broadcast_write() -> Footprint {
        Footprint {
            files: BTreeSet::new(),
            keys: BTreeSet::new(),
            key_scoped: BTreeSet::new(),
            write: true,
            insert: false,
            broadcast: true,
        }
    }

    /// True when this request and `other` must not be in flight
    /// together.
    pub fn conflicts(&self, other: &Footprint) -> bool {
        // Reads never conflict with reads: they change nothing, so
        // every interleaving is equivalent to admission order — even
        // for two broadcast reads, whose scope is unknown but whose
        // effect is none.
        if !self.write && !other.write {
            return false;
        }
        if self.broadcast || other.broadcast {
            return true;
        }
        if self.files.is_disjoint(&other.files) {
            return false;
        }
        if self.insert && other.insert {
            // Same file, but inserts claiming disjoint unique tuples
            // commute: each gets its own fresh database key, and the
            // unique check of one cannot observe the other.
            return !self.keys.is_disjoint(&other.keys);
        }
        // Insert vs. read: commute when the read is key-scoped on
        // every shared file and the insert's claimed tuples miss every
        // pinned one — the new record cannot satisfy the read's
        // equality predicates, so the read's answer is order-blind.
        let (ins, read) = if self.insert && !other.write {
            (self, other)
        } else if other.insert && !self.write {
            (other, self)
        } else {
            return true;
        };
        let scoped = ins.files.intersection(&read.files).all(|f| read.key_scoped.contains(f));
        !(scoped && ins.keys.is_disjoint(&read.keys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abdl::parse::parse_request;

    fn uniques() -> UniqueGroups {
        HashMap::from([("g".to_owned(), vec![vec!["u".to_owned()]])])
    }

    fn fp(text: &str) -> Footprint {
        Footprint::of(&parse_request(text).unwrap(), &uniques())
    }

    #[test]
    fn disjoint_files_never_conflict() {
        let a = fp("INSERT (<FILE, g>, <u, 1>)");
        let b = fp("INSERT (<FILE, h>, <u, 1>)");
        assert!(!a.conflicts(&b));
        let c = fp("DELETE ((FILE = h) and (x = 3))");
        assert!(!a.conflicts(&c));
    }

    #[test]
    fn same_file_different_keys_do_not_conflict() {
        let a = fp("INSERT (<FILE, g>, <u, 1>)");
        let b = fp("INSERT (<FILE, g>, <u, 2>)");
        assert!(!a.conflicts(&b));
        assert!(!b.conflicts(&a));
    }

    #[test]
    fn same_key_conflicts() {
        let a = fp("INSERT (<FILE, g>, <u, 7>, <x, 1>)");
        let b = fp("INSERT (<FILE, g>, <u, 7>, <x, 2>)");
        assert!(a.conflicts(&b));
    }

    #[test]
    fn same_file_unconstrained_inserts_commute() {
        // File `h` has no unique groups: fresh-key inserts commute.
        let a = fp("INSERT (<FILE, h>, <x, 1>)");
        let b = fp("INSERT (<FILE, h>, <x, 1>)");
        assert!(!a.conflicts(&b));
    }

    #[test]
    fn reads_never_conflict_with_reads() {
        let a = fp("RETRIEVE ((FILE = g) and (u = 1)) (*)");
        let b = fp("RETRIEVE (FILE = g) (*)");
        assert!(!a.conflicts(&b));
        // Scope does not matter for read pairs: broadcast reads
        // commute with scoped reads and with each other.
        let unscoped = fp("RETRIEVE (x = 1) (*)");
        assert!(unscoped.broadcast);
        assert!(!unscoped.conflicts(&a));
        assert!(!unscoped.conflicts(&unscoped.clone()));
    }

    #[test]
    fn writes_conflict_with_overlapping_reads_and_writes() {
        let ins = fp("INSERT (<FILE, g>, <u, 1>)");
        let read = fp("RETRIEVE (FILE = g) (*)");
        let del = fp("DELETE (FILE = g)");
        assert!(ins.conflicts(&read));
        assert!(ins.conflicts(&del));
        assert!(del.conflicts(&read));
    }

    #[test]
    fn key_scoped_reads_commute_with_key_disjoint_inserts() {
        let read = fp("RETRIEVE ((FILE = g) and (u = 1)) (*)");
        assert!(read.key_scoped.contains("g"));
        // Different pinned tuple: the inserted record cannot match.
        assert!(!read.conflicts(&fp("INSERT (<FILE, g>, <u, 2>)")));
        // Same tuple: the read's answer depends on the order.
        assert!(read.conflicts(&fp("INSERT (<FILE, g>, <u, 1>)")));
        // An insert claiming nothing for the group (no `u`) cannot
        // satisfy the read's pinned equality either.
        assert!(!read.conflicts(&fp("INSERT (<FILE, g>, <x, 9>)")));
        // A file-scoped read (file `h` has no unique groups to pin)
        // stays conservative against same-file inserts.
        let loose = fp("RETRIEVE ((FILE = h) and (u = 1)) (*)");
        assert!(loose.key_scoped.is_empty());
        assert!(loose.conflicts(&fp("INSERT (<FILE, h>, <u, 2>)")));
        // One pinned disjunct plus one loose disjunct on the same file
        // is not key-scoped.
        let half = fp("RETRIEVE (((FILE = g) and (u = 1)) or ((FILE = g) and (x = 2))) (*)");
        assert!(half.key_scoped.is_empty());
        assert!(half.conflicts(&fp("INSERT (<FILE, g>, <u, 2>)")));
    }

    #[test]
    fn broadcast_footprints_serialize_against_writes() {
        // A record without FILE, and a query disjunct without FILE,
        // both classify as broadcast.
        let no_file = Footprint::of(
            &Request::Insert { record: abdl::Record::from_pairs([("x", Value::Int(1))]) },
            &uniques(),
        );
        assert!(no_file.broadcast);
        let unscoped = fp("RETRIEVE (x = 1) (*)");
        assert!(unscoped.broadcast);
        let other_file = fp("RETRIEVE (FILE = zzz) (*)");
        assert!(no_file.conflicts(&other_file));
        // A broadcast read still serializes against any write — it
        // must observe the cluster at one admission-order point.
        assert!(unscoped.conflicts(&fp("INSERT (<FILE, g>, <u, 3>)")));
        assert!(unscoped.conflicts(&fp("DELETE (FILE = g)")));
    }

    #[test]
    fn retrieve_common_covers_both_sides() {
        let j = fp("RETRIEVE-COMMON ((FILE = g)) (u) COMMON ((FILE = h)) (u) (x)");
        assert_eq!(
            j.files.iter().map(String::as_str).collect::<Vec<_>>(),
            vec!["g", "h"]
        );
        let ins_g = fp("INSERT (<FILE, g>, <u, 9>)");
        let ins_k = fp("INSERT (<FILE, k>, <u, 9>)");
        assert!(j.conflicts(&ins_g));
        assert!(!j.conflicts(&ins_k));
    }
}
