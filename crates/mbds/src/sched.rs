//! Request footprint classification for the controller's batch
//! scheduler.
//!
//! When several sessions' requests are admitted together
//! (`Kernel::execute_batch`), the controller wants to keep more than
//! one of them in flight on the backend bus at a time. That is safe
//! exactly when the requests *commute*: executing them concurrently
//! (in any interleaving the per-backend FIFO channels allow) produces
//! the same state as executing them in admission order. This module
//! computes a conservative **footprint** per request — the kernel
//! files it touches, and for inserts the unique-index tuples it would
//! claim — and a pairwise [`Footprint::conflicts`] predicate:
//!
//! * requests on **disjoint files** never conflict;
//! * two **reads** never conflict, shared files or not;
//! * two **inserts into the same file** conflict only when they claim
//!   the same `DUPLICATES ARE NOT ALLOWED` tuple (the unique check is
//!   the one piece of controller state an insert reads before its
//!   effects land);
//! * anything with a **broadcast** footprint (a query disjunct naming
//!   no file, or a record without a `FILE` keyword) conflicts with
//!   everything — it must observe the whole cluster at a well-defined
//!   point in the admission order;
//! * every other write overlap (delete/update vs. anything on a shared
//!   file) conflicts.
//!
//! The scheduler never reorders: a conflicting request simply closes
//! the current flight and waits for it to drain, so execution is
//! always equivalent to the serial admission order — the property
//! `tests/concurrent_equivalence.rs` pins.

use abdl::{Request, Value};
use std::collections::{BTreeSet, HashMap};

/// The unique-constraint registry the classifier consults: per file,
/// the declared `DUPLICATES ARE NOT ALLOWED` attribute groups, in
/// declaration order (group index = position).
pub type UniqueGroups = HashMap<String, Vec<Vec<String>>>;

/// What one request touches, as seen by the batch scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Footprint {
    /// Kernel files named by the request's queries (or the inserted
    /// record's `FILE` keyword).
    pub files: BTreeSet<String>,
    /// Unique-index tuples an insert would claim: one entry per
    /// constraint group of the target file whose attributes the record
    /// all carries — `(file, group index, value tuple)`.
    pub keys: BTreeSet<(String, usize, Vec<Value>)>,
    /// True for mutations (insert, delete, update).
    pub write: bool,
    /// True for inserts specifically (the only write whose same-file
    /// overlap can be refined by key disjointness).
    pub insert: bool,
    /// True when the footprint cannot be scoped to `files` — the
    /// request must serialize against everything.
    pub broadcast: bool,
}

impl Footprint {
    /// Classify `request` against the declared unique groups.
    pub fn of(request: &Request, uniques: &UniqueGroups) -> Footprint {
        match request {
            Request::Insert { record } => {
                let Some(file) = record.file() else {
                    return Footprint::broadcast_write();
                };
                let mut keys = BTreeSet::new();
                for (gi, group) in
                    uniques.get(file).map(Vec::as_slice).unwrap_or_default().iter().enumerate()
                {
                    // Groups with absent attributes are not checked by
                    // the kernel, so they claim nothing.
                    if group.iter().all(|a| record.get(a).is_some()) {
                        let tuple: Vec<Value> =
                            group.iter().map(|a| record.get_or_null(a).clone()).collect();
                        keys.insert((file.to_owned(), gi, tuple));
                    }
                }
                Footprint {
                    files: BTreeSet::from([file.to_owned()]),
                    keys,
                    write: true,
                    insert: true,
                    broadcast: false,
                }
            }
            Request::Delete { query } => Footprint::of_query(&[query], true),
            Request::Update { query, .. } => Footprint::of_query(&[query], true),
            Request::Retrieve { query, .. } => Footprint::of_query(&[query], false),
            Request::RetrieveCommon { left, right, .. } => {
                Footprint::of_query(&[left, right], false)
            }
        }
    }

    fn of_query(queries: &[&abdl::Query], write: bool) -> Footprint {
        let mut files = BTreeSet::new();
        for q in queries {
            for conj in &q.disjuncts {
                let Some(file) = conj.file() else {
                    return Footprint { write, ..Footprint::broadcast_write() };
                };
                files.insert(file.to_owned());
            }
        }
        Footprint { files, keys: BTreeSet::new(), write, insert: false, broadcast: false }
    }

    fn broadcast_write() -> Footprint {
        Footprint {
            files: BTreeSet::new(),
            keys: BTreeSet::new(),
            write: true,
            insert: false,
            broadcast: true,
        }
    }

    /// True when this request and `other` must not be in flight
    /// together.
    pub fn conflicts(&self, other: &Footprint) -> bool {
        if self.broadcast || other.broadcast {
            return true;
        }
        if !self.write && !other.write {
            return false;
        }
        if self.files.is_disjoint(&other.files) {
            return false;
        }
        if self.insert && other.insert {
            // Same file, but inserts claiming disjoint unique tuples
            // commute: each gets its own fresh database key, and the
            // unique check of one cannot observe the other.
            return !self.keys.is_disjoint(&other.keys);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abdl::parse::parse_request;

    fn uniques() -> UniqueGroups {
        HashMap::from([("g".to_owned(), vec![vec!["u".to_owned()]])])
    }

    fn fp(text: &str) -> Footprint {
        Footprint::of(&parse_request(text).unwrap(), &uniques())
    }

    #[test]
    fn disjoint_files_never_conflict() {
        let a = fp("INSERT (<FILE, g>, <u, 1>)");
        let b = fp("INSERT (<FILE, h>, <u, 1>)");
        assert!(!a.conflicts(&b));
        let c = fp("DELETE ((FILE = h) and (x = 3))");
        assert!(!a.conflicts(&c));
    }

    #[test]
    fn same_file_different_keys_do_not_conflict() {
        let a = fp("INSERT (<FILE, g>, <u, 1>)");
        let b = fp("INSERT (<FILE, g>, <u, 2>)");
        assert!(!a.conflicts(&b));
        assert!(!b.conflicts(&a));
    }

    #[test]
    fn same_key_conflicts() {
        let a = fp("INSERT (<FILE, g>, <u, 7>, <x, 1>)");
        let b = fp("INSERT (<FILE, g>, <u, 7>, <x, 2>)");
        assert!(a.conflicts(&b));
    }

    #[test]
    fn same_file_unconstrained_inserts_commute() {
        // File `h` has no unique groups: fresh-key inserts commute.
        let a = fp("INSERT (<FILE, h>, <x, 1>)");
        let b = fp("INSERT (<FILE, h>, <x, 1>)");
        assert!(!a.conflicts(&b));
    }

    #[test]
    fn reads_never_conflict_with_reads() {
        let a = fp("RETRIEVE ((FILE = g) and (u = 1)) (*)");
        let b = fp("RETRIEVE (FILE = g) (*)");
        assert!(!a.conflicts(&b));
    }

    #[test]
    fn writes_conflict_with_overlapping_reads_and_writes() {
        let ins = fp("INSERT (<FILE, g>, <u, 1>)");
        let read = fp("RETRIEVE (FILE = g) (*)");
        let del = fp("DELETE (FILE = g)");
        assert!(ins.conflicts(&read));
        assert!(ins.conflicts(&del));
        assert!(del.conflicts(&read));
    }

    #[test]
    fn broadcast_footprints_serialize_everything() {
        // A record without FILE, and a query disjunct without FILE,
        // both classify as broadcast.
        let no_file = Footprint::of(
            &Request::Insert { record: abdl::Record::from_pairs([("x", Value::Int(1))]) },
            &uniques(),
        );
        assert!(no_file.broadcast);
        let unscoped = fp("RETRIEVE (x = 1) (*)");
        assert!(unscoped.broadcast);
        let other_file = fp("RETRIEVE (FILE = zzz) (*)");
        assert!(no_file.conflicts(&other_file));
        assert!(unscoped.conflicts(&other_file));
        // Even two broadcast reads serialize (conservative: their scope
        // is unknown).
        assert!(unscoped.conflicts(&unscoped.clone()));
    }

    #[test]
    fn retrieve_common_covers_both_sides() {
        let j = fp("RETRIEVE-COMMON ((FILE = g)) (u) COMMON ((FILE = h)) (u) (x)");
        assert_eq!(
            j.files.iter().map(String::as_str).collect::<Vec<_>>(),
            vec!["g", "h"]
        );
        let ins_g = fp("INSERT (<FILE, g>, <u, 9>)");
        let ins_k = fp("INSERT (<FILE, k>, <u, 9>)");
        assert!(j.conflicts(&ins_g));
        assert!(!j.conflicts(&ins_k));
    }
}
