//! Per-backend failure detection: the Alive → Suspect → Dead state
//! machine driven by the controller's send/receive outcomes.
//!
//! The 1987 MBDS assumed a perfectly reliable bus and perfectly
//! reliable backends; this module is the substitute failure detector a
//! production deployment needs. The controller consults the board
//! before every broadcast, demotes a backend one step per missed reply
//! window (`Alive → Suspect`, `Suspect → Dead`), demotes straight to
//! `Dead` on a closed channel, and promotes `Suspect → Alive` when a
//! tardy reply does arrive. `Dead` is terminal until an explicit
//! `restart_backend`.

/// Health of one backend as observed by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendState {
    /// Responding normally.
    Alive,
    /// Missed one reply window; still tried, one more miss kills it.
    Suspect,
    /// Channel closed or repeatedly unresponsive; excluded from service
    /// until restarted.
    Dead,
}

/// The controller's view of every backend's health.
#[derive(Debug, Clone)]
pub struct HealthBoard {
    states: Vec<BackendState>,
}

impl HealthBoard {
    /// A board of `n` backends, all alive.
    pub fn new(n: usize) -> Self {
        HealthBoard { states: vec![BackendState::Alive; n] }
    }

    /// Current state of backend `i`.
    pub fn state(&self, i: usize) -> BackendState {
        self.states[i]
    }

    /// True unless backend `i` is dead (suspects are still served).
    pub fn is_serving(&self, i: usize) -> bool {
        self.states[i] != BackendState::Dead
    }

    /// Number of backends not dead.
    pub fn serving_count(&self) -> usize {
        self.states.iter().filter(|s| **s != BackendState::Dead).count()
    }

    /// Indexes of dead backends, ascending.
    pub fn unavailable(&self) -> Vec<usize> {
        (0..self.states.len()).filter(|&i| self.states[i] == BackendState::Dead).collect()
    }

    /// A reply window elapsed without an answer from `i`: demote one
    /// step. Returns the new state so the caller can decide whether to
    /// wait one more window (`Suspect`) or give up (`Dead`).
    pub fn missed_reply(&mut self, i: usize) -> BackendState {
        self.states[i] = match self.states[i] {
            BackendState::Alive => BackendState::Suspect,
            _ => BackendState::Dead,
        };
        self.states[i]
    }

    /// The channel to `i` is closed (send failed, receiver dropped, or
    /// the worker thread exited): immediately dead.
    pub fn channel_closed(&mut self, i: usize) {
        self.states[i] = BackendState::Dead;
    }

    /// A reply arrived from `i`: a suspect is vindicated. Dead backends
    /// stay dead — only [`restarted`](Self::restarted) revives them.
    pub fn reply_received(&mut self, i: usize) {
        if self.states[i] == BackendState::Suspect {
            self.states[i] = BackendState::Alive;
        }
    }

    /// Backend `i` was restarted with a fresh worker.
    pub fn restarted(&mut self, i: usize) {
        self.states[i] = BackendState::Alive;
    }

    /// A new backend joined the cluster (online add): one more member,
    /// alive. Returns its index.
    pub fn grow(&mut self) -> usize {
        self.states.push(BackendState::Alive);
        self.states.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demotion_is_stepwise_and_recovery_explicit() {
        let mut board = HealthBoard::new(2);
        assert_eq!(board.missed_reply(0), BackendState::Suspect);
        assert!(board.is_serving(0), "suspects are still tried");
        board.reply_received(0);
        assert_eq!(board.state(0), BackendState::Alive);
        board.missed_reply(0);
        assert_eq!(board.missed_reply(0), BackendState::Dead);
        board.reply_received(0);
        assert_eq!(board.state(0), BackendState::Dead, "stale replies do not revive the dead");
        board.restarted(0);
        assert_eq!(board.state(0), BackendState::Alive);
        assert_eq!(board.unavailable(), Vec::<usize>::new());
    }

    #[test]
    fn closed_channel_skips_suspect() {
        let mut board = HealthBoard::new(3);
        board.channel_closed(1);
        assert_eq!(board.state(1), BackendState::Dead);
        assert_eq!(board.serving_count(), 2);
        assert_eq!(board.unavailable(), vec![1]);
    }
}
