//! The backend controller (the "master") and its backend worker
//! threads (the "slaves").

use crate::placement::Partitioner;
use abdl::engine::aggregate;
use abdl::{DbKey, Error, Kernel, Record, Request, Response, Result, Store};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::thread::JoinHandle;

enum ToBackend {
    CreateFile(String),
    InsertWithKey(DbKey, Record),
    Exec(Request),
    Shutdown,
}

struct BackendHandle {
    tx: Sender<ToBackend>,
    rx: Receiver<Result<Response>>,
    join: Option<JoinHandle<()>>,
    alive: bool,
}

/// The MBDS controller: owns the backends, assigns database keys,
/// places inserted records, broadcasts everything else and merges the
/// partial responses.
pub struct Controller {
    backends: Vec<BackendHandle>,
    partitioner: Partitioner,
    next_key: u64,
    /// `DUPLICATES ARE NOT ALLOWED` groups are enforced *globally* by
    /// the controller (a per-backend check would only see its own
    /// partition).
    unique_groups: HashMap<String, Vec<Vec<String>>>,
}

impl Controller {
    /// Spawn a controller with `n` backend threads.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "MBDS needs at least one backend");
        let backends = (0..n)
            .map(|i| {
                let (tx, backend_rx) = unbounded::<ToBackend>();
                let (backend_tx, rx) = unbounded::<Result<Response>>();
                let join = std::thread::Builder::new()
                    .name(format!("mbds-backend-{i}"))
                    .spawn(move || backend_loop(backend_rx, backend_tx))
                    .expect("spawn backend thread");
                BackendHandle { tx, rx, join: Some(join), alive: true }
            })
            .collect();
        Controller {
            backends,
            partitioner: Partitioner::new(n),
            next_key: 1,
            unique_groups: HashMap::new(),
        }
    }

    /// Total number of backends (alive or killed).
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// Number of live backends.
    pub fn alive_count(&self) -> usize {
        self.backends.iter().filter(|b| b.alive).count()
    }

    /// Failure injection: kill backend `i`. Its partition becomes
    /// unavailable; the controller keeps serving from the survivors.
    pub fn kill_backend(&mut self, i: usize) {
        if let Some(b) = self.backends.get_mut(i) {
            if b.alive {
                let _ = b.tx.send(ToBackend::Shutdown);
                if let Some(join) = b.join.take() {
                    let _ = join.join();
                }
                b.alive = false;
            }
        }
    }

    fn alive(&self) -> impl Iterator<Item = &BackendHandle> {
        self.backends.iter().filter(|b| b.alive)
    }

    /// Broadcast a request to every live backend and merge responses.
    fn broadcast(&self, request: &Request) -> Result<Response> {
        for b in self.alive() {
            b.tx.send(ToBackend::Exec(request.clone()))
                .map_err(|_| Error::Internal("backend channel closed".into()))?;
        }
        let mut merged = Response::default();
        for b in self.alive() {
            let resp = b
                .rx
                .recv()
                .map_err(|_| Error::Internal("backend died mid-request".into()))??;
            merged.merge(resp);
        }
        Ok(merged)
    }

    fn check_unique(&self, record: &Record) -> Result<()> {
        let Some(file) = record.file() else {
            return Err(Error::MissingFileKeyword);
        };
        let Some(groups) = self.unique_groups.get(file) else { return Ok(()) };
        for group in groups {
            if !group.iter().all(|a| record.get(a).is_some()) {
                continue;
            }
            let query = abdl::Query::conjunction(
                std::iter::once(abdl::Predicate::eq(abdl::FILE_ATTR, abdl::Value::str(file)))
                    .chain(group.iter().map(|a| {
                        abdl::Predicate::eq(a.clone(), record.get(a).expect("present").clone())
                    }))
                    .collect(),
            );
            let hits = self.broadcast(&Request::retrieve_all(query))?;
            if !hits.records().is_empty() {
                return Err(Error::DuplicateKey { file: file.to_owned(), attrs: group.clone() });
            }
        }
        Ok(())
    }
}

impl Kernel for Controller {
    fn create_file(&mut self, name: &str) {
        for b in self.alive() {
            let _ = b.tx.send(ToBackend::CreateFile(name.to_owned()));
        }
        for b in self.alive() {
            let _ = b.rx.recv();
        }
    }

    fn add_unique_constraint(&mut self, file: &str, attrs: Vec<String>) {
        self.unique_groups.entry(file.to_owned()).or_default().push(attrs);
    }

    fn reserve_key(&mut self) -> DbKey {
        let key = DbKey(self.next_key);
        self.next_key += 1;
        key
    }

    fn execute(&mut self, request: &Request) -> Result<Response> {
        match request {
            Request::Insert { record } => {
                self.check_unique(record)?;
                let file = record.file().ok_or(Error::MissingFileKeyword)?.to_owned();
                let key = self.reserve_key();
                // Place on the next live backend in the file's rotation.
                let mut target = self.partitioner.place(&file);
                let mut guard = 0;
                while !self.backends[target].alive {
                    target = self.partitioner.place(&file);
                    guard += 1;
                    if guard > self.backends.len() {
                        return Err(Error::Internal("no live backends".into()));
                    }
                }
                let b = &self.backends[target];
                b.tx.send(ToBackend::InsertWithKey(key, record.clone()))
                    .map_err(|_| Error::Internal("backend channel closed".into()))?;
                b.rx.recv().map_err(|_| Error::Internal("backend died mid-insert".into()))?
            }
            Request::Retrieve { query, target, by } if target.has_aggregates() => {
                // Partial aggregates do not merge (AVG); fetch the
                // matching records and aggregate globally.
                let rows = self.broadcast(&Request::retrieve_all(query.clone()))?;
                let mut stats = rows.stats;
                let groups = aggregate(rows.records(), target, by.as_deref())?;
                stats.records_returned = groups.len() as u64;
                let mut resp = Response::with_records(Vec::new(), stats);
                resp.groups = Some(groups);
                Ok(resp)
            }
            Request::RetrieveCommon { left, left_attr, right, right_attr, target } => {
                // Matching halves may live on different backends; join
                // at the controller over the merged partials.
                let l = self.broadcast(&Request::retrieve_all(left.clone()))?;
                let r = self.broadcast(&Request::retrieve_all(right.clone()))?;
                // Tag halves into scratch files (a record matching both
                // qualifications must appear on both sides, so the keys
                // are remapped disjointly).
                let mut joiner = Store::new();
                for (key, rec) in l.records() {
                    let mut rec = rec.clone();
                    rec.set(abdl::FILE_ATTR, abdl::Value::str("__mbds_left"));
                    joiner.insert_with_key(DbKey(key.0 * 2), rec)?;
                }
                for (key, rec) in r.records() {
                    let mut rec = rec.clone();
                    rec.set(abdl::FILE_ATTR, abdl::Value::str("__mbds_right"));
                    joiner.insert_with_key(DbKey(key.0 * 2 + 1), rec)?;
                }
                let mut stats = l.stats;
                stats += r.stats;
                let joined = joiner.execute(&Request::RetrieveCommon {
                    left: abdl::Query::conjunction(vec![abdl::Predicate::eq(
                        abdl::FILE_ATTR,
                        "__mbds_left",
                    )]),
                    left_attr: left_attr.clone(),
                    right: abdl::Query::conjunction(vec![abdl::Predicate::eq(
                        abdl::FILE_ATTR,
                        "__mbds_right",
                    )]),
                    right_attr: right_attr.clone(),
                    target: target.clone(),
                })?;
                let mut out = joined;
                out.stats += stats;
                Ok(out)
            }
            other => self.broadcast(other),
        }
    }
}

impl Drop for Controller {
    fn drop(&mut self) {
        for b in &mut self.backends {
            if b.alive {
                let _ = b.tx.send(ToBackend::Shutdown);
            }
            if let Some(join) = b.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// One backend: a private store served over the bus.
fn backend_loop(rx: Receiver<ToBackend>, tx: Sender<Result<Response>>) {
    let mut store = Store::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ToBackend::CreateFile(name) => {
                store.create_file(name);
                let _ = tx.send(Ok(Response::default()));
            }
            ToBackend::InsertWithKey(key, record) => {
                let resp = store
                    .insert_with_key(key, record)
                    .map(|()| Response::with_affected(1, Default::default()));
                let _ = tx.send(resp);
            }
            ToBackend::Exec(req) => {
                let _ = tx.send(store.execute(&req));
            }
            ToBackend::Shutdown => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abdl::parse::parse_request;
    use abdl::Value;

    fn insert(k: &mut impl Kernel, file: &str, key: i64, extra: &[(&str, Value)]) {
        let mut rec = Record::from_pairs([("FILE", Value::str(file))]);
        rec.set(file.to_owned(), Value::Int(key));
        for (a, v) in extra {
            rec.set((*a).to_owned(), v.clone());
        }
        k.execute(&Request::Insert { record: rec }).unwrap();
    }

    #[test]
    fn retrieve_merges_partitions() {
        let mut c = Controller::new(4);
        c.create_file("f");
        for i in 0..20 {
            insert(&mut c, "f", i, &[("bucket", Value::Int(i % 3))]);
        }
        let resp = c
            .execute(&parse_request("RETRIEVE ((FILE = f) and (bucket = 1)) (*)").unwrap())
            .unwrap();
        assert_eq!(resp.records().len(), 7);
        // Merged responses are sorted by database key.
        let keys: Vec<u64> = resp.records().iter().map(|(k, _)| k.0).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn update_and_delete_broadcast() {
        let mut c = Controller::new(3);
        c.create_file("f");
        for i in 0..12 {
            insert(&mut c, "f", i, &[("x", Value::Int(0))]);
        }
        let resp = c.execute(&parse_request("UPDATE ((FILE = f) and (f >= 6)) (x = 1)").unwrap());
        assert_eq!(resp.unwrap().affected, 6);
        let resp = c.execute(&parse_request("DELETE ((FILE = f) and (x = 1))").unwrap()).unwrap();
        assert_eq!(resp.affected, 6);
        let rest = c.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert_eq!(rest.records().len(), 6);
    }

    #[test]
    fn aggregates_are_globally_correct() {
        let mut c = Controller::new(4);
        c.create_file("f");
        for i in 0..10 {
            insert(&mut c, "f", i, &[("v", Value::Int(i))]);
        }
        let resp =
            c.execute(&parse_request("RETRIEVE (FILE = f) (COUNT(v), AVG(v), MAX(v))").unwrap());
        let groups = resp.unwrap().groups.unwrap();
        assert_eq!(groups[0].values[0], Value::Int(10));
        // Global AVG = 4.5; a naive per-backend merge could not produce
        // this for uneven partitions.
        assert_eq!(groups[0].values[1], Value::Float(4.5));
        assert_eq!(groups[0].values[2], Value::Int(9));
    }

    #[test]
    fn unique_constraints_enforced_across_partitions() {
        let mut c = Controller::new(4);
        c.create_file("f");
        c.add_unique_constraint("f", vec!["name".into()]);
        insert(&mut c, "f", 1, &[("name", Value::str("a"))]);
        // The duplicate would land on a different backend; the global
        // check must still reject it.
        let mut rec = Record::from_pairs([("FILE", Value::str("f"))]);
        rec.set("f", Value::Int(2));
        rec.set("name", Value::str("a"));
        let err = c.execute(&Request::Insert { record: rec }).unwrap_err();
        assert!(matches!(err, Error::DuplicateKey { .. }));
    }

    #[test]
    fn retrieve_common_joins_across_backends() {
        let mut c = Controller::new(3);
        c.create_file("a");
        c.create_file("b");
        insert(&mut c, "a", 1, &[("j", Value::Int(7)), ("la", Value::str("left"))]);
        insert(&mut c, "b", 1, &[("j", Value::Int(7)), ("lb", Value::str("right"))]);
        insert(&mut c, "b", 2, &[("j", Value::Int(8))]);
        let resp = c
            .execute(
                &parse_request(
                    "RETRIEVE-COMMON ((FILE = a)) (j) COMMON ((FILE = b)) (j) (la, lb)",
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.records().len(), 1);
        assert_eq!(resp.records()[0].1.get("lb"), Some(&Value::str("right")));
    }

    #[test]
    fn results_are_identical_to_single_store() {
        let mut single = Store::new();
        let mut multi = Controller::new(5);
        single.create_file("f");
        multi.create_file("f");
        for i in 0..50 {
            insert(&mut single, "f", i, &[("m", Value::Int(i % 4))]);
            insert(&mut multi, "f", i, &[("m", Value::Int(i % 4))]);
        }
        for q in [
            "RETRIEVE ((FILE = f) and (m = 2)) (f, m)",
            "RETRIEVE ((FILE = f) and (f >= 40)) (*)",
            "RETRIEVE (FILE = f) (COUNT(f)) BY m",
        ] {
            let a = single.execute(&parse_request(q).unwrap()).unwrap();
            let b = multi.execute(&parse_request(q).unwrap()).unwrap();
            assert_eq!(a.records(), b.records(), "records differ for {q}");
            assert_eq!(a.groups, b.groups, "groups differ for {q}");
        }
    }

    #[test]
    fn transactions_execute_sequentially_through_the_controller() {
        let mut c = Controller::new(3);
        c.create_file("f");
        let txn = abdl::parse::parse_transaction(
            "INSERT (<FILE, f>, <f, 1>, <x, 1>);
             INSERT (<FILE, f>, <f, 2>, <x, 1>);
             UPDATE ((FILE = f) and (x = 1)) (x = 2);
             RETRIEVE ((FILE = f) and (x = 2)) (*)",
        )
        .unwrap();
        let responses = c.execute_transaction(&txn).unwrap();
        assert_eq!(responses.len(), 4);
        assert_eq!(responses[2].affected, 2);
        assert_eq!(responses[3].records().len(), 2);
    }

    #[test]
    fn killing_a_backend_loses_only_its_partition() {
        let mut c = Controller::new(4);
        c.create_file("f");
        for i in 0..20 {
            insert(&mut c, "f", i, &[]);
        }
        c.kill_backend(2);
        assert_eq!(c.alive_count(), 3);
        let resp = c.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert_eq!(resp.records().len(), 15, "one quarter of the records is gone");
        // The system still accepts new work.
        insert(&mut c, "f", 100, &[]);
        let resp = c.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert_eq!(resp.records().len(), 16);
    }
}
