//! The backend controller (the "master") and its backend worker
//! threads (the "slaves").
//!
//! Beyond the 1987 design — a controller broadcasting to N backends
//! with private, unreplicated partitions — this controller adds the
//! availability machinery a production deployment needs:
//!
//! * **k-way replicated placement** (default k = 2): every insert goes
//!   to a replica group chosen by the [`Partitioner`]; reads are
//!   broadcast, merged, and deduplicated by database key, so replicated
//!   answers are byte-identical to a single store's.
//! * **failure detection** via reply sequence numbers, `recv_timeout`
//!   and the per-backend [`HealthBoard`] (Alive → Suspect → Dead);
//!   requests are retried on survivors instead of erroring.
//! * **recovery**: [`Controller::restart_backend`] respawns a worker
//!   and re-replicates its lost records from surviving replicas.
//! * **degraded-mode reporting**: every response carries `degraded` and
//!   `unavailable_backends`, and [`Kernel::health`] exposes the board.
//! * **deterministic fault injection** ([`FaultPlan`]) applied inside
//!   the worker loop, for reproducible availability experiments.

use crate::directory::Directory;
use crate::fault::{FaultKind, FaultPlan};
use crate::health::{BackendState, HealthBoard};
use crate::net::{self, kind, Frame, NetFaultPlan, TcpLink, WireOp, WireReply};
use crate::placement::Partitioner;
use crate::rebalance::{self, MoveJob, Rebalancer};
use crate::sched::Footprint;
use crate::wal::{FileLog, LogRecord, LogStore, SnapshotData, Wal, WalStats};
use abdl::engine::aggregate;
use abdl::{
    DbKey, Error, ExecTotals, Kernel, KernelHealth, Record, RelOp, Request, Response, Result,
    Store, Transaction, Value,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::net::SocketAddr;
use std::path::Path;
use std::process::Child;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default replica count per record (clamped to the backend count).
pub const DEFAULT_REPLICATION: usize = 2;

/// Default number of retransmissions the socket transport attempts
/// inside one reply window before letting the health board demote the
/// backend (the in-process channel bus is lossless and never retries).
pub const DEFAULT_RETRY_BUDGET: u32 = 3;

/// A stable client identity for idempotent request ids: constant
/// across reconnects of one controller, distinct across controllers
/// (and across promoted incarnations), so the backends' reply caches
/// never mix two senders' sequence spaces.
fn next_client_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    ((std::process::id() as u64) << 32) | NEXT.fetch_add(1, Ordering::Relaxed)
}

pub(crate) enum BackendOp {
    CreateFile(String),
    InsertWithKey(DbKey, Record),
    Exec(Request),
    /// Physically remove records by key — the cleanup half of a
    /// rebalance group move. A copy left behind on an abandoned member
    /// would be resurrected by the next broadcast read.
    DeleteKeys(Vec<DbKey>),
    /// Fetch records by key — the copy half of a rebalance chunk. The
    /// move path asks for exactly the chunk's keys instead of scanning
    /// whole files, so a chunk costs O(chunk), not O(database).
    FetchKeys(Vec<DbKey>),
    Shutdown,
}

/// One message on the controller→backend bus. The reply sender rides
/// in the envelope (rather than being fixed at spawn) so a promoted
/// standby can address the same backend threads over fresh reply
/// channels — stale replies queued for the demoted controller can
/// never reach the new one. `epoch` is the sender's controller epoch;
/// backends reject envelopes below the cluster fence.
pub(crate) struct Envelope {
    seq: u64,
    epoch: u64,
    reply: Sender<Reply>,
    op: BackendOp,
}

struct Reply {
    seq: u64,
    result: Result<Response>,
}

/// One flight member's state between the batch scheduler's staging
/// (send) and collection (reply) phases — see
/// `Controller::execute_flight`.
struct StagedInsert {
    key: DbKey,
    file: String,
    seq: u64,
    /// Backends the staged wave reached.
    sent: Vec<usize>,
    /// Backends that acknowledged the write.
    assigned: Vec<usize>,
    /// First error any wave member returned (drained, as always).
    err: Option<Error>,
    /// Placement scan cursor: substitute waves continue where the
    /// staged wave stopped.
    primary: usize,
    scanned: usize,
    /// Backend messages attributed to this member's response.
    msgs: u64,
}

/// One read flight member's state between the batch scheduler's
/// staging (send) and collection (reply) phases — the read-side
/// counterpart of [`StagedInsert`].
struct StagedRead {
    seq: u64,
    /// The request actually sent (`retrieve_all` for aggregates, the
    /// original retrieve otherwise) — kept for probe failover resends.
    wire: Request,
    /// Backends the round reached.
    sent: Vec<usize>,
    /// Untried replicas that can each answer the whole probe, in
    /// failover order (empty for non-probe reads).
    fallback: Vec<usize>,
    /// Merged partial responses collected so far.
    merged: Response,
    /// First error any contacted backend returned (the round is always
    /// fully drained first).
    err: Option<Error>,
    /// A contacted backend died before answering. For a probe the
    /// merged answer is missing entirely and phase 3 fails over to a
    /// replica; for a routed round the survivors carry the answer
    /// (degraded-mode reporting covers the rest), exactly like
    /// `send_round`.
    lost: bool,
    /// True when this member went out as a single-backend probe.
    probe: bool,
    /// Backend messages attributed to this member's response.
    msgs: u64,
}

/// One member of a batch flight, in admission order.
enum FlightItem<'a> {
    Insert(&'a Record),
    Read(&'a Request),
}

/// A flight member's in-flight state, same position as its item.
enum Staged {
    Insert(Result<StagedInsert>),
    Read(Box<StagedRead>),
}

struct BackendHandle {
    tx: Sender<Envelope>,
    rx: Receiver<Reply>,
    reply_tx: Sender<Reply>,
    join: Option<JoinHandle<()>>,
    /// `Some` when this backend is a separate OS process reached over
    /// TCP; the channel fields above are inert placeholders then.
    tcp: Option<TcpLink>,
    /// The last frame sent on the TCP link — the retransmission stash.
    /// The controller keeps at most one request in flight per backend,
    /// so one slot is exactly enough.
    last_frame: Option<Frame>,
}

/// The shared state of a socket-transport cluster: where the backend
/// processes listen (kept current across restarts), their OS child
/// handles (holding them keeps the backends' stdin pipes open — each
/// backend's watchdog exits when every holder is gone), and the
/// network fault plan every link consults. Shared between a primary
/// and its standby, so a demoted primary being dropped cannot take the
/// processes down while the promoted controller is serving over them.
pub(crate) struct SharedNet {
    addrs: Mutex<Vec<SocketAddr>>,
    children: Mutex<Vec<Option<Child>>>,
    plan: Arc<Mutex<NetFaultPlan>>,
}

/// Everything a [`crate::Standby`] needs to take over the primary's
/// backend threads at promotion time: the shared sender bus (kept
/// current across backend restarts), the shared fence, the shared
/// fault plan, the reply timeout, and (on the socket transport) the
/// shared process/address table.
pub(crate) struct ClusterLink {
    pub(crate) bus: Arc<Mutex<Vec<Sender<Envelope>>>>,
    pub(crate) fence: Arc<AtomicU64>,
    pub(crate) faults: Arc<Mutex<FaultPlan>>,
    pub(crate) reply_timeout: Duration,
    pub(crate) net: Option<Arc<SharedNet>>,
}

/// The warm state a standby's mirror hands to
/// [`Controller::promoted`].
pub(crate) struct PromotedParts {
    pub(crate) partitioner: Partitioner,
    pub(crate) replication: usize,
    pub(crate) next_key: u64,
    pub(crate) unique_groups: HashMap<String, Vec<Vec<String>>>,
    pub(crate) files: Vec<String>,
    pub(crate) directory: Directory,
    pub(crate) unique_index: HashMap<(String, usize), BTreeMap<Vec<Value>, BTreeSet<DbKey>>>,
    pub(crate) resident: HashMap<String, Vec<u64>>,
    pub(crate) dead: Vec<usize>,
    pub(crate) draining: BTreeSet<usize>,
    pub(crate) retired: BTreeSet<usize>,
    pub(crate) unwrapping: bool,
}

/// The MBDS controller: owns the backends, assigns database keys,
/// places inserted records on replica groups, broadcasts everything
/// else and merges (and deduplicates) the partial responses.
pub struct Controller {
    backends: Vec<BackendHandle>,
    health: HealthBoard,
    partitioner: Partitioner,
    replication: usize,
    next_key: u64,
    next_seq: u64,
    /// This controller's epoch: 0 for a fresh controller, higher for
    /// one installed by standby promotion. Stamped into every WAL line
    /// and backend envelope.
    epoch: u64,
    /// The cluster fence, shared with every backend thread (and any
    /// standby): envelopes below it are rejected, so a demoted
    /// controller's stray writes go nowhere.
    fence: Arc<AtomicU64>,
    /// The live command senders, one per backend, shared with any
    /// standby. `restart_backend` replaces a slot in place, so a
    /// standby attached before the restart still promotes onto the
    /// *current* channels.
    bus: Arc<Mutex<Vec<Sender<Envelope>>>>,
    /// `DUPLICATES ARE NOT ALLOWED` groups are enforced *globally* by
    /// the controller (a per-backend check would only see its own
    /// partition).
    unique_groups: HashMap<String, Vec<Vec<String>>>,
    /// Files created so far, in creation order; replayed into restarted
    /// backends before re-replication.
    files: Vec<String>,
    /// Which backends hold each record — the recovery and degraded-mode
    /// source of truth. Replica sets are interned ([`Directory`]), so a
    /// million records cost a map slot each, not a `Vec` each.
    directory: Directory,
    /// Shared with the worker threads; swap via `set_fault_plan`.
    faults: Arc<Mutex<FaultPlan>>,
    reply_timeout: Duration,
    /// `create_file` cannot return an error through the `Kernel` trait;
    /// a total failure is stashed here and surfaced by the next
    /// `execute` (see `try_create_file` for the fallible API).
    pending_error: Option<Error>,
    degraded_cache: bool,
    degraded_dirty: bool,
    /// Write-ahead log for durable controllers (`None` on the plain
    /// in-memory constructors, and during recovery replay — replayed
    /// operations must not be re-logged).
    wal: Option<Wal>,
    /// Exact unique-value index: for each `DUPLICATES ARE NOT ALLOWED`
    /// group of a file, the value tuple of every stored record → the
    /// keys holding it. Every insert flows through the controller, so
    /// this is authoritative and replaces the pre-insert broadcast
    /// probe; it is rebuilt (incrementally) by snapshot + WAL replay.
    unique_index: HashMap<(String, usize), BTreeMap<Vec<Value>, BTreeSet<DbKey>>>,
    /// Per-file, per-backend record counts derived from the directory —
    /// which backends can hold records of each file. Drives file-scoped
    /// routing; may over-count for records whose data was lost (safe:
    /// routing to an extra backend only costs a message).
    resident: HashMap<String, Vec<u64>>,
    /// Scoped routing on/off (`false` = broadcast every request, the
    /// pre-router behaviour and the E15 ablation baseline).
    scoped_routing: bool,
    /// Unique checks through the in-memory index (`false` = legacy
    /// broadcast retrieve probe, the E15 ablation baseline).
    unique_via_index: bool,
    /// Replica writes sent to the whole wave concurrently (`false` =
    /// one sequential round trip per replica, the E15 baseline).
    parallel_writes: bool,
    /// Reads admitted into batch flights (`false` = every read
    /// round-trips solo inside the batch, the pre-PR9 behaviour and
    /// the E20 serial-read baseline).
    parallel_reads: bool,
    /// Key-scoped single-backend probes sent, per backend — how evenly
    /// the point-read load spreads across replica groups.
    read_probes_by_backend: Vec<u64>,
    /// Lifetime execution counters (requests, messages, examined).
    totals: ExecTotals,
    /// Backends being drained: excluded from new placement and from
    /// drain-substitute choices, still serving reads until their last
    /// group move commits and `drain-end` retires them.
    draining: BTreeSet<usize>,
    /// True between `add-backend` and `add-end`: the unwrap rebalance
    /// for an online add has not finished yet (recovery re-plans the
    /// remaining moves from this flag).
    unwrapping: bool,
    /// The throttled queue of pending group moves.
    rebalancer: Rebalancer,
    /// Records relocated per WAL bracket: large groups move as a
    /// sequence of bounded chunks so a pump step never stalls a
    /// foreground request behind a whole-group copy.
    move_chunk: usize,
    /// Remaining key list of the group currently being moved, scanned
    /// once and drained chunk by chunk. Purely an in-memory cache: it
    /// is never persisted, and recovery / retry paths rescan instead.
    move_cursor: Option<(Vec<usize>, Vec<DbKey>)>,
    /// `Some` when the backends are separate OS processes over TCP.
    net: Option<Arc<SharedNet>>,
    /// Retransmissions attempted per reply window on the socket
    /// transport (the channel bus never retries).
    retry_budget: u32,
    /// This controller's wire identity (0 on the channel transport).
    client_id: u64,
}

impl Controller {
    /// Spawn a controller with `n` backend threads and the default
    /// replication factor (2, clamped to `n`).
    pub fn new(n: usize) -> Self {
        Controller::with_replication(n, DEFAULT_REPLICATION.min(n))
    }

    /// Spawn a controller with `n` backends and an unreplicated layout
    /// (k = 1): the paper's original MBDS, where each record lives on
    /// exactly one backend. Killing a backend loses its partition.
    pub fn unreplicated(n: usize) -> Self {
        Controller::with_replication(n, 1)
    }

    /// Spawn a controller with `n` backend threads keeping `k` copies
    /// of every record (`1 <= k <= n`). When the `MBDS_TRANSPORT=tcp`
    /// environment variable is set, the backends are spawned as
    /// separate OS processes reached over the socket transport instead
    /// — which is how the existing crash/failover sweeps run unchanged
    /// over TCP.
    pub fn with_replication(n: usize, k: usize) -> Self {
        if std::env::var("MBDS_TRANSPORT").as_deref() == Ok("tcp") {
            return Controller::over_tcp(n, k)
                .expect("MBDS_TRANSPORT=tcp: spawning backend processes failed");
        }
        Controller::with_replication_chan(n, k)
    }

    /// Spawn a controller with `n` backends, `k` copies per record and
    /// a caller-chosen reply window instead of the 1-second default —
    /// the constructor form of [`set_reply_timeout`](Self::set_reply_timeout)
    /// for deployments whose links are slower (or test rigs that want
    /// failure detection in milliseconds).
    pub fn with_timeouts(n: usize, k: usize, reply_timeout: Duration) -> Self {
        let mut c = Controller::with_replication(n, k);
        c.set_reply_timeout(reply_timeout);
        c
    }

    /// Spawn a controller whose `n` backends are separate OS processes
    /// (`mbds-backend`) reached over the fault-injectable socket
    /// transport, keeping `k` copies of every record.
    pub fn over_tcp(n: usize, k: usize) -> Result<Self> {
        let mut c = Controller::with_replication_chan(n, k);
        let client_id = next_client_id();
        let plan: Arc<Mutex<NetFaultPlan>> = Arc::default();
        let mut addrs = Vec::with_capacity(n);
        let mut children = Vec::with_capacity(n);
        for i in 0..n {
            let bp = net::spawn_backend_process(i)?;
            let mut link = TcpLink::new(i, bp.addr, client_id, Arc::clone(&plan));
            link.connect(0, Duration::from_millis(3000)).map_err(|e| {
                Error::Internal(format!("backend {i} at {} refused the handshake: {e:?}", bp.addr))
            })?;
            addrs.push(bp.addr);
            children.push(Some(bp.child));
            // Swap the thread-backed handle for a TCP one and retire
            // the placeholder thread: dropping its command sender
            // disconnects the worker loop, which then exits.
            let (tx, _) = channel::<Envelope>();
            let (reply_tx, rx) = channel::<Reply>();
            let old = std::mem::replace(
                &mut c.backends[i],
                BackendHandle { tx, rx, reply_tx, join: None, tcp: Some(link), last_frame: None },
            );
            c.bus.lock().expect("bus lock")[i] = c.backends[i].tx.clone();
            let BackendHandle { tx: old_tx, join: old_join, .. } = old;
            drop(old_tx);
            if let Some(join) = old_join {
                let _ = join.join();
            }
        }
        c.net = Some(Arc::new(SharedNet {
            addrs: Mutex::new(addrs),
            children: Mutex::new(children),
            plan,
        }));
        c.client_id = client_id;
        Ok(c)
    }

    /// The channel-transport constructor body: `n` worker threads on
    /// the in-process bus.
    fn with_replication_chan(n: usize, k: usize) -> Self {
        assert!(n > 0, "MBDS needs at least one backend");
        assert!((1..=n).contains(&k), "replication factor must be in 1..=n, got {k}");
        let faults: Arc<Mutex<FaultPlan>> = Arc::default();
        let fence: Arc<AtomicU64> = Arc::default();
        let backends: Vec<BackendHandle> =
            (0..n).map(|i| spawn_backend(i, Arc::clone(&fence), Arc::clone(&faults))).collect();
        let bus = Arc::new(Mutex::new(backends.iter().map(|b| b.tx.clone()).collect()));
        Controller {
            backends,
            health: HealthBoard::new(n),
            partitioner: Partitioner::new(n),
            replication: k,
            next_key: 1,
            next_seq: 1,
            epoch: 0,
            fence,
            bus,
            unique_groups: HashMap::new(),
            files: Vec::new(),
            directory: Directory::new(),
            faults,
            reply_timeout: Duration::from_millis(1000),
            pending_error: None,
            degraded_cache: false,
            degraded_dirty: false,
            wal: None,
            unique_index: HashMap::new(),
            resident: HashMap::new(),
            scoped_routing: true,
            unique_via_index: true,
            parallel_writes: true,
            parallel_reads: true,
            read_probes_by_backend: vec![0; n],
            totals: ExecTotals::default(),
            draining: BTreeSet::new(),
            unwrapping: false,
            rebalancer: Rebalancer::new(),
            move_chunk: rebalance::DEFAULT_MOVE_CHUNK,
            move_cursor: None,
            net: None,
            retry_budget: DEFAULT_RETRY_BUDGET,
            client_id: 0,
        }
    }

    /// Spawn a **durable** controller: `n` backends, `k` copies per
    /// record, logging every directory mutation to `dir`
    /// (`wal.log` + `snapshot.mbds`). The directory must not already
    /// hold controller state — use [`Controller::recover`] for that.
    pub fn durable(n: usize, k: usize, dir: impl AsRef<Path>) -> Result<Self> {
        Controller::durable_with(n, k, FileLog::open(dir)?)
    }

    /// [`Controller::durable`] over any [`LogStore`] — the harness and
    /// the simulator use a shared in-memory [`crate::MemLog`].
    pub fn durable_with(n: usize, k: usize, store: impl LogStore + 'static) -> Result<Self> {
        if store.has_state()? {
            return Err(Error::Internal(
                "log already holds controller state; use Controller::recover".into(),
            ));
        }
        let mut c = Controller::with_replication(n, k);
        c.wal = Some(Wal::create(Box::new(store)));
        // Anchor the configuration: even an empty log recovers n and k
        // from this initial snapshot.
        c.snapshot_now()?;
        Ok(c)
    }

    /// [`Controller::durable_with`] over the socket transport: the
    /// backends are separate OS processes regardless of
    /// `MBDS_TRANSPORT` (tests use this to mix transports in one
    /// process without touching the environment).
    pub fn durable_over_tcp(n: usize, k: usize, store: impl LogStore + 'static) -> Result<Self> {
        if store.has_state()? {
            return Err(Error::Internal(
                "log already holds controller state; use Controller::recover".into(),
            ));
        }
        let mut c = Controller::over_tcp(n, k)?;
        c.wal = Some(Wal::create(Box::new(store)));
        c.snapshot_now()?;
        Ok(c)
    }

    /// Rebuild a controller from the durable state in `dir`: read the
    /// snapshot, re-spawn the backends, reload their partitions, replay
    /// the post-snapshot log entries in order (re-replicating from
    /// survivors where the log says a restart happened), and continue
    /// appending where the crashed incarnation stopped.
    pub fn recover(dir: impl AsRef<Path>) -> Result<Self> {
        Controller::recover_with(FileLog::open(dir)?)
    }

    /// [`Controller::recover`] over any [`LogStore`].
    pub fn recover_with(store: impl LogStore + 'static) -> Result<Self> {
        let (snapshot, entries, mut wal) = Wal::load(Box::new(store))?;
        let snapshot = snapshot.ok_or_else(|| {
            Error::Internal("no snapshot found — nothing to recover".into())
        })?;
        if snapshot.backends == 0 || !(1..=snapshot.backends).contains(&snapshot.replication) {
            return Err(Error::Internal(format!(
                "snapshot has invalid configuration: {} backends, replication {}",
                snapshot.backends, snapshot.replication
            )));
        }
        let mut c = Controller::with_replication(snapshot.backends, snapshot.replication);
        // `c.wal` stays `None` through the replay so nothing re-logs.
        c.apply_snapshot(&snapshot)?;
        for entry in &entries {
            c.apply_entry(entry)?;
        }
        // A crash mid-rebalance leaves the membership goal durable
        // (`add-backend` without `add-end`, `drain-begin` without
        // `drain-end`) but the move queue in memory: re-derive the
        // remaining moves from the recovered directory. Planning is
        // state-based, so moves that committed before the crash drop
        // out and the re-plan converges to the same final placement.
        c.replan_rebalance();
        // Recovery starts a *new* lineage: bump past the highest epoch
        // the store has seen (line stamps or fence) and durably raise
        // the fence to match. Merely adopting the highest epoch would
        // share it with whoever stamped it — a standby promoted from
        // this store while its primary was down would write the same
        // epoch as the recovered controller (the model checker's
        // `recover-without-refence` counterexample). The bump also
        // fences out any still-running earlier incarnation on the same
        // store, making cold recovery safe even racing a promotion:
        // the higher epoch wins, the other is refused at the store.
        wal.refence(wal.epoch() + 1)?;
        c.epoch = wal.epoch();
        c.fence.store(c.epoch, Ordering::SeqCst);
        c.wal = Some(wal);
        Ok(c)
    }

    /// Attach a hot standby to this (durable) controller: the standby
    /// tails `store` — which must be another handle onto the same log
    /// this controller writes (a cloned [`crate::MemLog`], or a second
    /// [`FileLog`] opened on the same directory) — keeps a warm replica
    /// of the full controller state, and can
    /// [`promote`](crate::Standby::promote) itself over these same
    /// backend threads without a replay pause.
    pub fn standby(&self, store: Box<dyn LogStore>) -> Result<crate::Standby> {
        if self.wal.is_none() {
            return Err(Error::Internal(
                "only a durable controller can ship its log to a standby".into(),
            ));
        }
        crate::Standby::attach(self.cluster_link(), store)
    }

    /// The handles a standby needs to take over this cluster.
    pub(crate) fn cluster_link(&self) -> ClusterLink {
        ClusterLink {
            bus: Arc::clone(&self.bus),
            fence: Arc::clone(&self.fence),
            faults: Arc::clone(&self.faults),
            reply_timeout: self.reply_timeout,
            net: self.net.clone(),
        }
    }

    /// Build the promoted controller a standby installs at failover:
    /// fresh reply channels over the cluster's existing command
    /// senders (`join: None` — the primary spawned the threads), warm
    /// state copied from the standby's mirror, and a [`Wal`] resuming
    /// the shipped log at the fenced `epoch`.
    pub(crate) fn promoted(
        link: ClusterLink,
        wal: Wal,
        epoch: u64,
        parts: PromotedParts,
    ) -> Controller {
        let senders: Vec<Sender<Envelope>> = link.bus.lock().expect("bus lock").clone();
        let n = senders.len();
        let mut health = HealthBoard::new(n);
        for &i in &parts.dead {
            health.channel_closed(i);
        }
        let client_id = if link.net.is_some() { next_client_id() } else { 0 };
        let retired = parts.retired.clone();
        let backends = if let Some(shared) = link.net.as_ref() {
            // Socket transport: dial every backend process with a fresh
            // identity. The Hello carries the promoted epoch, raising
            // each reachable backend's fence *now* — the isolated old
            // primary is fenced out of the remote backends before this
            // controller serves its first request. Unreachable backends
            // stay unconnected; the first send retries the dial.
            let addrs = shared.addrs.lock().expect("net addrs lock").clone();
            addrs
                .into_iter()
                .enumerate()
                .map(|(i, addr)| {
                    let mut tcp = TcpLink::new(i, addr, client_id, Arc::clone(&shared.plan));
                    let _ = tcp.connect(epoch, link.reply_timeout);
                    let (tx, _) = channel::<Envelope>();
                    let (reply_tx, rx) = channel::<Reply>();
                    BackendHandle { tx, rx, reply_tx, join: None, tcp: Some(tcp), last_frame: None }
                })
                .collect()
        } else {
            senders
                .into_iter()
                .map(|tx| {
                    let (reply_tx, rx) = channel::<Reply>();
                    BackendHandle { tx, rx, reply_tx, join: None, tcp: None, last_frame: None }
                })
                .collect()
        };
        let mut c = Controller {
            backends,
            health,
            partitioner: parts.partitioner,
            replication: parts.replication,
            next_key: parts.next_key,
            next_seq: 1,
            epoch,
            fence: link.fence,
            bus: link.bus,
            unique_groups: parts.unique_groups,
            files: parts.files,
            directory: parts.directory,
            faults: link.faults,
            reply_timeout: link.reply_timeout,
            pending_error: None,
            degraded_cache: false,
            degraded_dirty: true,
            wal: Some(wal),
            unique_index: parts.unique_index,
            resident: parts.resident,
            scoped_routing: true,
            unique_via_index: true,
            parallel_writes: true,
            parallel_reads: true,
            read_probes_by_backend: vec![0; n],
            totals: ExecTotals::default(),
            draining: parts.draining,
            unwrapping: parts.unwrapping,
            rebalancer: Rebalancer::new(),
            move_chunk: rebalance::DEFAULT_MOVE_CHUNK,
            move_cursor: None,
            net: link.net,
            retry_budget: DEFAULT_RETRY_BUDGET,
            client_id,
        };
        // Socket transport: a backend the mirror saw dead may only have
        // been unreachable *from the partitioned primary* — if its
        // process just answered our Hello, it is alive with its store
        // intact. Restore those; the genuinely unreachable stay dead
        // (and `finish_interrupted_restart` / `restart_backend` handle
        // them the heavy way).
        if c.net.is_some() {
            for i in 0..c.backends.len() {
                let connected =
                    c.backends[i].tcp.as_ref().is_some_and(|link| link.is_connected());
                if connected && !c.health.is_serving(i) {
                    if retired.contains(&i) {
                        // Not a partition casualty: the primary logged
                        // `drain-end` but died before stopping the
                        // worker. Finish the retirement instead of
                        // restoring an emptied backend into service.
                        let frame = WireOp::Shutdown.into_frame(0, c.epoch);
                        if let Some(link) = c.backends[i].tcp.as_mut() {
                            let _ = link.send(&frame);
                        }
                        c.reap_child(i);
                    } else {
                        let _ = c.restore_reconnected(i);
                    }
                }
            }
        }
        c
    }

    /// Total number of backends (alive or dead).
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// Number of backends not marked dead.
    pub fn alive_count(&self) -> usize {
        self.health.serving_count()
    }

    /// Copies kept per record.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Install a fault plan; it applies to messages the backends have
    /// not yet processed. Message counters are per-backend and count
    /// from the backend's first message ever, so install the plan
    /// before the traffic it should disturb.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        *self.faults.lock().expect("fault plan lock") = plan.clone();
        if self.net.is_some() {
            // Remote backends keep their own plan copy: ship it.
            for i in 0..self.backends.len() {
                if self.health.is_serving(i) {
                    self.push_faults_tcp(i, &plan);
                }
            }
        }
    }

    /// Ship the classic fault plan to backend process `i` and await
    /// its ack (best effort — an unreachable backend will get the plan
    /// again if it is restarted).
    fn push_faults_tcp(&mut self, i: usize, plan: &FaultPlan) -> bool {
        let seq = self.next_seq();
        let frame = WireOp::SetFaults(plan.clone()).into_frame(seq, self.epoch);
        let epoch = self.epoch;
        let dial = self.reply_timeout;
        let Some(link) = self.backends[i].tcp.as_mut() else { return false };
        let sent = match link.send(&frame) {
            Ok(()) => true,
            Err(_) => link.connect(epoch, dial).is_ok() && link.send(&frame).is_ok(),
        };
        if !sent {
            return false;
        }
        let deadline = Instant::now() + dial;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            match link.recv(left) {
                Ok(Some(f)) if f.seq == seq && f.kind == kind::REPLY_OK => return true,
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => return false,
            }
        }
    }

    /// Wait (briefly) for backend process `i` to exit, then make sure
    /// of it. No-op on the channel transport.
    fn reap_child(&mut self, i: usize) {
        let Some(shared) = self.net.as_ref() else { return };
        let child = shared.children.lock().expect("net children lock")[i].take();
        if let Some(mut child) = child {
            for _ in 0..50 {
                if matches!(child.try_wait(), Ok(Some(_))) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    /// How long the controller waits for one reply window before
    /// demoting a backend (two windows: Alive → Suspect → Dead).
    pub fn set_reply_timeout(&mut self, timeout: Duration) {
        self.reply_timeout = timeout;
    }

    /// The configured reply-window length.
    pub fn reply_timeout(&self) -> Duration {
        self.reply_timeout
    }

    /// Retransmissions attempted inside one reply window on the socket
    /// transport (ignored by the lossless channel bus).
    pub fn set_retry_budget(&mut self, budget: u32) {
        self.retry_budget = budget.min(8);
    }

    /// True when the backends are separate OS processes over TCP.
    pub fn is_tcp(&self) -> bool {
        self.net.is_some()
    }

    /// Install a network fault plan (socket transport only; a no-op on
    /// the channel bus, which has no network to disturb). Applies to
    /// frames not yet moved; per-link frame counters start at the
    /// link's first frame ever.
    pub fn set_net_fault_plan(&mut self, plan: NetFaultPlan) {
        if let Some(shared) = self.net.as_ref() {
            *shared.plan.lock().expect("net plan lock") = plan;
        }
    }

    /// Sever the link to backend `i` — a real partition: frames in
    /// both directions fail until [`heal_link`](Self::heal_link).
    /// Socket transport only.
    pub fn sever_link(&mut self, i: usize) {
        if let Some(link) = self.backends.get_mut(i).and_then(|b| b.tcp.as_mut()) {
            link.sever();
        }
    }

    /// Heal a severed link; the next send re-dials.
    pub fn heal_link(&mut self, i: usize) {
        if let Some(link) = self.backends.get_mut(i).and_then(|b| b.tcp.as_mut()) {
            link.heal();
        }
    }

    /// The health board's current verdict on backend `i`.
    pub fn backend_state(&self, i: usize) -> BackendState {
        self.health.state(i)
    }

    /// Re-probe a backend that went Suspect/Dead and came back: dial
    /// it, check its epoch against ours, and — if the same process
    /// answers (its store intact; a dead process cannot answer) —
    /// restore it to Alive without the full anti-entropy restart. A
    /// process that is really gone falls back to
    /// [`restart_backend`](Self::restart_backend), as does the channel
    /// transport (a worker thread's death always loses its store).
    pub fn reconnect_backend(&mut self, i: usize) -> Result<()> {
        if i >= self.backends.len() {
            return Err(Error::Internal(format!("no such backend {i}")));
        }
        if self.health.is_serving(i) && self.health.state(i) == BackendState::Alive {
            return Ok(());
        }
        if self.backends[i].tcp.is_none() {
            return self.restart_backend(i);
        }
        let epoch = self.epoch;
        let dial = self.reply_timeout;
        let link = self.backends[i].tcp.as_mut().expect("tcp link");
        let fence = match link.connect(epoch, dial) {
            Ok(fence) => fence,
            Err(_) => return self.restart_backend(i),
        };
        if fence > epoch {
            return Err(Error::Unavailable(format!(
                "backend {i}: reconnect refused (fence epoch {fence} > controller epoch {epoch})"
            )));
        }
        self.restore_reconnected(i)
    }

    /// The light half of [`reconnect_backend`](Self::reconnect_backend):
    /// backend `i`'s process answered with its store intact, so restore
    /// it to Alive without re-replication. Logs the same restart
    /// markers a full restart would — replaying them re-runs a real
    /// (idempotent) restart, so a recovered controller sees this
    /// backend alive with its data rebuilt.
    fn restore_reconnected(&mut self, i: usize) -> Result<()> {
        self.wal_begin_batch();
        let logged = self
            .log_append(LogRecord::RestartBegin { backend: i })
            .and_then(|()| self.log_append(LogRecord::RestartEnd { backend: i }));
        let flush = self.wal_commit_batch();
        self.backends[i].last_frame = None;
        self.health.restarted(i);
        self.degraded_dirty = true;
        logged?;
        flush?;
        self.maybe_snapshot();
        Ok(())
    }

    /// Compact the log into a snapshot every `every` appends (0
    /// disables; durable controllers default to snapshot-on-demand
    /// only). No-op on a non-durable controller.
    pub fn set_snapshot_every(&mut self, every: u64) {
        if let Some(w) = self.wal.as_mut() {
            w.set_snapshot_every(every);
        }
    }

    /// Crash-point injection for the recovery harness: the `n`th WAL
    /// append completes durably and then fails the controller (every
    /// subsequent operation that must log also fails). No-op on a
    /// non-durable controller.
    pub fn set_wal_crash_after(&mut self, n: u64) {
        if let Some(w) = self.wal.as_mut() {
            w.set_crash_after(n);
        }
    }

    /// True once an armed crash point has fired — the harness's signal
    /// to drop this controller and recover from the log.
    pub fn wal_crashed(&self) -> bool {
        self.wal.as_ref().is_some_and(Wal::crashed)
    }

    /// WAL appends performed by this incarnation (0 when not durable).
    pub fn wal_appends(&self) -> u64 {
        self.wal.as_ref().map_or(0, Wal::total_appends)
    }

    /// The key allocator's high-water mark (the next key to be issued).
    pub fn key_high_water(&self) -> u64 {
        self.next_key
    }

    /// This controller's epoch (0 unless installed by promotion or
    /// recovered from a post-promotion log).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Directory-memory gauges: live entries, distinct replica-set
    /// groups in use, and the estimated resident bytes.
    pub fn directory_stats(&self) -> (usize, usize, u64) {
        (
            self.directory.len(),
            self.directory.groups_in_use().count(),
            self.directory.estimated_bytes(),
        )
    }

    /// The key-map compression picture (`.stats`): what a flat map
    /// would cost versus the interval-compressed resident bytes.
    pub fn directory_compression(&self) -> crate::directory::CompressionStats {
        self.directory.compression_stats()
    }

    /// Toggle scoped routing (on by default). Off = every request is
    /// broadcast to all serving backends, the pre-router behaviour.
    pub fn set_scoped_routing(&mut self, on: bool) {
        self.scoped_routing = on;
    }

    /// Toggle index-based unique checks (on by default). Off = the
    /// legacy full-cluster retrieve probe before every INSERT. The
    /// index is maintained either way, so the modes can be flipped
    /// mid-run for ablation.
    pub fn set_unique_via_index(&mut self, on: bool) {
        self.unique_via_index = on;
    }

    /// Toggle concurrent replica writes (on by default). Off = one
    /// sequential round trip per replica. Either mode contacts the same
    /// backends in the same scan order.
    pub fn set_parallel_writes(&mut self, on: bool) {
        self.parallel_writes = on;
    }

    /// Toggle read flights in the batch scheduler (on by default).
    /// Off = every read in an admitted batch round-trips solo in
    /// admission order — the pre-flight behaviour and the E20
    /// serial-read baseline. Insert flights are unaffected.
    pub fn set_parallel_reads(&mut self, on: bool) {
        self.parallel_reads = on;
    }

    /// Key-scoped single-backend probes sent, per backend — the
    /// scheduler's point-read load spread. Sums to
    /// [`ExecTotals::read_probes`](abdl::ExecTotals).
    pub fn read_probe_counts(&self) -> &[u64] {
        &self.read_probes_by_backend
    }

    /// A deterministic rendering of the unique-value index, for the
    /// recovery harness: a rebuilt controller must produce exactly the
    /// live controller's digest.
    pub fn unique_index_digest(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for ((file, gi), by_tuple) in &self.unique_index {
            for (tuple, keys) in by_tuple {
                let vals: Vec<String> = tuple.iter().map(ToString::to_string).collect();
                let ks: Vec<String> = keys.iter().map(|k| k.0.to_string()).collect();
                lines.push(format!("{file}#{gi} [{}] {}", vals.join(","), ks.join(",")));
            }
        }
        lines.sort();
        lines.join("\n")
    }

    /// The index tuple of `record` under a constraint group: one value
    /// per attribute, NULL standing in for absent ones — exactly the
    /// values an equality probe would compare against.
    fn group_tuple(record: &Record, group: &[String]) -> Vec<Value> {
        group.iter().map(|a| record.get_or_null(a).clone()).collect()
    }

    /// Index every constraint-group tuple of a newly stored record.
    fn index_insert(&mut self, key: DbKey, record: &Record) {
        let Some(file) = record.file().map(str::to_owned) else { return };
        let Some(groups) = self.unique_groups.get(&file) else { return };
        for (gi, group) in groups.iter().enumerate() {
            let tuple = Controller::group_tuple(record, group);
            self.unique_index
                .entry((file.clone(), gi))
                .or_default()
                .entry(tuple)
                .or_default()
                .insert(key);
        }
    }

    /// Drop a deleted record's tuples from the index (tolerates missing
    /// entries, so replay and live deletion are both safe).
    fn index_remove(&mut self, key: DbKey, record: &Record) {
        let Some(file) = record.file().map(str::to_owned) else { return };
        let Some(groups) = self.unique_groups.get(&file) else { return };
        for (gi, group) in groups.iter().enumerate() {
            let tuple = Controller::group_tuple(record, group);
            if let Some(by_tuple) = self.unique_index.get_mut(&(file.clone(), gi)) {
                if let Some(keys) = by_tuple.get_mut(&tuple) {
                    keys.remove(&key);
                    if keys.is_empty() {
                        by_tuple.remove(&tuple);
                    }
                }
            }
        }
    }

    /// Move a record's tuples when an UPDATE changes a constraint-group
    /// attribute. `record` is the pre-image; duplicates created this
    /// way (the kernel does not re-check uniqueness on UPDATE) simply
    /// list several keys under one tuple.
    fn index_update(&mut self, key: DbKey, record: &Record, attr: &str, value: &Value) {
        let Some(file) = record.file().map(str::to_owned) else { return };
        let Some(groups) = self.unique_groups.get(&file).cloned() else { return };
        let mut updated = record.clone();
        updated.set(attr.to_owned(), value.clone());
        for (gi, group) in groups.iter().enumerate() {
            if !group.iter().any(|a| a == attr) {
                continue;
            }
            let old_t = Controller::group_tuple(record, group);
            let new_t = Controller::group_tuple(&updated, group);
            if old_t == new_t {
                continue;
            }
            let by_tuple = self.unique_index.entry((file.clone(), gi)).or_default();
            if let Some(keys) = by_tuple.get_mut(&old_t) {
                keys.remove(&key);
                if keys.is_empty() {
                    by_tuple.remove(&old_t);
                }
            }
            by_tuple.entry(new_t).or_default().insert(key);
        }
    }

    /// Count a newly placed record against its group members' per-file
    /// residency.
    fn resident_add(&mut self, file: &str, members: &[usize]) {
        let n = self.backends.len();
        let counts = self.resident.entry(file.to_owned()).or_insert_with(|| vec![0; n]);
        for &i in members {
            counts[i] += 1;
        }
    }

    /// Un-count a deleted record.
    fn resident_remove(&mut self, file: &str, members: &[usize]) {
        if let Some(counts) = self.resident.get_mut(file) {
            for &i in members {
                counts[i] = counts[i].saturating_sub(1);
            }
        }
    }

    /// Register a constraint group, backfilling the index from existing
    /// records when the file already holds data (constraints are
    /// usually declared before loading, so the backfill broadcast is
    /// rare). Shared by the live path and WAL replay.
    fn register_unique(&mut self, file: &str, attrs: Vec<String>) {
        let groups = self.unique_groups.entry(file.to_owned()).or_default();
        // Idempotent: re-registering an existing group (WAL replay of
        // a doubly-logged constraint, a repeated `.spawn` seed) must
        // not add a second copy for every insert to check.
        if groups.contains(&attrs) {
            return;
        }
        groups.push(attrs);
        let gi = groups.len() - 1;
        let populated =
            self.resident.get(file).is_some_and(|counts| counts.iter().any(|&c| c > 0));
        if !populated {
            return;
        }
        let query = abdl::Query::conjunction(vec![abdl::Predicate::eq(
            abdl::FILE_ATTR,
            abdl::Value::str(file),
        )]);
        if let Ok(resp) = self.broadcast(&Request::retrieve_all(query)) {
            let group = self.unique_groups[file][gi].clone();
            for (key, rec) in resp.into_records() {
                let tuple = Controller::group_tuple(&rec, &group);
                self.unique_index
                    .entry((file.to_owned(), gi))
                    .or_default()
                    .entry(tuple)
                    .or_default()
                    .insert(key);
            }
        }
    }

    /// Append `rec` if this controller is durable. During recovery
    /// replay `wal` is `None`, so replayed operations never re-log.
    fn log_append(&mut self, rec: LogRecord) -> Result<()> {
        match self.wal.as_mut() {
            Some(w) => w.append(&rec),
            None => Ok(()),
        }
    }

    /// Like [`Controller::log_append`] for infallible call sites: the
    /// failure is stashed and surfaced by the next `execute`.
    fn log_append_stashing(&mut self, rec: LogRecord) {
        if let Err(e) = self.log_append(rec) {
            self.pending_error.get_or_insert(e);
        }
    }

    /// Open a WAL group-commit batch (no-op when not durable).
    fn wal_begin_batch(&mut self) {
        if let Some(w) = self.wal.as_mut() {
            w.begin_batch();
        }
    }

    /// Close a WAL batch, flushing its buffered appends with one sync.
    fn wal_commit_batch(&mut self) -> Result<()> {
        match self.wal.as_mut() {
            Some(w) => w.commit_batch(),
            None => Ok(()),
        }
    }

    /// Compact if the snapshot cadence says so. Called only at
    /// top-level operation boundaries — never between a
    /// `restart-begin`/`restart-end` pair, which would truncate the
    /// begin entry while freezing pre-restart state.
    fn maybe_snapshot(&mut self) {
        if self.wal.as_ref().is_some_and(Wal::needs_snapshot) {
            if let Err(e) = self.snapshot_now() {
                self.pending_error.get_or_insert(e);
            }
        }
    }

    /// Write a compacted snapshot now and truncate the log. No-op on a
    /// non-durable controller.
    pub fn snapshot_now(&mut self) -> Result<()> {
        if self.wal.is_none() {
            return Ok(());
        }
        let text = self.snapshot_data()?.to_text();
        self.wal.as_mut().expect("wal present").install_snapshot(&text)
    }

    /// The full compacted state: directory, allocator, rotors,
    /// constraints, dead set, and every record that still has a live
    /// replica (gathered by broadcasting a retrieve per file).
    pub fn snapshot_data(&mut self) -> Result<SnapshotData> {
        // Gather surviving record data first: the broadcasts may detect
        // deaths, and the metadata below must reflect them.
        let mut data: BTreeMap<u64, Record> = BTreeMap::new();
        if self.health.serving_count() > 0 {
            for file in self.files.clone() {
                let query = abdl::Query::conjunction(vec![abdl::Predicate::eq(
                    abdl::FILE_ATTR,
                    abdl::Value::str(file),
                )]);
                let resp = self.broadcast(&Request::retrieve_all(query))?;
                for (key, rec) in resp.into_records() {
                    if self.directory.contains_key(&key) {
                        data.insert(key.0, rec);
                    }
                }
            }
        }
        let mut places: Vec<(u64, Vec<usize>, Option<Record>)> = self
            .directory
            .iter()
            .map(|(k, group)| (k.0, group.to_vec(), data.remove(&k.0)))
            .collect();
        places.sort_by_key(|(k, _, _)| *k);
        let mut uniques: Vec<(String, Vec<String>)> = self
            .unique_groups
            .iter()
            .flat_map(|(f, groups)| groups.iter().map(|g| (f.clone(), g.clone())))
            .collect();
        uniques.sort();
        Ok(SnapshotData {
            backends: self.backends.len(),
            replication: self.replication,
            next_key: self.next_key,
            dead: self.health.unavailable(),
            draining: self.draining.iter().copied().collect(),
            unwrap: self.unwrapping,
            rotors: self.partitioner.rotors(),
            files: self.files.clone(),
            uniques,
            places,
        })
    }

    /// A deterministic, byte-comparable rendering of the controller's
    /// full logical state (exactly the snapshot text). Two controllers
    /// with equal digests hold the same directory, allocator high-water
    /// mark, rotors, constraints, dead set and surviving records.
    pub fn state_digest(&mut self) -> Result<String> {
        Ok(self.snapshot_data()?.to_text())
    }

    /// Recovery step 1: rebuild state from the snapshot. All backends
    /// are freshly spawned and alive at this point; records are loaded
    /// into their group members, then the dead set is re-killed.
    fn apply_snapshot(&mut self, snap: &SnapshotData) -> Result<()> {
        self.next_key = snap.next_key;
        for file in &snap.files {
            self.try_create_file(file)?;
        }
        for (file, v) in &snap.rotors {
            self.partitioner.set_rotor(file, *v);
        }
        for (file, attrs) in &snap.uniques {
            self.unique_groups.entry(file.clone()).or_default().push(attrs.clone());
        }
        let dead: HashSet<usize> = snap.dead.iter().copied().collect();
        for (key, group, record) in &snap.places {
            self.directory.insert(DbKey(*key), group.clone());
            // Records whose data did not survive (no live replica at
            // snapshot time) keep their directory entry but cannot be
            // indexed or counted — no backend holds them, so routing
            // never needs to reach them either.
            let Some(record) = record else { continue };
            if let Some(file) = record.file().map(str::to_owned) {
                self.resident_add(&file, group);
            }
            self.index_insert(DbKey(*key), record);
            for &i in group {
                if dead.contains(&i) {
                    continue;
                }
                self.load_replica(i, DbKey(*key), record)?;
            }
        }
        for &i in &snap.dead {
            self.kill_backend(i);
        }
        self.draining = snap.draining.iter().copied().collect();
        self.unwrapping = snap.unwrap;
        self.degraded_dirty = true;
        Ok(())
    }

    /// Recovery step 2: replay one post-snapshot log entry.
    fn apply_entry(&mut self, entry: &LogRecord) -> Result<()> {
        match entry {
            LogRecord::CreateFile { name } => self.try_create_file(name),
            LogRecord::Unique { file, attrs } => {
                self.register_unique(file, attrs.clone());
                Ok(())
            }
            LogRecord::ReserveKey { key } => {
                self.next_key = self.next_key.max(key + 1);
                Ok(())
            }
            LogRecord::Alloc { key, file } => {
                self.next_key = self.next_key.max(key + 1);
                self.partitioner.advance(file);
                Ok(())
            }
            LogRecord::Insert { key, group, record } => {
                self.next_key = self.next_key.max(key + 1);
                // The live insert consumed exactly one rotation.
                if let Some(file) = record.file() {
                    let file = file.to_owned();
                    self.partitioner.advance(&file);
                    self.resident_add(&file, group);
                }
                self.directory.insert(DbKey(*key), group.clone());
                self.index_insert(DbKey(*key), record);
                for &i in group {
                    if self.health.is_serving(i) {
                        self.load_replica(i, DbKey(*key), record)?;
                    }
                }
                Ok(())
            }
            LogRecord::Exec { request } => self.execute_inner(request).map(|_| ()),
            LogRecord::Dead { backend } => {
                self.kill_backend(*backend);
                Ok(())
            }
            // Replay performs the whole restart at the begin marker; a
            // missing end marker means the crash hit mid-restart, and
            // re-running the restart is idempotent.
            LogRecord::RestartBegin { backend } => self.restart_backend(*backend),
            LogRecord::RestartEnd { .. } => Ok(()),
            // Same bracket discipline for rebalance moves: the chunk is
            // (re)performed at the begin marker with exactly the keys
            // the live run bracketed — so replay commits placement in
            // the same per-key/retarget sequence the live run did, and
            // an unmatched begin from a crash mid-chunk is safely
            // redone. (`self.wal` is `None` during replay, so the
            // bracket re-logs nothing.)
            LogRecord::MoveBegin { from, to, keys } => {
                let (from, to) = (from.clone(), to.clone());
                let keys: Vec<DbKey> = keys.iter().map(|&k| DbKey(k)).collect();
                self.wal_begin_batch();
                let result = self.move_group_inner(&from, &to, &keys);
                let flush = self.wal_commit_batch();
                result?;
                flush?;
                self.degraded_dirty = true;
                Ok(())
            }
            LogRecord::MoveEnd { .. } => Ok(()),
            LogRecord::AddBackend { backend } => {
                // A snapshot taken after the add already spawned the
                // wider cluster; only grow past the current width.
                if *backend + 1 > self.backends.len() {
                    self.grow_cluster(*backend + 1)?;
                }
                self.unwrapping = true;
                Ok(())
            }
            LogRecord::AddEnd { .. } => {
                self.unwrapping = false;
                Ok(())
            }
            LogRecord::DrainBegin { backend } => {
                self.draining.insert(*backend);
                Ok(())
            }
            LogRecord::DrainEnd { backend } => {
                self.draining.remove(backend);
                self.shutdown_backend(*backend);
                Ok(())
            }
        }
    }

    /// Push one record copy to backend `i` (recovery load path).
    fn load_replica(&mut self, i: usize, key: DbKey, record: &Record) -> Result<()> {
        let seq = self.next_seq();
        if self.send_to(i, seq, BackendOp::InsertWithKey(key, record.clone())) {
            if let Some(result) = self.recv_reply(i, seq) {
                result?;
            }
        }
        Ok(())
    }

    /// Failure injection: kill backend `i`. With replication, its
    /// records stay answerable from the surviving replicas; without, the
    /// partition is unavailable until `restart_backend` (which can then
    /// only recover what other replicas still hold).
    pub fn kill_backend(&mut self, i: usize) {
        if i >= self.backends.len() || !self.health.is_serving(i) {
            return;
        }
        self.shutdown_backend(i);
        self.log_append_stashing(LogRecord::Dead { backend: i });
        self.maybe_snapshot();
    }

    /// The transport half of [`kill_backend`](Self::kill_backend):
    /// stop backend `i`'s worker (thread or process) and mark it dead,
    /// without logging — callers decide whether the death is recorded
    /// as a failure (`dead`) or a retirement (`drain-end`).
    fn shutdown_backend(&mut self, i: usize) {
        if i >= self.backends.len() || !self.health.is_serving(i) {
            return;
        }
        let epoch = self.epoch;
        if self.backends[i].tcp.is_some() {
            let frame = WireOp::Shutdown.into_frame(0, epoch);
            if let Some(link) = self.backends[i].tcp.as_mut() {
                let _ = link.send(&frame);
            }
            self.reap_child(i);
        } else {
            let b = &mut self.backends[i];
            let _ = b.tx.send(Envelope {
                seq: 0,
                epoch,
                reply: b.reply_tx.clone(),
                op: BackendOp::Shutdown,
            });
            if let Some(join) = b.join.take() {
                let _ = join.join();
            }
        }
        self.health.channel_closed(i);
        self.degraded_dirty = true;
    }

    /// Recovery: respawn backend `i` with an empty store, replay the
    /// schema (files), and re-replicate every record whose replica
    /// group contains `i` from the surviving replicas (anti-entropy
    /// driven by the controller's directory). Restores full redundancy:
    /// a subsequent single-backend failure loses nothing again.
    pub fn restart_backend(&mut self, i: usize) -> Result<()> {
        if i >= self.backends.len() {
            return Err(Error::Internal(format!("no such backend {i}")));
        }
        if self.health.is_serving(i) && self.health.state(i) == BackendState::Alive {
            return Ok(());
        }
        // Group commit: the restart's begin/end markers (and any deaths
        // detected along the way) are buffered and synced together. A
        // crash point landing inside the batch still flushes durably
        // through the crashing append, so the per-append sweep holds.
        self.wal_begin_batch();
        let result = self.restart_backend_inner(i);
        let flush = self.wal_commit_batch();
        result?;
        flush?;
        self.maybe_snapshot();
        Ok(())
    }

    /// Finish a restart a crashed primary began but never completed.
    /// The shipped log (and therefore the promoted health board) says
    /// backend `i` is alive, but its worker thread was never respawned:
    /// mark the channel closed so `restart_backend` actually runs, then
    /// redo the restart for real — exactly what cold replay does for an
    /// unmatched `restart-begin` marker.
    pub(crate) fn finish_interrupted_restart(&mut self, i: usize) -> Result<()> {
        self.health.channel_closed(i);
        self.degraded_dirty = true;
        self.restart_backend(i)
    }

    fn restart_backend_inner(&mut self, i: usize) -> Result<()> {
        // WAL protocol: `restart-begin` before any effect, `restart-end`
        // after re-replication completes. Recovery replays the whole
        // restart at the begin marker; an unmatched begin (crash
        // mid-restart) is safely re-run by the caller — restarting an
        // already-alive backend is a no-op.
        self.log_append(LogRecord::RestartBegin { backend: i })?;
        if let Some(shared) = self.net.clone() {
            // Socket transport: retire the old process (best-effort
            // shutdown, then reap) and spawn a fresh one at a new
            // address — the shared table stays current so a standby
            // promotes onto the replacement process.
            if let Some(link) = self.backends[i].tcp.as_mut() {
                let frame = WireOp::Shutdown.into_frame(0, self.epoch);
                let _ = link.send(&frame);
            }
            self.reap_child(i);
            let bp = net::spawn_backend_process(i)?;
            shared.addrs.lock().expect("net addrs lock")[i] = bp.addr;
            if let Some(mut old) =
                shared.children.lock().expect("net children lock")[i].replace(bp.child)
            {
                let _ = old.kill();
                let _ = old.wait();
            }
            let mut link = TcpLink::new(i, bp.addr, self.client_id, Arc::clone(&shared.plan));
            let _ = link.connect(self.epoch, self.reply_timeout);
            self.backends[i].tcp = Some(link);
            self.backends[i].last_frame = None;
            // A respawned process starts with an empty fault plan and a
            // fresh message counter — exactly like a respawned worker
            // thread, except the plan must be re-shipped.
            let plan = self.faults.lock().expect("fault plan lock").clone();
            if !plan.is_empty() {
                self.push_faults_tcp(i, &plan);
            }
        } else {
            // Drop the old handle (closing its channels) and join the
            // dead worker if it has not exited yet.
            let old = std::mem::replace(
                &mut self.backends[i],
                spawn_backend(i, Arc::clone(&self.fence), Arc::clone(&self.faults)),
            );
            // Keep the shared bus current: a standby attached before
            // this restart must promote onto the replacement channel.
            self.bus.lock().expect("bus lock")[i] = self.backends[i].tx.clone();
            let _ = old.tx.send(Envelope {
                seq: 0,
                epoch: self.epoch,
                reply: old.reply_tx.clone(),
                op: BackendOp::Shutdown,
            });
            drop(old.tx);
            if let Some(join) = old.join {
                let _ = join.join();
            }
        }
        self.health.restarted(i);
        self.degraded_dirty = true;

        // Replay the schema.
        for file in self.files.clone() {
            let seq = self.next_seq();
            if !self.send_to(i, seq, BackendOp::CreateFile(file)) {
                return Err(Error::Unavailable(format!("backend {i} died during restart")));
            }
            if self.recv_reply(i, seq).is_none() {
                return Err(Error::Unavailable(format!("backend {i} died during restart")));
            }
        }
        // Anti-entropy: pull surviving copies and re-insert the records
        // this backend is supposed to hold.
        for file in self.files.clone() {
            let query = abdl::Query::conjunction(vec![abdl::Predicate::eq(
                abdl::FILE_ATTR,
                abdl::Value::str(file),
            )]);
            let survivors = self.broadcast(&Request::retrieve_all(query))?;
            for (key, rec) in survivors.into_records() {
                if self.directory.get(&key).is_some_and(|g| g.contains(&i)) {
                    let seq = self.next_seq();
                    if !self.send_to(i, seq, BackendOp::InsertWithKey(key, rec)) {
                        return Err(Error::Unavailable(format!("backend {i} died during recovery")));
                    }
                    match self.recv_reply(i, seq) {
                        Some(result) => {
                            result?;
                        }
                        None => {
                            return Err(Error::Unavailable(format!(
                                "backend {i} died during recovery"
                            )))
                        }
                    }
                }
            }
        }
        self.log_append(LogRecord::RestartEnd { backend: i })
    }

    // --- Elastic membership: online backend add / drain -------------

    /// True when no membership change is in flight.
    fn rebalance_idle(&self) -> bool {
        self.rebalancer.is_idle() && !self.unwrapping && self.draining.is_empty()
    }

    /// Group moves still queued (0 = the cluster is in its goal
    /// placement).
    pub fn rebalance_pending(&self) -> usize {
        self.rebalancer.pending()
    }

    /// Bound the group moves piggybacked on each foreground request
    /// (floored at 1) — the knob experiment E21 sweeps.
    pub fn set_rebalance_throttle(&mut self, throttle: usize) {
        self.rebalancer.set_throttle(throttle);
    }

    /// Bound the records relocated per move bracket (floored at 1).
    /// Together with the throttle this caps the work a pump step can
    /// piggyback on one foreground request at
    /// O(throttle × chunk) records.
    pub fn set_move_chunk(&mut self, chunk: usize) {
        self.move_chunk = chunk.max(1);
    }

    /// Backends currently being drained, ascending.
    pub fn draining_backends(&self) -> Vec<usize> {
        self.draining.iter().copied().collect()
    }

    /// Add one backend to the live cluster and rebalance onto it
    /// online: the new worker (thread, or `mbds-backend` process over
    /// the socket transport) joins immediately for *new* placements,
    /// and the wrapped replica groups of the old ring are moved onto
    /// the widened ring by WAL-bracketed group moves worked off a
    /// throttled queue between foreground requests. Returns the new
    /// backend's index.
    ///
    /// Refused while another membership change is still rebalancing.
    pub fn add_backend(&mut self) -> Result<usize> {
        if !self.rebalance_idle() {
            return Err(Error::Unavailable(
                "a rebalance is already in progress; finish it before another membership change"
                    .into(),
            ));
        }
        let i = self.backends.len();
        // Durable goal first (the `restart-begin` discipline): a crash
        // anywhere past this append recovers into the widened cluster
        // and re-plans the remaining moves.
        self.log_append(LogRecord::AddBackend { backend: i })?;
        self.grow_cluster(i + 1)?;
        self.unwrapping = true;
        self.replan_add(i);
        self.maybe_snapshot();
        Ok(i)
    }

    /// Drain backend `i` out of the cluster online: it stops receiving
    /// new placements immediately, every replica group containing it is
    /// moved to a substitute backend by WAL-bracketed group moves
    /// worked off the throttled queue, and when the last move commits
    /// the backend is retired (`drain-end`, then shutdown). Reads keep
    /// being served — from the old placement until each move commits,
    /// from the new one after.
    ///
    /// Refused when it would leave fewer serving backends than the
    /// replication factor, or while another membership change is still
    /// rebalancing. Re-draining an already-draining backend is a no-op
    /// (recovery re-plans the remaining moves itself).
    pub fn drain_backend(&mut self, i: usize) -> Result<()> {
        if i >= self.backends.len() {
            return Err(Error::Internal(format!("no such backend {i}")));
        }
        if self.draining.contains(&i) {
            return Ok(());
        }
        if !self.health.is_serving(i) {
            return Err(Error::Unavailable(format!("backend {i} is not serving")));
        }
        if !self.rebalance_idle() {
            return Err(Error::Unavailable(
                "a rebalance is already in progress; finish it before another membership change"
                    .into(),
            ));
        }
        if self.health.serving_count() <= self.replication {
            return Err(Error::Unavailable(format!(
                "draining backend {i} would leave fewer serving backends than replication {}",
                self.replication
            )));
        }
        self.log_append(LogRecord::DrainBegin { backend: i })?;
        self.draining.insert(i);
        self.replan_drain(i);
        self.maybe_snapshot();
        Ok(())
    }

    /// Perform one queued rebalance job (one move *chunk*, or a finish
    /// marker). `Ok(true)` = a job ran; `Ok(false)` = the queue is
    /// empty. A move with chunks still to go — and any failed job —
    /// goes back to the *front* of the queue, so a `FinishAdd` /
    /// `FinishDrain` marker can never overtake the moves it commits.
    /// Planning is state-based, so retrying a failed job later is
    /// always safe.
    pub fn rebalance_step(&mut self) -> Result<bool> {
        let Some(job) = self.rebalancer.pop() else { return Ok(false) };
        let result = match &job {
            MoveJob::Move { from, to } => {
                let (from, to) = (from.clone(), to.clone());
                self.move_group(&from, &to).map(|done| !done)
            }
            MoveJob::FinishAdd { backend } => self.finish_add(*backend).map(|()| false),
            MoveJob::FinishDrain { backend } => self.finish_drain(*backend).map(|()| false),
        };
        match result {
            Ok(more_chunks) => {
                if more_chunks {
                    self.rebalancer.requeue(job);
                }
                Ok(true)
            }
            Err(e) => {
                self.rebalancer.requeue(job);
                Err(e)
            }
        }
    }

    /// Drain the rebalance queue synchronously — the blocking endgame
    /// of [`add_backend`](Self::add_backend) /
    /// [`drain_backend`](Self::drain_backend) when the caller wants the
    /// goal placement *now* instead of amortized over foreground
    /// traffic.
    pub fn finish_rebalance(&mut self) -> Result<()> {
        while self.rebalance_step()? {}
        self.maybe_snapshot();
        Ok(())
    }

    /// Work off up to `throttle` queued jobs behind a foreground
    /// request; an error is stashed for the next `execute` (the job
    /// stays queued).
    fn pump_rebalance(&mut self) {
        for _ in 0..self.rebalancer.throttle() {
            match self.rebalance_step() {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => {
                    self.pending_error.get_or_insert(e);
                    break;
                }
            }
        }
    }

    /// Spawn backends until the cluster is `new_n` wide, growing every
    /// per-backend structure alongside (health board, placement ring,
    /// residency vectors, probe counters, shared bus/process tables).
    /// The new store replays the schema so later record loads land in
    /// existing files.
    fn grow_cluster(&mut self, new_n: usize) -> Result<()> {
        while self.backends.len() < new_n {
            self.spawn_join_backend()?;
            self.partitioner.grow(self.backends.len());
            for counts in self.resident.values_mut() {
                counts.push(0);
            }
        }
        Ok(())
    }

    /// Spawn backends until the cluster matches the width a standby's
    /// mirror reached — promotion's membership reconciliation. An
    /// `add-backend` record can ship while the primary dies before
    /// spawning the worker, leaving the shared bus one slot short; the
    /// mirror's placement ring and residency vectors already account
    /// for the backend (and no move can have landed data on it — the
    /// crash preceded the spawn), so only the worker itself is missing.
    pub(crate) fn adopt_missing_backends(&mut self, target: usize) -> Result<()> {
        while self.backends.len() < target {
            self.spawn_join_backend()?;
        }
        Ok(())
    }

    /// The transport half of [`grow_cluster`](Self::grow_cluster):
    /// spawn worker `backends.len()` (thread, or `mbds-backend`
    /// process on the socket transport), wire it onto the shared bus
    /// and process tables, grow the health board and probe counters,
    /// and replay the schema into its empty store. Leaves the
    /// placement ring and residency vectors alone — callers widening
    /// the ring grow those; promotion inherits them from the mirror.
    fn spawn_join_backend(&mut self) -> Result<()> {
        {
            let i = self.backends.len();
            if let Some(shared) = self.net.clone() {
                let bp = net::spawn_backend_process(i)?;
                let mut link = TcpLink::new(i, bp.addr, self.client_id, Arc::clone(&shared.plan));
                link.connect(self.epoch, self.reply_timeout).map_err(|e| {
                    Error::Internal(format!(
                        "added backend {i} at {} refused the handshake: {e:?}",
                        bp.addr
                    ))
                })?;
                shared.addrs.lock().expect("net addrs lock").push(bp.addr);
                shared.children.lock().expect("net children lock").push(Some(bp.child));
                let (tx, _) = channel::<Envelope>();
                let (reply_tx, rx) = channel::<Reply>();
                self.backends.push(BackendHandle {
                    tx,
                    rx,
                    reply_tx,
                    join: None,
                    tcp: Some(link),
                    last_frame: None,
                });
                self.bus.lock().expect("bus lock").push(self.backends[i].tx.clone());
                let plan = self.faults.lock().expect("fault plan lock").clone();
                if !plan.is_empty() {
                    self.push_faults_tcp(i, &plan);
                }
            } else {
                let handle = spawn_backend(i, Arc::clone(&self.fence), Arc::clone(&self.faults));
                self.bus.lock().expect("bus lock").push(handle.tx.clone());
                self.backends.push(handle);
            }
            self.health.grow();
            self.read_probes_by_backend.push(0);
            for file in self.files.clone() {
                let seq = self.next_seq();
                if !self.send_to(i, seq, BackendOp::CreateFile(file)) {
                    return Err(Error::Unavailable(format!("backend {i} died while joining")));
                }
                if self.recv_reply(i, seq).is_none() {
                    return Err(Error::Unavailable(format!("backend {i} died while joining")));
                }
            }
            self.degraded_dirty = true;
        }
        Ok(())
    }

    /// Queue the unwrap moves for the add of backend `added` plus the
    /// `add-end` marker. Pure in the directory state — see
    /// [`rebalance::plan_unwrap`].
    fn replan_add(&mut self, added: usize) {
        let new_n = self.backends.len();
        let moves = rebalance::plan_unwrap(
            self.directory.groups_in_use().map(|g| g.to_vec()),
            added,
            new_n,
        );
        for (from, to) in moves {
            self.rebalancer.push(MoveJob::Move { from, to });
        }
        self.rebalancer.push(MoveJob::FinishAdd { backend: new_n - 1 });
    }

    /// Queue the moves that vacate draining backend `i` plus the
    /// `drain-end` marker. Pure in the directory state — see
    /// [`rebalance::plan_drain`].
    fn replan_drain(&mut self, i: usize) {
        let n = self.backends.len();
        let health = &self.health;
        let draining = &self.draining;
        let moves = rebalance::plan_drain(
            self.directory.groups_in_use().map(|g| g.to_vec()),
            i,
            n,
            |b| health.is_serving(b) && !draining.contains(&b),
        );
        for (from, to) in moves {
            self.rebalancer.push(MoveJob::Move { from, to });
        }
        self.rebalancer.push(MoveJob::FinishDrain { backend: i });
    }

    /// Re-derive the whole rebalance queue from durable state — called
    /// after recovery replay and after standby promotion. Moves that
    /// committed before the crash no longer match the planners'
    /// predicates and drop out; the rest are re-queued.
    pub(crate) fn replan_rebalance(&mut self) {
        self.rebalancer.clear();
        let n = self.backends.len();
        if self.unwrapping && n > 1 {
            self.replan_add(n - 1);
        }
        let draining: Vec<usize> = self.draining.iter().copied().collect();
        for i in draining {
            self.replan_drain(i);
        }
    }

    /// Finish a move chunk a crashed primary began but never committed
    /// (the standby's unmatched `move-begin`) — promotion's analogue of
    /// [`finish_interrupted_restart`](Self::finish_interrupted_restart).
    ///
    /// The standby's mirror applies the chunk at the begin marker, so
    /// the promoted directory already routes the chunk's keys to `to`
    /// while the physical copy on the real backends was interrupted
    /// partway. Redo exactly those keys under a fresh WAL bracket,
    /// pulling from the old members as extra sources — idempotent
    /// against any intermediate state the crash left behind. Chunks the
    /// crashed primary never began are *not* healed here: the group
    /// still matches the state-based plan and `replan_rebalance`
    /// requeues the rest of the move.
    pub(crate) fn finish_interrupted_move(
        &mut self,
        from: &[usize],
        to: &[usize],
        keys: &[u64],
    ) -> Result<()> {
        if keys.is_empty() {
            return Ok(());
        }
        let keys: Vec<DbKey> = keys.iter().map(|&k| DbKey(k)).collect();
        self.wal_begin_batch();
        let result = self.heal_move_inner(from, to, &keys);
        let flush = self.wal_commit_batch();
        result?;
        flush?;
        self.degraded_dirty = true;
        Ok(())
    }

    /// The forced-redo body of
    /// [`finish_interrupted_move`](Self::finish_interrupted_move): the
    /// directory already routes the chunk to `to`, but new members may
    /// hold only part of the data and abandoned members still hold
    /// stale copies. Residency and the placement commit came over warm
    /// from the mirror, so only the physical copy and delete are
    /// redone.
    fn heal_move_inner(&mut self, from: &[usize], to: &[usize], keys: &[DbKey]) -> Result<()> {
        self.log_append(LogRecord::MoveBegin {
            from: from.to_vec(),
            to: to.to_vec(),
            keys: keys.iter().map(|k| k.0).collect(),
        })?;
        let removed: Vec<usize> = from.iter().copied().filter(|m| !to.contains(m)).collect();
        // Any member of either group may hold the only surviving copy.
        let mut sources: Vec<usize> = from
            .iter()
            .chain(to.iter())
            .copied()
            .filter(|&m| self.health.is_serving(m))
            .collect();
        sources.sort_unstable();
        sources.dedup();
        let moved = self.fetch_records(&sources, keys)?;
        for (key, rec) in &moved {
            let bytes = rec.to_string().len() as u64;
            for &m in to {
                if !self.health.is_serving(m) {
                    continue;
                }
                self.load_replica(m, *key, rec)?;
                self.totals.move_bytes += bytes;
            }
        }
        if !removed.is_empty() {
            let seq = self.next_seq();
            let mut sent = Vec::new();
            for &m in &removed {
                if self.health.is_serving(m)
                    && self.send_to(m, seq, BackendOp::DeleteKeys(keys.to_vec()))
                {
                    sent.push(m);
                }
            }
            for m in sent {
                let _ = self.recv_reply(m, seq);
            }
        }
        // Usually a no-op (the mirror already committed the chunk);
        // kept so the bracket converges from either directory shape.
        self.commit_chunk_placement(from, to, keys);
        self.log_append(LogRecord::MoveEnd { from: from.to_vec(), to: to.to_vec() })
    }

    /// Relocate one *chunk* (up to `move_chunk` records) of replica
    /// group `from` to `to`: the unit of online rebalance.
    /// WAL-bracketed (`move-begin` … `move-end` in one group commit)
    /// and idempotent — replaying the bracket against any intermediate
    /// state converges to the same placement, and a `from` group
    /// nothing points at is a silent no-op. Returns `Ok(true)` when the
    /// group is fully vacated, `Ok(false)` when more chunks remain (the
    /// caller requeues the move at the *front* of the queue).
    ///
    /// Reads are never served from a half-moved chunk: the directory
    /// commit is the *last* effect before the end marker, so routing
    /// answers from the old (complete) placement during the copy and
    /// from the new (complete) placement after — per key for mid-group
    /// chunks, per group for the final one.
    fn move_group(&mut self, from: &[usize], to: &[usize]) -> Result<bool> {
        // The group's key list is scanned once and cursored across
        // chunks — rescanning the whole directory per chunk would put
        // an O(keys) walk behind every foreground request. Keys the
        // cursor hands back are re-validated against the live directory
        // (a foreground delete may have unbound them since the scan).
        let mut pending = match self.move_cursor.take() {
            Some((group, pending)) if group == from => pending,
            _ => self.directory.keys_of_group(from),
        };
        let mut keys = Vec::with_capacity(self.move_chunk.min(pending.len()));
        let mut consumed = 0;
        for key in &pending {
            if keys.len() == self.move_chunk {
                break;
            }
            consumed += 1;
            if self.directory.get(key).is_some_and(|g| g == from) {
                keys.push(*key);
            }
        }
        pending.drain(..consumed);
        if keys.is_empty() {
            return Ok(true);
        }
        self.wal_begin_batch();
        let result = self.move_group_inner(from, to, &keys);
        let flush = self.wal_commit_batch();
        // On failure the cursor stays cleared: the retry rescans, so
        // the chunk drained above is not lost.
        result?;
        flush?;
        self.degraded_dirty = true;
        // Foreground inserts may have bound fresh keys to the group
        // after the scan; the refcount check catches them (the next
        // step rescans), where trusting the cursor would strand them.
        let done = pending.is_empty() && self.directory.group_live_entries(from) == 0;
        if !pending.is_empty() {
            self.move_cursor = Some((from.to_vec(), pending));
        }
        Ok(done)
    }

    fn move_group_inner(&mut self, from: &[usize], to: &[usize], keys: &[DbKey]) -> Result<()> {
        self.log_append(LogRecord::MoveBegin {
            from: from.to_vec(),
            to: to.to_vec(),
            keys: keys.iter().map(|k| k.0).collect(),
        })?;
        let added: Vec<usize> = to.iter().copied().filter(|m| !from.contains(m)).collect();
        let removed: Vec<usize> = from.iter().copied().filter(|m| !to.contains(m)).collect();
        // Pull one surviving copy of each chunk record from the group's
        // serving members — key-scoped, so a chunk costs O(chunk) at
        // the backends, never a file scan.
        let sources: Vec<usize> =
            from.iter().copied().filter(|&m| self.health.is_serving(m)).collect();
        let moved = self.fetch_records(&sources, keys)?;
        // Copy to the members the move adds — pipelined: every insert
        // of the chunk is in flight before the first ack is awaited,
        // so a chunk costs one reply round instead of one per record …
        let mut acks: Vec<(usize, u64)> = Vec::new();
        for (key, rec) in &moved {
            let bytes = rec.to_string().len() as u64;
            for &m in &added {
                if !self.health.is_serving(m) {
                    continue;
                }
                let seq = self.next_seq();
                if self.send_to(m, seq, BackendOp::InsertWithKey(*key, rec.clone())) {
                    acks.push((m, seq));
                }
                self.totals.move_bytes += bytes;
            }
            if let Some(file) = rec.file().map(str::to_owned) {
                self.resident_add(&file, &added);
                self.resident_remove(&file, &removed);
            }
        }
        for (m, seq) in acks {
            if let Some(result) = self.recv_reply(m, seq) {
                result?;
            }
        }
        // … physically remove from the members it abandons (a stale
        // copy would be resurrected by the next broadcast read) …
        if !removed.is_empty() {
            let seq = self.next_seq();
            let mut sent = Vec::new();
            for &m in &removed {
                if self.health.is_serving(m)
                    && self.send_to(m, seq, BackendOp::DeleteKeys(keys.to_vec()))
                {
                    sent.push(m);
                }
            }
            for m in sent {
                let _ = self.recv_reply(m, seq);
            }
        }
        // … and only then commit the new placement: reads routed before
        // this line saw the complete old group, reads after see the
        // complete new one.
        self.commit_chunk_placement(from, to, keys);
        self.log_append(LogRecord::MoveEnd { from: from.to_vec(), to: to.to_vec() })
    }

    /// Commit a chunk's placement switch: per-key rebinds while the
    /// group still holds keys outside the chunk, a whole-group retarget
    /// when this chunk empties it. Every redo path — live move, cold
    /// replay, the standby mirror, promotion heal — commits through
    /// here, so they all converge on byte-identical directory state.
    fn commit_chunk_placement(&mut self, from: &[usize], to: &[usize], keys: &[DbKey]) {
        // "Does the group hold keys beyond this chunk?" via the interned
        // refcounts — O(chunk), where comparing key lists would rescan
        // the whole directory on every bracket.
        let live_in_chunk =
            keys.iter().filter(|k| self.directory.get(k).is_some_and(|g| g == from)).count();
        let remaining = self.directory.group_live_entries(from) > live_in_chunk as u64;
        if remaining {
            for key in keys {
                self.directory.insert(*key, to.to_vec());
            }
        } else if self.directory.retarget(from, to.to_vec()) > 0 {
            self.totals.groups_moved += 1;
        }
    }

    /// Fetch exactly `keys` from `sources`, keeping the first copy of
    /// each key that answers — the key-scoped read under group moves
    /// and promotion heals. Backend errors propagate (the move is
    /// requeued and retried); a dead source simply contributes nothing,
    /// as with `send_round`.
    fn fetch_records(
        &mut self,
        sources: &[usize],
        keys: &[DbKey],
    ) -> Result<Vec<(DbKey, Record)>> {
        let seq = self.next_seq();
        let mut sent = Vec::new();
        for &m in sources {
            if self.send_to(m, seq, BackendOp::FetchKeys(keys.to_vec())) {
                sent.push(m);
            }
        }
        let mut by_key: BTreeMap<DbKey, Record> = BTreeMap::new();
        let mut first_err = None;
        for m in sent {
            match self.recv_reply(m, seq) {
                Some(Ok(resp)) => {
                    for (key, rec) in resp.into_records() {
                        by_key.entry(key).or_insert(rec);
                    }
                }
                Some(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                None => {}
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(by_key.into_iter().collect()),
        }
    }

    /// Commit an online add: every unwrap move is done.
    fn finish_add(&mut self, backend: usize) -> Result<()> {
        self.log_append(LogRecord::AddEnd { backend })?;
        self.unwrapping = false;
        Ok(())
    }

    /// Retire a drained backend: every group containing it has moved
    /// off, so shut it down. `drain-end` (not `dead`) records the
    /// retirement — the store it takes down holds no current replica.
    fn finish_drain(&mut self, backend: usize) -> Result<()> {
        self.log_append(LogRecord::DrainEnd { backend })?;
        self.draining.remove(&backend);
        self.shutdown_backend(backend);
        Ok(())
    }

    /// A deterministic rendering of the controller's *logical* contents
    /// — allocator high-water mark, schema, constraints and records —
    /// with all placement detail (groups, rotors, dead set, membership)
    /// stripped. Two clusters of different shapes holding the same data
    /// produce equal logical digests; this is what the elastic-vs-static
    /// acceptance check compares.
    pub fn logical_digest(&mut self) -> Result<String> {
        let snap = self.snapshot_data()?;
        Ok(logical_digest_of(&snap))
    }

    /// Fallible file creation: sends the create through the health
    /// machine and fails only when *no* backend acknowledged it.
    /// Backends that die mid-create are marked dead; a later
    /// `restart_backend` replays the schema into them, so live stores
    /// never diverge.
    pub fn try_create_file(&mut self, name: &str) -> Result<()> {
        if !self.files.iter().any(|f| f == name) {
            self.files.push(name.to_owned());
        }
        let seq = self.next_seq();
        let mut sent = Vec::new();
        for i in 0..self.backends.len() {
            if self.health.is_serving(i)
                && self.send_to(i, seq, BackendOp::CreateFile(name.to_owned()))
            {
                sent.push(i);
            }
        }
        let mut acked = 0usize;
        for i in sent {
            if self.recv_reply(i, seq).is_some() {
                acked += 1;
            }
        }
        if acked == 0 {
            return Err(Error::Unavailable(format!(
                "no live backend acknowledged CREATE FILE `{name}`"
            )));
        }
        self.log_append(LogRecord::CreateFile { name: name.to_owned() })?;
        self.maybe_snapshot();
        Ok(())
    }

    fn next_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// A death was detected mid-operation (closed channel or missed
    /// reply windows): record it durably so recovery replays the same
    /// alive set the live run saw.
    fn note_dead(&mut self, i: usize) {
        self.degraded_dirty = true;
        self.log_append_stashing(LogRecord::Dead { backend: i });
    }

    /// Send an operation to backend `i`; a closed channel (or an
    /// unreachable process) marks it dead. The envelope carries this
    /// controller's epoch and a clone of its reply sender.
    fn send_to(&mut self, i: usize, seq: u64, op: BackendOp) -> bool {
        self.totals.messages_sent += 1;
        if self.backends[i].tcp.is_some() {
            return self.send_to_tcp(i, seq, op);
        }
        let env = Envelope {
            seq,
            epoch: self.epoch,
            reply: self.backends[i].reply_tx.clone(),
            op,
        };
        if self.backends[i].tx.send(env).is_err() {
            self.health.channel_closed(i);
            self.note_dead(i);
            return false;
        }
        true
    }

    /// The wire frame for one backend operation.
    fn op_frame(op: BackendOp, seq: u64, epoch: u64) -> Frame {
        match op {
            BackendOp::CreateFile(name) => WireOp::CreateFile(name),
            BackendOp::InsertWithKey(key, record) => WireOp::InsertWithKey(key, record),
            BackendOp::Exec(request) => WireOp::Exec(request),
            BackendOp::DeleteKeys(keys) => WireOp::DeleteKeys(keys),
            BackendOp::FetchKeys(keys) => WireOp::FetchKeys(keys),
            BackendOp::Shutdown => WireOp::Shutdown,
        }
        .into_frame(seq, epoch)
    }

    /// Socket-transport send: write the frame, re-dialing once if the
    /// connection is gone (connection re-establishment is part of the
    /// transport's manners — only a failed re-dial demotes the
    /// backend). The frame is stashed for retransmission.
    fn send_to_tcp(&mut self, i: usize, seq: u64, op: BackendOp) -> bool {
        let frame = Controller::op_frame(op, seq, self.epoch);
        let epoch = self.epoch;
        let dial = self.reply_timeout;
        let link = self.backends[i].tcp.as_mut().expect("tcp link");
        let sent = match link.send(&frame) {
            Ok(()) => true,
            Err(_) => link.connect(epoch, dial).is_ok() && link.send(&frame).is_ok(),
        };
        if sent {
            self.backends[i].last_frame = Some(frame);
            return true;
        }
        self.health.channel_closed(i);
        self.note_dead(i);
        false
    }

    /// Await backend `i`'s reply to `seq`. Stale replies (from earlier
    /// rounds that timed out) are discarded; a missed window demotes
    /// the backend one step and `Suspect` earns one more window.
    /// Returns `None` when the backend is (now) dead.
    fn recv_reply(&mut self, i: usize, seq: u64) -> Option<Result<Response>> {
        if self.backends[i].tcp.is_some() {
            return self.recv_reply_tcp(i, seq);
        }
        loop {
            match self.backends[i].rx.recv_timeout(self.reply_timeout) {
                Ok(reply) if reply.seq == seq => {
                    self.health.reply_received(i);
                    return Some(reply.result);
                }
                Ok(_) => continue, // stale reply from a timed-out round
                Err(RecvTimeoutError::Timeout) => {
                    self.totals.reply_timeouts += 1;
                    match self.health.missed_reply(i) {
                        BackendState::Suspect => continue,
                        _ => {
                            self.note_dead(i);
                            return None;
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    self.health.channel_closed(i);
                    self.note_dead(i);
                    return None;
                }
            }
        }
    }

    /// Socket-transport reply wait: the same health-window discipline
    /// as the channel bus, but each window is subdivided into
    /// bounded-exponential retransmission sub-waits — a dropped frame
    /// is usually recovered by a retry *inside* the window, so the
    /// health board only sees losses the retry budget could not hide.
    fn recv_reply_tcp(&mut self, i: usize, seq: u64) -> Option<Result<Response>> {
        loop {
            match self.await_window_tcp(i, seq) {
                Ok(Some(result)) => {
                    self.health.reply_received(i);
                    return Some(result);
                }
                Ok(None) => {
                    self.totals.reply_timeouts += 1;
                    match self.health.missed_reply(i) {
                        BackendState::Suspect => continue,
                        _ => {
                            self.note_dead(i);
                            return None;
                        }
                    }
                }
                Err(()) => {
                    self.health.channel_closed(i);
                    self.note_dead(i);
                    return None;
                }
            }
        }
    }

    /// One reply window over the socket. The window is split into
    /// `retry_budget + 1` sub-waits with doubling lengths (1, 2, 4, …
    /// shares of the window); each expiry retransmits the stashed
    /// frame — idempotent request ids make that safe — and counts into
    /// `retries`/`backoff_ms`. `Ok(None)` = window exhausted (a health
    /// strike); `Err(())` = connection lost and not re-establishable.
    fn await_window_tcp(
        &mut self,
        i: usize,
        seq: u64,
    ) -> std::result::Result<Option<Result<Response>>, ()> {
        let window = self.reply_timeout;
        let budget = self.retry_budget;
        let shares = (1u32 << (budget + 1)).saturating_sub(1).max(1);
        let mut sub = (window / shares).max(Duration::from_millis(1));
        let deadline = Instant::now() + window;
        let mut attempt = 0u32;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(None);
            }
            let wait = sub.min(left);
            let link = self.backends[i].tcp.as_mut().expect("tcp link");
            match link.recv(wait) {
                Ok(Some(frame)) => {
                    if frame.seq != seq
                        || (frame.kind != kind::REPLY_OK && frame.kind != kind::REPLY_ERR)
                    {
                        continue; // stale round, duplicate, or probe ack
                    }
                    return Ok(Some(match WireReply::from_frame(&frame) {
                        Ok(WireReply::Ok(resp)) => Ok(resp),
                        Ok(WireReply::Err(e)) => Err(e),
                        _ => Err(Error::Internal("wire: undecodable reply frame".into())),
                    }));
                }
                Ok(None) => {
                    if attempt >= budget {
                        return Ok(None);
                    }
                    attempt += 1;
                    self.totals.retries += 1;
                    self.totals.backoff_ms += wait.as_millis() as u64;
                    if !self.retransmit(i) {
                        return Err(());
                    }
                    sub = sub.saturating_mul(2);
                }
                Err(_) => {
                    // Connection lost mid-wait: re-dial once and resend.
                    let epoch = self.epoch;
                    let link = self.backends[i].tcp.as_mut().expect("tcp link");
                    if link.connect(epoch, wait.max(Duration::from_millis(20))).is_err() {
                        return Err(());
                    }
                    self.totals.retries += 1;
                    if !self.retransmit(i) {
                        return Err(());
                    }
                }
            }
        }
    }

    /// Resend the stashed frame on backend `i`'s link, re-dialing once
    /// if the write fails.
    fn retransmit(&mut self, i: usize) -> bool {
        let Some(frame) = self.backends[i].last_frame.clone() else { return true };
        let epoch = self.epoch;
        let dial = self.reply_timeout;
        let link = self.backends[i].tcp.as_mut().expect("tcp link");
        match link.send(&frame) {
            Ok(()) => true,
            Err(_) => link.connect(epoch, dial).is_ok() && link.send(&frame).is_ok(),
        }
    }

    /// Broadcast a request to every serving backend — the unscoped
    /// [`Controller::send_round`].
    fn broadcast(&mut self, request: &Request) -> Result<Response> {
        self.send_round(request, None)
    }

    /// Send a request to one round of backends (`None` = every serving
    /// backend, the broadcast path; `Some` = a routed subset), merge
    /// and dedup the partial responses, and retry-tolerate failures: a
    /// backend dying mid-round only removes its partial answer (the
    /// merged result stays correct as long as each record has a live
    /// replica, which `degraded` reports). All in-flight replies are
    /// drained before any error is returned, so the per-backend reply
    /// queues never desynchronize. An empty routed target set answers
    /// immediately with an empty response — exactly what a broadcast
    /// would have merged.
    fn send_round(&mut self, request: &Request, targets: Option<&[usize]>) -> Result<Response> {
        if targets.is_some() && self.health.serving_count() == 0 {
            return Err(Error::Unavailable("no live backends".into()));
        }
        let seq = self.next_seq();
        let mut sent = Vec::new();
        match targets {
            None => {
                for i in 0..self.backends.len() {
                    if self.health.is_serving(i)
                        && self.send_to(i, seq, BackendOp::Exec(request.clone()))
                    {
                        sent.push(i);
                    }
                }
                if sent.is_empty() {
                    return Err(Error::Unavailable("no live backends".into()));
                }
            }
            Some(targets) => {
                for &i in targets {
                    if self.health.is_serving(i)
                        && self.send_to(i, seq, BackendOp::Exec(request.clone()))
                    {
                        sent.push(i);
                    }
                }
            }
        }
        let mut merged = Response::default();
        let mut first_err = None;
        for i in sent {
            match self.recv_reply(i, seq) {
                Some(Ok(resp)) => merged.merge(resp),
                // Keep draining the other backends' replies even after
                // an error — bailing early would leave stale replies
                // desynchronizing the next round.
                Some(Err(e)) if first_err.is_none() => first_err = Some(e),
                Some(Err(_)) => {}
                None => {} // dead mid-round; survivors carry the answer
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        merged.dedup_by_key();
        Ok(merged)
    }

    /// The backends worth contacting for `query`: the union, over its
    /// disjuncts, of either (a) the replica groups of the keys a fully
    /// pinned unique group names (key-scoped), or (b) the backends the
    /// directory says hold records of the disjunct's file. `None` means
    /// the query cannot be scoped (routing disabled, or some disjunct
    /// names no file) and the caller must broadcast.
    fn route_targets(&self, query: &abdl::Query) -> Option<Vec<usize>> {
        if !self.scoped_routing {
            return None;
        }
        let mut targets = BTreeSet::new();
        for conj in &query.disjuncts {
            let file = conj.file()?;
            if let Some(keys) = self.unique_candidates(file, conj) {
                for k in keys {
                    if let Some(group) = self.directory.get(&k) {
                        targets.extend(group.iter().copied());
                    }
                }
            } else if let Some(counts) = self.resident.get(file) {
                targets.extend(
                    counts.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(i, _)| i),
                );
            }
            // A file nobody holds contributes no targets.
        }
        Some(targets.into_iter().collect())
    }

    /// Key-scoped fast path: when a conjunction pins every attribute of
    /// some `DUPLICATES ARE NOT ALLOWED` group with an equality
    /// predicate, the unique index names the only keys that can match
    /// (further predicates can only narrow the answer, never widen it).
    fn unique_candidates(&self, file: &str, conj: &abdl::Conjunction) -> Option<Vec<DbKey>> {
        let groups = self.unique_groups.get(file)?;
        for (gi, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let tuple: Option<Vec<Value>> = group
                .iter()
                .map(|a| {
                    conj.predicates
                        .iter()
                        .find(|p| p.attr == *a && p.op == RelOp::Eq)
                        .map(|p| p.value.clone())
                })
                .collect();
            let Some(tuple) = tuple else { continue };
            let keys = self
                .unique_index
                .get(&(file.to_owned(), gi))
                .and_then(|m| m.get(&tuple))
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            return Some(keys);
        }
        None
    }

    /// Attach health metadata to an outgoing response.
    fn finalize(&mut self, mut resp: Response) -> Response {
        resp.degraded = self.is_degraded();
        resp.unavailable_backends = self.health.unavailable();
        resp
    }

    /// True when some record's whole replica group is dead.
    fn is_degraded(&mut self) -> bool {
        if self.degraded_dirty {
            self.degraded_cache = self.compute_degraded();
            self.degraded_dirty = false;
        }
        self.degraded_cache
    }

    fn compute_degraded(&self) -> bool {
        let dead: Vec<bool> =
            (0..self.backends.len()).map(|i| !self.health.is_serving(i)).collect();
        // Interned groups make this O(distinct replica sets), not
        // O(records): a group is degraded iff its every member is dead.
        self.directory.groups_in_use().any(|group| group.iter().all(|&r| dead[r]))
    }

    /// The records currently matching `query`, deduplicated across
    /// replicas — the *logical* affected set of a mutation, with the
    /// pre-images the index maintenance needs.
    fn matching_records(
        &mut self,
        query: &abdl::Query,
        targets: Option<&[usize]>,
    ) -> Result<Vec<(DbKey, Record)>> {
        let resp = self.send_round(&Request::retrieve_all(query.clone()), targets)?;
        Ok(resp.into_records())
    }

    fn check_unique(&mut self, record: &Record) -> Result<()> {
        let Some(file) = record.file() else {
            return Err(Error::MissingFileKeyword);
        };
        let Some(groups) = self.unique_groups.get(file).cloned() else { return Ok(()) };
        if self.unique_via_index {
            // Every insert flows through this controller, so the index
            // is exact: one map lookup replaces a full-cluster retrieve
            // probe (and, unlike the probe, still sees records whose
            // replicas are all currently down).
            let file = file.to_owned();
            for (gi, group) in groups.iter().enumerate() {
                if !group.iter().all(|a| record.get(a).is_some()) {
                    continue;
                }
                let tuple = Controller::group_tuple(record, group);
                let hit = self
                    .unique_index
                    .get(&(file.clone(), gi))
                    .and_then(|m| m.get(&tuple))
                    .is_some_and(|keys| !keys.is_empty());
                if hit {
                    return Err(Error::DuplicateKey { file, attrs: group.clone() });
                }
            }
            return Ok(());
        }
        // Legacy pre-insert broadcast probe (the E15 ablation baseline).
        for group in groups {
            if !group.iter().all(|a| record.get(a).is_some()) {
                continue;
            }
            let query = abdl::Query::conjunction(
                std::iter::once(abdl::Predicate::eq(abdl::FILE_ATTR, abdl::Value::str(file)))
                    .chain(group.iter().map(|a| {
                        abdl::Predicate::eq(a.clone(), record.get(a).expect("present").clone())
                    }))
                    .collect(),
            );
            let hits = self.broadcast(&Request::retrieve_all(query))?;
            if !hits.records().is_empty() {
                return Err(Error::DuplicateKey { file: file.to_owned(), attrs: group.clone() });
            }
        }
        Ok(())
    }

    /// Allocate a key for an internal insert. Unlike the public
    /// `reserve_key`, this is *not* logged on its own — the insert's
    /// `Insert` (or `Alloc`) WAL entry carries the key.
    fn alloc_key(&mut self) -> DbKey {
        let key = DbKey(self.next_key);
        self.next_key += 1;
        key
    }

    fn insert(&mut self, record: &Record) -> Result<Response> {
        self.check_unique(record)?;
        let file = record.file().ok_or(Error::MissingFileKeyword)?.to_owned();
        let key = self.alloc_key();
        // Preferred replica group, then every other backend as fallback
        // so a dead group member is substituted by the next live one.
        // Replicas are written in waves: all outstanding copies are
        // sent before any reply is awaited (send-all-then-collect, like
        // a broadcast round), so a k-way write costs one round trip
        // instead of k. A wave member that dies is substituted by the
        // next serving backend along the scan in the following wave.
        let group = self.partitioner.place_group(&file, self.replication);
        let primary = group[0];
        let n = self.backends.len();
        let mut assigned = Vec::new();
        let mut scanned = 0usize;
        while assigned.len() < self.replication && scanned < n {
            let want = if self.parallel_writes { self.replication - assigned.len() } else { 1 };
            let mut wave = Vec::new();
            while wave.len() < want && scanned < n {
                let i = (primary + scanned) % n;
                scanned += 1;
                // Draining backends take no new placements: their
                // groups are being vacated.
                if self.health.is_serving(i) && !self.draining.contains(&i) {
                    wave.push(i);
                }
            }
            if wave.is_empty() {
                break;
            }
            let seq = self.next_seq();
            let mut sent = Vec::new();
            for &i in &wave {
                if self.send_to(i, seq, BackendOp::InsertWithKey(key, record.clone())) {
                    sent.push(i);
                }
            }
            let mut first_err = None;
            for i in sent {
                match self.recv_reply(i, seq) {
                    Some(Ok(_)) => assigned.push(i),
                    // Drain the whole wave before erroring so reply
                    // queues stay synchronized.
                    Some(Err(e)) if first_err.is_none() => first_err = Some(e),
                    Some(Err(_)) => {}
                    None => {} // died mid-insert; the next wave substitutes
                }
            }
            if let Some(e) = first_err {
                // Key and rotor step are consumed even though the
                // insert failed; log that so recovery agrees.
                self.log_append(LogRecord::Alloc { key: key.0, file })?;
                return Err(e);
            }
        }
        if assigned.is_empty() {
            self.log_append(LogRecord::Alloc { key: key.0, file })?;
            return Err(Error::Unavailable("no live backend accepted the insert".into()));
        }
        self.directory.insert(key, assigned.clone());
        self.resident_add(&file, &assigned);
        self.index_insert(key, record);
        self.log_append(LogRecord::Insert { key: key.0, group: assigned, record: record.clone() })?;
        Ok(Response::with_affected(1, Default::default()))
    }

    /// Execute a flight of pairwise non-conflicting inserts and
    /// retrieves with their backend rounds pipelined: every member's
    /// sends go out before any reply is awaited, so the flight costs
    /// one round-trip latency instead of one per member.
    ///
    /// Order discipline: all three phases walk the flight in admission
    /// order. The controller-side reads (unique check, key allocation,
    /// rotor step, routing) happen serially during staging, and the
    /// per-backend channels are FIFO, so each backend observes the
    /// members' operations in admission order and the replies come
    /// back in the same order the collection phase awaits them — the
    /// flight is equivalent to executing its members serially.
    ///
    /// Reads ride the same discipline. A read staged after an insert
    /// of the same flight routes against the directory as it stood
    /// *before* the flight's inserts commit in phase 3 — harmless,
    /// because the scheduler only admits a read next to inserts whose
    /// footprints don't conflict with it: none of the flight's new
    /// records can match the read's qualification, so missing their
    /// placements cannot change the answer.
    fn execute_flight(&mut self, items: &[FlightItem]) -> Vec<Result<Response>> {
        // Phase 1 — stage: per-member bookkeeping, then the member's
        // sends (first replica wave / routed read round), no replies
        // awaited.
        let mut staged: Vec<Staged> = Vec::with_capacity(items.len());
        for item in items {
            self.totals.requests += 1;
            match item {
                FlightItem::Insert(record) => {
                    staged.push(Staged::Insert(self.stage_insert(record)));
                }
                FlightItem::Read(request) => {
                    staged.push(Staged::Read(Box::new(self.stage_read(request))));
                }
            }
        }
        // Phase 2 — collect: await every staged reply in admission
        // order (FIFO channels deliver them in exactly this order).
        // Nothing new is sent here, so no member's pending reply can
        // be mistaken for a stale one and discarded.
        for s in &mut staged {
            match s {
                Staged::Insert(Ok(si)) => {
                    let mut first_err = None;
                    for idx in 0..si.sent.len() {
                        let i = si.sent[idx];
                        match self.recv_reply(i, si.seq) {
                            Some(Ok(_)) => si.assigned.push(i),
                            Some(Err(e)) if first_err.is_none() => first_err = Some(e),
                            Some(Err(_)) => {}
                            None => {} // died mid-flight; substituted in phase 3
                        }
                    }
                    si.err = first_err;
                }
                Staged::Insert(Err(_)) => {}
                Staged::Read(sr) => {
                    for idx in 0..sr.sent.len() {
                        let i = sr.sent[idx];
                        match self.recv_reply(i, sr.seq) {
                            Some(Ok(resp)) => sr.merged.merge(resp),
                            Some(Err(e)) if sr.err.is_none() => sr.err = Some(e),
                            Some(Err(_)) => {}
                            // Died mid-flight. A probe's whole answer is
                            // gone (phase 3 fails over); a routed round's
                            // survivors carry it, like `send_round`.
                            None => sr.lost = true,
                        }
                    }
                }
            }
        }
        // Phase 3 — finish: with the bus idle again, run substitute
        // waves / probe failovers for members the mid-flight deaths
        // left short, then the per-member bookkeeping, all in
        // admission order.
        items
            .iter()
            .zip(staged)
            .map(|(item, s)| match (item, s) {
                (_, Staged::Insert(Err(e))) => Err(e),
                (FlightItem::Insert(record), Staged::Insert(Ok(s))) => {
                    self.finish_staged_insert(record, s)
                }
                (FlightItem::Read(request), Staged::Read(s)) => self.finish_staged_read(request, *s),
                _ => unreachable!("flight item and staged state disagree"),
            })
            .collect()
    }

    /// Phase-1 bookkeeping and first replica wave for one insert
    /// flight member — the staging half of [`Controller::insert`].
    fn stage_insert(&mut self, record: &Record) -> Result<StagedInsert> {
        self.check_unique(record)?;
        let file = record.file().map(str::to_owned).ok_or(Error::MissingFileKeyword)?;
        let n = self.backends.len();
        let key = self.alloc_key();
        let group = self.partitioner.place_group(&file, self.replication);
        let primary = group[0];
        let want = if self.parallel_writes { self.replication } else { 1 };
        let mut scanned = 0usize;
        let mut wave = Vec::new();
        while wave.len() < want && scanned < n {
            let i = (primary + scanned) % n;
            scanned += 1;
            if self.health.is_serving(i) && !self.draining.contains(&i) {
                wave.push(i);
            }
        }
        let seq = self.next_seq();
        let mut sent = Vec::new();
        let mut msgs = 0u64;
        for &i in &wave {
            msgs += 1;
            if self.send_to(i, seq, BackendOp::InsertWithKey(key, record.clone())) {
                sent.push(i);
            }
        }
        Ok(StagedInsert {
            key,
            file,
            seq,
            sent,
            assigned: Vec::new(),
            err: None,
            primary,
            scanned,
            msgs,
        })
    }

    /// Phase-1 routing and sends for one read flight member. Prefers a
    /// single-backend probe when the unique index pins every disjunct
    /// to keys one serving backend fully covers; otherwise the same
    /// scoped/broadcast round `send_round` would run, just without
    /// awaiting the replies yet.
    fn stage_read(&mut self, request: &Request) -> StagedRead {
        let (wire, query) = match request {
            // Partial aggregates do not merge (AVG); stage the raw
            // retrieve and aggregate globally in phase 3, exactly as
            // the solo path does.
            Request::Retrieve { query, target, .. } if target.has_aggregates() => {
                (Request::retrieve_all(query.clone()), query)
            }
            Request::Retrieve { query, .. } => (request.clone(), query),
            _ => unreachable!("read flights hold only retrieves"),
        };
        let (targets, fallback, probe) = match self.probe_plan(query) {
            Some((first, rest)) => (Some(vec![first]), rest, true),
            None => (self.route_targets(query), Vec::new(), false),
        };
        let unavailable = self.health.serving_count() == 0;
        let seq = self.next_seq();
        let mut sent = Vec::new();
        let mut msgs = 0u64;
        let round: Vec<usize> = match &targets {
            None => (0..self.backends.len()).collect(),
            Some(ts) => ts.clone(),
        };
        for i in round {
            if self.health.is_serving(i) {
                msgs += 1;
                if self.send_to(i, seq, BackendOp::Exec(wire.clone())) {
                    sent.push(i);
                }
            }
        }
        if probe {
            self.totals.read_probes += sent.len() as u64;
            for &i in &sent {
                self.read_probes_by_backend[i] += 1;
            }
        }
        // Mirror `send_round`'s unavailability contract: a broadcast
        // (or any read, with zero serving backends) that reaches
        // nobody is an error, while a scoped round whose targets all
        // just died degrades to the survivors' (empty) answer.
        let err = (sent.is_empty() && (targets.is_none() || unavailable))
            .then(|| Error::Unavailable("no live backends".into()));
        // A probe that reached nobody still has its fallbacks to try.
        let lost = probe && sent.is_empty() && !fallback.is_empty();
        StagedRead {
            seq,
            wire,
            sent,
            fallback,
            merged: Response::default(),
            err,
            lost,
            probe,
            msgs,
        }
    }

    /// A single-backend probe plan for a key-scoped read:
    /// `Some((first, fallbacks))` when the unique index pins every
    /// disjunct of `query` to candidate keys and at least one serving
    /// backend holds a replica of *every* candidate record — that
    /// backend alone can answer the read. `fallbacks` are the other
    /// covering backends in failover order, tried one at a time if the
    /// probed backend dies mid-flight. `None` when some disjunct is
    /// only file-scoped, no single serving backend covers all keys, or
    /// routing is disabled — the caller falls back to the
    /// `route_targets` round.
    fn probe_plan(&self, query: &abdl::Query) -> Option<(usize, Vec<usize>)> {
        if !self.scoped_routing {
            return None;
        }
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for conj in &query.disjuncts {
            let file = conj.file()?;
            for key in self.unique_candidates(file, conj)? {
                groups.push(self.directory.get(&key)?.to_vec());
            }
        }
        // No candidate record at all: the routed round answers empty
        // without a probe (and without any message).
        let (head, rest) = groups.split_first()?;
        let mut covering: Vec<usize> = head
            .iter()
            .copied()
            .filter(|&i| self.health.is_serving(i) && rest.iter().all(|g| g.contains(&i)))
            .collect();
        if covering.is_empty() {
            return None;
        }
        let first = covering.remove(0);
        Some((first, covering))
    }

    /// Complete one read flight member: if a probed backend died
    /// mid-flight, re-probe its replicas one at a time (the bus is
    /// idle again, so a fresh seq per retry is safe), then merge,
    /// aggregate if the request asked for it, and finalize — the same
    /// shape the solo retrieve path produces.
    fn finish_staged_read(&mut self, request: &Request, mut s: StagedRead) -> Result<Response> {
        while s.probe && s.lost && !s.fallback.is_empty() {
            let i = s.fallback.remove(0);
            if !self.health.is_serving(i) {
                continue;
            }
            let seq = self.next_seq();
            s.msgs += 1;
            self.totals.read_probes += 1;
            self.totals.read_probe_failovers += 1;
            self.read_probes_by_backend[i] += 1;
            if !self.send_to(i, seq, BackendOp::Exec(s.wire.clone())) {
                continue;
            }
            match self.recv_reply(i, seq) {
                Some(Ok(resp)) => {
                    s.merged.merge(resp);
                    s.lost = false;
                }
                Some(Err(e)) => {
                    if s.err.is_none() {
                        s.err = Some(e);
                    }
                    s.lost = false;
                }
                None => {} // also died; try the next replica
            }
        }
        if let Some(e) = s.err {
            return Err(e);
        }
        s.merged.dedup_by_key();
        let resp = match request {
            Request::Retrieve { target, by, .. } if target.has_aggregates() => {
                let mut stats = s.merged.stats;
                let groups = aggregate(s.merged.records(), target, by.as_deref())?;
                stats.records_returned = groups.len() as u64;
                let mut resp = Response::with_records(Vec::new(), stats);
                resp.groups = Some(groups);
                resp
            }
            _ => s.merged,
        };
        self.totals.records_examined += resp.stats.records_examined;
        let mut out = self.finalize(resp);
        out.messages_sent = s.msgs;
        Ok(out)
    }

    /// Complete one flight member: substitute replicas lost to
    /// backends dying mid-flight (the same scan `insert` continues
    /// with), then commit the controller-side bookkeeping.
    fn finish_staged_insert(&mut self, record: &Record, mut s: StagedInsert) -> Result<Response> {
        if let Some(e) = s.err {
            // Key and rotor step are consumed even though the insert
            // failed; log that so recovery agrees.
            self.log_append(LogRecord::Alloc { key: s.key.0, file: s.file })?;
            return Err(e);
        }
        let n = self.backends.len();
        while s.assigned.len() < self.replication && s.scanned < n {
            let want =
                if self.parallel_writes { self.replication - s.assigned.len() } else { 1 };
            let mut wave = Vec::new();
            while wave.len() < want && s.scanned < n {
                let i = (s.primary + s.scanned) % n;
                s.scanned += 1;
                if self.health.is_serving(i) && !self.draining.contains(&i) {
                    wave.push(i);
                }
            }
            if wave.is_empty() {
                break;
            }
            let seq = self.next_seq();
            let mut sent = Vec::new();
            for &i in &wave {
                s.msgs += 1;
                if self.send_to(i, seq, BackendOp::InsertWithKey(s.key, record.clone())) {
                    sent.push(i);
                }
            }
            let mut first_err = None;
            for i in sent {
                match self.recv_reply(i, seq) {
                    Some(Ok(_)) => s.assigned.push(i),
                    Some(Err(e)) if first_err.is_none() => first_err = Some(e),
                    Some(Err(_)) => {}
                    None => {}
                }
            }
            if let Some(e) = first_err {
                self.log_append(LogRecord::Alloc { key: s.key.0, file: s.file })?;
                return Err(e);
            }
        }
        if s.assigned.is_empty() {
            self.log_append(LogRecord::Alloc { key: s.key.0, file: s.file })?;
            return Err(Error::Unavailable("no live backend accepted the insert".into()));
        }
        self.directory.insert(s.key, s.assigned.clone());
        self.resident_add(&s.file, &s.assigned);
        self.index_insert(s.key, record);
        self.log_append(LogRecord::Insert {
            key: s.key.0,
            group: s.assigned,
            record: record.clone(),
        })?;
        let mut resp = self.finalize(Response::with_affected(1, Default::default()));
        resp.messages_sent = s.msgs;
        Ok(resp)
    }
}

impl Kernel for Controller {
    fn create_file(&mut self, name: &str) {
        if let Err(e) = self.try_create_file(name) {
            // The trait's signature is infallible; surface the failure
            // at the caller's next fallible step instead of losing it.
            self.pending_error.get_or_insert(e);
        }
    }

    fn add_unique_constraint(&mut self, file: &str, attrs: Vec<String>) {
        self.register_unique(file, attrs.clone());
        self.log_append_stashing(LogRecord::Unique { file: file.to_owned(), attrs });
    }

    fn reserve_key(&mut self) -> DbKey {
        let key = self.alloc_key();
        // Language interfaces mint entity ids through this path and
        // store them as data values; an unlogged reservation would
        // re-issue those ids after recovery.
        self.log_append_stashing(LogRecord::ReserveKey { key: key.0 });
        key
    }

    fn execute(&mut self, request: &Request) -> Result<Response> {
        if let Some(e) = self.pending_error.take() {
            return Err(e);
        }
        self.totals.requests += 1;
        let msgs_before = self.totals.messages_sent;
        let mut resp = self.execute_inner(request)?;
        resp.messages_sent = self.totals.messages_sent - msgs_before;
        self.totals.records_examined += resp.stats.records_examined;
        // Piggyback up to `throttle` queued rebalance moves on this
        // foreground request — the online add/drain progresses in
        // bounded slices while traffic flows. Runs after the message
        // attribution above so move traffic never pollutes the
        // response's own counters.
        self.pump_rebalance();
        self.maybe_snapshot();
        Ok(resp)
    }

    fn execute_transaction(&mut self, txn: &Transaction) -> Result<Vec<Response>> {
        // Group commit: every WAL append the transaction produces is
        // buffered and synced once when it completes. (Effects of the
        // requests before a mid-transaction error are still applied and
        // still logged — the batch is a durability optimisation, not
        // atomicity.)
        self.wal_begin_batch();
        let result: Result<Vec<Response>> = txn.requests.iter().map(|r| self.execute(r)).collect();
        let flush = self.wal_commit_batch();
        let out = result?;
        flush?;
        Ok(out)
    }

    /// The conflict-scheduled, pipelined batch path: one request from
    /// each of several concurrent sessions, admitted together.
    ///
    /// The scheduler walks the batch in admission order, classifying
    /// each request's [`Footprint`] and greedily forming *flights* of
    /// consecutive non-conflicting inserts and retrieves. A flight's
    /// rounds are all staged onto the backend bus before any reply is
    /// awaited, so non-conflicting sessions' requests are in flight
    /// concurrently on the per-backend sender threads — read-only
    /// flights (reads always commute, broadcast scans included) and
    /// mixed read/insert flights (key-/file-disjoint footprints)
    /// alike, with key-pinned point reads going out as single-backend
    /// probes; a conflicting request closes the flight (a
    /// `conflict_stalls` tick) and waits for it to drain. Because the per-backend channels are FIFO and both the
    /// staging and the collection walk in admission order, the result
    /// is always equivalent to executing the batch serially in
    /// admission order (`tests/concurrent_equivalence.rs`).
    ///
    /// The whole batch runs inside one WAL group-commit batch: every
    /// session's appends are buffered and flushed with a single sync —
    /// cross-session group commit. As with `execute_transaction`, the
    /// batch is a durability optimisation, not atomicity: each request
    /// keeps its own result, and a flush failure is stashed for the
    /// next `execute` to surface.
    fn execute_batch(&mut self, requests: &[Request]) -> Vec<Result<Response>> {
        if requests.len() < 2 {
            return requests.iter().map(|r| self.execute(r)).collect();
        }
        self.totals.batched_requests += requests.len() as u64;
        self.wal_begin_batch();
        let mut results = Vec::with_capacity(requests.len());
        // Staging keeps several requests in flight per backend; the
        // socket transport's single retransmission slot per link
        // assumes at most one, and the legacy broadcast unique probe
        // would interleave reads into the staged stream — both fall
        // back to the solo path (still batched for group commit). An
        // in-flight group move is a standing broadcast-write conflict:
        // while the rebalance queue is non-empty the scheduler refuses
        // to stage flights at all (each batch member runs solo, after
        // any move its own `execute` pumps), so no staged read can
        // overlap a directory retarget.
        let rebalancing = !self.rebalancer.is_idle();
        if rebalancing && self.net.is_none() && self.unique_via_index {
            self.totals.rebalance_stalls += requests.len() as u64;
        }
        let stageable = self.net.is_none() && self.unique_via_index && !rebalancing;
        let mut i = 0;
        while i < requests.len() {
            let mut flight_fps: Vec<Footprint> = Vec::new();
            let mut j = i;
            while stageable && j < requests.len() {
                // Inserts and retrieves stage; deletes, updates and
                // joins run dependent controller-side rounds and
                // execute solo.
                let flyable = match &requests[j] {
                    Request::Insert { .. } => true,
                    Request::Retrieve { .. } => self.parallel_reads,
                    _ => false,
                };
                if !flyable {
                    break;
                }
                let fp = Footprint::of(&requests[j], &self.unique_groups);
                // A broadcast *write* cannot be staged at all; a
                // broadcast read can ride a read-only flight (read
                // pairs always commute; any write next to it is a
                // footprint conflict and closes the flight).
                if fp.broadcast && fp.write {
                    break;
                }
                if flight_fps.iter().any(|f| f.conflicts(&fp)) {
                    self.totals.conflict_stalls += 1;
                    break;
                }
                flight_fps.push(fp);
                j += 1;
            }
            if j - i >= 2 {
                let items: Vec<FlightItem> = requests[i..j]
                    .iter()
                    .map(|r| match r {
                        Request::Insert { record } => FlightItem::Insert(record),
                        Request::Retrieve { .. } => FlightItem::Read(r),
                        _ => unreachable!("flights hold only inserts and retrieves"),
                    })
                    .collect();
                let reads =
                    items.iter().filter(|m| matches!(m, FlightItem::Read(_))).count();
                self.totals.sched_flights += 1;
                if reads == items.len() {
                    self.totals.sched_read_flights += 1;
                } else if reads > 0 {
                    self.totals.sched_mixed_flights += 1;
                }
                self.totals.sched_max_flight =
                    self.totals.sched_max_flight.max((j - i) as u64);
                results.extend(self.execute_flight(&items));
                i = j;
            } else {
                results.push(self.execute(&requests[i]));
                i += 1;
            }
        }
        if let Err(e) = self.wal_commit_batch() {
            // The batch's log records never reached the store (a
            // promotion fenced this controller mid-batch, or the sync
            // failed). Acknowledging the writes anyway would hand the
            // sessions a success the promoted lineage has never heard
            // of — the model checker's `ack-despite-failed-flush`
            // counterexample is exactly that: write → backend-write →
            // wal-append → promote-fence → flush, and the acked write
            // is not durable. Retract every mutating result in the
            // batch; reads saw committed state and stand.
            for (req, result) in requests.iter().zip(results.iter_mut()) {
                let mutating = matches!(
                    req,
                    Request::Insert { .. } | Request::Delete { .. } | Request::Update { .. }
                );
                if mutating && result.is_ok() {
                    *result = Err(e.clone());
                }
            }
            self.pending_error.get_or_insert(e);
        }
        self.maybe_snapshot();
        results
    }

    fn exec_totals(&self) -> ExecTotals {
        let mut totals = self.totals;
        if let Some(wal) = self.wal.as_ref() {
            let WalStats { appends, batches, syncs, snapshot_installs, max_batch } = wal.stats();
            totals.wal_appends = appends;
            totals.wal_batches = batches;
            totals.wal_syncs = syncs;
            totals.wal_snapshots = snapshot_installs;
            totals.wal_max_batch = max_batch;
        }
        totals
    }

    fn health(&self) -> KernelHealth {
        KernelHealth {
            backends: self.backends.len(),
            unavailable: self.health.unavailable(),
            degraded: if self.degraded_dirty {
                self.compute_degraded()
            } else {
                self.degraded_cache
            },
        }
    }
}

impl Controller {
    /// The request dispatcher behind [`Kernel::execute`], shared with
    /// WAL replay (which must not re-trigger pending-error surfacing or
    /// snapshot compaction).
    fn execute_inner(&mut self, request: &Request) -> Result<Response> {
        match request {
            Request::Insert { record } => {
                let resp = self.insert(record)?;
                Ok(self.finalize(resp))
            }
            Request::Delete { query } => {
                // Logical affected set: matching records, deduplicated
                // across replicas, *before* the round mutates them (the
                // pre-images also feed the index/residency bookkeeping).
                let targets = self.route_targets(query);
                let matched = self.matching_records(query, targets.as_deref())?;
                let resp = self.send_round(request, targets.as_deref())?;
                for (k, rec) in &matched {
                    if let Some(group) = self.directory.remove(k) {
                        if let Some(file) = rec.file().map(str::to_owned) {
                            self.resident_remove(&file, &group);
                        }
                    }
                    self.index_remove(*k, rec);
                }
                self.degraded_dirty = true;
                self.log_append(LogRecord::Exec { request: request.clone() })?;
                let out = Response::with_affected(matched.len(), resp.stats);
                Ok(self.finalize(out))
            }
            Request::Update { query, modifier } => {
                let targets = self.route_targets(query);
                let matched = self.matching_records(query, targets.as_deref())?;
                let resp = self.send_round(request, targets.as_deref())?;
                for (k, rec) in &matched {
                    self.index_update(*k, rec, &modifier.attr, &modifier.value);
                }
                self.log_append(LogRecord::Exec { request: request.clone() })?;
                let out = Response::with_affected(matched.len(), resp.stats);
                Ok(self.finalize(out))
            }
            Request::Retrieve { query, target, by } if target.has_aggregates() => {
                // Partial aggregates do not merge (AVG); fetch the
                // matching records (deduplicated) and aggregate
                // globally.
                let targets = self.route_targets(query);
                let rows =
                    self.send_round(&Request::retrieve_all(query.clone()), targets.as_deref())?;
                let mut stats = rows.stats;
                let groups = aggregate(rows.records(), target, by.as_deref())?;
                stats.records_returned = groups.len() as u64;
                let mut resp = Response::with_records(Vec::new(), stats);
                resp.groups = Some(groups);
                Ok(self.finalize(resp))
            }
            Request::RetrieveCommon { left, left_attr, right, right_attr, target } => {
                // Matching halves may live on different backends; join
                // at the controller over the merged partials. Each half
                // routes independently.
                let lt = self.route_targets(left);
                let l = self.send_round(&Request::retrieve_all(left.clone()), lt.as_deref())?;
                let rt = self.route_targets(right);
                let r = self.send_round(&Request::retrieve_all(right.clone()), rt.as_deref())?;
                // Tag halves into scratch files (a record matching both
                // qualifications must appear on both sides, so the keys
                // are remapped disjointly).
                let mut joiner = Store::new();
                for (key, rec) in l.records() {
                    let mut rec = rec.clone();
                    rec.set(abdl::FILE_ATTR, abdl::Value::str("__mbds_left"));
                    joiner.insert_with_key(DbKey(key.0 * 2), rec)?;
                }
                for (key, rec) in r.records() {
                    let mut rec = rec.clone();
                    rec.set(abdl::FILE_ATTR, abdl::Value::str("__mbds_right"));
                    joiner.insert_with_key(DbKey(key.0 * 2 + 1), rec)?;
                }
                let mut stats = l.stats;
                stats += r.stats;
                let joined = joiner.execute(&Request::RetrieveCommon {
                    left: abdl::Query::conjunction(vec![abdl::Predicate::eq(
                        abdl::FILE_ATTR,
                        "__mbds_left",
                    )]),
                    left_attr: left_attr.clone(),
                    right: abdl::Query::conjunction(vec![abdl::Predicate::eq(
                        abdl::FILE_ATTR,
                        "__mbds_right",
                    )]),
                    right_attr: right_attr.clone(),
                    target: target.clone(),
                })?;
                let mut out = joined;
                out.stats += stats;
                Ok(self.finalize(out))
            }
            other => {
                let targets = match other {
                    Request::Retrieve { query, .. } => self.route_targets(query),
                    _ => None,
                };
                let resp = self.send_round(other, targets.as_deref())?;
                Ok(self.finalize(resp))
            }
        }
    }
}

impl Drop for Controller {
    fn drop(&mut self) {
        // A demoted primary (a standby promoted past our epoch) no
        // longer owns the backend threads: detach without shutting them
        // down — the promoted controller is serving over them.
        let demoted = self.fence.load(Ordering::SeqCst) > self.epoch;
        if self.net.is_some() {
            if demoted {
                // The promoted controller holds the SharedNet Arc and
                // keeps serving over the same backend processes.
                return;
            }
            let epoch = self.epoch;
            for i in 0..self.backends.len() {
                if let Some(link) = self.backends[i].tcp.as_mut() {
                    let _ = link.send(&WireOp::Shutdown.into_frame(0, epoch));
                }
                self.reap_child(i);
            }
            return;
        }
        for b in &mut self.backends {
            if demoted {
                let _ = b.join.take();
                continue;
            }
            let _ = b.tx.send(Envelope {
                seq: 0,
                epoch: self.epoch,
                reply: b.reply_tx.clone(),
                op: BackendOp::Shutdown,
            });
            if let Some(join) = b.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// Render the placement-independent projection of a snapshot: what the
/// cluster *stores*, not where. Shared by [`Controller::logical_digest`]
/// and [`crate::SimCluster::logical_digest`].
pub(crate) fn logical_digest_of(snap: &SnapshotData) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "next-key {}", snap.next_key);
    for file in &snap.files {
        let _ = writeln!(out, "file {file}");
    }
    for (file, attrs) in &snap.uniques {
        let _ = writeln!(out, "unique {file} {}", attrs.join(" "));
    }
    for (key, _, record) in &snap.places {
        match record {
            Some(record) => {
                let _ = writeln!(out, "{key} {record}");
            }
            None => {
                let _ = writeln!(out, "{key} ?");
            }
        }
    }
    out
}

fn spawn_backend(
    index: usize,
    fence: Arc<AtomicU64>,
    faults: Arc<Mutex<FaultPlan>>,
) -> BackendHandle {
    let (tx, backend_rx) = channel::<Envelope>();
    let (reply_tx, rx) = channel::<Reply>();
    let join = std::thread::Builder::new()
        .name(format!("mbds-backend-{index}"))
        .spawn(move || backend_loop(index, backend_rx, fence, faults))
        .expect("spawn backend thread");
    BackendHandle { tx, rx, reply_tx, join: Some(join), tcp: None, last_frame: None }
}

/// One backend: a private store served over the bus, with fault
/// injection on the per-backend message counter and epoch fencing on
/// every envelope — messages from a controller below the cluster fence
/// are refused (and a stale `Shutdown` is ignored outright, so a
/// demoted primary being dropped cannot take the cluster down).
fn backend_loop(
    index: usize,
    rx: Receiver<Envelope>,
    fence: Arc<AtomicU64>,
    faults: Arc<Mutex<FaultPlan>>,
) {
    let mut store = Store::new();
    let mut handled: u64 = 0;
    while let Ok(env) = rx.recv() {
        if env.epoch < fence.load(Ordering::SeqCst) {
            if !matches!(env.op, BackendOp::Shutdown) {
                let _ = env.reply.send(Reply {
                    seq: env.seq,
                    result: Err(Error::Unavailable(format!(
                        "backend {index}: request fenced (epoch {} < fence {})",
                        env.epoch,
                        fence.load(Ordering::SeqCst)
                    ))),
                });
            }
            continue;
        }
        if matches!(env.op, BackendOp::Shutdown) {
            return;
        }
        handled += 1;
        let fault = faults.lock().ok().and_then(|p| p.action(index, handled));
        match fault {
            Some(FaultKind::Crash) => return,
            Some(FaultKind::Panic) => {
                panic!("injected fault: backend {index} panics at message {handled}")
            }
            _ => {}
        }
        let result = match env.op {
            BackendOp::CreateFile(name) => {
                store.create_file(name);
                Ok(Response::default())
            }
            BackendOp::InsertWithKey(key, record) => store
                .insert_with_key(key, record)
                .map(|()| Response::with_affected(1, Default::default())),
            BackendOp::Exec(req) => store.execute(&req),
            BackendOp::DeleteKeys(keys) => {
                let removed =
                    keys.iter().filter(|&&k| store.remove_by_key(k).is_some()).count();
                Ok(Response::with_affected(removed, Default::default()))
            }
            BackendOp::FetchKeys(keys) => {
                let records: Vec<(DbKey, Record)> = keys
                    .iter()
                    .filter_map(|&k| store.record_by_key(k).map(|r| (k, r.clone())))
                    .collect();
                Ok(Response::with_records(records, Default::default()))
            }
            BackendOp::Shutdown => unreachable!("handled above"),
        };
        match fault {
            Some(FaultKind::DropReply) => continue,
            Some(FaultKind::DelayReplyMs(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
            }
            _ => {}
        }
        let _ = env.reply.send(Reply { seq: env.seq, result });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abdl::parse::parse_request;
    use abdl::Value;

    fn insert(k: &mut impl Kernel, file: &str, key: i64, extra: &[(&str, Value)]) {
        let mut rec = Record::from_pairs([("FILE", Value::str(file))]);
        rec.set(file.to_owned(), Value::Int(key));
        for (a, v) in extra {
            rec.set((*a).to_owned(), v.clone());
        }
        k.execute(&Request::Insert { record: rec }).unwrap();
    }

    #[test]
    fn retrieve_merges_partitions() {
        let mut c = Controller::new(4);
        c.create_file("f");
        for i in 0..20 {
            insert(&mut c, "f", i, &[("bucket", Value::Int(i % 3))]);
        }
        let resp = c
            .execute(&parse_request("RETRIEVE ((FILE = f) and (bucket = 1)) (*)").unwrap())
            .unwrap();
        assert_eq!(resp.records().len(), 7);
        // Merged responses are sorted by database key.
        let keys: Vec<u64> = resp.records().iter().map(|(k, _)| k.0).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn update_and_delete_report_logical_counts() {
        let mut c = Controller::new(3);
        c.create_file("f");
        for i in 0..12 {
            insert(&mut c, "f", i, &[("x", Value::Int(0))]);
        }
        // With k = 2, twelve records occupy twenty-four replica slots;
        // the affected counts must still be the logical ones.
        let resp = c.execute(&parse_request("UPDATE ((FILE = f) and (f >= 6)) (x = 1)").unwrap());
        assert_eq!(resp.unwrap().affected, 6);
        let resp = c.execute(&parse_request("DELETE ((FILE = f) and (x = 1))").unwrap()).unwrap();
        assert_eq!(resp.affected, 6);
        let rest = c.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert_eq!(rest.records().len(), 6);
    }

    #[test]
    fn aggregates_are_globally_correct() {
        let mut c = Controller::new(4);
        c.create_file("f");
        for i in 0..10 {
            insert(&mut c, "f", i, &[("v", Value::Int(i))]);
        }
        let resp =
            c.execute(&parse_request("RETRIEVE (FILE = f) (COUNT(v), AVG(v), MAX(v))").unwrap());
        let groups = resp.unwrap().groups.unwrap();
        assert_eq!(groups[0].values[0], Value::Int(10));
        // Global AVG = 4.5; a naive per-backend merge could not produce
        // this for uneven partitions — and replicated copies must not
        // count twice.
        assert_eq!(groups[0].values[1], Value::Float(4.5));
        assert_eq!(groups[0].values[2], Value::Int(9));
    }

    #[test]
    fn unique_constraints_enforced_across_partitions() {
        let mut c = Controller::new(4);
        c.create_file("f");
        c.add_unique_constraint("f", vec!["name".into()]);
        insert(&mut c, "f", 1, &[("name", Value::str("a"))]);
        // The duplicate would land on a different backend; the global
        // check must still reject it.
        let mut rec = Record::from_pairs([("FILE", Value::str("f"))]);
        rec.set("f", Value::Int(2));
        rec.set("name", Value::str("a"));
        let err = c.execute(&Request::Insert { record: rec }).unwrap_err();
        assert!(matches!(err, Error::DuplicateKey { .. }));
    }

    #[test]
    fn retrieve_common_joins_across_backends() {
        let mut c = Controller::new(3);
        c.create_file("a");
        c.create_file("b");
        insert(&mut c, "a", 1, &[("j", Value::Int(7)), ("la", Value::str("left"))]);
        insert(&mut c, "b", 1, &[("j", Value::Int(7)), ("lb", Value::str("right"))]);
        insert(&mut c, "b", 2, &[("j", Value::Int(8))]);
        let resp = c
            .execute(
                &parse_request(
                    "RETRIEVE-COMMON ((FILE = a)) (j) COMMON ((FILE = b)) (j) (la, lb)",
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(resp.records().len(), 1);
        assert_eq!(resp.records()[0].1.get("lb"), Some(&Value::str("right")));
    }

    #[test]
    fn results_are_identical_to_single_store() {
        let mut single = Store::new();
        let mut multi = Controller::new(5);
        single.create_file("f");
        multi.create_file("f");
        for i in 0..50 {
            insert(&mut single, "f", i, &[("m", Value::Int(i % 4))]);
            insert(&mut multi, "f", i, &[("m", Value::Int(i % 4))]);
        }
        for q in [
            "RETRIEVE ((FILE = f) and (m = 2)) (f, m)",
            "RETRIEVE ((FILE = f) and (f >= 40)) (*)",
            "RETRIEVE (FILE = f) (COUNT(f)) BY m",
        ] {
            let a = single.execute(&parse_request(q).unwrap()).unwrap();
            let b = multi.execute(&parse_request(q).unwrap()).unwrap();
            assert_eq!(a.records(), b.records(), "records differ for {q}");
            assert_eq!(a.groups, b.groups, "groups differ for {q}");
        }
    }

    #[test]
    fn transactions_execute_sequentially_through_the_controller() {
        let mut c = Controller::new(3);
        c.create_file("f");
        let txn = abdl::parse::parse_transaction(
            "INSERT (<FILE, f>, <f, 1>, <x, 1>);
             INSERT (<FILE, f>, <f, 2>, <x, 1>);
             UPDATE ((FILE = f) and (x = 1)) (x = 2);
             RETRIEVE ((FILE = f) and (x = 2)) (*)",
        )
        .unwrap();
        let responses = c.execute_transaction(&txn).unwrap();
        assert_eq!(responses.len(), 4);
        assert_eq!(responses[2].affected, 2);
        assert_eq!(responses[3].records().len(), 2);
    }

    #[test]
    fn killing_one_backend_loses_nothing_with_replication() {
        let mut c = Controller::new(4);
        c.create_file("f");
        for i in 0..20 {
            insert(&mut c, "f", i, &[]);
        }
        c.kill_backend(2);
        assert_eq!(c.alive_count(), 3);
        let resp = c.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert_eq!(resp.records().len(), 20, "replication keeps every record answerable");
        assert!(!resp.degraded, "one failure with k=2 is not degraded");
        assert_eq!(resp.unavailable_backends, vec![2]);
        // The system still accepts new work.
        insert(&mut c, "f", 100, &[]);
        let resp = c.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert_eq!(resp.records().len(), 21);
    }

    #[test]
    fn unreplicated_loss_is_reported_as_degraded() {
        let mut c = Controller::unreplicated(4);
        c.create_file("f");
        for i in 0..20 {
            insert(&mut c, "f", i, &[]);
        }
        c.kill_backend(2);
        let resp = c.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert_eq!(resp.records().len(), 15, "one quarter of the records is gone");
        assert!(resp.degraded, "the partial answer must be flagged");
        assert_eq!(resp.unavailable_backends, vec![2]);
    }

    #[test]
    fn killing_a_whole_replica_pair_degrades() {
        let mut c = Controller::new(4);
        c.create_file("f");
        for i in 0..20 {
            insert(&mut c, "f", i, &[]);
        }
        // Replica groups are (p, p+1); killing 1 and 2 removes both
        // copies of the records placed on group (1, 2).
        c.kill_backend(1);
        c.kill_backend(2);
        let resp = c.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert!(resp.degraded, "both replicas of some records are dead");
        assert_eq!(resp.unavailable_backends, vec![1, 2]);
        assert!(resp.records().len() < 20);
    }

    #[test]
    fn restart_restores_redundancy() {
        let mut c = Controller::new(4);
        c.create_file("f");
        for i in 0..20 {
            insert(&mut c, "f", i, &[]);
        }
        c.kill_backend(2);
        c.restart_backend(2).unwrap();
        assert_eq!(c.alive_count(), 4);
        let h = c.health();
        assert!(!h.degraded);
        assert!(h.unavailable.is_empty());
        // Full redundancy is back: killing the *neighbor* (which shares
        // replica pairs with 2) now loses nothing.
        c.kill_backend(3);
        let resp = c.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert_eq!(resp.records().len(), 20, "second failure after recovery loses nothing");
        assert!(!resp.degraded);
    }

    #[test]
    fn create_file_failure_is_propagated() {
        let mut c = Controller::new(2);
        c.kill_backend(0);
        c.kill_backend(1);
        assert!(matches!(c.try_create_file("f"), Err(Error::Unavailable(_))));
        // Through the infallible trait surface, the error arrives at
        // the next execute.
        c.create_file("g");
        let err = c
            .execute(&parse_request("RETRIEVE (FILE = g) (*)").unwrap())
            .unwrap_err();
        assert!(matches!(err, Error::Unavailable(_)));
    }

    #[test]
    fn durable_controller_rebuilds_identically_from_the_log() {
        let log = crate::MemLog::new();
        let mut c = Controller::durable_with(4, 2, log.clone()).unwrap();
        c.try_create_file("f").unwrap();
        c.add_unique_constraint("f", vec!["name".into()]);
        for i in 0..20 {
            insert(&mut c, "f", i, &[("x", Value::Int(i % 3))]);
        }
        c.execute(&parse_request("UPDATE ((FILE = f) and (x = 0)) (x = 9)").unwrap()).unwrap();
        c.execute(&parse_request("DELETE ((FILE = f) and (x = 1))").unwrap()).unwrap();
        c.kill_backend(1);
        c.restart_backend(1).unwrap();
        c.kill_backend(3);
        let live = c.state_digest().unwrap();

        let mut r = Controller::recover_with(log).unwrap();
        assert_eq!(r.state_digest().unwrap(), live, "snapshot+WAL rebuild ≡ live state");
        assert_eq!(r.key_high_water(), c.key_high_water());
        assert_eq!(r.alive_count(), c.alive_count());
        for q in [
            "RETRIEVE (FILE = f) (*)",
            "RETRIEVE ((FILE = f) and (x = 9)) (f, x)",
            "RETRIEVE (FILE = f) (COUNT(f)) BY x",
        ] {
            let a = c.execute(&parse_request(q).unwrap()).unwrap();
            let b = r.execute(&parse_request(q).unwrap()).unwrap();
            assert_eq!(a.records(), b.records(), "records differ for {q}");
            assert_eq!(a.groups, b.groups, "groups differ for {q}");
        }
    }

    #[test]
    fn snapshot_compaction_preserves_recovery_and_truncates_the_log() {
        let log = crate::MemLog::new();
        let mut c = Controller::durable_with(3, 2, log.clone()).unwrap();
        c.set_snapshot_every(7);
        c.try_create_file("f").unwrap();
        for i in 0..25 {
            insert(&mut c, "f", i, &[]);
        }
        assert!(log.log_len() < 25, "cadence must have compacted the log");
        let live = c.state_digest().unwrap();
        let mut r = Controller::recover_with(log).unwrap();
        assert_eq!(r.state_digest().unwrap(), live);
    }

    #[test]
    fn public_key_reservations_survive_recovery() {
        let log = crate::MemLog::new();
        let mut c = Controller::durable_with(2, 1, log.clone()).unwrap();
        // Language layers mint entity ids this way; the recovered
        // allocator must not re-issue them.
        let k1 = c.reserve_key();
        let k2 = c.reserve_key();
        assert_eq!(k2.0, k1.0 + 1);
        drop(c);
        let mut r = Controller::recover_with(log).unwrap();
        assert_eq!(r.reserve_key().0, k2.0 + 1);
    }

    #[test]
    fn durable_refuses_an_already_used_log_and_recover_an_empty_one() {
        let log = crate::MemLog::new();
        let c = Controller::durable_with(2, 2, log.clone()).unwrap();
        drop(c);
        assert!(matches!(Controller::durable_with(2, 2, log), Err(Error::Internal(_))));
        assert!(matches!(Controller::recover_with(crate::MemLog::new()), Err(Error::Internal(_))));
    }

    #[test]
    fn crash_fault_is_survived_and_detected() {
        let mut c = Controller::new(3);
        c.set_reply_timeout(Duration::from_millis(100));
        c.create_file("f");
        // Backend 1 crashes on its 5th message.
        c.set_fault_plan(FaultPlan::new().with(1, 5, FaultKind::Crash));
        for i in 0..20 {
            insert(&mut c, "f", i, &[]);
        }
        assert_eq!(c.alive_count(), 2, "the crash was detected");
        let resp = c.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert_eq!(resp.records().len(), 20, "no record was lost to the crash");
    }

    fn insert_req(file: &str, key: i64, extra: &[(&str, Value)]) -> Request {
        let mut rec = Record::from_pairs([("FILE", Value::str(file))]);
        rec.set(file.to_owned(), Value::Int(key));
        for (a, v) in extra {
            rec.set((*a).to_owned(), v.clone());
        }
        Request::Insert { record: rec }
    }

    #[test]
    fn batched_execution_is_equivalent_to_serial_admission_order() {
        let mut serial = Controller::new(4);
        let mut batched = Controller::new(4);
        for c in [&mut serial, &mut batched] {
            c.create_file("f");
            c.add_unique_constraint("f", vec!["f".into()]);
        }
        let requests: Vec<Request> =
            (0..16).map(|i| insert_req("f", i, &[("x", Value::Int(i % 3))])).collect();
        for r in &requests {
            serial.execute(r).unwrap();
        }
        for res in batched.execute_batch(&requests) {
            res.unwrap();
        }
        assert_eq!(batched.unique_index_digest(), serial.unique_index_digest());
        assert_eq!(batched.state_digest().unwrap(), serial.state_digest().unwrap());
        let t = batched.exec_totals();
        assert_eq!(t.batched_requests, 16);
        assert!(t.sched_flights >= 1, "non-conflicting inserts must fly together");
        assert!(t.sched_max_flight >= 2, "a flight holds more than one request");
    }

    #[test]
    fn batch_rejects_a_duplicate_claimed_mid_flight() {
        let mut c = Controller::new(3);
        c.create_file("f");
        c.add_unique_constraint("f", vec!["f".into()]);
        // Keys 0..4 commute; the re-claim of key 2 must stall behind
        // the flight, then lose its unique check once it has landed.
        let mut reqs: Vec<Request> = (0..4).map(|i| insert_req("f", i, &[])).collect();
        reqs.push(insert_req("f", 2, &[]));
        reqs.push(insert_req("f", 9, &[]));
        let results = c.execute_batch(&reqs);
        assert_eq!(results.len(), 6);
        for (i, r) in results.iter().enumerate() {
            if i == 4 {
                assert!(
                    matches!(r, Err(Error::DuplicateKey { .. })),
                    "the later-admitted duplicate must lose"
                );
            } else {
                assert!(r.is_ok(), "request {i} should succeed");
            }
        }
        let t = c.exec_totals();
        assert!(t.conflict_stalls >= 1, "the duplicate had to close the flight");
        let resp = c.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert_eq!(resp.records().len(), 5);
    }

    #[test]
    fn mixed_batch_reads_observe_exactly_the_writes_admitted_before_them() {
        let mut c = Controller::new(3);
        c.create_file("f");
        c.add_unique_constraint("f", vec!["f".into()]);
        let reqs = vec![
            insert_req("f", 1, &[]),
            insert_req("f", 2, &[]),
            parse_request("RETRIEVE (FILE = f) (*)").unwrap(),
            insert_req("f", 3, &[]),
        ];
        let results = c.execute_batch(&reqs);
        let seen = results[2].as_ref().unwrap().records().len();
        assert_eq!(seen, 2, "the read sees the two inserts admitted ahead of it, not the third");
        assert!(results[3].as_ref().is_ok());
    }

    #[test]
    fn batch_wal_appends_group_commit_under_one_sync() {
        let log = crate::MemLog::new();
        let mut c = Controller::durable_with(3, 2, log).unwrap();
        c.try_create_file("f").unwrap();
        let before = c.exec_totals().wal_syncs;
        let reqs: Vec<Request> = (0..8).map(|i| insert_req("f", i, &[])).collect();
        for r in c.execute_batch(&reqs) {
            r.unwrap();
        }
        let t = c.exec_totals();
        assert_eq!(t.wal_syncs - before, 1, "the whole batch pays a single sync");
        assert_eq!(t.wal_max_batch, 8, "all eight appends flushed together");
    }
}
