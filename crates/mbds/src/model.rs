//! An in-tree explicit-state model checker for the epoch-fenced
//! failover protocol.
//!
//! The crash sweeps (`tests/crash_recovery.rs`), the failover sweep
//! (`tests/failover.rs`) and the partition harness
//! (`tests/net_partition.rs`) *sample* the protocol's interleaving
//! space; this module *exhausts* it, up to a bounded depth, over an
//! abstracted primary/standby/backend/log state machine. Every action
//! of the real protocol that can interleave is a small-step transition
//! on a hashable [`State`]:
//!
//! | model action | real code path it abstracts |
//! |---|---|
//! | [`Action::ClientWrite`] | a session submits a request to whichever controller it is connected to (`MldsService` → `Kernel::execute_batch`) |
//! | [`Action::BackendWrite`] | the controller stages the write at the backends; each backend's fence rejects stale epochs (`Controller::execute_flight`, the envelope epoch check in `spawn_backend` / the remote fence in `mbds-backend`) |
//! | [`Action::WalAppend`] | the write's log record is buffered into the open group-commit batch (`Wal::append` with `batch_depth > 0`) |
//! | [`Action::GroupCommitFlush`] | the outermost `commit_batch` flushes the buffer with one sync; the store's fence is checked *atomically* with the append (`LogStore::append_lines_fenced`), and only a successful flush acknowledges the batch to the sessions |
//! | [`Action::SnapshotInstall`] | `Controller::snapshot_now` compacts the log (`LogStore::install_snapshot_fenced`), bumping the store generation |
//! | [`Action::Crash`] | the controller dies; its in-memory buffers (admitted requests, staged writes, the open batch) are lost |
//! | [`Action::Recover`] | `Controller::recover` replays snapshot+log and **fences out every earlier incarnation** by bumping the epoch past everything the store has seen (`Wal::refence`) |
//! | [`Action::ShipSend`] / [`Action::ShipDeliver`] | the standby's `LogCursor` polls the store and applies one shipped record to the mirror (`Standby::poll`); over TCP the poll is a `RemoteLog` pull |
//! | [`Action::ShipDrop`] / [`Action::ShipDup`] | a lost or duplicated pull reply on the ship link (`NetFaultPlan` drop/duplicate); a delayed reply is an in-flight message that other actions simply overtake |
//! | [`Action::ShipResync`] | the cursor notices a snapshot-install generation bump and rebuilds the mirror from the snapshot (`CursorUpdate::Snapshot`) |
//! | [`Action::PromoteFence`] | `Standby::promote`, first half: the final poll consumes every whole durable record, then the store's fence epoch is raised past everything the log has seen |
//! | [`Action::PromoteInstall`] | `Standby::promote`, second half: every backend's fence is raised (shared `AtomicU64` in-process, the `Hello` epoch over TCP) and the warm mirror becomes the serving controller |
//!
//! A breadth-first search over all interleavings (with a visited set
//! over the hashed states) machine-checks two invariants at every
//! state:
//!
//! 1. **Exclusive epoch writer** — no two controllers ever both
//!    perform a fenced write (a WAL append or a backend apply) in the
//!    same epoch, no acceptor ever accepts a write whose epoch its
//!    fence already excludes, and no acceptor's accepted epochs ever
//!    regress. Split brain is any of the three.
//! 2. **Acknowledged writes survive** — every write acknowledged to a
//!    client (group commit flushed) is durable in the store at every
//!    subsequent state, and is part of the promoted controller's state
//!    on every crash+promotion path.
//!
//! On a violation the checker reconstructs and returns the **full
//! action trace** from the initial state. Intentionally broken
//! protocol [`Mutation`]s re-open the historical windows the real code
//! closed — each mutation's counterexample is pinned by
//! `tests/model_check.rs`, and each has a transcribed deterministic
//! regression test against the real `Controller`/`Standby` stack.

use std::collections::hash_map::Entry as MapEntry;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::{Duration, Instant};

/// A client write, identified by issue order. At most
/// [`ModelConfig::writes`] ≤ 16 exist, so sets of writes are `u16`
/// bitmasks.
pub type WriteId = u8;

/// A controller slot: 0 is the initial primary, 1 is the controller a
/// standby promotion installs.
pub type CtrlId = u8;

type Mask = u16;

fn bit(w: WriteId) -> Mask {
    1 << w
}

/// An intentionally broken protocol variant. [`Mutation::None`] is the
/// protocol as shipped; every other variant re-opens a window the real
/// implementation closes, and must produce a counterexample trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// The protocol as implemented (both invariants must hold).
    #[default]
    None,
    /// `execute_batch` acknowledges its writes even when the
    /// group-commit flush was refused by the fence — the pre-fix
    /// behaviour of the controller's batch path (the flush failure was
    /// stashed while the per-request results stayed `Ok`).
    AckDespiteFailedFlush,
    /// The flush checks the fence and lands the batch as two separate
    /// steps — the check-then-act race `LogStore::append_lines_fenced`
    /// exists to close. A promotion between the two steps lets a
    /// demoted primary's records into the new lineage's log.
    RacyFlushFence,
    /// Promotion installs the new controller without raising the store
    /// or backend fences: the demoted primary keeps writing.
    SkipFenceRaiseOnPromote,
    /// Promotion raises the fence but reuses the highest epoch it saw
    /// instead of bumping past it: two controllers share an epoch.
    PromoteWithoutEpochBump,
    /// Cold recovery adopts the store's fence epoch instead of
    /// fencing out its own predecessor — the pre-fix behaviour of
    /// `Controller::recover`: a recovered zombie and a promoted
    /// standby both write the same epoch.
    RecoverWithoutRefence,
    /// Promotion installs the standby's shipped prefix without the
    /// final poll of the durable store — acknowledged writes that
    /// shipped late are missing from the promoted state (the
    /// async-replication caveat a remote standby must respect).
    PromoteSkipsFinalPoll,
}

impl Mutation {
    /// All mutations, for sweep harnesses.
    pub const ALL: [Mutation; 6] = [
        Mutation::AckDespiteFailedFlush,
        Mutation::RacyFlushFence,
        Mutation::SkipFenceRaiseOnPromote,
        Mutation::PromoteWithoutEpochBump,
        Mutation::RecoverWithoutRefence,
        Mutation::PromoteSkipsFinalPoll,
    ];

    /// Parse a mutation name as accepted by the `mbds-model` binary.
    pub fn parse(name: &str) -> Option<Mutation> {
        Some(match name {
            "none" => Mutation::None,
            "ack-despite-failed-flush" => Mutation::AckDespiteFailedFlush,
            "racy-flush-fence" => Mutation::RacyFlushFence,
            "skip-fence-raise" => Mutation::SkipFenceRaiseOnPromote,
            "promote-without-epoch-bump" => Mutation::PromoteWithoutEpochBump,
            "recover-without-refence" => Mutation::RecoverWithoutRefence,
            "promote-skips-final-poll" => Mutation::PromoteSkipsFinalPoll,
            _ => return None,
        })
    }

    /// The name [`Mutation::parse`] accepts for this mutation.
    pub fn name(&self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::AckDespiteFailedFlush => "ack-despite-failed-flush",
            Mutation::RacyFlushFence => "racy-flush-fence",
            Mutation::SkipFenceRaiseOnPromote => "skip-fence-raise",
            Mutation::PromoteWithoutEpochBump => "promote-without-epoch-bump",
            Mutation::RecoverWithoutRefence => "recover-without-refence",
            Mutation::PromoteSkipsFinalPoll => "promote-skips-final-poll",
        }
    }
}

/// Bounds and protocol variant for one exhaustive check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Backend count (each with its own fence).
    pub backends: u8,
    /// Client writes available to issue (≤ 16).
    pub writes: u8,
    /// BFS depth bound (actions along any explored path).
    pub depth: u32,
    /// Controller crashes allowed along any path.
    pub max_crashes: u8,
    /// Snapshot installs allowed along any path.
    pub max_snapshots: u8,
    /// Safety valve: stop exploring past this many distinct states
    /// (0 = unbounded). The CI config never hits it.
    pub max_states: usize,
    /// The protocol variant to check.
    pub mutation: Mutation,
}

impl ModelConfig {
    /// The CI configuration named by the roadmap: 1 primary, 1
    /// standby, 2 backends, 4 pending writes, depth 13 — exhausted in
    /// seconds, > 10⁴ distinct states.
    pub fn small() -> ModelConfig {
        ModelConfig {
            backends: 2,
            writes: 4,
            depth: 13,
            max_crashes: 1,
            max_snapshots: 1,
            max_states: 0,
            mutation: Mutation::None,
        }
    }

    /// The small configuration with `mutation` applied.
    pub fn with_mutation(mutation: Mutation) -> ModelConfig {
        ModelConfig { mutation, ..ModelConfig::small() }
    }
}

/// One small-step protocol action (see the module table for the real
/// code path each abstracts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// A client submits the next write to controller `to`.
    ClientWrite {
        /// The controller the session is connected to.
        to: CtrlId,
    },
    /// Controller `c` applies its oldest admitted write at the
    /// backends (each backend's fence may reject it).
    BackendWrite {
        /// The writing controller.
        c: CtrlId,
    },
    /// Controller `c` buffers its oldest backend-applied write into
    /// the open group-commit batch.
    WalAppend {
        /// The writing controller.
        c: CtrlId,
    },
    /// Controller `c` flushes the open batch durably (fence-checked
    /// atomically at the store) and acknowledges it.
    GroupCommitFlush {
        /// The flushing controller.
        c: CtrlId,
    },
    /// [`Mutation::RacyFlushFence`] only: the separated fence check.
    FlushCheck {
        /// The flushing controller.
        c: CtrlId,
    },
    /// [`Mutation::RacyFlushFence`] only: the separated landing.
    FlushLand {
        /// The flushing controller.
        c: CtrlId,
    },
    /// Controller `c` compacts the log into a snapshot.
    SnapshotInstall {
        /// The compacting controller.
        c: CtrlId,
    },
    /// Controller `c` crashes, losing all in-memory buffers.
    Crash {
        /// The crashing controller.
        c: CtrlId,
    },
    /// Controller `c` cold-recovers from the store.
    Recover {
        /// The recovering controller.
        c: CtrlId,
    },
    /// The ship link picks up the next durable log record.
    ShipSend,
    /// The in-flight ship message reaches the standby and is applied
    /// (stale messages are ignored by the cursor's sequence check).
    ShipDeliver,
    /// The in-flight ship message is delivered *and stays in flight*
    /// — a duplicated frame; the copy must be ignored later.
    ShipDup,
    /// The in-flight ship message is lost; the pull protocol re-sends.
    ShipDrop,
    /// The standby notices a snapshot-install generation bump and
    /// rebuilds its mirror from the snapshot.
    ShipResync,
    /// Promotion, first half: final poll + store fence raise.
    PromoteFence,
    /// Promotion, second half: backend fence raise + controller
    /// install.
    PromoteInstall,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::ClientWrite { to } => write!(f, "client-write → ctrl{to}"),
            Action::BackendWrite { c } => write!(f, "ctrl{c}: backend-write"),
            Action::WalAppend { c } => write!(f, "ctrl{c}: wal-append"),
            Action::GroupCommitFlush { c } => write!(f, "ctrl{c}: group-commit-flush"),
            Action::FlushCheck { c } => write!(f, "ctrl{c}: flush-fence-check"),
            Action::FlushLand { c } => write!(f, "ctrl{c}: flush-land"),
            Action::SnapshotInstall { c } => write!(f, "ctrl{c}: snapshot-install"),
            Action::Crash { c } => write!(f, "ctrl{c}: crash"),
            Action::Recover { c } => write!(f, "ctrl{c}: recover"),
            Action::ShipSend => write!(f, "ship: send"),
            Action::ShipDeliver => write!(f, "ship: deliver"),
            Action::ShipDup => write!(f, "ship: deliver+duplicate"),
            Action::ShipDrop => write!(f, "ship: drop"),
            Action::ShipResync => write!(f, "ship: snapshot-resync"),
            Action::PromoteFence => write!(f, "standby: promote (poll + fence raise)"),
            Action::PromoteInstall => write!(f, "standby: promote (install controller)"),
        }
    }
}

/// Why a state is inconsistent. The first two variants are invariant
/// 1 (exclusive epoch writer / no split brain); the last two are
/// invariant 2 (acknowledged writes survive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// Two distinct controllers both performed a fenced write stamped
    /// with the same epoch.
    EpochSharedByTwoWriters {
        /// The shared epoch.
        epoch: u8,
    },
    /// An acceptor (the store, or backend `acceptor`) accepted a write
    /// whose epoch its fence already excluded, or an epoch below one
    /// it had already accepted.
    FencedWriteAccepted {
        /// `u8::MAX` for the store, else the backend index.
        acceptor: u8,
        /// The stale epoch that landed.
        epoch: u8,
        /// The fence (or highest accepted epoch) that should have
        /// excluded it.
        fence: u8,
    },
    /// An acknowledged write is no longer durable in the store.
    AckedWriteNotDurable {
        /// The lost write.
        w: WriteId,
    },
    /// A crash+promotion path installed a controller missing an
    /// acknowledged write.
    AckedWriteLostAtPromotion {
        /// The lost write.
        w: WriteId,
    },
}

impl Violation {
    /// Which of the two checked invariants this violates (1-based).
    pub fn invariant(&self) -> u8 {
        match self {
            Violation::EpochSharedByTwoWriters { .. }
            | Violation::FencedWriteAccepted { .. } => 1,
            Violation::AckedWriteNotDurable { .. }
            | Violation::AckedWriteLostAtPromotion { .. } => 2,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::EpochSharedByTwoWriters { epoch } => {
                write!(f, "invariant 1: two controllers both wrote in epoch {epoch}")
            }
            Violation::FencedWriteAccepted { acceptor, epoch, fence } => {
                let who = if *acceptor == u8::MAX {
                    "the log store".to_owned()
                } else {
                    format!("backend {acceptor}")
                };
                write!(f, "invariant 1: {who} accepted epoch {epoch} past fence/high-water {fence}")
            }
            Violation::AckedWriteNotDurable { w } => {
                write!(f, "invariant 2: acknowledged write {w} is not durable in the store")
            }
            Violation::AckedWriteLostAtPromotion { w } => {
                write!(f, "invariant 2: acknowledged write {w} missing from the promoted controller")
            }
        }
    }
}

/// One controller slot's abstract state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Ctrl {
    /// False for slot 1 before a promotion installs it.
    live: bool,
    crashed: bool,
    epoch: u8,
    /// Admitted client writes, not yet at the backends.
    inbox: Vec<WriteId>,
    /// Backend-applied writes, not yet in the WAL batch.
    staged: Vec<WriteId>,
    /// The open group-commit batch.
    batch: Vec<WriteId>,
    /// [`Mutation::RacyFlushFence`]: the fence check passed, the
    /// landing has not happened yet.
    flush_checked: bool,
    /// Writes the controller's state contains (what a client reading
    /// through it would see); the promoted controller starts from the
    /// standby's view.
    view: Mask,
}

impl Ctrl {
    fn fresh(live: bool) -> Ctrl {
        Ctrl {
            live,
            crashed: false,
            epoch: 0,
            inbox: Vec::new(),
            staged: Vec::new(),
            batch: Vec::new(),
            flush_checked: false,
            view: 0,
        }
    }

    fn active(&self) -> bool {
        self.live && !self.crashed
    }
}

/// One durable log entry: which write, stamped with whose epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct LogEntryS {
    w: WriteId,
    epoch: u8,
    writer: CtrlId,
}

/// The shared durable store (`LogStore`): fence, snapshot, log.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StoreS {
    fence: u8,
    generation: u8,
    /// Writes compacted into the snapshot.
    snap: Mask,
    log: Vec<LogEntryS>,
    /// Highest epoch ever accepted (monotonicity check).
    max_epoch: u8,
}

impl StoreS {
    fn durable(&self) -> Mask {
        self.log.iter().fold(self.snap, |m, e| m | bit(e.w))
    }
}

/// One backend's fence (contents are rebuilt from the log, so only
/// the fencing state matters to the invariants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BackendS {
    fence: u8,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum StandbyPhase {
    Tailing,
    /// PromoteFence done: the fence is up, the controller install is
    /// still pending (the window [`Mutation::SkipFenceRaiseOnPromote`]
    /// attacks). `acked` snapshots the acknowledged set at the fence
    /// point — writes acknowledged *after* it belong to a superseding
    /// lineage (a cold recovery that re-fenced past this promotion)
    /// and stay covered by the durability half of invariant 2.
    Fenced { epoch: u8, view: Mask, acked: Mask },
    Promoted,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct StandbyS {
    generation: u8,
    /// Log records applied to the mirror (within `generation`).
    shipped: u8,
    mirror: Mask,
    phase: StandbyPhase,
}

/// A ship-link message in flight: one log record, tagged with the
/// store generation and log index it was read at (the cursor's
/// sequence check in miniature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ShipMsg {
    generation: u8,
    idx: u8,
    w: WriteId,
}

/// One abstract protocol state — hashable, so BFS dedupes on it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    ctrls: [Ctrl; 2],
    store: StoreS,
    backends: Vec<BackendS>,
    standby: StandbyS,
    inflight: Option<ShipMsg>,
    /// Writes acknowledged to clients.
    acked: Mask,
    next_write: u8,
    crashes: u8,
    snapshots: u8,
    /// Which controller has written in which epoch — the exclusive
    /// epoch writer ledger (sorted, deduped; tiny).
    claims: Vec<(u8, CtrlId)>,
}

impl State {
    fn initial(cfg: &ModelConfig) -> State {
        State {
            ctrls: [Ctrl::fresh(true), Ctrl::fresh(false)],
            store: StoreS { fence: 0, generation: 0, snap: 0, log: Vec::new(), max_epoch: 0 },
            backends: vec![BackendS { fence: 0 }; cfg.backends as usize],
            standby: StandbyS {
                generation: 0,
                shipped: 0,
                mirror: 0,
                phase: StandbyPhase::Tailing,
            },
            inflight: None,
            acked: 0,
            next_write: 0,
            crashes: 0,
            snapshots: 0,
            claims: Vec::new(),
        }
    }

    /// Record that `writer` performed a fenced write in `epoch`.
    fn claim(&mut self, epoch: u8, writer: CtrlId) -> Result<(), Violation> {
        match self.claims.binary_search(&(epoch, writer)) {
            Ok(_) => Ok(()),
            Err(pos) => {
                if self.claims.iter().any(|&(e, w)| e == epoch && w != writer) {
                    return Err(Violation::EpochSharedByTwoWriters { epoch });
                }
                self.claims.insert(pos, (epoch, writer));
                Ok(())
            }
        }
    }

    /// The acknowledged-durability half of invariant 2, checked at
    /// every state.
    fn check(&self) -> Result<(), Violation> {
        let durable = self.store.durable();
        let lost = self.acked & !durable;
        if lost != 0 {
            return Err(Violation::AckedWriteNotDurable { w: lost.trailing_zeros() as u8 });
        }
        Ok(())
    }
}

/// The counterexample a failed check returns: the violated invariant
/// and the full action trace from the initial state.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// What broke.
    pub violation: Violation,
    /// Every action from the initial state to the violating one.
    pub trace: Vec<Action>,
}

impl Counterexample {
    /// The trace rendered one action per line, violation last — the
    /// artifact CI uploads.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, action) in self.trace.iter().enumerate() {
            out.push_str(&format!("{:>3}. {action}\n", i + 1));
        }
        out.push_str(&format!("  ⇒ VIOLATION: {}\n", self.violation));
        out
    }
}

/// What one exhaustive check explored.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The configuration checked.
    pub config: ModelConfig,
    /// Distinct states visited.
    pub states: usize,
    /// Transitions taken (successor computations).
    pub transitions: u64,
    /// Deepest level reached (≤ `config.depth`).
    pub max_depth: u32,
    /// Peak BFS frontier length.
    pub frontier_peak: usize,
    /// Wall-clock time of the search.
    pub elapsed: Duration,
    /// True when the depth bound pruned unexplored successors (the
    /// search was exhaustive *up to the bound* either way).
    pub depth_pruned: bool,
    /// The first violation found (BFS ⇒ a shortest trace), if any.
    pub counterexample: Option<Counterexample>,
}

impl CheckReport {
    /// One summary line for logs and experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "mutation={} states={} transitions={} depth={} elapsed={:?} verdict={}",
            self.config.mutation.name(),
            self.states,
            self.transitions,
            self.max_depth,
            self.elapsed,
            match &self.counterexample {
                None => "no violation".to_owned(),
                Some(ce) => format!("VIOLATION ({}) at depth {}", ce.violation, ce.trace.len()),
            }
        )
    }
}

/// Enumerate every action enabled in `s`.
fn enabled(s: &State, cfg: &ModelConfig) -> Vec<Action> {
    let mut out = Vec::with_capacity(16);
    for c in 0..2u8 {
        let ctrl = &s.ctrls[c as usize];
        if ctrl.active() {
            if s.next_write < cfg.writes {
                out.push(Action::ClientWrite { to: c });
            }
            if !ctrl.inbox.is_empty() {
                out.push(Action::BackendWrite { c });
            }
            if !ctrl.staged.is_empty() {
                out.push(Action::WalAppend { c });
            }
            if !ctrl.batch.is_empty() {
                if cfg.mutation == Mutation::RacyFlushFence {
                    if ctrl.flush_checked {
                        out.push(Action::FlushLand { c });
                    } else {
                        out.push(Action::FlushCheck { c });
                    }
                } else {
                    out.push(Action::GroupCommitFlush { c });
                }
            }
            if s.snapshots < cfg.max_snapshots
                && !s.store.log.is_empty()
                && s.store.fence <= ctrl.epoch
            {
                out.push(Action::SnapshotInstall { c });
            }
            if s.crashes < cfg.max_crashes {
                out.push(Action::Crash { c });
            }
        }
        if ctrl.live && ctrl.crashed {
            out.push(Action::Recover { c });
        }
    }
    match &s.standby.phase {
        StandbyPhase::Tailing => {
            if s.standby.generation != s.store.generation {
                out.push(Action::ShipResync);
            } else if s.inflight.is_none()
                && (s.standby.shipped as usize) < s.store.log.len()
            {
                out.push(Action::ShipSend);
            }
            if s.inflight.is_some() {
                out.push(Action::ShipDeliver);
                out.push(Action::ShipDup);
                out.push(Action::ShipDrop);
            }
            if !s.ctrls[1].live {
                out.push(Action::PromoteFence);
            }
        }
        StandbyPhase::Fenced { .. } => out.push(Action::PromoteInstall),
        StandbyPhase::Promoted => {}
    }
    out
}

/// Apply `a` to a copy of `s`; `Err` is an invariant violation *at
/// this transition* (state-level checks run separately).
fn apply(s: &State, a: Action, cfg: &ModelConfig) -> Result<State, Violation> {
    let mut n = s.clone();
    match a {
        Action::ClientWrite { to } => {
            n.ctrls[to as usize].inbox.push(n.next_write);
            n.next_write += 1;
        }
        Action::BackendWrite { c } => {
            let epoch = n.ctrls[c as usize].epoch;
            let w = n.ctrls[c as usize].inbox.remove(0);
            let mut accepted = false;
            for b in 0..n.backends.len() {
                if n.backends[b].fence > epoch {
                    continue; // fenced out: the backend rejects the envelope
                }
                n.claim(epoch, c)?;
                accepted = true;
            }
            if accepted {
                n.ctrls[c as usize].staged.push(w);
                n.ctrls[c as usize].view |= bit(w);
            }
            // No backend accepted: the write fails, the client sees an
            // error, nothing to track.
        }
        Action::WalAppend { c } => {
            let w = n.ctrls[c as usize].staged.remove(0);
            n.ctrls[c as usize].batch.push(w);
        }
        Action::GroupCommitFlush { c } => {
            let epoch = n.ctrls[c as usize].epoch;
            let batch = std::mem::take(&mut n.ctrls[c as usize].batch);
            if n.store.fence > epoch {
                // Atomic fence refusal: the batch is lost, the client
                // sees an error — unless the mutation acks anyway.
                if cfg.mutation == Mutation::AckDespiteFailedFlush {
                    for w in batch {
                        n.acked |= bit(w);
                    }
                }
            } else {
                land_batch(&mut n, c, epoch, &batch)?;
            }
        }
        Action::FlushCheck { c } => {
            let epoch = n.ctrls[c as usize].epoch;
            if n.store.fence > epoch {
                n.ctrls[c as usize].batch.clear();
            } else {
                n.ctrls[c as usize].flush_checked = true;
            }
        }
        Action::FlushLand { c } => {
            let epoch = n.ctrls[c as usize].epoch;
            let batch = std::mem::take(&mut n.ctrls[c as usize].batch);
            n.ctrls[c as usize].flush_checked = false;
            if n.store.fence > epoch {
                // The race: the fence rose between check and land, but
                // the landing is unconditional — the stale records
                // reach the store.
                return Err(Violation::FencedWriteAccepted {
                    acceptor: u8::MAX,
                    epoch,
                    fence: n.store.fence,
                });
            }
            land_batch(&mut n, c, epoch, &batch)?;
        }
        Action::SnapshotInstall { c } => {
            debug_assert!(n.store.fence <= n.ctrls[c as usize].epoch);
            n.store.snap = n.store.durable();
            n.store.log.clear();
            n.store.generation += 1;
            n.snapshots += 1;
        }
        Action::Crash { c } => {
            let ctrl = &mut n.ctrls[c as usize];
            ctrl.crashed = true;
            ctrl.inbox.clear();
            ctrl.staged.clear();
            ctrl.batch.clear();
            ctrl.flush_checked = false;
            n.crashes += 1;
        }
        Action::Recover { c } => {
            let seen = n.store.max_epoch.max(n.store.fence);
            let epoch = if cfg.mutation == Mutation::RecoverWithoutRefence {
                seen
            } else {
                // The fix the checker forced: every incarnation gets a
                // fresh epoch and fences out its predecessors.
                let e = seen + 1;
                n.store.fence = n.store.fence.max(e);
                e
            };
            let ctrl = &mut n.ctrls[c as usize];
            ctrl.crashed = false;
            ctrl.epoch = epoch;
            ctrl.view = n.store.durable();
        }
        Action::ShipSend => {
            let idx = n.standby.shipped;
            let entry = n.store.log[idx as usize];
            n.inflight =
                Some(ShipMsg { generation: n.store.generation, idx, w: entry.w });
        }
        Action::ShipDeliver | Action::ShipDup => {
            let msg = n.inflight.expect("enabled only with an in-flight message");
            if a == Action::ShipDeliver {
                n.inflight = None;
            }
            // The cursor's generation + sequence check: stale or
            // duplicated messages are ignored.
            if msg.generation == n.store.generation
                && msg.generation == n.standby.generation
                && msg.idx == n.standby.shipped
            {
                n.standby.mirror |= bit(msg.w);
                n.standby.shipped += 1;
            }
        }
        Action::ShipDrop => {
            n.inflight = None;
        }
        Action::ShipResync => {
            n.standby.generation = n.store.generation;
            n.standby.shipped = 0;
            n.standby.mirror = n.store.snap;
        }
        Action::PromoteFence => {
            let view = if cfg.mutation == Mutation::PromoteSkipsFinalPoll {
                n.standby.mirror
            } else {
                // The final poll: promote consumes every whole durable
                // record before the fence rises.
                n.store.durable()
            };
            let seen = n.store.max_epoch.max(n.store.fence);
            let epoch = if cfg.mutation == Mutation::PromoteWithoutEpochBump {
                seen
            } else {
                seen + 1
            };
            if cfg.mutation != Mutation::SkipFenceRaiseOnPromote {
                n.store.fence = n.store.fence.max(epoch);
            }
            n.standby.phase = StandbyPhase::Fenced { epoch, view, acked: n.acked };
        }
        Action::PromoteInstall => {
            let StandbyPhase::Fenced { epoch, view, acked } = n.standby.phase else {
                unreachable!("enabled only in the fenced phase");
            };
            // Invariant 2, promotion half: every write acknowledged at
            // the fence point must be part of the promoted
            // controller's state.
            let lost = acked & !view;
            if lost != 0 {
                return Err(Violation::AckedWriteLostAtPromotion {
                    w: lost.trailing_zeros() as u8,
                });
            }
            if cfg.mutation != Mutation::SkipFenceRaiseOnPromote {
                for b in &mut n.backends {
                    b.fence = b.fence.max(epoch);
                }
            }
            let ctrl = &mut n.ctrls[1];
            *ctrl = Ctrl::fresh(true);
            ctrl.epoch = epoch;
            ctrl.view = view;
            n.standby.phase = StandbyPhase::Promoted;
        }
    }
    Ok(n)
}

/// Land a flushed batch in the store: the fence has been checked (or
/// deliberately not, under the racy mutation) — what remains is the
/// monotonicity check, the writer ledger, and the acknowledgement.
fn land_batch(n: &mut State, c: CtrlId, epoch: u8, batch: &[WriteId]) -> Result<(), Violation> {
    for &w in batch {
        if epoch < n.store.max_epoch {
            return Err(Violation::FencedWriteAccepted {
                acceptor: u8::MAX,
                epoch,
                fence: n.store.max_epoch,
            });
        }
        n.claim(epoch, c)?;
        n.store.log.push(LogEntryS { w, epoch, writer: c });
        n.store.max_epoch = n.store.max_epoch.max(epoch);
        // Ack strictly after the durable append — the discipline
        // `execute_batch` enforces since the checker forced it.
        n.acked |= bit(w);
    }
    Ok(())
}

/// Exhaustive breadth-first check of `cfg`. Returns the exploration
/// statistics and, when an invariant fails, the shortest violating
/// action trace.
pub fn check(cfg: &ModelConfig) -> CheckReport {
    let start = Instant::now();
    let initial = State::initial(cfg);
    // id → (parent id, action that produced it); trace reconstruction
    // walks this without keeping parent states alive.
    let mut meta: Vec<(u32, Option<Action>)> = vec![(0, None)];
    let mut visited: HashMap<State, u32> = HashMap::new();
    visited.insert(initial.clone(), 0);
    let mut frontier: VecDeque<(State, u32, u32)> = VecDeque::new();
    frontier.push_back((initial, 0, 0));
    let mut transitions = 0u64;
    let mut max_depth = 0u32;
    let mut frontier_peak = 1usize;
    let mut depth_pruned = false;

    let trace_of = |meta: &Vec<(u32, Option<Action>)>, mut id: u32| -> Vec<Action> {
        let mut trace = Vec::new();
        while let (parent, Some(action)) = meta[id as usize] {
            trace.push(action);
            id = parent;
        }
        trace.reverse();
        trace
    };

    while let Some((state, id, depth)) = frontier.pop_front() {
        if depth >= cfg.depth {
            depth_pruned = true;
            continue;
        }
        for action in enabled(&state, cfg) {
            transitions += 1;
            let next = match apply(&state, action, cfg) {
                Ok(next) => next,
                Err(violation) => {
                    let mut trace = trace_of(&meta, id);
                    trace.push(action);
                    return CheckReport {
                        config: *cfg,
                        states: visited.len(),
                        transitions,
                        max_depth: max_depth.max(depth + 1),
                        frontier_peak,
                        elapsed: start.elapsed(),
                        depth_pruned,
                        counterexample: Some(Counterexample { violation, trace }),
                    };
                }
            };
            if let Err(violation) = next.check() {
                let mut trace = trace_of(&meta, id);
                trace.push(action);
                return CheckReport {
                    config: *cfg,
                    states: visited.len(),
                    transitions,
                    max_depth: max_depth.max(depth + 1),
                    frontier_peak,
                    elapsed: start.elapsed(),
                    depth_pruned,
                    counterexample: Some(Counterexample { violation, trace }),
                };
            }
            match visited.entry(next) {
                MapEntry::Occupied(_) => {}
                MapEntry::Vacant(slot) => {
                    let next_id = meta.len() as u32;
                    meta.push((id, Some(action)));
                    let state = slot.key().clone();
                    slot.insert(next_id);
                    max_depth = max_depth.max(depth + 1);
                    frontier.push_back((state, next_id, depth + 1));
                    frontier_peak = frontier_peak.max(frontier.len());
                }
            }
        }
        if cfg.max_states > 0 && visited.len() >= cfg.max_states {
            break;
        }
    }

    CheckReport {
        config: *cfg,
        states: visited.len(),
        transitions,
        max_depth,
        frontier_peak,
        elapsed: start.elapsed(),
        depth_pruned,
        counterexample: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mutation: Mutation, depth: u32) -> CheckReport {
        check(&ModelConfig {
            depth,
            ..ModelConfig::with_mutation(mutation)
        })
    }

    #[test]
    fn shallow_run_has_no_violation_and_dedupes_states() {
        let report = quick(Mutation::None, 8);
        assert!(report.counterexample.is_none(), "{}", report.summary());
        assert!(report.states > 500, "too few states: {}", report.summary());
        assert!(report.transitions > report.states as u64, "BFS must revisit states");
    }

    #[test]
    fn every_mutation_is_caught_at_shallow_depth() {
        for mutation in Mutation::ALL {
            let report = quick(mutation, 12);
            let ce = report
                .counterexample
                .unwrap_or_else(|| panic!("{} produced no counterexample", mutation.name()));
            assert!(!ce.trace.is_empty());
            let expected = match mutation {
                Mutation::AckDespiteFailedFlush | Mutation::PromoteSkipsFinalPoll => 2,
                _ => 1,
            };
            assert_eq!(
                ce.violation.invariant(),
                expected,
                "{}: wrong invariant: {}",
                mutation.name(),
                ce.violation
            );
        }
    }

    #[test]
    fn counterexample_renders_the_full_trace() {
        let report = quick(Mutation::SkipFenceRaiseOnPromote, 12);
        let ce = report.counterexample.expect("counterexample");
        let text = ce.render();
        assert!(text.contains("VIOLATION"));
        assert!(text.lines().count() == ce.trace.len() + 1);
    }

    #[test]
    fn bfs_finds_a_shortest_trace() {
        // The ack-despite-failed-flush window needs at least: write →
        // backend-write → wal-append → promote(fence) → flush. BFS
        // must find it at exactly that depth, not deeper.
        let report = quick(Mutation::AckDespiteFailedFlush, 12);
        let ce = report.counterexample.expect("counterexample");
        assert!(
            ce.trace.len() <= 6,
            "expected a minimal trace, got {} actions:\n{}",
            ce.trace.len(),
            ce.render()
        );
    }

    #[test]
    fn mutation_names_round_trip() {
        for mutation in Mutation::ALL.iter().chain([Mutation::None].iter()) {
            assert_eq!(Mutation::parse(mutation.name()), Some(*mutation));
        }
        assert_eq!(Mutation::parse("no-such-mutation"), None);
    }
}

// ===========================================================================
// Flight scheduling model: overlapped reads vs. write waves.
// ===========================================================================

/// Bounded model check of the *flight scheduler* (`Controller::
/// execute_batch` + the staged read/insert pipeline): two reader
/// sessions and one writer batch interleaving at the stores.
///
/// The abstraction keeps exactly what the torn-batch argument depends
/// on and nothing else:
///
/// - `writes` records `r_0 .. r_{W-1}`, each replicated on two of
///   `backends` stores (record `w` lives on backends `w % B` and
///   `(w+1) % B`, the same round-robin-with-replication placement the
///   directory produces).
/// - One writer batch deletes the records in admission order. Each
///   delete is **two wave envelopes** — one per replica — modelled as
///   independent actions, because that is precisely where a torn
///   observation can come from: a reader that union-merges across
///   backends between the two envelope applications resurrects the
///   half-deleted record.
/// - Two reader sessions admitted at position `read_after` (after the
///   first `read_after` writes, before the rest). Each reader probes
///   every backend with an independent envelope action and
///   union-merges what the probes returned, exactly like a staged
///   broadcast read.
///
/// The protocol rule under test is the scheduler's conflict stall:
/// a read stages only after every envelope of every *earlier-admitted*
/// conflicting write has drained, and *later-admitted* writes stage
/// only after the read's probes all returned. Within those fences the
/// two readers overlap freely — the checker reports that overlap as
/// reachable, which is the liveness half of the story (the fences do
/// not accidentally serialise read against read).
///
/// Invariant (checked whenever a reader completes): the set of records
/// the reader observed as deleted is **exactly the admission prefix**
/// `{r_0 .. r_{read_after-1}}` — never a half-applied write (torn
/// batch), never a write admitted after the read.
pub mod flight {
    use std::collections::hash_map::Entry as MapEntry;
    use std::collections::{HashMap, VecDeque};
    use std::fmt;
    use std::time::{Duration, Instant};

    /// Protocol mutations: each deletes one fence the real scheduler
    /// enforces, and each must produce a counterexample.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum FlightMutation {
        /// The shipped protocol, unmodified.
        None,
        /// Readers stage without waiting for earlier-admitted
        /// conflicting writes to drain — probes interleave with the
        /// per-replica delete waves.
        OverlapConflictingRead,
        /// Writes admitted *after* the readers stage their waves
        /// before the readers' probes have all returned.
        ReorderAheadOfWrites,
    }

    impl FlightMutation {
        /// Every mutation in the catalogue (excluding `None`).
        pub const ALL: [FlightMutation; 2] = [
            FlightMutation::OverlapConflictingRead,
            FlightMutation::ReorderAheadOfWrites,
        ];

        /// Stable identifier, e.g. for a CLI flag.
        pub fn name(self) -> &'static str {
            match self {
                FlightMutation::None => "none",
                FlightMutation::OverlapConflictingRead => "overlap-conflicting-read",
                FlightMutation::ReorderAheadOfWrites => "reorder-ahead-of-writes",
            }
        }

        /// Inverse of [`FlightMutation::name`].
        pub fn parse(s: &str) -> Option<FlightMutation> {
            FlightMutation::ALL
                .iter()
                .chain([FlightMutation::None].iter())
                .copied()
                .find(|m| m.name() == s)
        }
    }

    /// Checker configuration. `small()` exhausts in well under a
    /// second and is what CI pins.
    #[derive(Clone, Copy, Debug)]
    pub struct FlightConfig {
        /// Number of backend stores (each record lives on two).
        pub backends: u8,
        /// Writer batch size; records are deleted in admission order.
        pub writes: u8,
        /// Readers are admitted after this many writes.
        pub read_after: u8,
        /// Number of overlapping reader sessions.
        pub readers: u8,
        /// Protocol mutation under test.
        pub mutation: FlightMutation,
    }

    impl FlightConfig {
        /// The CI configuration: exhausts in microseconds.
        pub fn small() -> FlightConfig {
            FlightConfig {
                backends: 3,
                writes: 3,
                read_after: 1,
                readers: 2,
                mutation: FlightMutation::None,
            }
        }

        /// `small()` with one fence deleted.
        pub fn with_mutation(mutation: FlightMutation) -> FlightConfig {
            FlightConfig { mutation, ..FlightConfig::small() }
        }
    }

    /// One atomic step of the interleaving.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum FlightAction {
        /// Apply write `w`'s delete envelope at replica `replica`
        /// (0 = primary copy, 1 = secondary copy).
        WriteWave {
            /// Which write of the batch.
            w: u8,
            /// Which of its two replicas (0 = primary, 1 = secondary).
            replica: u8,
        },
        /// Reader `reader`'s probe envelope returns from `backend`.
        Probe {
            /// Which reader session.
            reader: u8,
            /// Which backend the probe envelope returned from.
            backend: u8,
        },
    }

    impl fmt::Display for FlightAction {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                FlightAction::WriteWave { w, replica } => {
                    write!(f, "write-wave(r{w} replica {replica})")
                }
                FlightAction::Probe { reader, backend } => {
                    write!(f, "probe(reader {reader} <- backend {backend})")
                }
            }
        }
    }

    /// The invariant violation a counterexample demonstrates.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct TornRead {
        /// Which reader observed the tear.
        pub reader: u8,
        /// Records the reader observed as deleted.
        pub observed_deleted: Vec<u8>,
        /// The admission prefix it should have observed.
        pub expected_deleted: Vec<u8>,
    }

    impl fmt::Display for TornRead {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "reader {} observed deleted set {:?}, expected exact admission prefix {:?}",
                self.reader, self.observed_deleted, self.expected_deleted
            )
        }
    }

    /// A violating interleaving: the invariant broken plus the exact
    /// action sequence (shortest, by BFS) that reaches it.
    #[derive(Clone, Debug)]
    pub struct FlightCounterexample {
        /// The invariant that broke.
        pub violation: TornRead,
        /// The shortest action sequence reaching the violation.
        pub trace: Vec<FlightAction>,
    }

    impl FlightCounterexample {
        /// The numbered action trace plus the violated invariant.
        pub fn render(&self) -> String {
            let mut out = String::new();
            for (i, action) in self.trace.iter().enumerate() {
                out.push_str(&format!("{:>3}. {}\n", i + 1, action));
            }
            out.push_str(&format!("VIOLATION: {}", self.violation));
            out
        }
    }

    /// What an exhaustive run found.
    #[derive(Clone, Debug)]
    pub struct FlightReport {
        /// The configuration that was checked.
        pub config: FlightConfig,
        /// Distinct states visited.
        pub states: usize,
        /// Transitions explored (states are revisited via BFS dedupe).
        pub transitions: u64,
        /// True iff the checker reached a state where two readers were
        /// simultaneously mid-probe — i.e. the fences leave read–read
        /// overlap genuinely reachable.
        pub overlap_reached: bool,
        /// Wall-clock time of the exhaustive search.
        pub elapsed: Duration,
        /// `Some` iff some interleaving violated the prefix invariant.
        pub counterexample: Option<FlightCounterexample>,
    }

    impl FlightReport {
        /// One-line stats: states, transitions, overlap, verdict.
        pub fn summary(&self) -> String {
            format!(
                "{} states, {} transitions, overlap {}, {:?}, {}",
                self.states,
                self.transitions,
                if self.overlap_reached { "reachable" } else { "UNREACHABLE" },
                self.elapsed,
                match &self.counterexample {
                    Some(ce) => format!("VIOLATED ({})", ce.violation),
                    None => "invariant holds".to_string(),
                }
            )
        }
    }

    /// Reader-session state: which backends have returned, and the
    /// union-merged set of records observed present.
    #[derive(Clone, Hash, PartialEq, Eq)]
    struct Reader {
        /// Bitmask of backends whose probe envelope has returned.
        probed: u8,
        /// Bitmask of records seen present on some probed backend.
        seen: u8,
    }

    #[derive(Clone, Hash, PartialEq, Eq)]
    struct State {
        /// `present[w]` = bitmask over {replica 0, replica 1} of the
        /// copies of record `w` still present at their stores.
        present: Vec<u8>,
        /// `waves[w]` = bitmask of write `w`'s envelopes applied.
        waves: Vec<u8>,
        readers: Vec<Reader>,
    }

    impl State {
        fn initial(cfg: &FlightConfig) -> State {
            State {
                present: vec![0b11; cfg.writes as usize],
                waves: vec![0; cfg.writes as usize],
                readers: vec![Reader { probed: 0, seen: 0 }; cfg.readers as usize],
            }
        }

        /// Backend hosting `replica` of record `w`.
        fn backend_of(w: u8, replica: u8, cfg: &FlightConfig) -> u8 {
            (w + replica) % cfg.backends
        }

        fn all_probed(&self, reader: usize, cfg: &FlightConfig) -> bool {
            self.readers[reader].probed == (1u8 << cfg.backends) - 1
        }

        fn readers_done(&self, cfg: &FlightConfig) -> bool {
            (0..self.readers.len()).all(|k| self.all_probed(k, cfg))
        }

        /// Every envelope of every write admitted before the readers
        /// has been applied.
        fn prefix_drained(&self, cfg: &FlightConfig) -> bool {
            self.waves[..cfg.read_after as usize].iter().all(|&m| m == 0b11)
        }
    }

    fn enabled(state: &State, cfg: &FlightConfig) -> Vec<FlightAction> {
        let mut actions = Vec::new();
        for w in 0..cfg.writes {
            for replica in 0..2u8 {
                if state.waves[w as usize] & (1 << replica) != 0 {
                    continue;
                }
                // Fence 2: writes admitted after the readers hold
                // their waves until every probe has returned.
                if w >= cfg.read_after
                    && !state.readers_done(cfg)
                    && cfg.mutation != FlightMutation::ReorderAheadOfWrites
                {
                    continue;
                }
                actions.push(FlightAction::WriteWave { w, replica });
            }
        }
        // Fence 1: probes stage only once the earlier-admitted
        // conflicting writes have fully drained.
        let may_probe = state.prefix_drained(cfg)
            || cfg.mutation == FlightMutation::OverlapConflictingRead;
        if may_probe {
            for reader in 0..cfg.readers {
                for backend in 0..cfg.backends {
                    if state.readers[reader as usize].probed & (1 << backend) == 0 {
                        actions.push(FlightAction::Probe { reader, backend });
                    }
                }
            }
        }
        actions
    }

    /// Apply `action`; returns the torn-read violation if the acting
    /// reader completed with a non-prefix deleted set.
    fn apply(
        state: &State,
        action: FlightAction,
        cfg: &FlightConfig,
    ) -> Result<State, TornRead> {
        let mut next = state.clone();
        match action {
            FlightAction::WriteWave { w, replica } => {
                next.waves[w as usize] |= 1 << replica;
                next.present[w as usize] &= !(1 << replica);
            }
            FlightAction::Probe { reader, backend } => {
                let r = &mut next.readers[reader as usize];
                r.probed |= 1 << backend;
                for w in 0..cfg.writes {
                    for replica in 0..2u8 {
                        if State::backend_of(w, replica, cfg) == backend
                            && state.present[w as usize] & (1 << replica) != 0
                        {
                            r.seen |= 1 << w;
                        }
                    }
                }
                if next.all_probed(reader as usize, cfg) {
                    let observed: Vec<u8> = (0..cfg.writes)
                        .filter(|&w| next.readers[reader as usize].seen & (1 << w) == 0)
                        .collect();
                    let expected: Vec<u8> = (0..cfg.read_after).collect();
                    if observed != expected {
                        return Err(TornRead {
                            reader,
                            observed_deleted: observed,
                            expected_deleted: expected,
                        });
                    }
                }
            }
        }
        Ok(next)
    }

    /// True in a state where two distinct readers are both mid-probe:
    /// each has at least one envelope back and at least one pending.
    fn readers_overlap(state: &State, cfg: &FlightConfig) -> bool {
        let full = (1u8 << cfg.backends) - 1;
        state
            .readers
            .iter()
            .filter(|r| r.probed != 0 && r.probed != full)
            .count()
            >= 2
    }

    /// Exhaustive BFS over every interleaving. The state space is tiny
    /// (thousands of states for `small()`), so there is no depth bound
    /// — the frontier simply drains.
    pub fn check_flights(cfg: &FlightConfig) -> FlightReport {
        let start = Instant::now();
        let initial = State::initial(cfg);
        let mut meta: Vec<(u32, Option<FlightAction>)> = vec![(0, None)];
        let mut visited: HashMap<State, u32> = HashMap::new();
        visited.insert(initial.clone(), 0);
        let mut frontier: VecDeque<(State, u32)> = VecDeque::new();
        frontier.push_back((initial, 0));
        let mut transitions = 0u64;
        let mut overlap_reached = false;

        let trace_of = |meta: &Vec<(u32, Option<FlightAction>)>, mut id: u32| {
            let mut trace = Vec::new();
            while let (parent, Some(action)) = meta[id as usize] {
                trace.push(action);
                id = parent;
            }
            trace.reverse();
            trace
        };

        while let Some((state, id)) = frontier.pop_front() {
            for action in enabled(&state, cfg) {
                transitions += 1;
                let next = match apply(&state, action, cfg) {
                    Ok(next) => next,
                    Err(violation) => {
                        let mut trace = trace_of(&meta, id);
                        trace.push(action);
                        return FlightReport {
                            config: *cfg,
                            states: visited.len(),
                            transitions,
                            overlap_reached,
                            elapsed: start.elapsed(),
                            counterexample: Some(FlightCounterexample { violation, trace }),
                        };
                    }
                };
                overlap_reached |= readers_overlap(&next, cfg);
                match visited.entry(next) {
                    MapEntry::Occupied(_) => {}
                    MapEntry::Vacant(slot) => {
                        let next_id = meta.len() as u32;
                        meta.push((id, Some(action)));
                        let state = slot.key().clone();
                        slot.insert(next_id);
                        frontier.push_back((state, next_id));
                    }
                }
            }
        }

        FlightReport {
            config: *cfg,
            states: visited.len(),
            transitions,
            overlap_reached,
            elapsed: start.elapsed(),
            counterexample: None,
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn shipped_protocol_has_no_torn_reads_and_reads_overlap() {
            let report = check_flights(&FlightConfig::small());
            assert!(report.counterexample.is_none(), "{}", report.summary());
            assert!(report.overlap_reached, "fences must not serialise read vs read");
            assert!(report.states > 50, "{}", report.summary());
        }

        #[test]
        fn overlapping_a_conflicting_read_yields_a_torn_prefix() {
            let report = check_flights(&FlightConfig::with_mutation(
                FlightMutation::OverlapConflictingRead,
            ));
            let ce = report.counterexample.expect("mutation must be caught");
            // The tear is a *missing* prefix delete: a probe raced the
            // two delete envelopes and resurrected the record.
            assert!(
                ce.violation.observed_deleted != ce.violation.expected_deleted,
                "{}",
                ce.render()
            );
            assert!(!ce.trace.is_empty());
        }

        #[test]
        fn reordering_later_writes_ahead_of_probes_is_caught() {
            let report = check_flights(&FlightConfig::with_mutation(
                FlightMutation::ReorderAheadOfWrites,
            ));
            let ce = report.counterexample.expect("mutation must be caught");
            // The reader saw a delete from a write admitted after it.
            assert!(
                ce.violation
                    .observed_deleted
                    .iter()
                    .any(|w| *w >= report.config.read_after),
                "{}",
                ce.render()
            );
        }

        #[test]
        fn flight_mutation_names_round_trip() {
            for m in FlightMutation::ALL.iter().chain([FlightMutation::None].iter()) {
                assert_eq!(FlightMutation::parse(m.name()), Some(*m));
            }
            assert_eq!(FlightMutation::parse("bogus"), None);
        }
    }
}

/// An explicit-state model of one WAL-bracketed live group move
/// (`mbds::rebalance`), exhaustively interleaved with foreground
/// reads, a crash, and recovery or standby promotion.
///
/// The crash-point sweep in `tests/rebalance.rs` *samples* the move
/// protocol's failure space; this module *exhausts* it over a small
/// abstraction. One interned directory group of
/// [`RebalanceConfig::records`] records moves from its old member set
/// to a new one:
///
/// | model action | real code path it abstracts |
/// |---|---|
/// | [`RebalanceAction::MoveBegin`] | `move_group` logs the durable `MoveBegin {from, to, keys}` marker — the chunk's exact keys — before any copy is sent (`Controller::move_group_inner`) |
/// | [`RebalanceAction::ChunkCopy`] | one record of the bracketed chunk lands durably on the new members (`load_replica` / the insert envelope in `move_group_inner`) |
/// | [`RebalanceAction::MoveCommit`] | the old copies are deleted, the directory commits the chunk's placement (per-key rebinds, or the whole-group retarget when the chunk empties it), and `MoveEnd` is logged — the single atomic step at which reads switch placement |
/// | [`RebalanceAction::Read`] | a foreground scoped read routes through the directory and observes the group's record set |
/// | [`RebalanceAction::Crash`] | the primary dies mid-chunk; the begin marker and the copies already landed are durable, the directory and move queue are not |
/// | [`RebalanceAction::Recover`] | `Controller::recover` replays the log; an unmatched `MoveBegin` re-runs exactly the bracketed keys idempotently at the marker (`apply_entry`), and `replan_rebalance` re-derives the group's remaining chunks |
/// | [`RebalanceAction::Promote`] | `Standby::promote` — the mirror applied the chunk at `MoveBegin`, so promotion heals the bracketed keys with a fresh bracket before serving (`finish_interrupted_move` / `heal_move_inner`) |
///
/// Two invariants are machine-checked at every state:
///
/// 1. **No read observes a half-moved group** — every read sees the
///    group's complete record set: old placement until the commit
///    point, new placement after, never a partial copy set.
/// 2. **Every committed move survives crash and promotion** — once
///    `MoveEnd` is durable, recovery and promotion both land on the
///    new placement with all records present.
///
/// Both seeded [`RebalanceMutation`]s re-open windows the shipped
/// protocol closes, and each must be killed with a shortest
/// counterexample trace (BFS order).
pub mod rebalance {
    use std::collections::hash_map::Entry as MapEntry;
    use std::collections::{HashMap, VecDeque};
    use std::fmt;
    use std::time::{Duration, Instant};

    /// Protocol mutations: each deletes one guard the real move
    /// protocol enforces, and each must produce a counterexample.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RebalanceMutation {
        /// The shipped protocol, unmodified.
        None,
        /// The directory retargets the group at `MoveBegin` instead of
        /// at the commit point — reads route to the new members while
        /// the copies are still landing.
        ServeFromNewBeforeCommit,
        /// Recovery treats an unmatched `MoveBegin` as already
        /// committed: it retargets the directory without re-running
        /// the copy redo (`finish_interrupted_move` skipped).
        SkipMoveEndOnRecovery,
    }

    impl RebalanceMutation {
        /// Every mutation in the catalogue (excluding `None`).
        pub const ALL: [RebalanceMutation; 2] = [
            RebalanceMutation::ServeFromNewBeforeCommit,
            RebalanceMutation::SkipMoveEndOnRecovery,
        ];

        /// Stable identifier, e.g. for a CLI flag.
        pub fn name(self) -> &'static str {
            match self {
                RebalanceMutation::None => "none",
                RebalanceMutation::ServeFromNewBeforeCommit => "serve-from-new-before-commit",
                RebalanceMutation::SkipMoveEndOnRecovery => "skip-move-end-on-recovery",
            }
        }

        /// Inverse of [`RebalanceMutation::name`].
        pub fn parse(s: &str) -> Option<RebalanceMutation> {
            RebalanceMutation::ALL
                .iter()
                .chain([RebalanceMutation::None].iter())
                .copied()
                .find(|m| m.name() == s)
        }
    }

    /// Checker configuration. `small()` exhausts in microseconds and
    /// is what CI pins.
    #[derive(Clone, Copy, Debug)]
    pub struct RebalanceConfig {
        /// Records in the moving group (copied one per chunk step).
        pub records: u8,
        /// Crash budget; each crash may be followed by either a
        /// primary recovery or a standby promotion.
        pub max_crashes: u8,
        /// Protocol mutation under test.
        pub mutation: RebalanceMutation,
    }

    impl RebalanceConfig {
        /// The CI configuration: exhausts in microseconds.
        pub fn small() -> RebalanceConfig {
            RebalanceConfig { records: 3, max_crashes: 2, mutation: RebalanceMutation::None }
        }

        /// `small()` with one guard deleted.
        pub fn with_mutation(mutation: RebalanceMutation) -> RebalanceConfig {
            RebalanceConfig { mutation, ..RebalanceConfig::small() }
        }
    }

    /// One atomic step of the interleaving.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RebalanceAction {
        /// The durable `MoveBegin` marker is logged; copying starts.
        MoveBegin,
        /// Record `r` of the group lands durably on the new members.
        ChunkCopy {
            /// Which record of the group.
            r: u8,
        },
        /// Old copies deleted, directory retargeted, `MoveEnd` logged.
        MoveCommit,
        /// A foreground read routes through the directory and observes
        /// the group's record set at the placement it names.
        Read,
        /// The primary dies; in-memory routing and the move queue are
        /// lost, durable markers and landed copies are not.
        Crash,
        /// The primary restarts and replays the log, re-running an
        /// unmatched move at its begin marker.
        Promote,
        /// The standby (whose mirror applied the whole move at
        /// `MoveBegin`) takes over, healing partial copies before it
        /// serves.
        Recover,
    }

    impl fmt::Display for RebalanceAction {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RebalanceAction::MoveBegin => write!(f, "move-begin"),
                RebalanceAction::ChunkCopy { r } => write!(f, "chunk-copy(record {r})"),
                RebalanceAction::MoveCommit => write!(f, "move-commit"),
                RebalanceAction::Read => write!(f, "read"),
                RebalanceAction::Crash => write!(f, "crash"),
                RebalanceAction::Recover => write!(f, "recover"),
                RebalanceAction::Promote => write!(f, "promote"),
            }
        }
    }

    /// The invariant violation a counterexample demonstrates.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum MoveViolation {
        /// A read observed a partial record set for the group.
        HalfMovedRead {
            /// Records the read observed.
            observed: u8,
            /// Records the group holds.
            expected: u8,
        },
        /// After recovery or promotion a committed move had regressed:
        /// the directory or the record set no longer reflect it.
        CommittedMoveLost {
            /// Records present at the placement being served.
            present: u8,
            /// Records the group holds.
            expected: u8,
        },
    }

    impl fmt::Display for MoveViolation {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                MoveViolation::HalfMovedRead { observed, expected } => write!(
                    f,
                    "a read observed {observed} of the group's {expected} records — a half-moved group"
                ),
                MoveViolation::CommittedMoveLost { present, expected } => write!(
                    f,
                    "a committed move regressed: {present} of {expected} records at the served placement"
                ),
            }
        }
    }

    /// A violating interleaving: the invariant broken plus the exact
    /// action sequence (shortest, by BFS) that reaches it.
    #[derive(Clone, Debug)]
    pub struct RebalanceCounterexample {
        /// The invariant that broke.
        pub violation: MoveViolation,
        /// The shortest action sequence reaching the violation.
        pub trace: Vec<RebalanceAction>,
    }

    impl RebalanceCounterexample {
        /// The numbered action trace plus the violated invariant.
        pub fn render(&self) -> String {
            let mut out = String::new();
            for (i, action) in self.trace.iter().enumerate() {
                out.push_str(&format!("{:>3}. {}\n", i + 1, action));
            }
            out.push_str(&format!("VIOLATION: {}", self.violation));
            out
        }
    }

    /// What an exhaustive run found.
    #[derive(Clone, Debug)]
    pub struct RebalanceReport {
        /// The configuration that was checked.
        pub config: RebalanceConfig,
        /// Distinct states visited.
        pub states: usize,
        /// Transitions explored (states are revisited via BFS dedupe).
        pub transitions: u64,
        /// True iff a crash landed strictly inside a bracket — the
        /// window the redo/heal paths exist for is actually explored.
        pub mid_move_crash_reached: bool,
        /// True iff a crash landed *after* the commit point — the
        /// "committed moves survive" invariant is exercised, not
        /// vacuous.
        pub committed_crash_reached: bool,
        /// Wall-clock time of the exhaustive search.
        pub elapsed: Duration,
        /// `Some` iff some interleaving violated an invariant.
        pub counterexample: Option<RebalanceCounterexample>,
    }

    impl RebalanceReport {
        /// One-line stats: states, transitions, coverage, verdict.
        pub fn summary(&self) -> String {
            format!(
                "{} states, {} transitions, mid-move crash {}, committed crash {}, {:?}, {}",
                self.states,
                self.transitions,
                if self.mid_move_crash_reached { "reachable" } else { "UNREACHABLE" },
                if self.committed_crash_reached { "reachable" } else { "UNREACHABLE" },
                self.elapsed,
                match &self.counterexample {
                    Some(ce) => format!("VIOLATED ({})", ce.violation),
                    None => "invariants hold".to_string(),
                }
            )
        }
    }

    /// Where the move stands, from the serving controller's view.
    #[derive(Clone, Copy, Hash, PartialEq, Eq)]
    enum Phase {
        /// No bracket open.
        Idle,
        /// `MoveBegin` durable; chunk copies in flight.
        Copying,
        /// The commit point passed (or recovery declared it so).
        Done,
    }

    #[derive(Clone, Hash, PartialEq, Eq)]
    struct State {
        phase: Phase,
        /// Bitmask of records durably landed on the new members.
        copied: u8,
        /// True while the old members still hold the whole group
        /// (copies are deleted only at the commit point).
        old_present: bool,
        /// In-memory directory routing: false = old placement.
        dir_new: bool,
        /// `MoveBegin` durable in the log.
        begun: bool,
        /// `MoveEnd` durable in the log — the move is committed.
        committed: bool,
        /// The primary is down; only `Recover`/`Promote` are enabled.
        crashed: bool,
        crashes: u8,
    }

    impl State {
        fn initial() -> State {
            State {
                phase: Phase::Idle,
                copied: 0,
                old_present: true,
                dir_new: false,
                begun: false,
                committed: false,
                crashed: false,
                crashes: 0,
            }
        }

        fn all(cfg: &RebalanceConfig) -> u8 {
            (1u8 << cfg.records) - 1
        }
    }

    fn enabled(state: &State, cfg: &RebalanceConfig) -> Vec<RebalanceAction> {
        let mut actions = Vec::new();
        if state.crashed {
            actions.push(RebalanceAction::Recover);
            actions.push(RebalanceAction::Promote);
            return actions;
        }
        match state.phase {
            Phase::Idle if !state.begun => actions.push(RebalanceAction::MoveBegin),
            Phase::Copying => {
                for r in 0..cfg.records {
                    if state.copied & (1 << r) == 0 {
                        actions.push(RebalanceAction::ChunkCopy { r });
                    }
                }
                if state.copied == State::all(cfg) {
                    actions.push(RebalanceAction::MoveCommit);
                }
            }
            _ => {}
        }
        actions.push(RebalanceAction::Read);
        if state.crashes < cfg.max_crashes {
            actions.push(RebalanceAction::Crash);
        }
        actions
    }

    /// The post-crash redo both recovery paths share: given the
    /// durable markers, land on a consistent serving state (or refuse
    /// to, under a mutation).
    fn replay(next: &mut State, promoted: bool, cfg: &RebalanceConfig) {
        next.crashed = false;
        if next.committed {
            // Replaying a committed move converges on the new
            // placement (the redo at the begin marker is idempotent).
            next.dir_new = true;
            next.phase = Phase::Done;
        } else if next.begun {
            if cfg.mutation == RebalanceMutation::SkipMoveEndOnRecovery {
                // Mutated recovery declares the unmatched bracket
                // committed without re-running the copies.
                next.dir_new = true;
                next.phase = Phase::Done;
            } else if promoted {
                // The standby's mirror applied the whole move at
                // `MoveBegin`; promotion heals the partial copies with
                // a fresh bracket before serving (`heal_move_inner`).
                next.copied = State::all(cfg);
                next.old_present = false;
                next.dir_new = true;
                next.committed = true;
                next.phase = Phase::Done;
            } else {
                // Cold replay re-runs the move at the begin marker;
                // already-landed copies are overwritten idempotently.
                next.dir_new = false;
                next.phase = Phase::Copying;
            }
        } else {
            next.dir_new = false;
            next.phase = Phase::Idle;
        }
    }

    /// Apply `action`; returns the violation if a read observed a
    /// partial group or a committed move regressed across recovery.
    fn apply(
        state: &State,
        action: RebalanceAction,
        cfg: &RebalanceConfig,
    ) -> Result<State, MoveViolation> {
        let mut next = state.clone();
        let all = State::all(cfg);
        match action {
            RebalanceAction::MoveBegin => {
                next.begun = true;
                next.phase = Phase::Copying;
                if cfg.mutation == RebalanceMutation::ServeFromNewBeforeCommit {
                    next.dir_new = true;
                }
            }
            RebalanceAction::ChunkCopy { r } => {
                next.copied |= 1 << r;
            }
            RebalanceAction::MoveCommit => {
                // The single atomic step (w.r.t. foreground traffic):
                // delete the old copies, retarget, log `MoveEnd`.
                next.old_present = false;
                next.dir_new = true;
                next.committed = true;
                next.phase = Phase::Done;
            }
            RebalanceAction::Read => {
                let observed = if state.dir_new {
                    state.copied.count_ones() as u8
                } else if state.old_present {
                    cfg.records
                } else {
                    0
                };
                if observed != cfg.records {
                    return Err(MoveViolation::HalfMovedRead {
                        observed,
                        expected: cfg.records,
                    });
                }
            }
            RebalanceAction::Crash => {
                next.crashed = true;
                next.crashes += 1;
            }
            RebalanceAction::Recover => {
                replay(&mut next, false, cfg);
            }
            RebalanceAction::Promote => {
                replay(&mut next, true, cfg);
            }
        }
        // Invariant 2, checked whenever a controller starts serving:
        // a committed move must still be whole at the new placement.
        if matches!(action, RebalanceAction::Recover | RebalanceAction::Promote)
            && state.committed
            && !(next.dir_new && next.copied == all)
        {
            return Err(MoveViolation::CommittedMoveLost {
                present: next.copied.count_ones() as u8,
                expected: cfg.records,
            });
        }
        Ok(next)
    }

    /// Exhaustive BFS over every interleaving. The state space is tiny
    /// (hundreds of states for `small()`), so there is no depth bound
    /// — the frontier simply drains.
    pub fn check_rebalance(cfg: &RebalanceConfig) -> RebalanceReport {
        let start = Instant::now();
        let initial = State::initial();
        let mut meta: Vec<(u32, Option<RebalanceAction>)> = vec![(0, None)];
        let mut visited: HashMap<State, u32> = HashMap::new();
        visited.insert(initial.clone(), 0);
        let mut frontier: VecDeque<(State, u32)> = VecDeque::new();
        frontier.push_back((initial, 0));
        let mut transitions = 0u64;
        let mut mid_move_crash_reached = false;
        let mut committed_crash_reached = false;

        let trace_of = |meta: &Vec<(u32, Option<RebalanceAction>)>, mut id: u32| {
            let mut trace = Vec::new();
            while let (parent, Some(action)) = meta[id as usize] {
                trace.push(action);
                id = parent;
            }
            trace.reverse();
            trace
        };

        while let Some((state, id)) = frontier.pop_front() {
            for action in enabled(&state, cfg) {
                transitions += 1;
                let next = match apply(&state, action, cfg) {
                    Ok(next) => next,
                    Err(violation) => {
                        let mut trace = trace_of(&meta, id);
                        trace.push(action);
                        return RebalanceReport {
                            config: *cfg,
                            states: visited.len(),
                            transitions,
                            mid_move_crash_reached,
                            committed_crash_reached,
                            elapsed: start.elapsed(),
                            counterexample: Some(RebalanceCounterexample { violation, trace }),
                        };
                    }
                };
                if next.crashed {
                    mid_move_crash_reached |= next.begun && !next.committed;
                    committed_crash_reached |= next.committed;
                }
                match visited.entry(next) {
                    MapEntry::Occupied(_) => {}
                    MapEntry::Vacant(slot) => {
                        let next_id = meta.len() as u32;
                        meta.push((id, Some(action)));
                        let state = slot.key().clone();
                        slot.insert(next_id);
                        frontier.push_back((state, next_id));
                    }
                }
            }
        }

        RebalanceReport {
            config: *cfg,
            states: visited.len(),
            transitions,
            mid_move_crash_reached,
            committed_crash_reached,
            elapsed: start.elapsed(),
            counterexample: None,
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn shipped_move_protocol_holds_both_invariants() {
            let report = check_rebalance(&RebalanceConfig::small());
            assert!(report.counterexample.is_none(), "{}", report.summary());
            assert!(
                report.mid_move_crash_reached,
                "a crash inside the bracket must be explored: {}",
                report.summary()
            );
            assert!(
                report.committed_crash_reached,
                "a crash after the commit point must be explored: {}",
                report.summary()
            );
            assert!(report.states > 30, "{}", report.summary());
        }

        #[test]
        fn serving_from_the_new_placement_before_commit_is_caught() {
            let report = check_rebalance(&RebalanceConfig::with_mutation(
                RebalanceMutation::ServeFromNewBeforeCommit,
            ));
            let ce = report.counterexample.expect("mutation must be caught");
            // Shortest counterexample: retarget at move-begin, read
            // before any chunk lands — two steps.
            assert_eq!(ce.trace.len(), 2, "{}", ce.render());
            assert!(
                matches!(ce.violation, MoveViolation::HalfMovedRead { observed, .. } if observed < report.config.records),
                "{}",
                ce.render()
            );
        }

        #[test]
        fn skipping_the_move_redo_on_recovery_is_caught() {
            let report = check_rebalance(&RebalanceConfig::with_mutation(
                RebalanceMutation::SkipMoveEndOnRecovery,
            ));
            let ce = report.counterexample.expect("mutation must be caught");
            // The trace must pass through a crash: the mutation only
            // fires on the recovery path.
            assert!(
                ce.trace.contains(&RebalanceAction::Crash),
                "{}",
                ce.render()
            );
            assert!(
                matches!(ce.violation, MoveViolation::HalfMovedRead { .. }),
                "{}",
                ce.render()
            );
        }

        #[test]
        fn rebalance_mutation_names_round_trip() {
            for m in RebalanceMutation::ALL.iter().chain([RebalanceMutation::None].iter()) {
                assert_eq!(RebalanceMutation::parse(m.name()), Some(*m));
            }
            assert_eq!(RebalanceMutation::parse("bogus"), None);
        }
    }
}
