//! The deterministic simulated-time twin of the controller.
//!
//! Wall-clock benchmarking of the threaded controller on a single
//! shared-memory machine cannot exhibit *disk* parallelism — all
//! backends contend for the same CPU and there are no disks. The cost
//! model recovers the quantity the MBDS claims are about: per-request
//! response time composed of bus messages, the *maximum* of the
//! backends' disk times (they run in parallel), and result merging at
//! the controller.
//!
//! ```text
//! response_time = t_broadcast
//!               + max_i (blocks_touched_i × block_time
//!                        + records_returned_i × record_time)
//!               + n_backends × msg_time            (per-backend reply)
//! ```
//!
//! Result forwarding is charged *inside* the parallel phase: each
//! backend transmits its own partial result concurrently with the
//! others (MBDS backends have private channels to the controller), so
//! growing the response size proportionally with the backends leaves
//! the per-backend phase — and the response time — invariant.
//!
//! The simulator mirrors the threaded controller's availability
//! machinery exactly: k-way replicated placement with dedup-by-key
//! merging, `kill_backend`/`restart_backend` (recovery is charged in
//! simulated time), degraded-mode reporting, and the same
//! [`FaultPlan`] applied on the same per-backend message counters — so
//! a seeded fault schedule produces bit-identical results in both
//! kernels.
//!
//! The parameters are calibrated to 1980s hardware orders of magnitude
//! (a ~30 ms track read, millisecond-scale bus messages); only the
//! *shape* of the curves matters for the reproduction.

use crate::controller::{PromotedParts, DEFAULT_REPLICATION};
use crate::directory::Directory;
use crate::fault::{FaultKind, FaultPlan};
use crate::placement::Partitioner;
use crate::rebalance::{self, MoveJob, Rebalancer};
use crate::wal::{LogRecord, LogStore, SnapshotData, Wal, WalStats};
use abdl::engine::aggregate;
use abdl::{
    DbKey, Error, ExecTotals, Kernel, KernelHealth, Record, RelOp, Request, Response, Result,
    Store, Transaction, Value,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Cost-model parameters (microseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Time to read one data block from a backend's disk.
    pub block_time_us: f64,
    /// Time for one controller↔backend bus message.
    pub msg_time_us: f64,
    /// Per-record cost of merging/forwarding results to the host.
    pub record_time_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // A late-1980s minicomputer disk reads a ~16-record block in
        // ~30 ms; the parallel bus delivers a message in ~2 ms; record
        // forwarding costs ~0.2 ms each.
        CostModel { block_time_us: 30_000.0, msg_time_us: 2_000.0, record_time_us: 200.0 }
    }
}

/// A serial, deterministic N-backend kernel with simulated response
/// times. Implements [`Kernel`], so whole MLDS workloads run on it.
pub struct SimCluster {
    backends: Vec<Store>,
    alive: Vec<bool>,
    partitioner: Partitioner,
    replication: usize,
    next_key: u64,
    cost: CostModel,
    unique_groups: HashMap<String, Vec<Vec<String>>>,
    files: Vec<String>,
    /// Which backends hold each record, with interned replica sets
    /// (same [`Directory`] structure as the threaded controller).
    directory: Directory,
    faults: FaultPlan,
    /// Messages each backend has processed, mirroring the threaded
    /// workers' 1-based counters (creates, inserts and execs all
    /// count); drives [`FaultPlan`] lookups.
    msg_counts: Vec<u64>,
    /// Simulated time of the last executed request (µs).
    last_response_us: f64,
    /// Accumulated simulated time (µs).
    total_us: f64,
    requests_executed: u64,
    /// Write-ahead log for durable clusters (`None` on the plain
    /// constructors and during recovery replay). Typically a
    /// [`crate::MemLog`] — the simulator's whole point is staying
    /// in-memory and deterministic.
    wal: Option<Wal>,
    /// Log failures from infallible trait methods, surfaced by the next
    /// `execute` (same convention as the threaded controller).
    pending_error: Option<Error>,
    /// Exact mirror of the threaded controller's unique-value index:
    /// `(file, group-index) → tuple of group values → keys`.
    unique_index: HashMap<(String, usize), BTreeMap<Vec<Value>, BTreeSet<DbKey>>>,
    /// Per-file, per-backend resident-record counts (directory-derived,
    /// liveness-independent), driving file-scoped routing.
    resident: HashMap<String, Vec<u64>>,
    /// Route file/key-scoped requests to the backends that can hold
    /// matches (on by default; off = broadcast everything).
    scoped_routing: bool,
    /// Check uniqueness against the controller-side index (on by
    /// default; off = legacy pre-insert broadcast probe).
    unique_via_index: bool,
    /// Write replicas in send-all-then-collect waves (on by default;
    /// off = one round trip per replica). Same contacted backends in
    /// the same scan order either way.
    parallel_writes: bool,
    /// Cumulative execution counters (see [`ExecTotals`]).
    totals: ExecTotals,
    /// Backends being drained out of the cluster: they take no new
    /// placements and retire when their last group move commits.
    draining: BTreeSet<usize>,
    /// Backends retired by a completed drain (`drain-end`), as opposed
    /// to dead by failure. A promoting standby must not restore a
    /// retired backend's still-running process, and must finish the
    /// shutdown the crashed primary never got to.
    retired: BTreeSet<usize>,
    /// An online add's unwrap rebalance is still in progress.
    unwrapping: bool,
    /// Queued group moves for the in-flight membership change.
    rebalancer: Rebalancer,
}

impl SimCluster {
    /// A cluster of `n` backends with the default cost model and the
    /// default replication factor (2, clamped to `n`).
    pub fn new(n: usize) -> Self {
        SimCluster::with_config(n, DEFAULT_REPLICATION.min(n), CostModel::default())
    }

    /// An unreplicated (k = 1) cluster: the paper's original MBDS
    /// layout, used by the scaling experiments whose claims are about
    /// partitioning, not redundancy.
    pub fn unreplicated(n: usize) -> Self {
        SimCluster::with_config(n, 1, CostModel::default())
    }

    /// A cluster of `n` backends with an explicit cost model and the
    /// default replication factor.
    pub fn with_cost(n: usize, cost: CostModel) -> Self {
        SimCluster::with_config(n, DEFAULT_REPLICATION.min(n), cost)
    }

    /// Full control: `n` backends, `k` copies per record, explicit cost
    /// model.
    pub fn with_config(n: usize, k: usize, cost: CostModel) -> Self {
        assert!(n > 0, "MBDS needs at least one backend");
        assert!((1..=n).contains(&k), "replication factor must be in 1..=n, got {k}");
        SimCluster {
            backends: (0..n).map(|_| Store::new()).collect(),
            alive: vec![true; n],
            partitioner: Partitioner::new(n),
            replication: k,
            next_key: 1,
            cost,
            unique_groups: HashMap::new(),
            files: Vec::new(),
            directory: Directory::new(),
            faults: FaultPlan::new(),
            msg_counts: vec![0; n],
            last_response_us: 0.0,
            total_us: 0.0,
            requests_executed: 0,
            wal: None,
            pending_error: None,
            unique_index: HashMap::new(),
            resident: HashMap::new(),
            scoped_routing: true,
            unique_via_index: true,
            parallel_writes: true,
            totals: ExecTotals::default(),
            draining: BTreeSet::new(),
            retired: BTreeSet::new(),
            unwrapping: false,
            rebalancer: Rebalancer::new(),
        }
    }

    /// A **durable** simulated cluster: every directory mutation is
    /// appended to `store` exactly like the threaded controller's WAL,
    /// so crash-recovery schedules can be explored deterministically
    /// without threads.
    pub fn durable_with(
        n: usize,
        k: usize,
        cost: CostModel,
        store: impl LogStore + 'static,
    ) -> Result<Self> {
        if store.has_state()? {
            return Err(Error::Internal(
                "log already holds cluster state; use SimCluster::recover_with".into(),
            ));
        }
        let mut sim = SimCluster::with_config(n, k, cost);
        sim.wal = Some(Wal::create(Box::new(store)));
        sim.snapshot_now()?;
        Ok(sim)
    }

    /// Rebuild a simulated cluster from a snapshot+WAL store. The
    /// replayed traffic is not charged: the recovered cluster starts
    /// with a zeroed clock. The cost model is not part of durable state
    /// and is supplied by the caller.
    pub fn recover_with(cost: CostModel, store: impl LogStore + 'static) -> Result<Self> {
        let (snapshot, entries, wal) = Wal::load(Box::new(store))?;
        let snapshot = snapshot.ok_or_else(|| {
            Error::Internal("no snapshot found — nothing to recover".into())
        })?;
        if snapshot.backends == 0 || !(1..=snapshot.backends).contains(&snapshot.replication) {
            return Err(Error::Internal(format!(
                "snapshot has invalid configuration: {} backends, replication {}",
                snapshot.backends, snapshot.replication
            )));
        }
        let mut sim = SimCluster::with_config(snapshot.backends, snapshot.replication, cost);
        // `sim.wal` stays `None` through the replay so nothing re-logs.
        sim.apply_snapshot(&snapshot)?;
        for entry in &entries {
            sim.apply_entry(entry)?;
        }
        // An interrupted membership change re-derives its remaining
        // moves from the rebuilt state (same as the threaded
        // controller's recovery).
        sim.replan_rebalance();
        sim.reset_clock();
        sim.wal = Some(wal);
        Ok(sim)
    }

    /// Number of backends (alive or dead).
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// Number of backends currently alive.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Copies kept per record.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Install a fault plan (same semantics and message counters as the
    /// threaded controller's).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Compact the log into a snapshot every `every` appends (0
    /// disables). No-op on a non-durable cluster.
    pub fn set_snapshot_every(&mut self, every: u64) {
        if let Some(w) = self.wal.as_mut() {
            w.set_snapshot_every(every);
        }
    }

    /// Crash-point injection: the `n`th WAL append completes durably
    /// and then fails the cluster. No-op when not durable.
    pub fn set_wal_crash_after(&mut self, n: u64) {
        if let Some(w) = self.wal.as_mut() {
            w.set_crash_after(n);
        }
    }

    /// True once an armed crash point has fired.
    pub fn wal_crashed(&self) -> bool {
        self.wal.as_ref().is_some_and(Wal::crashed)
    }

    /// WAL appends performed by this incarnation (0 when not durable).
    pub fn wal_appends(&self) -> u64 {
        self.wal.as_ref().map_or(0, Wal::total_appends)
    }

    /// The key allocator's high-water mark.
    pub fn key_high_water(&self) -> u64 {
        self.next_key
    }

    /// Toggle scoped routing (on by default). Off = every request is
    /// broadcast to all live backends, the pre-router behaviour.
    pub fn set_scoped_routing(&mut self, on: bool) {
        self.scoped_routing = on;
    }

    /// Toggle index-based unique checks (on by default). Off = the
    /// legacy full-cluster retrieve probe before every INSERT.
    pub fn set_unique_via_index(&mut self, on: bool) {
        self.unique_via_index = on;
    }

    /// Toggle wave-style replica writes (on by default). The simulator
    /// is serial either way; the toggle mirrors the threaded
    /// controller's contacted-backend membership exactly.
    pub fn set_parallel_writes(&mut self, on: bool) {
        self.parallel_writes = on;
    }

    /// A deterministic rendering of the unique-value index — the same
    /// format as `Controller::unique_index_digest`, so the two kernels
    /// (and a recovered cluster) can be compared byte-for-byte.
    pub fn unique_index_digest(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for ((file, gi), by_tuple) in &self.unique_index {
            for (tuple, keys) in by_tuple {
                let vals: Vec<String> = tuple.iter().map(ToString::to_string).collect();
                let ks: Vec<String> = keys.iter().map(|k| k.0.to_string()).collect();
                lines.push(format!("{file}#{gi} [{}] {}", vals.join(","), ks.join(",")));
            }
        }
        lines.sort();
        lines.join("\n")
    }

    /// The index tuple of `record` under a constraint group: one value
    /// per attribute, NULL standing in for absent ones.
    fn group_tuple(record: &Record, group: &[String]) -> Vec<Value> {
        group.iter().map(|a| record.get_or_null(a).clone()).collect()
    }

    /// Index every constraint-group tuple of a newly stored record.
    fn index_insert(&mut self, key: DbKey, record: &Record) {
        let Some(file) = record.file().map(str::to_owned) else { return };
        let Some(groups) = self.unique_groups.get(&file) else { return };
        for (gi, group) in groups.iter().enumerate() {
            let tuple = SimCluster::group_tuple(record, group);
            self.unique_index
                .entry((file.clone(), gi))
                .or_default()
                .entry(tuple)
                .or_default()
                .insert(key);
        }
    }

    /// Drop a deleted record's tuples from the index (tolerates missing
    /// entries).
    fn index_remove(&mut self, key: DbKey, record: &Record) {
        let Some(file) = record.file().map(str::to_owned) else { return };
        let Some(groups) = self.unique_groups.get(&file) else { return };
        for (gi, group) in groups.iter().enumerate() {
            let tuple = SimCluster::group_tuple(record, group);
            if let Some(by_tuple) = self.unique_index.get_mut(&(file.clone(), gi)) {
                if let Some(keys) = by_tuple.get_mut(&tuple) {
                    keys.remove(&key);
                    if keys.is_empty() {
                        by_tuple.remove(&tuple);
                    }
                }
            }
        }
    }

    /// Move a record's tuples when an UPDATE changes a constraint-group
    /// attribute. `record` is the pre-image.
    fn index_update(&mut self, key: DbKey, record: &Record, attr: &str, value: &Value) {
        let Some(file) = record.file().map(str::to_owned) else { return };
        let Some(groups) = self.unique_groups.get(&file).cloned() else { return };
        let mut updated = record.clone();
        updated.set(attr.to_owned(), value.clone());
        for (gi, group) in groups.iter().enumerate() {
            if !group.iter().any(|a| a == attr) {
                continue;
            }
            let old_t = SimCluster::group_tuple(record, group);
            let new_t = SimCluster::group_tuple(&updated, group);
            if old_t == new_t {
                continue;
            }
            let by_tuple = self.unique_index.entry((file.clone(), gi)).or_default();
            if let Some(keys) = by_tuple.get_mut(&old_t) {
                keys.remove(&key);
                if keys.is_empty() {
                    by_tuple.remove(&old_t);
                }
            }
            by_tuple.entry(new_t).or_default().insert(key);
        }
    }

    /// Count a newly placed record against its group members' per-file
    /// residency.
    fn resident_add(&mut self, file: &str, members: &[usize]) {
        let n = self.backends.len();
        let counts = self.resident.entry(file.to_owned()).or_insert_with(|| vec![0; n]);
        for &i in members {
            counts[i] += 1;
        }
    }

    /// Un-count a deleted record.
    fn resident_remove(&mut self, file: &str, members: &[usize]) {
        if let Some(counts) = self.resident.get_mut(file) {
            for &i in members {
                counts[i] = counts[i].saturating_sub(1);
            }
        }
    }

    /// Register a constraint group, backfilling the index from existing
    /// records when the file already holds data. Shared by the live
    /// path and WAL replay (same gate as the threaded controller).
    fn register_unique(&mut self, file: &str, attrs: Vec<String>) {
        let groups = self.unique_groups.entry(file.to_owned()).or_default();
        // Idempotent, mirroring the threaded controller.
        if groups.contains(&attrs) {
            return;
        }
        groups.push(attrs);
        let gi = groups.len() - 1;
        let populated =
            self.resident.get(file).is_some_and(|counts| counts.iter().any(|&c| c > 0));
        if !populated {
            return;
        }
        let query = abdl::Query::conjunction(vec![abdl::Predicate::eq(
            abdl::FILE_ATTR,
            abdl::Value::str(file),
        )]);
        if let Ok(resp) = self.broadcast(&Request::retrieve_all(query)) {
            let group = self.unique_groups[file][gi].clone();
            for (key, rec) in resp.into_records() {
                let tuple = SimCluster::group_tuple(&rec, &group);
                self.unique_index
                    .entry((file.to_owned(), gi))
                    .or_default()
                    .entry(tuple)
                    .or_default()
                    .insert(key);
            }
        }
    }

    /// Open a WAL group-commit batch (no-op when not durable).
    fn wal_begin_batch(&mut self) {
        if let Some(w) = self.wal.as_mut() {
            w.begin_batch();
        }
    }

    /// Close a WAL batch, flushing its buffered appends with one sync.
    fn wal_commit_batch(&mut self) -> Result<()> {
        match self.wal.as_mut() {
            Some(w) => w.commit_batch(),
            None => Ok(()),
        }
    }

    fn log_append(&mut self, rec: LogRecord) -> Result<()> {
        match self.wal.as_mut() {
            Some(w) => w.append(&rec),
            None => Ok(()),
        }
    }

    fn log_append_stashing(&mut self, rec: LogRecord) {
        if let Err(e) = self.log_append(rec) {
            self.pending_error.get_or_insert(e);
        }
    }

    fn maybe_snapshot(&mut self) {
        if self.wal.as_ref().is_some_and(Wal::needs_snapshot) {
            if let Err(e) = self.snapshot_now() {
                self.pending_error.get_or_insert(e);
            }
        }
    }

    /// Write a compacted snapshot now and truncate the log. No-op when
    /// not durable.
    pub fn snapshot_now(&mut self) -> Result<()> {
        if self.wal.is_none() {
            return Ok(());
        }
        let text = self.snapshot_data().to_text();
        self.wal.as_mut().expect("wal present").install_snapshot(&text)
    }

    /// The full compacted state, read straight off the stores (the
    /// simulator needs no broadcasts). Deterministic rendering — also
    /// the state digest.
    pub fn snapshot_data(&self) -> SnapshotData {
        let mut places: Vec<(u64, Vec<usize>, Option<Record>)> = self
            .directory
            .iter()
            .map(|(k, group)| {
                let rec = group
                    .iter()
                    .copied()
                    .filter(|&j| self.alive[j])
                    .find_map(|j| self.backends[j].get(k).cloned());
                (k.0, group.to_vec(), rec)
            })
            .collect();
        places.sort_by_key(|(k, _, _)| *k);
        let mut uniques: Vec<(String, Vec<String>)> = self
            .unique_groups
            .iter()
            .flat_map(|(f, groups)| groups.iter().map(|g| (f.clone(), g.clone())))
            .collect();
        uniques.sort();
        SnapshotData {
            backends: self.backends.len(),
            replication: self.replication,
            next_key: self.next_key,
            dead: (0..self.alive.len()).filter(|&i| !self.alive[i]).collect(),
            rotors: self.partitioner.rotors(),
            files: self.files.clone(),
            uniques,
            places,
            draining: self.draining.iter().copied().collect(),
            unwrap: self.unwrapping,
        }
    }

    /// A deterministic, byte-comparable rendering of the cluster's full
    /// logical state (exactly the snapshot text).
    pub fn state_digest(&self) -> String {
        self.snapshot_data().to_text()
    }

    /// Hand the mirrored state to a promoting [`crate::Standby`]: every
    /// piece of controller bookkeeping the new primary needs, cloned
    /// out of the serial twin.
    pub(crate) fn promoted_parts(&self) -> PromotedParts {
        PromotedParts {
            partitioner: self.partitioner.clone(),
            replication: self.replication,
            next_key: self.next_key,
            unique_groups: self.unique_groups.clone(),
            files: self.files.clone(),
            directory: self.directory.clone(),
            unique_index: self.unique_index.clone(),
            resident: self.resident.clone(),
            dead: (0..self.alive.len()).filter(|&i| !self.alive[i]).collect(),
            draining: self.draining.clone(),
            retired: self.retired.clone(),
            unwrapping: self.unwrapping,
        }
    }

    pub(crate) fn apply_snapshot(&mut self, snap: &SnapshotData) -> Result<()> {
        self.next_key = snap.next_key;
        for file in &snap.files {
            if !self.files.iter().any(|f| f == file) {
                self.files.push(file.clone());
            }
            for b in &mut self.backends {
                b.create_file(file.clone());
            }
        }
        for (file, v) in &snap.rotors {
            self.partitioner.set_rotor(file, *v);
        }
        for (file, attrs) in &snap.uniques {
            self.unique_groups.entry(file.clone()).or_default().push(attrs.clone());
        }
        let dead: HashSet<usize> = snap.dead.iter().copied().collect();
        for (key, group, record) in &snap.places {
            self.directory.insert(DbKey(*key), group.clone());
            // Records without surviving data keep their directory entry
            // but cannot be indexed or counted — no backend holds them.
            let Some(record) = record else { continue };
            if let Some(file) = record.file().map(str::to_owned) {
                self.resident_add(&file, group);
            }
            self.index_insert(DbKey(*key), record);
            for &i in group {
                if !dead.contains(&i) {
                    self.backends[i].insert_with_key(DbKey(*key), record.clone())?;
                }
            }
        }
        for &i in &snap.dead {
            self.alive[i] = false;
        }
        self.draining = snap.draining.iter().copied().collect();
        self.unwrapping = snap.unwrap;
        Ok(())
    }

    pub(crate) fn apply_entry(&mut self, entry: &LogRecord) -> Result<()> {
        match entry {
            LogRecord::CreateFile { name } => {
                self.create_file(name);
                Ok(())
            }
            LogRecord::Unique { file, attrs } => {
                self.register_unique(file, attrs.clone());
                Ok(())
            }
            LogRecord::ReserveKey { key } => {
                self.next_key = self.next_key.max(key + 1);
                Ok(())
            }
            LogRecord::Alloc { key, file } => {
                self.next_key = self.next_key.max(key + 1);
                self.partitioner.advance(file);
                Ok(())
            }
            LogRecord::Insert { key, group, record } => {
                self.next_key = self.next_key.max(key + 1);
                if let Some(file) = record.file() {
                    let file = file.to_owned();
                    self.partitioner.advance(&file);
                    self.resident_add(&file, group);
                }
                self.directory.insert(DbKey(*key), group.clone());
                self.index_insert(DbKey(*key), record);
                for &i in group {
                    if self.alive[i] {
                        self.backends[i].insert_with_key(DbKey(*key), record.clone())?;
                    }
                }
                Ok(())
            }
            LogRecord::Exec { request } => self.execute_inner(request).map(|_| ()),
            LogRecord::Dead { backend } => {
                self.kill_backend(*backend);
                Ok(())
            }
            LogRecord::RestartBegin { backend } => self.restart_backend(*backend),
            LogRecord::RestartEnd { .. } => Ok(()),
            // Same bracket discipline for rebalance moves: the chunk is
            // (re)performed at the begin marker with exactly the keys
            // the live run bracketed, keeping this mirror in lockstep
            // with the primary's per-chunk placement commits.
            LogRecord::MoveBegin { from, to, keys } => {
                let (from, to) = (from.clone(), to.clone());
                let keys: Vec<DbKey> = keys.iter().map(|&k| DbKey(k)).collect();
                self.move_group_inner(&from, &to, &keys)
            }
            LogRecord::MoveEnd { .. } => Ok(()),
            LogRecord::AddBackend { backend } => {
                // A snapshot taken after the add already has the wider
                // cluster; only grow past the current width.
                if *backend + 1 > self.backends.len() {
                    self.grow_cluster(*backend + 1);
                }
                self.unwrapping = true;
                Ok(())
            }
            LogRecord::AddEnd { .. } => {
                self.unwrapping = false;
                Ok(())
            }
            LogRecord::DrainBegin { backend } => {
                self.draining.insert(*backend);
                Ok(())
            }
            LogRecord::DrainEnd { backend } => {
                self.draining.remove(backend);
                self.retire_backend(*backend);
                Ok(())
            }
        }
    }

    /// Failure injection: backend `i` is gone and its store with it
    /// (mirroring a killed worker thread).
    pub fn kill_backend(&mut self, i: usize) {
        if i >= self.alive.len() || !self.alive[i] {
            return;
        }
        self.alive[i] = false;
        self.log_append_stashing(LogRecord::Dead { backend: i });
        self.maybe_snapshot();
    }

    /// Recovery: bring backend `i` back with an empty store, replay the
    /// schema, and re-replicate its records from surviving replicas.
    /// The recovery traffic is charged in simulated time, so E13 can
    /// measure recovery cost against data volume.
    pub fn restart_backend(&mut self, i: usize) -> Result<()> {
        if i >= self.backends.len() {
            return Err(Error::Internal(format!("no such backend {i}")));
        }
        if self.alive[i] {
            return Ok(());
        }
        // Group commit: the restart's begin/end markers are buffered
        // and synced together, exactly like the threaded controller.
        self.wal_begin_batch();
        let result = self.restart_backend_inner(i);
        let flush = self.wal_commit_batch();
        result?;
        flush?;
        self.maybe_snapshot();
        Ok(())
    }

    fn restart_backend_inner(&mut self, i: usize) -> Result<()> {
        // Same WAL protocol as the threaded controller: begin before
        // any effect, end after re-replication; replay re-runs the
        // restart at the begin marker.
        self.log_append(LogRecord::RestartBegin { backend: i })?;
        self.backends[i] = Store::new();
        self.alive[i] = true;
        for file in &self.files {
            self.msg_counts[i] += 1;
            self.totals.messages_sent += 1;
            self.backends[i].create_file(file);
        }
        // Anti-entropy from the directory: copy each record this
        // backend should hold from any surviving replica.
        let mut copied = 0u64;
        let keys: Vec<(DbKey, Vec<usize>)> = self
            .directory
            .iter()
            .filter(|(_, group)| group.contains(&i))
            .map(|(k, g)| (k, g.to_vec()))
            .collect();
        for (key, group) in keys {
            let Some(donor) = group.iter().copied().find(|&j| j != i && self.alive[j]) else {
                continue; // both replicas were lost; nothing to copy
            };
            let Some(rec) = self.backends[donor].get(key).cloned() else { continue };
            self.msg_counts[i] += 1;
            self.totals.messages_sent += 1;
            self.backends[i].insert_with_key(key, rec)?;
            copied += 1;
        }
        // Schema replay + per-record copy messages, then the restarted
        // backend writes the copied blocks while donors read them in
        // parallel.
        let mut busy = vec![0.0; self.backends.len()];
        busy[i] = copied as f64 * self.cost.block_time_us;
        self.charge(&busy);
        self.log_append(LogRecord::RestartEnd { backend: i })
    }

    /// Simulated response time of the most recent request, µs.
    pub fn last_response_us(&self) -> f64 {
        self.last_response_us
    }

    /// Total simulated time across all requests, µs.
    pub fn total_us(&self) -> f64 {
        self.total_us
    }

    /// Requests executed so far.
    pub fn requests_executed(&self) -> u64 {
        self.requests_executed
    }

    /// Reset the clocks (not the data).
    pub fn reset_clock(&mut self) {
        self.last_response_us = 0.0;
        self.total_us = 0.0;
        self.requests_executed = 0;
    }

    /// Total records stored across backends (replicas counted once).
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn charge(&mut self, busy_us_per_backend: &[f64]) {
        self.charge_replies(busy_us_per_backend, self.backends.len());
    }

    /// Like [`SimCluster::charge`] but with an explicit reply count: a
    /// routed round only hears back from the backends it contacted, so
    /// scoped requests pay fewer reply messages than a broadcast.
    fn charge_replies(&mut self, busy_us_per_backend: &[f64], replies: usize) {
        let parallel = busy_us_per_backend.iter().copied().fold(0.0f64, f64::max);
        let t = self.cost.msg_time_us // broadcast on the bus
            + parallel                 // disk + result forwarding, max over backends
            + replies as f64 * self.cost.msg_time_us; // per-backend replies
        self.last_response_us = t;
        self.total_us += t;
        self.requests_executed += 1;
    }

    /// Deliver one message to backend `i`, mirroring the threaded
    /// fault semantics: `Crash`/`Panic` kill the backend before it
    /// executes; `DropReply` executes but the controller never hears
    /// back (and gives the backend up for dead); `DelayReplyMs` arrives
    /// late, charged on the clock. Returns the reply, or `None` when
    /// the controller gets nothing.
    fn deliver<F: FnOnce(&mut Store) -> Result<Response>>(
        &mut self,
        i: usize,
        extra_busy_us: &mut f64,
        op: F,
    ) -> Option<Result<Response>> {
        self.msg_counts[i] += 1;
        self.totals.messages_sent += 1;
        let fault = self.faults.action(i, self.msg_counts[i]);
        match fault {
            Some(FaultKind::Crash) | Some(FaultKind::Panic) => {
                self.alive[i] = false;
                self.log_append_stashing(LogRecord::Dead { backend: i });
                return None;
            }
            _ => {}
        }
        let result = op(&mut self.backends[i]);
        match fault {
            Some(FaultKind::DropReply) => {
                self.alive[i] = false;
                self.log_append_stashing(LogRecord::Dead { backend: i });
                None
            }
            Some(FaultKind::DelayReplyMs(ms)) => {
                *extra_busy_us += ms as f64 * 1000.0;
                Some(result)
            }
            _ => Some(result),
        }
    }

    fn broadcast(&mut self, request: &Request) -> Result<Response> {
        self.send_round(request, None)
    }

    /// Send a request to one round of backends (`None` = every live
    /// backend, the broadcast path; `Some` = a routed subset), mirroring
    /// the threaded controller's `send_round` exactly: an empty routed
    /// target set answers immediately with an empty response, and a
    /// backend dying mid-round only removes its partial answer.
    fn send_round(&mut self, request: &Request, targets: Option<&[usize]>) -> Result<Response> {
        if self.alive_count() == 0 {
            return Err(Error::Unavailable("no live backends".into()));
        }
        let round: Vec<usize> = match targets {
            None => (0..self.backends.len()).collect(),
            Some(t) => t.to_vec(),
        };
        let mut merged = Response::default();
        let mut busy = Vec::with_capacity(round.len());
        let mut first_err = None;
        let mut contacted = 0usize;
        for i in round {
            if !self.alive[i] {
                continue;
            }
            contacted += 1;
            let mut extra = 0.0;
            match self.deliver(i, &mut extra, |b| b.execute(request)) {
                Some(Ok(resp)) => {
                    busy.push(
                        resp.stats.blocks_touched as f64 * self.cost.block_time_us
                            + resp.stats.records_returned as f64 * self.cost.record_time_us
                            + extra,
                    );
                    merged.merge(resp);
                }
                Some(Err(e)) if first_err.is_none() => first_err = Some(e),
                Some(Err(_)) => {}
                None => {} // dead mid-round; survivors carry the answer
            }
        }
        match targets {
            // Broadcast keeps the historical all-backend reply charge.
            None => self.charge(&busy),
            Some(_) => self.charge_replies(&busy, contacted),
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        merged.dedup_by_key();
        Ok(merged)
    }

    /// The backends worth contacting for `query` — same logic as the
    /// threaded controller's router: per disjunct, either the replica
    /// groups of the keys a fully pinned unique group names, or the
    /// backends the residency counts say hold the disjunct's file.
    /// `None` means the query cannot be scoped and must broadcast.
    fn route_targets(&self, query: &abdl::Query) -> Option<Vec<usize>> {
        if !self.scoped_routing {
            return None;
        }
        let mut targets = BTreeSet::new();
        for conj in &query.disjuncts {
            let file = conj.file()?;
            if let Some(keys) = self.unique_candidates(file, conj) {
                for k in keys {
                    if let Some(group) = self.directory.get(&k) {
                        targets.extend(group.iter().copied());
                    }
                }
            } else if let Some(counts) = self.resident.get(file) {
                targets.extend(
                    counts.iter().enumerate().filter(|&(_, &c)| c > 0).map(|(i, _)| i),
                );
            }
            // A file nobody holds contributes no targets.
        }
        Some(targets.into_iter().collect())
    }

    /// Key-scoped fast path: a conjunction pinning every attribute of a
    /// unique group with equality predicates can only match the keys
    /// the index lists for that tuple.
    fn unique_candidates(&self, file: &str, conj: &abdl::Conjunction) -> Option<Vec<DbKey>> {
        let groups = self.unique_groups.get(file)?;
        for (gi, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let tuple: Option<Vec<Value>> = group
                .iter()
                .map(|a| {
                    conj.predicates
                        .iter()
                        .find(|p| p.attr == *a && p.op == RelOp::Eq)
                        .map(|p| p.value.clone())
                })
                .collect();
            let Some(tuple) = tuple else { continue };
            let keys = self
                .unique_index
                .get(&(file.to_owned(), gi))
                .and_then(|m| m.get(&tuple))
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            return Some(keys);
        }
        None
    }

    fn finalize(&self, mut resp: Response) -> Response {
        let h = self.health();
        resp.degraded = h.degraded;
        resp.unavailable_backends = h.unavailable;
        resp
    }

    /// The records currently matching `query`, deduplicated across
    /// replicas — the *logical* affected set of a mutation, with the
    /// pre-images the index maintenance needs.
    fn matching_records(
        &mut self,
        query: &abdl::Query,
        targets: Option<&[usize]>,
    ) -> Result<Vec<(DbKey, Record)>> {
        let resp = self.send_round(&Request::retrieve_all(query.clone()), targets)?;
        Ok(resp.into_records())
    }

    fn check_unique(&mut self, record: &Record) -> Result<()> {
        let Some(file) = record.file() else {
            return Err(Error::MissingFileKeyword);
        };
        let Some(groups) = self.unique_groups.get(file).cloned() else { return Ok(()) };
        if self.unique_via_index {
            // One map lookup replaces the full-cluster retrieve probe,
            // same as the threaded controller.
            let file = file.to_owned();
            for (gi, group) in groups.iter().enumerate() {
                if !group.iter().all(|a| record.get(a).is_some()) {
                    continue;
                }
                let tuple = SimCluster::group_tuple(record, group);
                let hit = self
                    .unique_index
                    .get(&(file.clone(), gi))
                    .and_then(|m| m.get(&tuple))
                    .is_some_and(|keys| !keys.is_empty());
                if hit {
                    return Err(Error::DuplicateKey { file, attrs: group.clone() });
                }
            }
            return Ok(());
        }
        // Legacy pre-insert broadcast probe (the E15 ablation baseline).
        for group in groups {
            if !group.iter().all(|a| record.get(a).is_some()) {
                continue;
            }
            let query = abdl::Query::conjunction(
                std::iter::once(abdl::Predicate::eq(abdl::FILE_ATTR, abdl::Value::str(file)))
                    .chain(group.iter().map(|a| {
                        abdl::Predicate::eq(a.clone(), record.get(a).expect("present").clone())
                    }))
                    .collect(),
            );
            let hits = self.broadcast(&Request::retrieve_all(query))?;
            if !hits.records().is_empty() {
                return Err(Error::DuplicateKey { file: file.to_owned(), attrs: group });
            }
        }
        Ok(())
    }

    /// Allocate a key for an internal insert; the insert's `Insert`
    /// (or `Alloc`) WAL entry carries it, so no separate log entry.
    fn alloc_key(&mut self) -> DbKey {
        let key = DbKey(self.next_key);
        self.next_key += 1;
        key
    }

    fn insert(&mut self, record: &Record) -> Result<Response> {
        self.check_unique(record)?;
        let file = record.file().ok_or(Error::MissingFileKeyword)?.to_owned();
        let key = self.alloc_key();
        // Same wave-structured scan as the threaded controller: with
        // parallel writes on, all outstanding copies of a wave are sent
        // before any reply is observed. The simulator is serial, so the
        // waves only matter for contacted-backend membership — the cost
        // model already charges the disk phase as a max over backends.
        let group = self.partitioner.place_group(&file, self.replication);
        let primary = group[0];
        let n = self.backends.len();
        let mut assigned = Vec::new();
        let mut busy = vec![0.0; n];
        let mut scanned = 0usize;
        while assigned.len() < self.replication && scanned < n {
            let want = if self.parallel_writes { self.replication - assigned.len() } else { 1 };
            let mut wave = Vec::new();
            while wave.len() < want && scanned < n {
                let i = (primary + scanned) % n;
                scanned += 1;
                // Draining backends take no new placements.
                if self.alive[i] && !self.draining.contains(&i) {
                    wave.push(i);
                }
            }
            if wave.is_empty() {
                break;
            }
            let mut first_err = None;
            for &i in &wave {
                let mut extra = 0.0;
                let rec = record.clone();
                match self.deliver(i, &mut extra, move |b| {
                    b.insert_with_key(key, rec)
                        .map(|()| Response::with_affected(1, Default::default()))
                }) {
                    Some(Ok(_)) => {
                        busy[i] = self.cost.block_time_us + extra;
                        assigned.push(i);
                    }
                    // Drain the whole wave before erroring, like the
                    // threaded controller's reply loop.
                    Some(Err(e)) if first_err.is_none() => first_err = Some(e),
                    Some(Err(_)) => {}
                    None => {} // died mid-insert; the next wave substitutes
                }
            }
            if let Some(e) = first_err {
                // Key and rotor step are consumed even though the
                // insert failed; log that so recovery agrees.
                self.log_append(LogRecord::Alloc { key: key.0, file })?;
                return Err(e);
            }
        }
        if assigned.is_empty() {
            self.log_append(LogRecord::Alloc { key: key.0, file })?;
            return Err(Error::Unavailable("no live backend accepted the insert".into()));
        }
        self.directory.insert(key, assigned.clone());
        self.resident_add(&file, &assigned);
        self.index_insert(key, record);
        self.log_append(LogRecord::Insert { key: key.0, group: assigned, record: record.clone() })?;
        self.charge(&busy);
        Ok(Response::with_affected(1, Default::default()))
    }

    // --- Elastic membership: online backend add / drain -------------
    //
    // A full mirror of the threaded controller's `mbds::rebalance`
    // integration: same WAL grammar, same state-based planners, same
    // throttled queue — so crash/recovery schedules through membership
    // changes can be explored deterministically without threads.

    /// True when no membership change is in flight.
    fn rebalance_idle(&self) -> bool {
        self.rebalancer.is_idle() && !self.unwrapping && self.draining.is_empty()
    }

    /// Group moves still queued (0 = the cluster is in its goal
    /// placement).
    pub fn rebalance_pending(&self) -> usize {
        self.rebalancer.pending()
    }

    /// Bound the group moves piggybacked on each foreground request
    /// (floored at 1).
    pub fn set_rebalance_throttle(&mut self, throttle: usize) {
        self.rebalancer.set_throttle(throttle);
    }

    /// Backends currently being drained, ascending.
    pub fn draining_backends(&self) -> Vec<usize> {
        self.draining.iter().copied().collect()
    }

    /// Add one backend and rebalance onto it online — the simulated
    /// twin of [`crate::Controller::add_backend`]. Returns the new
    /// backend's index.
    pub fn add_backend(&mut self) -> Result<usize> {
        if !self.rebalance_idle() {
            return Err(Error::Unavailable(
                "a rebalance is already in progress; finish it before another membership change"
                    .into(),
            ));
        }
        let i = self.backends.len();
        // Durable goal first (the `restart-begin` discipline): a crash
        // anywhere past this append recovers into the widened cluster
        // and re-plans the remaining moves.
        self.log_append(LogRecord::AddBackend { backend: i })?;
        self.grow_cluster(i + 1);
        self.unwrapping = true;
        self.replan_add(i);
        self.maybe_snapshot();
        Ok(i)
    }

    /// Drain backend `i` out of the cluster online — the simulated twin
    /// of [`crate::Controller::drain_backend`]. Re-draining an
    /// already-draining backend is a no-op.
    pub fn drain_backend(&mut self, i: usize) -> Result<()> {
        if i >= self.backends.len() {
            return Err(Error::Internal(format!("no such backend {i}")));
        }
        if self.draining.contains(&i) {
            return Ok(());
        }
        if !self.alive[i] {
            return Err(Error::Unavailable(format!("backend {i} is not serving")));
        }
        if !self.rebalance_idle() {
            return Err(Error::Unavailable(
                "a rebalance is already in progress; finish it before another membership change"
                    .into(),
            ));
        }
        if self.alive_count() <= self.replication {
            return Err(Error::Unavailable(format!(
                "draining backend {i} would leave fewer serving backends than replication {}",
                self.replication
            )));
        }
        self.log_append(LogRecord::DrainBegin { backend: i })?;
        self.draining.insert(i);
        self.replan_drain(i);
        self.maybe_snapshot();
        Ok(())
    }

    /// Perform one queued rebalance job (one move *chunk*, or a finish
    /// marker). `Ok(true)` = a job ran; `Ok(false)` = the queue is
    /// empty. A move with chunks still to go — and any failed job —
    /// goes back to the *front* so a finish marker can never overtake
    /// the moves it commits.
    pub fn rebalance_step(&mut self) -> Result<bool> {
        let Some(job) = self.rebalancer.pop() else { return Ok(false) };
        let result = match &job {
            MoveJob::Move { from, to } => {
                let (from, to) = (from.clone(), to.clone());
                self.move_group(&from, &to).map(|done| !done)
            }
            MoveJob::FinishAdd { backend } => self.finish_add(*backend).map(|()| false),
            MoveJob::FinishDrain { backend } => self.finish_drain(*backend).map(|()| false),
        };
        match result {
            Ok(more_chunks) => {
                if more_chunks {
                    self.rebalancer.requeue(job);
                }
                Ok(true)
            }
            Err(e) => {
                self.rebalancer.requeue(job);
                Err(e)
            }
        }
    }

    /// Drain the rebalance queue synchronously.
    pub fn finish_rebalance(&mut self) -> Result<()> {
        while self.rebalance_step()? {}
        self.maybe_snapshot();
        Ok(())
    }

    /// Work off up to `throttle` queued jobs behind a foreground
    /// request; an error is stashed for the next `execute` (the job
    /// stays queued).
    fn pump_rebalance(&mut self) {
        for _ in 0..self.rebalancer.throttle() {
            match self.rebalance_step() {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => {
                    self.pending_error.get_or_insert(e);
                    break;
                }
            }
        }
    }

    /// Grow every per-backend structure until the cluster is `new_n`
    /// wide; the new store replays the schema (message-counted, like
    /// the threaded controller's joining handshake).
    fn grow_cluster(&mut self, new_n: usize) {
        while self.backends.len() < new_n {
            let i = self.backends.len();
            self.backends.push(Store::new());
            self.alive.push(true);
            self.msg_counts.push(0);
            self.partitioner.grow(self.backends.len());
            for counts in self.resident.values_mut() {
                counts.push(0);
            }
            for file in self.files.clone() {
                self.msg_counts[i] += 1;
                self.totals.messages_sent += 1;
                self.backends[i].create_file(file);
            }
        }
    }

    /// Queue the unwrap moves for the add of backend `added` plus the
    /// `add-end` marker (see [`rebalance::plan_unwrap`]).
    fn replan_add(&mut self, added: usize) {
        let new_n = self.backends.len();
        let moves = rebalance::plan_unwrap(
            self.directory.groups_in_use().map(|g| g.to_vec()),
            added,
            new_n,
        );
        for (from, to) in moves {
            self.rebalancer.push(MoveJob::Move { from, to });
        }
        self.rebalancer.push(MoveJob::FinishAdd { backend: new_n - 1 });
    }

    /// Queue the moves that vacate draining backend `i` plus the
    /// `drain-end` marker (see [`rebalance::plan_drain`]).
    fn replan_drain(&mut self, i: usize) {
        let n = self.backends.len();
        let alive = &self.alive;
        let draining = &self.draining;
        let moves = rebalance::plan_drain(
            self.directory.groups_in_use().map(|g| g.to_vec()),
            i,
            n,
            |b| alive[b] && !draining.contains(&b),
        );
        for (from, to) in moves {
            self.rebalancer.push(MoveJob::Move { from, to });
        }
        self.rebalancer.push(MoveJob::FinishDrain { backend: i });
    }

    /// Re-derive the whole rebalance queue from durable state — called
    /// after recovery replay. Moves that committed before the crash no
    /// longer match the planners' predicates and drop out.
    pub(crate) fn replan_rebalance(&mut self) {
        self.rebalancer.clear();
        let n = self.backends.len();
        if self.unwrapping && n > 1 {
            self.replan_add(n - 1);
        }
        let draining: Vec<usize> = self.draining.iter().copied().collect();
        for i in draining {
            self.replan_drain(i);
        }
    }

    /// Relocate one *chunk* (up to
    /// [`rebalance::DEFAULT_MOVE_CHUNK`]) of replica group `from` to
    /// `to` under a `move-begin` … `move-end` WAL bracket (one group
    /// commit). Idempotent: a `from` group nothing points at is a
    /// silent no-op. Returns `Ok(true)` when the group is fully
    /// vacated, `Ok(false)` when more chunks remain.
    fn move_group(&mut self, from: &[usize], to: &[usize]) -> Result<bool> {
        let mut keys = self.directory.keys_of_group(from);
        if keys.is_empty() {
            return Ok(true);
        }
        let done = keys.len() <= rebalance::DEFAULT_MOVE_CHUNK;
        keys.truncate(rebalance::DEFAULT_MOVE_CHUNK);
        self.wal_begin_batch();
        let result = self.move_group_inner(from, to, &keys);
        let flush = self.wal_commit_batch();
        result?;
        flush?;
        Ok(done)
    }

    fn move_group_inner(&mut self, from: &[usize], to: &[usize], keys: &[DbKey]) -> Result<()> {
        self.log_append(LogRecord::MoveBegin {
            from: from.to_vec(),
            to: to.to_vec(),
            keys: keys.iter().map(|k| k.0).collect(),
        })?;
        let added: Vec<usize> = to.iter().copied().filter(|m| !from.contains(m)).collect();
        let removed: Vec<usize> = from.iter().copied().filter(|m| !to.contains(m)).collect();
        // Pull one surviving copy of each chunk record from the group's
        // alive members — key-scoped, never a file scan.
        let sources: Vec<usize> = from.iter().copied().filter(|&m| self.alive[m]).collect();
        let mut moved: Vec<(DbKey, Record)> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        for &m in &sources {
            let wanted = keys.to_vec();
            let mut extra = 0.0;
            if let Some(result) = self.deliver(m, &mut extra, move |b| {
                let records: Vec<(DbKey, Record)> = wanted
                    .iter()
                    .filter_map(|&k| b.record_by_key(k).map(|r| (k, r.clone())))
                    .collect();
                Ok(Response::with_records(records, Default::default()))
            }) {
                for (key, rec) in result?.into_records() {
                    if seen.insert(key.0) {
                        moved.push((key, rec));
                    }
                }
            }
        }
        moved.sort_by_key(|(k, _)| k.0);
        // Copy to the members the move adds …
        let mut busy = vec![0.0; self.backends.len()];
        for (key, rec) in &moved {
            let bytes = rec.to_string().len() as u64;
            for &m in &added {
                if !self.alive[m] {
                    continue;
                }
                let mut extra = 0.0;
                let (key, rec) = (*key, rec.clone());
                if let Some(result) = self.deliver(m, &mut extra, move |b| {
                    b.insert_with_key(key, rec)
                        .map(|()| Response::with_affected(1, Default::default()))
                }) {
                    result?;
                }
                busy[m] += self.cost.block_time_us + extra;
                self.totals.move_bytes += bytes;
            }
            if let Some(file) = rec.file().map(str::to_owned) {
                self.resident_add(&file, &added);
                self.resident_remove(&file, &removed);
            }
        }
        // … physically remove from the members it abandons (a stale
        // copy would be resurrected by the next broadcast read) …
        for &m in &removed {
            if !self.alive[m] {
                continue;
            }
            let mut extra = 0.0;
            let keys = keys.to_vec();
            let _ = self.deliver(m, &mut extra, move |b| {
                let gone = keys.iter().filter(|&&k| b.remove_by_key(k).is_some()).count();
                Ok(Response::with_affected(gone, Default::default()))
            });
        }
        self.charge(&busy);
        // … and only then commit the new placement: per-key rebinds
        // while the group still holds keys outside the chunk, a
        // whole-group retarget when this chunk empties it (the same
        // commit rule as the threaded controller, so every redo path
        // converges on byte-identical directory state).
        let live_in_chunk =
            keys.iter().filter(|k| self.directory.get(k).is_some_and(|g| g == from)).count();
        let remaining = self.directory.group_live_entries(from) > live_in_chunk as u64;
        if remaining {
            for key in keys {
                self.directory.insert(*key, to.to_vec());
            }
        } else if self.directory.retarget(from, to.to_vec()) > 0 {
            self.totals.groups_moved += 1;
        }
        self.log_append(LogRecord::MoveEnd { from: from.to_vec(), to: to.to_vec() })
    }

    /// Commit an online add: every unwrap move is done.
    fn finish_add(&mut self, backend: usize) -> Result<()> {
        self.log_append(LogRecord::AddEnd { backend })?;
        self.unwrapping = false;
        Ok(())
    }

    /// Retire a drained backend: every group containing it has moved
    /// off. `drain-end` (not `dead`) records the retirement.
    fn finish_drain(&mut self, backend: usize) -> Result<()> {
        self.log_append(LogRecord::DrainEnd { backend })?;
        self.draining.remove(&backend);
        self.retire_backend(backend);
        Ok(())
    }

    /// The simulated analogue of the threaded controller's
    /// `shutdown_backend`: the store goes away without a `dead` log
    /// record — callers decide how the death is recorded.
    fn retire_backend(&mut self, i: usize) {
        if i < self.alive.len() {
            self.alive[i] = false;
            self.retired.insert(i);
        }
    }

    /// The placement-independent projection of the cluster's contents
    /// (see [`crate::Controller::logical_digest`]): two clusters of
    /// different shapes holding the same data produce equal logical
    /// digests.
    pub fn logical_digest(&self) -> String {
        crate::controller::logical_digest_of(&self.snapshot_data())
    }
}

impl Kernel for SimCluster {
    fn create_file(&mut self, name: &str) {
        if !self.files.iter().any(|f| f == name) {
            self.files.push(name.to_owned());
        }
        for i in 0..self.backends.len() {
            if !self.alive[i] {
                continue;
            }
            let name = name.to_owned();
            let mut extra = 0.0;
            let _ = self.deliver(i, &mut extra, move |b| {
                b.create_file(name);
                Ok(Response::default())
            });
        }
        self.log_append_stashing(LogRecord::CreateFile { name: name.to_owned() });
        self.maybe_snapshot();
    }

    fn add_unique_constraint(&mut self, file: &str, attrs: Vec<String>) {
        self.register_unique(file, attrs.clone());
        self.log_append_stashing(LogRecord::Unique { file: file.to_owned(), attrs });
    }

    fn reserve_key(&mut self) -> DbKey {
        let key = self.alloc_key();
        self.log_append_stashing(LogRecord::ReserveKey { key: key.0 });
        key
    }

    fn execute(&mut self, request: &Request) -> Result<Response> {
        if let Some(e) = self.pending_error.take() {
            return Err(e);
        }
        self.totals.requests += 1;
        let msgs_before = self.totals.messages_sent;
        let mut resp = self.execute_inner(request)?;
        resp.messages_sent = self.totals.messages_sent - msgs_before;
        self.totals.records_examined += resp.stats.records_examined;
        // Piggyback up to `throttle` queued rebalance moves on this
        // foreground request, after the message attribution above so
        // move traffic never pollutes the response's own counters.
        self.pump_rebalance();
        self.maybe_snapshot();
        Ok(resp)
    }

    fn execute_transaction(&mut self, txn: &Transaction) -> Result<Vec<Response>> {
        // Group commit: one sync for the whole transaction's appends
        // (a durability optimisation, not atomicity — mirrors the
        // threaded controller).
        self.wal_begin_batch();
        let result: Result<Vec<Response>> = txn.requests.iter().map(|r| self.execute(r)).collect();
        let flush = self.wal_commit_batch();
        let out = result?;
        flush?;
        Ok(out)
    }

    fn execute_batch(&mut self, requests: &[Request]) -> Vec<Result<Response>> {
        // Mirror of the threaded controller's conflict scheduler: the
        // simulator walks the same footprint algebra and counts the
        // same flights/stalls, but executes members serially — the
        // cost model already charges backend work as if concurrent
        // members overlapped (per-backend busy times are maxed, not
        // summed), so only the accounting needs mirroring here.
        if requests.len() < 2 {
            return requests.iter().map(|r| self.execute(r)).collect();
        }
        self.totals.batched_requests += requests.len() as u64;
        self.wal_begin_batch();
        let mut results = Vec::with_capacity(requests.len());
        // An in-flight group move is a standing broadcast-write
        // conflict: while the rebalance queue is non-empty the
        // scheduler refuses to stage flights at all, mirroring the
        // threaded controller's stall accounting.
        let rebalancing = !self.rebalancer.is_idle();
        if rebalancing {
            self.totals.rebalance_stalls += requests.len() as u64;
        }
        let mut i = 0;
        while i < requests.len() {
            let mut flight_fps: Vec<crate::sched::Footprint> = Vec::new();
            let mut j = i;
            while !rebalancing && j < requests.len() {
                let flyable = matches!(
                    requests[j],
                    Request::Insert { .. } | Request::Retrieve { .. }
                );
                if !flyable {
                    break;
                }
                let fp = crate::sched::Footprint::of(&requests[j], &self.unique_groups);
                if fp.broadcast && fp.write {
                    break;
                }
                if flight_fps.iter().any(|f| f.conflicts(&fp)) {
                    self.totals.conflict_stalls += 1;
                    break;
                }
                flight_fps.push(fp);
                j += 1;
            }
            if j - i >= 2 {
                let reads = requests[i..j]
                    .iter()
                    .filter(|r| matches!(r, Request::Retrieve { .. }))
                    .count();
                self.totals.sched_flights += 1;
                if reads == j - i {
                    self.totals.sched_read_flights += 1;
                } else if reads > 0 {
                    self.totals.sched_mixed_flights += 1;
                }
                self.totals.sched_max_flight =
                    self.totals.sched_max_flight.max((j - i) as u64);
            }
            for r in &requests[i..j.max(i + 1)] {
                results.push(self.execute(r));
            }
            i = j.max(i + 1);
        }
        if let Err(e) = self.wal_commit_batch() {
            for (req, result) in requests.iter().zip(results.iter_mut()) {
                let mutating = matches!(
                    req,
                    Request::Insert { .. } | Request::Delete { .. } | Request::Update { .. }
                );
                if mutating && result.is_ok() {
                    *result = Err(e.clone());
                }
            }
            self.pending_error.get_or_insert(e);
        }
        self.maybe_snapshot();
        results
    }

    fn exec_totals(&self) -> ExecTotals {
        let mut totals = self.totals;
        if let Some(wal) = &self.wal {
            let WalStats { appends, batches, syncs, snapshot_installs, max_batch } = wal.stats();
            totals.wal_appends = appends;
            totals.wal_batches = batches;
            totals.wal_syncs = syncs;
            totals.wal_snapshots = snapshot_installs;
            totals.wal_max_batch = max_batch;
        }
        totals
    }

    fn health(&self) -> KernelHealth {
        let unavailable: Vec<usize> =
            (0..self.alive.len()).filter(|&i| !self.alive[i]).collect();
        let degraded = self
            .directory
            .groups_in_use()
            .any(|group| group.iter().all(|&r| !self.alive[r]));
        KernelHealth { backends: self.backends.len(), unavailable, degraded }
    }
}

impl SimCluster {
    /// The request dispatcher behind [`Kernel::execute`], shared with
    /// WAL replay.
    fn execute_inner(&mut self, request: &Request) -> Result<Response> {
        match request {
            Request::Insert { record } => {
                let resp = self.insert(record)?;
                Ok(self.finalize(resp))
            }
            Request::Delete { query } => {
                // Logical affected set *before* the round mutates it;
                // the pre-images feed the index/residency bookkeeping.
                let targets = self.route_targets(query);
                let matched = self.matching_records(query, targets.as_deref())?;
                let resp = self.send_round(request, targets.as_deref())?;
                for (k, rec) in &matched {
                    if let Some(group) = self.directory.remove(k) {
                        if let Some(file) = rec.file().map(str::to_owned) {
                            self.resident_remove(&file, &group);
                        }
                    }
                    self.index_remove(*k, rec);
                }
                self.log_append(LogRecord::Exec { request: request.clone() })?;
                let out = Response::with_affected(matched.len(), resp.stats);
                Ok(self.finalize(out))
            }
            Request::Update { query, modifier } => {
                let targets = self.route_targets(query);
                let matched = self.matching_records(query, targets.as_deref())?;
                let resp = self.send_round(request, targets.as_deref())?;
                for (k, rec) in &matched {
                    self.index_update(*k, rec, &modifier.attr, &modifier.value);
                }
                self.log_append(LogRecord::Exec { request: request.clone() })?;
                let out = Response::with_affected(matched.len(), resp.stats);
                Ok(self.finalize(out))
            }
            Request::Retrieve { query, target, by } if target.has_aggregates() => {
                let targets = self.route_targets(query);
                let rows =
                    self.send_round(&Request::retrieve_all(query.clone()), targets.as_deref())?;
                let mut stats = rows.stats;
                let groups = aggregate(rows.records(), target, by.as_deref())?;
                stats.records_returned = groups.len() as u64;
                let mut resp = Response::with_records(Vec::new(), stats);
                resp.groups = Some(groups);
                Ok(self.finalize(resp))
            }
            Request::RetrieveCommon { left, left_attr, right, right_attr, target } => {
                // Matching halves may live on different backends; join
                // at the controller over the merged partials (same
                // scratch-store technique as the threaded controller).
                // Each half routes independently.
                let lt = self.route_targets(left);
                let l = self.send_round(&Request::retrieve_all(left.clone()), lt.as_deref())?;
                let rt = self.route_targets(right);
                let r = self.send_round(&Request::retrieve_all(right.clone()), rt.as_deref())?;
                let mut joiner = Store::new();
                for (key, rec) in l.records() {
                    let mut rec = rec.clone();
                    rec.set(abdl::FILE_ATTR, abdl::Value::str("__mbds_left"));
                    joiner.insert_with_key(DbKey(key.0 * 2), rec)?;
                }
                for (key, rec) in r.records() {
                    let mut rec = rec.clone();
                    rec.set(abdl::FILE_ATTR, abdl::Value::str("__mbds_right"));
                    joiner.insert_with_key(DbKey(key.0 * 2 + 1), rec)?;
                }
                let mut stats = l.stats;
                stats += r.stats;
                let joined = joiner.execute(&Request::RetrieveCommon {
                    left: abdl::Query::conjunction(vec![abdl::Predicate::eq(
                        abdl::FILE_ATTR,
                        "__mbds_left",
                    )]),
                    left_attr: left_attr.clone(),
                    right: abdl::Query::conjunction(vec![abdl::Predicate::eq(
                        abdl::FILE_ATTR,
                        "__mbds_right",
                    )]),
                    right_attr: right_attr.clone(),
                    target: target.clone(),
                })?;
                let mut out = joined;
                out.stats += stats;
                Ok(self.finalize(out))
            }
            other => {
                let targets = match other {
                    Request::Retrieve { query, .. } => self.route_targets(query),
                    _ => None,
                };
                let resp = self.send_round(other, targets.as_deref())?;
                Ok(self.finalize(resp))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abdl::parse::parse_request;
    use abdl::Value;

    fn load(cluster: &mut SimCluster, records: usize) {
        cluster.create_file("f");
        for i in 0..records {
            let mut rec = Record::from_pairs([("FILE", Value::str("f"))]);
            rec.set("f", Value::Int(i as i64));
            rec.set("m", Value::Int((i % 10) as i64));
            cluster.execute(&Request::Insert { record: rec }).unwrap();
        }
        cluster.reset_clock();
    }

    /// Cost model for the shape tests: realistic disk and bus, light
    /// record forwarding so the curve is dominated by the disk phase
    /// (the MBDS papers' regime of large responses is benched in E7/E8).
    fn shape_cost() -> CostModel {
        CostModel { block_time_us: 30_000.0, msg_time_us: 2_000.0, record_time_us: 10.0 }
    }

    /// The simulator's batch path mirrors the threaded controller's
    /// scheduler accounting (flights, read/mixed split, stalls) while
    /// producing exactly the serial answers.
    #[test]
    fn batch_mirrors_scheduler_accounting_and_serial_results() {
        let mut cluster = SimCluster::new(4);
        cluster.create_file("f");
        cluster.add_unique_constraint("f", vec!["f".into()]);
        for i in 0..8 {
            let mut rec = Record::from_pairs([("FILE", Value::str("f"))]);
            rec.set("f", Value::Int(i));
            cluster.execute(&Request::Insert { record: rec }).unwrap();
        }
        let mut batch = vec![
            // Read-only flight: two key-scoped reads plus a broadcast scan.
            parse_request("RETRIEVE ((FILE = f) and (f = 1)) (*)").unwrap(),
            parse_request("RETRIEVE ((FILE = f) and (f = 2)) (*)").unwrap(),
            parse_request("RETRIEVE (FILE = f) (*)").unwrap(),
            // A delete closes the flight (not flyable).
            parse_request("DELETE ((FILE = f) and (f = 7))").unwrap(),
        ];
        // Mixed flight: key-disjoint insert + key-scoped read.
        let mut rec = Record::from_pairs([("FILE", Value::str("f"))]);
        rec.set("f", Value::Int(100));
        batch.push(Request::Insert { record: rec });
        batch.push(parse_request("RETRIEVE ((FILE = f) and (f = 3)) (*)").unwrap());
        let results = cluster.execute_batch(&batch);
        assert!(results.iter().all(|r| r.is_ok()), "{results:?}");
        assert_eq!(results[2].as_ref().unwrap().records().len(), 8);
        let t = cluster.exec_totals();
        assert_eq!(t.sched_flights, 2);
        assert_eq!(t.sched_read_flights, 1);
        assert_eq!(t.sched_mixed_flights, 1);
        assert_eq!(t.batched_requests, 6);
    }

    /// Claim 1: fixed database, growing backends → response time falls
    /// nearly reciprocally. The selection predicate is a key range,
    /// which round-robin placement spreads evenly over any backend
    /// count. Unreplicated — the claim is about partitioning.
    #[test]
    fn response_time_falls_reciprocally_with_backends() {
        let query = parse_request("RETRIEVE ((FILE = f) and (f < 4000)) (*)").unwrap();
        let mut times = Vec::new();
        for n in [1usize, 2, 4, 8] {
            let mut cluster = SimCluster::with_config(n, 1, shape_cost());
            load(&mut cluster, 40_000);
            cluster.execute(&query).unwrap();
            times.push(cluster.last_response_us());
        }
        // Each doubling of backends should cut the time by a factor
        // approaching 2 (bounded below by bus/merge overhead).
        for w in times.windows(2) {
            let speedup = w[0] / w[1];
            assert!(
                speedup > 1.5 && speedup <= 2.1,
                "expected near-2x speedup per doubling, got {speedup:.2} ({times:?})"
            );
        }
        // Overall 1→8 speedup is close to 8 but below it (overhead).
        let overall = times[0] / times[3];
        assert!(overall > 5.0 && overall < 8.0, "1→8 backends speedup {overall:.2}");
    }

    /// Claim 2: database and backends grow proportionally → response
    /// time is invariant.
    #[test]
    fn response_time_invariant_under_proportional_growth() {
        let mut times = Vec::new();
        for n in [1usize, 2, 4, 8] {
            let query =
                parse_request(&format!("RETRIEVE ((FILE = f) and (f < {})) (*)", 100 * n))
                    .unwrap();
            let mut cluster = SimCluster::with_config(n, 1, shape_cost());
            load(&mut cluster, 1_000 * n);
            cluster.execute(&query).unwrap();
            times.push(cluster.last_response_us());
        }
        let base = times[0];
        for (i, t) in times.iter().enumerate() {
            let ratio = t / base;
            assert!(
                (0.9..=1.25).contains(&ratio),
                "response time drifted at step {i}: ratio {ratio:.3} ({times:?})"
            );
        }
    }

    /// The simulator returns exactly the same answers as a single
    /// store — simulation (and replication) only changes the clock.
    #[test]
    fn sim_results_match_single_store() {
        let mut single = Store::new();
        single.create_file("f");
        let mut sim = SimCluster::new(6);
        sim.create_file("f");
        for i in 0..60i64 {
            let mut rec = Record::from_pairs([("FILE", Value::str("f"))]);
            rec.set("f", Value::Int(i));
            rec.set("m", Value::Int(i % 7));
            single.execute(&Request::Insert { record: rec.clone() }).unwrap();
            sim.execute(&Request::Insert { record: rec }).unwrap();
        }
        for q in [
            "RETRIEVE ((FILE = f) and (m = 4)) (f)",
            "RETRIEVE (FILE = f) (AVG(f)) BY m",
            "DELETE ((FILE = f) and (m = 0))",
            "RETRIEVE (FILE = f) (COUNT(f))",
        ] {
            let a = single.execute(&parse_request(q).unwrap()).unwrap();
            let b = sim.execute(&parse_request(q).unwrap()).unwrap();
            assert_eq!(a.records(), b.records(), "for {q}");
            assert_eq!(a.groups, b.groups, "for {q}");
            assert_eq!(a.affected, b.affected, "for {q}");
        }
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let mut cluster = SimCluster::new(2);
        load(&mut cluster, 100);
        assert_eq!(cluster.total_us(), 0.0);
        cluster.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert!(cluster.last_response_us() > 0.0);
        assert_eq!(cluster.total_us(), cluster.last_response_us());
        assert_eq!(cluster.requests_executed(), 1);
    }

    #[test]
    fn kill_and_restart_mirror_the_threaded_controller() {
        let mut sim = SimCluster::new(4);
        load(&mut sim, 20);
        sim.kill_backend(2);
        let resp = sim.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert_eq!(resp.records().len(), 20, "replication keeps every record answerable");
        assert!(!resp.degraded);
        assert_eq!(resp.unavailable_backends, vec![2]);

        let before = sim.total_us();
        sim.restart_backend(2).unwrap();
        assert!(sim.total_us() > before, "recovery costs simulated time");
        assert!(!sim.health().degraded);

        // Redundancy is restored: a second, different failure loses
        // nothing.
        sim.kill_backend(3);
        let resp = sim.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert_eq!(resp.records().len(), 20, "second failure after recovery loses nothing");
        assert!(!resp.degraded);
    }

    #[test]
    fn losing_a_whole_replica_group_is_degraded_not_silent() {
        let mut sim = SimCluster::new(4);
        load(&mut sim, 20);
        sim.kill_backend(1);
        sim.kill_backend(2);
        let resp = sim.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert!(resp.records().len() < 20);
        assert!(resp.degraded, "partial answers must be flagged");
        assert_eq!(resp.unavailable_backends, vec![1, 2]);
    }

    #[test]
    fn seeded_fault_plans_are_bit_identical_across_runs() {
        let run = || {
            let mut sim = SimCluster::new(5);
            sim.set_fault_plan(FaultPlan::seeded(7, 5, 40));
            sim.create_file("f");
            let mut out = Vec::new();
            for i in 0..30i64 {
                let mut rec = Record::from_pairs([("FILE", Value::str("f"))]);
                rec.set("f", Value::Int(i));
                let _ = sim.execute(&Request::Insert { record: rec });
                if i % 5 == 0 {
                    let resp = sim
                        .execute(&parse_request("RETRIEVE (FILE = f) (COUNT(f))").unwrap())
                        .unwrap();
                    out.push(format!("{:?} {:?}", resp.groups, resp.unavailable_backends));
                }
            }
            out
        };
        assert_eq!(run(), run(), "same seed, same failure schedule, same answers");
    }

    /// A durable simulator rebuilt from its log equals the live one:
    /// same state digest, key high-water mark and query answers.
    #[test]
    fn durable_sim_cluster_rebuilds_identically_from_the_log() {
        let log = crate::wal::MemLog::new();
        let mut sim =
            SimCluster::durable_with(4, 2, CostModel::default(), log.clone()).unwrap();
        sim.create_file("f");
        sim.add_unique_constraint("f", vec!["f".to_owned()]);
        for i in 0..15i64 {
            let mut rec = Record::from_pairs([("FILE", Value::str("f"))]);
            rec.set("f", Value::Int(i));
            sim.execute(&Request::Insert { record: rec }).unwrap();
        }
        sim.execute(&parse_request("UPDATE ((FILE = f) and (f < 3)) (m = 1)").unwrap())
            .unwrap();
        sim.execute(&parse_request("DELETE ((FILE = f) and (f = 9))").unwrap()).unwrap();
        sim.kill_backend(1);
        sim.restart_backend(1).unwrap();
        let _ = sim.reserve_key();

        let mut back = SimCluster::recover_with(CostModel::default(), log).unwrap();
        assert_eq!(back.state_digest(), sim.state_digest());
        assert_eq!(back.key_high_water(), sim.key_high_water());
        for q in ["RETRIEVE (FILE = f) (*)", "RETRIEVE (m = 1) (COUNT(f))"] {
            let want = sim.execute(&parse_request(q).unwrap()).unwrap();
            let got = back.execute(&parse_request(q).unwrap()).unwrap();
            assert_eq!(got.records(), want.records(), "query {q}");
            assert_eq!(got.groups, want.groups, "query {q}");
        }
    }

    /// Snapshots compact the sim log without changing recovery.
    #[test]
    fn sim_snapshots_compact_and_preserve_recovery() {
        let log = crate::wal::MemLog::new();
        let mut sim =
            SimCluster::durable_with(3, 2, CostModel::default(), log.clone()).unwrap();
        sim.set_snapshot_every(6);
        sim.create_file("f");
        for i in 0..20i64 {
            let mut rec = Record::from_pairs([("FILE", Value::str("f"))]);
            rec.set("f", Value::Int(i));
            sim.execute(&Request::Insert { record: rec }).unwrap();
        }
        assert!(log.log_len() < 20, "snapshots should truncate the log");
        let back = SimCluster::recover_with(CostModel::default(), log).unwrap();
        assert_eq!(back.state_digest(), sim.state_digest());
    }
}
