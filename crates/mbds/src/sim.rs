//! The deterministic simulated-time twin of the controller.
//!
//! Wall-clock benchmarking of the threaded controller on a single
//! shared-memory machine cannot exhibit *disk* parallelism — all
//! backends contend for the same CPU and there are no disks. The cost
//! model recovers the quantity the MBDS claims are about: per-request
//! response time composed of bus messages, the *maximum* of the
//! backends' disk times (they run in parallel), and result merging at
//! the controller.
//!
//! ```text
//! response_time = t_broadcast
//!               + max_i (blocks_touched_i × block_time
//!                        + records_returned_i × record_time)
//!               + n_backends × msg_time            (per-backend reply)
//! ```
//!
//! Result forwarding is charged *inside* the parallel phase: each
//! backend transmits its own partial result concurrently with the
//! others (MBDS backends have private channels to the controller), so
//! growing the response size proportionally with the backends leaves
//! the per-backend phase — and the response time — invariant.
//!
//! The parameters are calibrated to 1980s hardware orders of magnitude
//! (a ~30 ms track read, millisecond-scale bus messages); only the
//! *shape* of the curves matters for the reproduction.

use crate::placement::Partitioner;
use abdl::engine::aggregate;
use abdl::{DbKey, Error, Kernel, Record, Request, Response, Result, Store};
use std::collections::HashMap;

/// Cost-model parameters (microseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Time to read one data block from a backend's disk.
    pub block_time_us: f64,
    /// Time for one controller↔backend bus message.
    pub msg_time_us: f64,
    /// Per-record cost of merging/forwarding results to the host.
    pub record_time_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // A late-1980s minicomputer disk reads a ~16-record block in
        // ~30 ms; the parallel bus delivers a message in ~2 ms; record
        // forwarding costs ~0.2 ms each.
        CostModel { block_time_us: 30_000.0, msg_time_us: 2_000.0, record_time_us: 200.0 }
    }
}

/// A serial, deterministic N-backend kernel with simulated response
/// times. Implements [`Kernel`], so whole MLDS workloads run on it.
pub struct SimCluster {
    backends: Vec<Store>,
    partitioner: Partitioner,
    next_key: u64,
    cost: CostModel,
    unique_groups: HashMap<String, Vec<Vec<String>>>,
    /// Simulated time of the last executed request (µs).
    last_response_us: f64,
    /// Accumulated simulated time (µs).
    total_us: f64,
    requests_executed: u64,
}

impl SimCluster {
    /// A cluster of `n` backends with the default cost model.
    pub fn new(n: usize) -> Self {
        SimCluster::with_cost(n, CostModel::default())
    }

    /// A cluster of `n` backends with an explicit cost model.
    pub fn with_cost(n: usize, cost: CostModel) -> Self {
        assert!(n > 0, "MBDS needs at least one backend");
        SimCluster {
            backends: (0..n).map(|_| Store::new()).collect(),
            partitioner: Partitioner::new(n),
            next_key: 1,
            cost,
            unique_groups: HashMap::new(),
            last_response_us: 0.0,
            total_us: 0.0,
            requests_executed: 0,
        }
    }

    /// Number of backends.
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// Simulated response time of the most recent request, µs.
    pub fn last_response_us(&self) -> f64 {
        self.last_response_us
    }

    /// Total simulated time across all requests, µs.
    pub fn total_us(&self) -> f64 {
        self.total_us
    }

    /// Requests executed so far.
    pub fn requests_executed(&self) -> u64 {
        self.requests_executed
    }

    /// Reset the clocks (not the data).
    pub fn reset_clock(&mut self) {
        self.last_response_us = 0.0;
        self.total_us = 0.0;
        self.requests_executed = 0;
    }

    /// Total records stored.
    pub fn len(&self) -> usize {
        self.backends.iter().map(Store::len).sum()
    }

    /// True when no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn charge(&mut self, busy_us_per_backend: &[f64]) {
        let parallel = busy_us_per_backend.iter().copied().fold(0.0f64, f64::max);
        let n = self.backends.len() as f64;
        let t = self.cost.msg_time_us // broadcast on the bus
            + parallel                 // disk + result forwarding, max over backends
            + n * self.cost.msg_time_us; // per-backend replies
        self.last_response_us = t;
        self.total_us += t;
        self.requests_executed += 1;
    }

    fn broadcast(&mut self, request: &Request) -> Result<Response> {
        let mut merged = Response::default();
        let mut busy = Vec::with_capacity(self.backends.len());
        for b in &mut self.backends {
            let resp = b.execute(request)?;
            busy.push(
                resp.stats.blocks_touched as f64 * self.cost.block_time_us
                    + resp.stats.records_returned as f64 * self.cost.record_time_us,
            );
            merged.merge(resp);
        }
        self.charge(&busy);
        Ok(merged)
    }

    fn check_unique(&mut self, record: &Record) -> Result<()> {
        let Some(file) = record.file() else {
            return Err(Error::MissingFileKeyword);
        };
        let groups = match self.unique_groups.get(file) {
            Some(g) => g.clone(),
            None => return Ok(()),
        };
        for group in groups {
            if !group.iter().all(|a| record.get(a).is_some()) {
                continue;
            }
            let query = abdl::Query::conjunction(
                std::iter::once(abdl::Predicate::eq(abdl::FILE_ATTR, abdl::Value::str(file)))
                    .chain(group.iter().map(|a| {
                        abdl::Predicate::eq(a.clone(), record.get(a).expect("present").clone())
                    }))
                    .collect(),
            );
            let hits = self.broadcast(&Request::retrieve_all(query))?;
            if !hits.records().is_empty() {
                return Err(Error::DuplicateKey { file: file.to_owned(), attrs: group });
            }
        }
        Ok(())
    }
}

impl Kernel for SimCluster {
    fn create_file(&mut self, name: &str) {
        for b in &mut self.backends {
            b.create_file(name);
        }
    }

    fn add_unique_constraint(&mut self, file: &str, attrs: Vec<String>) {
        self.unique_groups.entry(file.to_owned()).or_default().push(attrs);
    }

    fn reserve_key(&mut self) -> DbKey {
        let key = DbKey(self.next_key);
        self.next_key += 1;
        key
    }

    fn execute(&mut self, request: &Request) -> Result<Response> {
        match request {
            Request::Insert { record } => {
                self.check_unique(record)?;
                let file = record.file().ok_or(Error::MissingFileKeyword)?.to_owned();
                let key = self.reserve_key();
                let target = self.partitioner.place(&file);
                self.backends[target].insert_with_key(key, record.clone())?;
                // One message out, one block written, one ack.
                let mut busy = vec![0.0; self.backends.len()];
                busy[target] = self.cost.block_time_us;
                self.charge(&busy);
                Ok(Response::with_affected(1, Default::default()))
            }
            Request::Retrieve { query, target, by } if target.has_aggregates() => {
                let rows = self.broadcast(&Request::retrieve_all(query.clone()))?;
                let mut stats = rows.stats;
                let groups = aggregate(rows.records(), target, by.as_deref())?;
                stats.records_returned = groups.len() as u64;
                let mut resp = Response::with_records(Vec::new(), stats);
                resp.groups = Some(groups);
                Ok(resp)
            }
            other => self.broadcast(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abdl::parse::parse_request;
    use abdl::Value;

    fn load(cluster: &mut SimCluster, records: usize) {
        cluster.create_file("f");
        for i in 0..records {
            let mut rec = Record::from_pairs([("FILE", Value::str("f"))]);
            rec.set("f", Value::Int(i as i64));
            rec.set("m", Value::Int((i % 10) as i64));
            cluster.execute(&Request::Insert { record: rec }).unwrap();
        }
        cluster.reset_clock();
    }

    /// Cost model for the shape tests: realistic disk and bus, light
    /// record forwarding so the curve is dominated by the disk phase
    /// (the MBDS papers' regime of large responses is benched in E7/E8).
    fn shape_cost() -> CostModel {
        CostModel { block_time_us: 30_000.0, msg_time_us: 2_000.0, record_time_us: 10.0 }
    }

    /// Claim 1: fixed database, growing backends → response time falls
    /// nearly reciprocally. The selection predicate is a key range,
    /// which round-robin placement spreads evenly over any backend
    /// count.
    #[test]
    fn response_time_falls_reciprocally_with_backends() {
        let query = parse_request("RETRIEVE ((FILE = f) and (f < 4000)) (*)").unwrap();
        let mut times = Vec::new();
        for n in [1usize, 2, 4, 8] {
            let mut cluster = SimCluster::with_cost(n, shape_cost());
            load(&mut cluster, 40_000);
            cluster.execute(&query).unwrap();
            times.push(cluster.last_response_us());
        }
        // Each doubling of backends should cut the time by a factor
        // approaching 2 (bounded below by bus/merge overhead).
        for w in times.windows(2) {
            let speedup = w[0] / w[1];
            assert!(
                speedup > 1.5 && speedup <= 2.1,
                "expected near-2x speedup per doubling, got {speedup:.2} ({times:?})"
            );
        }
        // Overall 1→8 speedup is close to 8 but below it (overhead).
        let overall = times[0] / times[3];
        assert!(overall > 5.0 && overall < 8.0, "1→8 backends speedup {overall:.2}");
    }

    /// Claim 2: database and backends grow proportionally → response
    /// time is invariant.
    #[test]
    fn response_time_invariant_under_proportional_growth() {
        let mut times = Vec::new();
        for n in [1usize, 2, 4, 8] {
            let query =
                parse_request(&format!("RETRIEVE ((FILE = f) and (f < {})) (*)", 100 * n))
                    .unwrap();
            let mut cluster = SimCluster::with_cost(n, shape_cost());
            load(&mut cluster, 1_000 * n);
            cluster.execute(&query).unwrap();
            times.push(cluster.last_response_us());
        }
        let base = times[0];
        for (i, t) in times.iter().enumerate() {
            let ratio = t / base;
            assert!(
                (0.9..=1.25).contains(&ratio),
                "response time drifted at step {i}: ratio {ratio:.3} ({times:?})"
            );
        }
    }

    /// The simulator returns exactly the same answers as a single
    /// store — simulation only changes the clock.
    #[test]
    fn sim_results_match_single_store() {
        let mut single = Store::new();
        single.create_file("f");
        let mut sim = SimCluster::new(6);
        sim.create_file("f");
        for i in 0..60i64 {
            let mut rec = Record::from_pairs([("FILE", Value::str("f"))]);
            rec.set("f", Value::Int(i));
            rec.set("m", Value::Int(i % 7));
            single.execute(&Request::Insert { record: rec.clone() }).unwrap();
            sim.execute(&Request::Insert { record: rec }).unwrap();
        }
        for q in [
            "RETRIEVE ((FILE = f) and (m = 4)) (f)",
            "RETRIEVE (FILE = f) (AVG(f)) BY m",
            "DELETE ((FILE = f) and (m = 0))",
            "RETRIEVE (FILE = f) (COUNT(f))",
        ] {
            let a = single.execute(&parse_request(q).unwrap()).unwrap();
            let b = sim.execute(&parse_request(q).unwrap()).unwrap();
            assert_eq!(a.records(), b.records(), "for {q}");
            assert_eq!(a.groups, b.groups, "for {q}");
            assert_eq!(a.affected, b.affected, "for {q}");
        }
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let mut cluster = SimCluster::new(2);
        load(&mut cluster, 100);
        assert_eq!(cluster.total_us(), 0.0);
        cluster.execute(&parse_request("RETRIEVE (FILE = f) (*)").unwrap()).unwrap();
        assert!(cluster.last_response_us() > 0.0);
        assert_eq!(cluster.total_us(), cluster.last_response_us());
        assert_eq!(cluster.requests_executed(), 1);
    }
}
