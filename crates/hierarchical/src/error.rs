//! Errors of the hierarchical interface.

use std::fmt;

/// Convenient alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised by DL/I parsing, schema validation and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Syntax error in DBD or call text.
    Parse {
        /// What went wrong.
        msg: String,
        /// Byte offset into the source.
        offset: usize,
    },
    /// Schema validation failure.
    InvalidSchema(String),
    /// A call referenced an unknown segment type.
    UnknownSegment(String),
    /// A call referenced an unknown field of a segment.
    UnknownField {
        /// The segment searched.
        segment: String,
        /// The missing field.
        field: String,
    },
    /// A value does not fit a field's declared type.
    TypeMismatch {
        /// The segment.
        segment: String,
        /// The field.
        field: String,
        /// The declared type, rendered.
        expected: String,
        /// The offending value, rendered.
        got: String,
    },
    /// No segment satisfied the call (the IMS `GE` status).
    NotFound {
        /// The segment sought.
        segment: String,
    },
    /// A call needed positioning that is not established (no current
    /// parent / no current segment).
    NoPosition {
        /// What position was needed.
        what: String,
    },
    /// ISRT would duplicate a sequence-field value under the same
    /// parent (the IMS `II` status).
    SegmentExists {
        /// The segment type.
        segment: String,
        /// The sequence field.
        field: String,
    },
    /// Kernel-level failure.
    Kernel(abdl::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { msg, offset } => {
                write!(f, "DL/I syntax error at byte {offset}: {msg}")
            }
            Error::InvalidSchema(msg) => write!(f, "invalid hierarchical schema: {msg}"),
            Error::UnknownSegment(s) => write!(f, "unknown segment type `{s}`"),
            Error::UnknownField { segment, field } => {
                write!(f, "segment `{segment}` has no field `{field}`")
            }
            Error::TypeMismatch { segment, field, expected, got } => {
                write!(f, "value {got} does not fit `{segment}.{field}` (declared {expected})")
            }
            Error::NotFound { segment } => write!(f, "status GE: no `{segment}` satisfied the call"),
            Error::NoPosition { what } => write!(f, "no position established for {what}"),
            Error::SegmentExists { segment, field } => write!(
                f,
                "status II: a `{segment}` with that `{field}` already exists under the current parent"
            ),
            Error::Kernel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<abdl::Error> for Error {
    fn from(e: abdl::Error) -> Self {
        Error::Kernel(e)
    }
}
