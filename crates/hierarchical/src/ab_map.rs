//! The hierarchical→ABDM mapping.
//!
//! One kernel file per segment type; `<FILE, seg>`, `<seg, key>`, one
//! keyword per field, and `<{parent}_{child}, parent-key>` on child
//! segments — the member-side convention shared by every MLDS mapping.

use crate::error::{Error, Result};
use crate::schema::{FieldType, HierSchema, Segment};
use abdl::{Kernel, Value};

/// The attribute holding a segment occurrence's own key is named after
/// its segment type.
pub fn key_attr(segment: &str) -> &str {
    segment
}

/// Create the kernel files for a hierarchical schema. (Sequence-field
/// uniqueness is *within one parent*, so it is enforced by the DL/I
/// session, not by a global kernel constraint.)
pub fn install<K: Kernel>(schema: &HierSchema, kernel: &mut K) {
    for s in &schema.segments {
        kernel.create_file(&s.name);
    }
}

/// Coerce a value into a field's declared type.
pub fn coerce(segment: &Segment, field: &str, value: Value) -> Result<Value> {
    let f = segment.require_field(field)?;
    if value.is_null() {
        return Ok(Value::Null);
    }
    let mismatch = |v: &Value| Error::TypeMismatch {
        segment: segment.name.clone(),
        field: field.to_owned(),
        expected: f.typ.to_string(),
        got: v.to_string(),
    };
    match (&f.typ, value) {
        (FieldType::Int, Value::Int(i)) => Ok(Value::Int(i)),
        (FieldType::Int, Value::Float(x)) if x.fract() == 0.0 => Ok(Value::Int(x as i64)),
        (FieldType::Int, v) => Err(mismatch(&v)),
        (FieldType::Float, Value::Float(x)) => Ok(Value::Float(x)),
        (FieldType::Float, Value::Int(i)) => Ok(Value::Float(i as f64)),
        (FieldType::Float, v) => Err(mismatch(&v)),
        (FieldType::Char { len }, Value::Str(mut s)) => {
            if s.len() > *len as usize {
                s.truncate(*len as usize);
            }
            Ok(Value::Str(s))
        }
        (FieldType::Char { .. }, v) => Err(mismatch(&v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    #[test]
    fn coercion_rules() {
        let seg = Segment {
            name: "s".into(),
            parent: None,
            fields: vec![
                Field { name: "n".into(), typ: FieldType::Int },
                Field { name: "t".into(), typ: FieldType::Char { len: 3 } },
            ],
            sequence: None,
        };
        assert_eq!(coerce(&seg, "n", Value::Float(4.0)).unwrap(), Value::Int(4));
        assert!(coerce(&seg, "n", Value::str("x")).is_err());
        assert_eq!(coerce(&seg, "t", Value::str("abcdef")).unwrap(), Value::str("abc"));
        assert!(coerce(&seg, "ghost", Value::Int(1)).is_err());
    }
}
