//! DL/I calls: AST, parser, and the positional session executor.

use crate::ab_map::{coerce, key_attr};
use crate::error::{Error, Result};
use crate::lex::{Cursor, Tok};
use crate::schema::{arc_attr, HierSchema};
use abdl::{Kernel, Modifier, Predicate, Query, Record, RelOp, Request, Value, FILE_ATTR};
use std::collections::HashMap;

/// A segment search argument: a segment name plus optional field
/// qualifications.
#[derive(Debug, Clone, PartialEq)]
pub struct Ssa {
    /// The segment type.
    pub segment: String,
    /// Field qualifications (empty = unqualified).
    pub preds: Vec<(String, RelOp, Value)>,
}

/// A DL/I call.
#[derive(Debug, Clone, PartialEq)]
pub enum DliCall {
    /// `GU ssa ssa …` — get unique: descend a qualified path.
    Gu {
        /// The SSA path; the last element names the target segment.
        path: Vec<Ssa>,
    },
    /// `GN ssa` — get next occurrence of a segment type.
    Gn {
        /// Target (possibly qualified).
        ssa: Ssa,
    },
    /// `GNP ssa` — get next within the current parent.
    Gnp {
        /// Target (possibly qualified).
        ssa: Ssa,
    },
    /// `ISRT seg (field = value, …)` — insert under the current parent.
    Isrt {
        /// Segment type.
        segment: String,
        /// Field values.
        values: Vec<(String, Value)>,
    },
    /// `REPL seg (field = value, …)` — replace fields of the current
    /// segment.
    Repl {
        /// Segment type.
        segment: String,
        /// Field values.
        values: Vec<(String, Value)>,
    },
    /// `DLET seg` — delete the current segment and its subtree.
    Dlet {
        /// Segment type.
        segment: String,
    },
}

impl DliCall {
    /// The call verb.
    pub fn verb(&self) -> &'static str {
        match self {
            DliCall::Gu { .. } => "GU",
            DliCall::Gn { .. } => "GN",
            DliCall::Gnp { .. } => "GNP",
            DliCall::Isrt { .. } => "ISRT",
            DliCall::Repl { .. } => "REPL",
            DliCall::Dlet { .. } => "DLET",
        }
    }
}

/// Parse a script of DL/I calls (one per line, `;`/`.` tolerated).
pub fn parse_calls(src: &str) -> Result<Vec<DliCall>> {
    let mut c = Cursor::new(src)?;
    let mut out = Vec::new();
    c.eat_terminators();
    while !c.at_eof() {
        out.push(parse_call(&mut c)?);
        c.eat_terminators();
    }
    Ok(out)
}

fn parse_call(c: &mut Cursor) -> Result<DliCall> {
    let verb = c.name("DL/I verb")?;
    match verb.to_ascii_uppercase().as_str() {
        "GU" => {
            let mut path = vec![parse_ssa(c)?];
            // Further SSAs until the next call verb (verbs are reserved).
            while matches!(c.peek(), Tok::Word(w) if !is_verb(w)) {
                path.push(parse_ssa(c)?);
            }
            Ok(DliCall::Gu { path })
        }
        "GN" => Ok(DliCall::Gn { ssa: parse_ssa(c)? }),
        "GNP" => Ok(DliCall::Gnp { ssa: parse_ssa(c)? }),
        "ISRT" => {
            let segment = c.name("segment name")?;
            let values = parse_assignments(c)?;
            Ok(DliCall::Isrt { segment, values })
        }
        "REPL" => {
            let segment = c.name("segment name")?;
            let values = parse_assignments(c)?;
            Ok(DliCall::Repl { segment, values })
        }
        "DLET" => Ok(DliCall::Dlet { segment: c.name("segment name")? }),
        other => Err(c.err(format!("unknown DL/I verb `{other}`"))),
    }
}

fn is_verb(word: &str) -> bool {
    ["GU", "GN", "GNP", "ISRT", "REPL", "DLET"]
        .iter()
        .any(|v| word.eq_ignore_ascii_case(v))
}

fn parse_ssa(c: &mut Cursor) -> Result<Ssa> {
    let segment = c.name("segment name")?;
    let mut preds = Vec::new();
    if *c.peek() == Tok::LParen {
        c.bump();
        loop {
            let field = c.name("field name")?;
            let op = match c.bump() {
                Tok::Eq => RelOp::Eq,
                Tok::Ne => RelOp::Ne,
                Tok::Lt => RelOp::Lt,
                Tok::Le => RelOp::Le,
                Tok::Gt => RelOp::Gt,
                Tok::Ge => RelOp::Ge,
                other => {
                    return Err(c.err(format!("expected relational operator, found {other:?}")))
                }
            };
            preds.push((field, op, parse_value(c)?));
            if *c.peek() == Tok::Comma {
                c.bump();
            } else {
                break;
            }
        }
        c.expect_tok(Tok::RParen, "`)` closing SSA")?;
    }
    Ok(Ssa { segment, preds })
}

fn parse_assignments(c: &mut Cursor) -> Result<Vec<(String, Value)>> {
    c.expect_tok(Tok::LParen, "`(` opening field list")?;
    let mut out = Vec::new();
    loop {
        let field = c.name("field name")?;
        c.expect_tok(Tok::Eq, "`=`")?;
        out.push((field, parse_value(c)?));
        if *c.peek() == Tok::Comma {
            c.bump();
        } else {
            break;
        }
    }
    c.expect_tok(Tok::RParen, "`)` closing field list")?;
    Ok(out)
}

fn parse_value(c: &mut Cursor) -> Result<Value> {
    let v = match c.peek().clone() {
        Tok::Int(i) => Value::Int(i),
        Tok::Float(f) => Value::Float(f),
        Tok::Str(s) => Value::Str(s),
        Tok::Word(w) if w.eq_ignore_ascii_case("NULL") => Value::Null,
        other => return Err(c.err(format!("expected literal, found {other:?}"))),
    };
    c.bump();
    Ok(v)
}

/// What one executed call produced.
#[derive(Debug, Clone, Default)]
pub struct DliOutput {
    /// The ABDL requests generated.
    pub requests: Vec<Request>,
    /// The segment delivered (GU/GN/GNP): type, key and record.
    pub found: Option<(String, i64, Record)>,
    /// Records affected by ISRT/REPL/DLET (DLET counts the subtree).
    pub affected: usize,
}

/// A DL/I session: the positional state (current occurrence per segment
/// type, current of run-unit, and the hierarchic GN position).
pub struct DliSession {
    schema: HierSchema,
    current: HashMap<String, i64>,
    run_unit: Option<(String, i64)>,
    /// Last key delivered per segment type — GN continues after it.
    gn_pos: HashMap<String, i64>,
}

impl DliSession {
    /// A session over a validated schema.
    pub fn new(schema: HierSchema) -> Self {
        DliSession { schema, current: HashMap::new(), run_unit: None, gn_pos: HashMap::new() }
    }

    /// The schema.
    pub fn schema(&self) -> &HierSchema {
        &self.schema
    }

    /// Current of the run-unit: (segment, key).
    pub fn run_unit(&self) -> Option<(&str, i64)> {
        self.run_unit.as_ref().map(|(s, k)| (s.as_str(), *k))
    }

    /// Rewind every position to the start of the database (a fresh
    /// hierarchic sweep; positions otherwise persist across calls —
    /// ISRT, like every IMS call, establishes position at its target).
    pub fn reset_position(&mut self) {
        self.current.clear();
        self.gn_pos.clear();
        self.run_unit = None;
    }

    /// Execute one call.
    pub fn execute<K: Kernel>(&mut self, kernel: &mut K, call: &DliCall) -> Result<DliOutput> {
        match call {
            DliCall::Gu { path } => self.gu(kernel, path),
            DliCall::Gn { ssa } => self.gn(kernel, ssa, false),
            DliCall::Gnp { ssa } => self.gn(kernel, ssa, true),
            DliCall::Isrt { segment, values } => self.isrt(kernel, segment, values),
            DliCall::Repl { segment, values } => self.repl(kernel, segment, values),
            DliCall::Dlet { segment } => self.dlet(kernel, segment),
        }
    }

    // ----- retrieval ----------------------------------------------------

    fn ssa_query(&self, ssa: &Ssa, extra: Vec<Predicate>) -> Result<Query> {
        let seg = self.schema.require_segment(&ssa.segment)?;
        let mut predicates = vec![Predicate::eq(FILE_ATTR, Value::str(seg.name.clone()))];
        predicates.extend(extra);
        for (field, op, v) in &ssa.preds {
            let v = if v.is_null() { Value::Null } else { coerce(seg, field, v.clone())? };
            predicates.push(Predicate::new(field.clone(), *op, v));
        }
        Ok(Query::conjunction(predicates))
    }

    fn first_match<K: Kernel>(
        &self,
        kernel: &mut K,
        out: &mut DliOutput,
        query: Query,
        segment: &str,
    ) -> Result<Option<(i64, Record)>> {
        let req = Request::retrieve_all(query);
        let resp = kernel.execute(&req)?;
        out.requests.push(req);
        let mut best: Option<(i64, Record)> = None;
        for (_, rec) in resp.records() {
            let Some(key) = rec.get(key_attr(segment)).and_then(Value::as_int) else { continue };
            if best.as_ref().is_none_or(|(k, _)| key < *k) {
                best = Some((key, rec.clone()));
            }
        }
        Ok(best)
    }

    /// Establish position after delivering a segment: the segment (and
    /// its immediate parent, whose key the record carries in the
    /// parent-arc keyword) become current; the GN position advances.
    /// Ancestors above the parent are resolved lazily by GU/GNP.
    fn deliver(&mut self, segment: &str, key: i64, rec: &Record) {
        self.current.insert(segment.to_owned(), key);
        self.gn_pos.insert(segment.to_owned(), key);
        self.run_unit = Some((segment.to_owned(), key));
        if let Some(parent) = self.schema.segment(segment).and_then(|s| s.parent.clone()) {
            let arc = arc_attr(&parent, segment);
            if let Some(pkey) = rec.get(&arc).and_then(Value::as_int) {
                self.current.insert(parent, pkey);
            }
        }
    }

    fn gu<K: Kernel>(&mut self, kernel: &mut K, path: &[Ssa]) -> Result<DliOutput> {
        if path.is_empty() {
            return Err(Error::NoPosition { what: "GU needs at least one SSA".into() });
        }
        // Validate parent-child consecutiveness.
        for pair in path.windows(2) {
            let child = self.schema.require_segment(&pair[1].segment)?;
            if child.parent.as_deref() != Some(pair[0].segment.as_str()) {
                return Err(Error::InvalidSchema(format!(
                    "`{}` is not a child of `{}` in the hierarchy",
                    pair[1].segment, pair[0].segment
                )));
            }
        }
        let mut out = DliOutput::default();
        let found = self.descend(kernel, &mut out, path, 0, None)?;
        let Some(chain) = found else {
            return Err(Error::NotFound { segment: path.last().expect("non-empty").segment.clone() });
        };
        // Establish currency along the whole path.
        for (ssa, (key, _)) in path.iter().zip(&chain) {
            self.current.insert(ssa.segment.clone(), *key);
            self.gn_pos.insert(ssa.segment.clone(), *key);
        }
        let (key, rec) = chain.last().expect("non-empty").clone();
        let target = &path.last().expect("non-empty").segment;
        self.run_unit = Some((target.clone(), key));
        out.found = Some((target.clone(), key, rec));
        Ok(out)
    }

    /// Depth-first search for the first path (in key order at every
    /// level) satisfying all SSAs. Returns the (key, record) chain.
    fn descend<K: Kernel>(
        &self,
        kernel: &mut K,
        out: &mut DliOutput,
        path: &[Ssa],
        level: usize,
        parent_key: Option<i64>,
    ) -> Result<Option<Vec<(i64, Record)>>> {
        let ssa = &path[level];
        let seg = self.schema.require_segment(&ssa.segment)?.clone();
        let mut extra = Vec::new();
        if let (Some(pkey), Some(parent)) = (parent_key, &seg.parent) {
            extra.push(Predicate::eq(arc_attr(parent, &seg.name), Value::Int(pkey)));
        }
        let req = Request::retrieve_all(self.ssa_query(ssa, extra)?);
        let resp = kernel.execute(&req)?;
        out.requests.push(req);
        let mut candidates: Vec<(i64, Record)> = resp
            .records()
            .iter()
            .filter_map(|(_, rec)| {
                rec.get(key_attr(&seg.name)).and_then(Value::as_int).map(|k| (k, rec.clone()))
            })
            .collect();
        candidates.sort_by_key(|(k, _)| *k);
        for (key, rec) in candidates {
            if level + 1 == path.len() {
                return Ok(Some(vec![(key, rec)]));
            }
            if let Some(mut tail) = self.descend(kernel, out, path, level + 1, Some(key))? {
                let mut chain = vec![(key, rec)];
                chain.append(&mut tail);
                return Ok(Some(chain));
            }
        }
        Ok(None)
    }

    fn gn<K: Kernel>(&mut self, kernel: &mut K, ssa: &Ssa, within_parent: bool) -> Result<DliOutput> {
        let seg = self.schema.require_segment(&ssa.segment)?.clone();
        let mut extra = Vec::new();
        if within_parent {
            let parent = seg.parent.clone().ok_or_else(|| Error::NoPosition {
                what: format!("GNP on root segment `{}`", seg.name),
            })?;
            let pkey = *self
                .current
                .get(&parent)
                .ok_or_else(|| Error::NoPosition { what: format!("parent `{parent}`") })?;
            extra.push(Predicate::eq(arc_attr(&parent, &seg.name), Value::Int(pkey)));
        }
        if let Some(pos) = self.gn_pos.get(&seg.name) {
            extra.push(Predicate::new(
                key_attr(&seg.name).to_owned(),
                RelOp::Gt,
                Value::Int(*pos),
            ));
        }
        let mut out = DliOutput::default();
        let query = self.ssa_query(ssa, extra)?;
        match self.first_match(kernel, &mut out, query, &seg.name)? {
            Some((key, rec)) => {
                self.deliver(&seg.name, key, &rec);
                out.found = Some((seg.name.clone(), key, rec));
                Ok(out)
            }
            None => Err(Error::NotFound { segment: seg.name.clone() }),
        }
    }

    // ----- mutation -------------------------------------------------------

    fn isrt<K: Kernel>(
        &mut self,
        kernel: &mut K,
        segment: &str,
        values: &[(String, Value)],
    ) -> Result<DliOutput> {
        let seg = self.schema.require_segment(segment)?.clone();
        let mut out = DliOutput::default();
        let parent_key = match &seg.parent {
            Some(parent) => Some(*self.current.get(parent).ok_or_else(|| Error::NoPosition {
                what: format!("parent `{parent}` (establish it with GU/GN first)"),
            })?),
            None => None,
        };
        // Sequence-field uniqueness within the parent occurrence.
        if let Some(seq) = &seg.sequence {
            if let Some((_, v)) = values.iter().find(|(f, _)| f == seq) {
                let mut predicates = vec![
                    Predicate::eq(FILE_ATTR, Value::str(seg.name.clone())),
                    Predicate::eq(seq.clone(), coerce(&seg, seq, v.clone())?),
                ];
                if let (Some(pkey), Some(parent)) = (parent_key, &seg.parent) {
                    predicates.push(Predicate::eq(arc_attr(parent, &seg.name), Value::Int(pkey)));
                }
                let req = Request::Retrieve {
                    query: Query::conjunction(predicates),
                    target: abdl::TargetList::attrs([key_attr(&seg.name)]),
                    by: None,
                };
                let resp = kernel.execute(&req)?;
                out.requests.push(req);
                if !resp.records().is_empty() {
                    return Err(Error::SegmentExists {
                        segment: seg.name.clone(),
                        field: seq.clone(),
                    });
                }
            }
        }
        let key = kernel.reserve_key().0 as i64;
        let mut rec = Record::new();
        rec.set(FILE_ATTR, Value::str(seg.name.clone()));
        rec.set(key_attr(&seg.name).to_owned(), Value::Int(key));
        for (field, v) in values {
            let v = coerce(&seg, field, v.clone())?;
            if !v.is_null() {
                rec.set(field.clone(), v);
            }
        }
        if let (Some(pkey), Some(parent)) = (parent_key, &seg.parent) {
            rec.set(arc_attr(parent, &seg.name), Value::Int(pkey));
        }
        let req = Request::Insert { record: rec.clone() };
        kernel.execute(&req)?;
        out.requests.push(req);
        out.affected = 1;
        self.deliver(&seg.name, key, &rec);
        Ok(out)
    }

    fn repl<K: Kernel>(
        &mut self,
        kernel: &mut K,
        segment: &str,
        values: &[(String, Value)],
    ) -> Result<DliOutput> {
        let seg = self.schema.require_segment(segment)?.clone();
        let Some((cur_seg, key)) = &self.run_unit else {
            return Err(Error::NoPosition { what: "run-unit (REPL needs a prior get)".into() });
        };
        if cur_seg != segment {
            return Err(Error::NoPosition {
                what: format!("current segment is `{cur_seg}`, REPL names `{segment}`"),
            });
        }
        let key = *key;
        let mut out = DliOutput::default();
        for (field, v) in values {
            let v = if v.is_null() { Value::Null } else { coerce(&seg, field, v.clone())? };
            let req = Request::Update {
                query: Query::conjunction(vec![
                    Predicate::eq(FILE_ATTR, Value::str(seg.name.clone())),
                    Predicate::eq(key_attr(&seg.name).to_owned(), Value::Int(key)),
                ]),
                modifier: Modifier::new(field.clone(), v),
            };
            let resp = kernel.execute(&req)?;
            out.affected = out.affected.max(resp.affected);
            out.requests.push(req);
        }
        Ok(out)
    }

    fn dlet<K: Kernel>(&mut self, kernel: &mut K, segment: &str) -> Result<DliOutput> {
        self.schema.require_segment(segment)?;
        let Some((cur_seg, key)) = self.run_unit.clone() else {
            return Err(Error::NoPosition { what: "run-unit (DLET needs a prior get)".into() });
        };
        if cur_seg != segment {
            return Err(Error::NoPosition {
                what: format!("current segment is `{cur_seg}`, DLET names `{segment}`"),
            });
        }
        let mut out = DliOutput::default();
        self.delete_subtree(kernel, &mut out, segment, key)?;
        self.run_unit = None;
        self.current.remove(segment);
        Ok(out)
    }

    /// "When a segment is deleted, all of its dependents are deleted."
    fn delete_subtree<K: Kernel>(
        &self,
        kernel: &mut K,
        out: &mut DliOutput,
        segment: &str,
        key: i64,
    ) -> Result<()> {
        let children: Vec<String> =
            self.schema.children(segment).map(|s| s.name.clone()).collect();
        for child in children {
            let req = Request::Retrieve {
                query: Query::conjunction(vec![
                    Predicate::eq(FILE_ATTR, Value::str(child.clone())),
                    Predicate::eq(arc_attr(segment, &child), Value::Int(key)),
                ]),
                target: abdl::TargetList::attrs([key_attr(&child)]),
                by: None,
            };
            let resp = kernel.execute(&req)?;
            out.requests.push(req);
            let keys: Vec<i64> = resp
                .records()
                .iter()
                .filter_map(|(_, r)| r.get(key_attr(&child)).and_then(Value::as_int))
                .collect();
            for ck in keys {
                self.delete_subtree(kernel, out, &child, ck)?;
            }
        }
        let req = Request::Delete {
            query: Query::conjunction(vec![
                Predicate::eq(FILE_ATTR, Value::str(segment)),
                Predicate::eq(key_attr(segment).to_owned(), Value::Int(key)),
            ]),
        };
        let resp = kernel.execute(&req)?;
        out.affected += resp.affected;
        out.requests.push(req);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abdl::Store;

    fn school() -> (DliSession, Store) {
        let schema = crate::ddl::parse_schema(
            "HIERARCHY NAME IS school.
             SEGMENT department.
               02 dno TYPE IS FIXED.
               02 dname TYPE IS CHARACTER 20.
               SEQUENCE IS dno.
             SEGMENT course PARENT IS department.
               02 cno TYPE IS FIXED.
               02 title TYPE IS CHARACTER 30.
               SEQUENCE IS cno.
             SEGMENT enrollment PARENT IS course.
               02 student TYPE IS CHARACTER 20.",
        )
        .unwrap();
        let mut store = Store::new();
        crate::ab_map::install(&schema, &mut store);
        let mut session = DliSession::new(schema);
        let script = "
            ISRT department (dno = 1, dname = 'CS')
            ISRT course (cno = 10, title = 'Databases')
            ISRT enrollment (student = 'Coker')
            ISRT enrollment (student = 'Emdi')
            ISRT course (cno = 20, title = 'Compilers')
            ISRT department (dno = 2, dname = 'Math')
            ISRT course (cno = 10, title = 'Algebra')";
        for call in parse_calls(script).unwrap() {
            session.execute(&mut store, &call).unwrap();
        }
        session.reset_position();
        (session, store)
    }

    #[test]
    fn isrt_builds_the_tree_under_current_parents() {
        let (_, mut store) = school();
        assert_eq!(store.file_len("department"), 2);
        assert_eq!(store.file_len("course"), 3);
        assert_eq!(store.file_len("enrollment"), 2);
        // Each course carries its parent arc.
        let resp = store
            .execute(&abdl::parse::parse_request("RETRIEVE (FILE = course) (*)").unwrap())
            .unwrap();
        assert!(resp
            .records()
            .iter()
            .all(|(_, r)| r.get("department_course").is_some()));
    }

    #[test]
    fn gu_descends_a_qualified_path() {
        let (mut s, mut store) = school();
        let calls = parse_calls(
            "GU department (dname = 'CS') course (cno = 10) enrollment (student = 'Emdi')",
        )
        .unwrap();
        let out = s.execute(&mut store, &calls[0]).unwrap();
        let (seg, _, rec) = out.found.unwrap();
        assert_eq!(seg, "enrollment");
        assert_eq!(rec.get("student"), Some(&Value::str("Emdi")));
        // CS course 10, not Math's course 10.
        let calls = parse_calls("GU department (dname = 'Math') course (cno = 10)").unwrap();
        let out = s.execute(&mut store, &calls[0]).unwrap();
        assert_eq!(out.found.unwrap().2.get("title"), Some(&Value::str("Algebra")));
    }

    #[test]
    fn gu_not_found_is_ge_status() {
        let (mut s, mut store) = school();
        let calls = parse_calls("GU department (dname = 'CS') course (cno = 99)").unwrap();
        assert!(matches!(
            s.execute(&mut store, &calls[0]),
            Err(Error::NotFound { .. })
        ));
    }

    #[test]
    fn gn_sweeps_a_segment_type_in_key_order() {
        let (mut s, mut store) = school();
        let gn = parse_calls("GN course").unwrap();
        let mut titles = Vec::new();
        loop {
            match s.execute(&mut store, &gn[0]) {
                Ok(out) => titles.push(
                    out.found.unwrap().2.get("title").unwrap().as_str().unwrap().to_owned(),
                ),
                Err(Error::NotFound { .. }) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert_eq!(titles, vec!["Databases", "Compilers", "Algebra"]);
    }

    #[test]
    fn gnp_restricts_to_the_current_parent() {
        let (mut s, mut store) = school();
        let gu = parse_calls("GU department (dname = 'CS')").unwrap();
        s.execute(&mut store, &gu[0]).unwrap();
        let gnp = parse_calls("GNP course").unwrap();
        let mut titles = Vec::new();
        loop {
            match s.execute(&mut store, &gnp[0]) {
                Ok(out) => titles.push(
                    out.found.unwrap().2.get("title").unwrap().as_str().unwrap().to_owned(),
                ),
                Err(Error::NotFound { .. }) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert_eq!(titles, vec!["Databases", "Compilers"], "Algebra is under Math");
    }

    #[test]
    fn qualified_gn_filters() {
        let (mut s, mut store) = school();
        let gn = parse_calls("GN course (cno = 10)").unwrap();
        let out = s.execute(&mut store, &gn[0]).unwrap();
        assert_eq!(out.found.unwrap().2.get("title"), Some(&Value::str("Databases")));
        let out = s.execute(&mut store, &gn[0]).unwrap();
        assert_eq!(out.found.unwrap().2.get("title"), Some(&Value::str("Algebra")));
        assert!(matches!(s.execute(&mut store, &gn[0]), Err(Error::NotFound { .. })));
    }

    #[test]
    fn repl_updates_current_segment() {
        let (mut s, mut store) = school();
        let calls = parse_calls(
            "GU department (dname = 'CS') course (cno = 20)\n\
             REPL course (title = 'Compilers II')",
        )
        .unwrap();
        s.execute(&mut store, &calls[0]).unwrap();
        let out = s.execute(&mut store, &calls[1]).unwrap();
        assert_eq!(out.affected, 1);
        assert_eq!(out.requests.len(), 1, "one UPDATE per field");
        let check = parse_calls("GU department (dname = 'CS') course (title = 'Compilers II')")
            .unwrap();
        s.execute(&mut store, &check[0]).unwrap();
    }

    #[test]
    fn dlet_cascades_to_dependents() {
        let (mut s, mut store) = school();
        let calls = parse_calls("GU department (dname = 'CS')\nDLET department").unwrap();
        s.execute(&mut store, &calls[0]).unwrap();
        let out = s.execute(&mut store, &calls[1]).unwrap();
        assert_eq!(out.affected, 5, "department + 2 courses + 2 enrollments");
        assert_eq!(store.file_len("department"), 1);
        assert_eq!(store.file_len("course"), 1);
        assert_eq!(store.file_len("enrollment"), 0);
    }

    #[test]
    fn isrt_enforces_sequence_uniqueness_within_parent() {
        let (mut s, mut store) = school();
        let calls = parse_calls(
            "GU department (dname = 'CS')\nISRT course (cno = 10, title = 'Dup')",
        )
        .unwrap();
        s.execute(&mut store, &calls[0]).unwrap();
        assert!(matches!(
            s.execute(&mut store, &calls[1]),
            Err(Error::SegmentExists { .. })
        ));
        // The same cno under the other department is fine.
        let calls = parse_calls(
            "GU department (dname = 'Math')\nISRT course (cno = 20, title = 'Calculus')",
        )
        .unwrap();
        s.execute(&mut store, &calls[0]).unwrap();
        s.execute(&mut store, &calls[1]).unwrap();
    }

    #[test]
    fn isrt_without_parent_position_fails() {
        let schema = crate::ddl::parse_schema(
            "HIERARCHY NAME IS h. SEGMENT a. 02 x TYPE IS FIXED.
             SEGMENT b PARENT IS a. 02 y TYPE IS FIXED.",
        )
        .unwrap();
        let mut store = Store::new();
        crate::ab_map::install(&schema, &mut store);
        let mut s = DliSession::new(schema);
        let calls = parse_calls("ISRT b (y = 1)").unwrap();
        assert!(matches!(
            s.execute(&mut store, &calls[0]),
            Err(Error::NoPosition { .. })
        ));
    }

    #[test]
    fn gu_rejects_non_child_paths() {
        let (mut s, mut store) = school();
        let calls = parse_calls("GU department (dno = 1) enrollment (student = 'x')").unwrap();
        assert!(matches!(
            s.execute(&mut store, &calls[0]),
            Err(Error::InvalidSchema(_))
        ));
    }
}
