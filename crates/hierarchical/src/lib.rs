#![warn(missing_docs)]

//! # The hierarchical data model and DL/I — MLDS's hierarchical interface
//!
//! The last member of Figure 1.2's interface family: segment trees in
//! the style of IMS, manipulated with DL/I calls, mapped onto the
//! attribute-based kernel.
//!
//! A hierarchical database is a forest of *segment types*; each segment
//! occurrence has at most one parent occurrence. The kernel layout is
//! the member-side convention once more: one file per segment type,
//! `<FILE, seg>`, `<seg, key>`, one keyword per field, and — for child
//! segments — `<{parent}_{child}, parent-key>` (the same naming the ISA
//! sets use, because a parent-child arc *is* a 1:N set).
//!
//! DL/I calls (with segment search arguments, SSAs):
//!
//! ```text
//! GU   root (ssa) child (ssa) … target (ssa)   get unique: descend a path
//! GN   segment [(ssa)]                         get next of a segment type
//! GNP  segment [(ssa)]                         get next within current parent
//! ISRT segment (field = value, …)              insert under the current parent
//! REPL segment (field = value, …)              replace fields of the current segment
//! DLET segment                                 delete current segment + its subtree
//! ```

//! ## Example
//!
//! ```
//! use dli::{calls, ddl, DliSession};
//!
//! let schema = ddl::parse_schema(
//!     "HIERARCHY NAME IS h.
//!      SEGMENT a. 02 x TYPE IS FIXED.
//!      SEGMENT b PARENT IS a. 02 y TYPE IS FIXED.",
//! ).unwrap();
//! let mut store = abdl::Store::new();
//! dli::ab_map::install(&schema, &mut store);
//! let mut session = DliSession::new(schema);
//! for call in calls::parse_calls(
//!     "ISRT a (x = 1)\nISRT b (y = 2)\nGU a (x = 1) b (y = 2)",
//! ).unwrap() {
//!     session.execute(&mut store, &call).unwrap();
//! }
//! assert_eq!(session.run_unit().unwrap().0, "b");
//! ```

pub mod ab_map;
pub mod calls;
pub mod ddl;
pub mod error;
pub mod lex;
pub mod schema;

pub use calls::{DliCall, DliSession, Ssa};
pub use error::{Error, Result};
pub use schema::{Field, FieldType, HierSchema, Segment};
