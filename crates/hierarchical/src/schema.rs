//! Hierarchical schemas: segment trees.

use crate::error::{Error, Result};
use std::fmt;

/// A field type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldType {
    /// `FIXED` — an integer.
    Int,
    /// `FLOAT`.
    Float,
    /// `CHARACTER n`.
    Char {
        /// Maximum length.
        len: u16,
    },
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldType::Int => write!(f, "FIXED"),
            FieldType::Float => write!(f, "FLOAT"),
            FieldType::Char { len } => write!(f, "CHARACTER {len}"),
        }
    }
}

/// A segment field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Field type.
    pub typ: FieldType,
}

/// A segment type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Segment type name.
    pub name: String,
    /// Parent segment type (`None` for roots).
    pub parent: Option<String>,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
    /// The sequence field: unique within one parent occurrence
    /// (IMS-style), enforced on ISRT.
    pub sequence: Option<String>,
}

impl Segment {
    /// Find a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Require a field by name.
    pub fn require_field(&self, name: &str) -> Result<&Field> {
        self.field(name).ok_or_else(|| Error::UnknownField {
            segment: self.name.clone(),
            field: name.to_owned(),
        })
    }
}

/// A hierarchical database definition (the DBD).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HierSchema {
    /// Database name.
    pub name: String,
    /// Segments, in hierarchic (definition) order.
    pub segments: Vec<Segment>,
}

/// The kernel attribute carrying the parent arc of a child segment:
/// `{parent}_{child}` (the same convention as ISA sets — a parent-child
/// arc is a 1:N set).
pub fn arc_attr(parent: &str, child: &str) -> String {
    format!("{parent}_{child}")
}

impl HierSchema {
    /// Look a segment up by name.
    pub fn segment(&self, name: &str) -> Option<&Segment> {
        self.segments.iter().find(|s| s.name == name)
    }

    /// Require a segment.
    pub fn require_segment(&self, name: &str) -> Result<&Segment> {
        self.segment(name).ok_or_else(|| Error::UnknownSegment(name.to_owned()))
    }

    /// The child segment types of `name`, in definition order.
    pub fn children<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Segment> {
        self.segments.iter().filter(move |s| s.parent.as_deref() == Some(name))
    }

    /// The root segment types.
    pub fn roots(&self) -> impl Iterator<Item = &Segment> {
        self.segments.iter().filter(|s| s.parent.is_none())
    }

    /// Validate tree-ness, name uniqueness and field resolution.
    pub fn validate(&self) -> Result<()> {
        let mut names = std::collections::HashSet::new();
        for s in &self.segments {
            if !names.insert(&s.name) {
                return Err(Error::InvalidSchema(format!("duplicate segment `{}`", s.name)));
            }
        }
        for s in &self.segments {
            let mut fields = std::collections::HashSet::new();
            for f in &s.fields {
                if !fields.insert(&f.name) {
                    return Err(Error::InvalidSchema(format!(
                        "duplicate field `{}` in segment `{}`",
                        f.name, s.name
                    )));
                }
                if f.name == s.name {
                    return Err(Error::InvalidSchema(format!(
                        "field `{}` collides with the kernel key attribute of segment `{}`",
                        f.name, s.name
                    )));
                }
            }
            if let Some(p) = &s.parent {
                let parent = self.segment(p).ok_or_else(|| {
                    Error::InvalidSchema(format!(
                        "segment `{}` has unknown parent `{p}`",
                        s.name
                    ))
                })?;
                if s.field(&arc_attr(&parent.name, &s.name)).is_some() {
                    return Err(Error::InvalidSchema(format!(
                        "field `{}` of `{}` collides with the parent-arc attribute",
                        arc_attr(&parent.name, &s.name),
                        s.name
                    )));
                }
            }
            if let Some(seq) = &s.sequence {
                s.require_field(seq).map_err(|_| {
                    Error::InvalidSchema(format!(
                        "sequence field `{seq}` of `{}` is not declared",
                        s.name
                    ))
                })?;
            }
            // Acyclicity: walk to the root, bounded by segment count.
            let mut cur = s.parent.as_deref();
            let mut hops = 0;
            while let Some(p) = cur {
                hops += 1;
                if hops > self.segments.len() {
                    return Err(Error::InvalidSchema(format!(
                        "segment `{}` participates in a parent cycle",
                        s.name
                    )));
                }
                cur = self.segment(p).and_then(|seg| seg.parent.as_deref());
            }
        }
        if self.roots().next().is_none() && !self.segments.is_empty() {
            return Err(Error::InvalidSchema("no root segment".into()));
        }
        Ok(())
    }

    /// The ancestor chain of a segment type, nearest first.
    pub fn ancestors(&self, name: &str) -> Vec<&Segment> {
        let mut out = Vec::new();
        let mut cur = self.segment(name).and_then(|s| s.parent.as_deref());
        while let Some(p) = cur {
            let Some(seg) = self.segment(p) else { break };
            out.push(seg);
            cur = seg.parent.as_deref();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn school() -> HierSchema {
        HierSchema {
            name: "school".into(),
            segments: vec![
                Segment {
                    name: "department".into(),
                    parent: None,
                    fields: vec![
                        Field { name: "dno".into(), typ: FieldType::Int },
                        Field { name: "dname".into(), typ: FieldType::Char { len: 20 } },
                    ],
                    sequence: Some("dno".into()),
                },
                Segment {
                    name: "course".into(),
                    parent: Some("department".into()),
                    fields: vec![
                        Field { name: "cno".into(), typ: FieldType::Int },
                        Field { name: "title".into(), typ: FieldType::Char { len: 30 } },
                    ],
                    sequence: Some("cno".into()),
                },
                Segment {
                    name: "enrollment".into(),
                    parent: Some("course".into()),
                    fields: vec![Field { name: "student".into(), typ: FieldType::Char { len: 20 } }],
                    sequence: None,
                },
            ],
        }
    }

    #[test]
    fn validates_and_navigates() {
        let s = school();
        s.validate().unwrap();
        assert_eq!(s.roots().count(), 1);
        assert_eq!(s.children("department").count(), 1);
        let anc: Vec<&str> = s.ancestors("enrollment").iter().map(|x| x.name.as_str()).collect();
        assert_eq!(anc, vec!["course", "department"]);
    }

    #[test]
    fn validation_rejects_cycles_and_bad_refs() {
        let mut s = school();
        s.segments[0].parent = Some("enrollment".into());
        assert!(s.validate().is_err(), "cycle");
        let mut s = school();
        s.segments[1].parent = Some("ghost".into());
        assert!(s.validate().is_err(), "unknown parent");
        let mut s = school();
        s.segments[0].sequence = Some("ghost".into());
        assert!(s.validate().is_err(), "bad sequence field");
    }

    #[test]
    fn arc_attr_convention() {
        assert_eq!(arc_attr("department", "course"), "department_course");
    }
}
