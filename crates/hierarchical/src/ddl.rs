//! The DBD (database definition) parser and printer.

use crate::error::Result;
use crate::lex::{Cursor, Tok};
use crate::schema::{Field, FieldType, HierSchema, Segment};
use std::fmt::Write as _;

/// Parse a hierarchical database definition:
///
/// ```text
/// HIERARCHY NAME IS school.
///
/// SEGMENT department.
///   02 dno TYPE IS FIXED.
///   02 dname TYPE IS CHARACTER 20.
///   SEQUENCE IS dno.
///
/// SEGMENT course PARENT IS department.
///   02 cno TYPE IS FIXED.
///   02 title TYPE IS CHARACTER 30.
///   SEQUENCE IS cno.
/// ```
pub fn parse_schema(src: &str) -> Result<HierSchema> {
    let mut c = Cursor::new(src)?;
    let mut schema = HierSchema::default();
    c.expect_kw("HIERARCHY")?;
    c.expect_kw("NAME")?;
    c.expect_kw("IS")?;
    schema.name = c.name("database name")?;
    c.eat_terminators();
    while !c.at_eof() {
        c.expect_kw("SEGMENT")?;
        let name = c.name("segment name")?;
        let parent = if c.eat_kw("PARENT") {
            c.expect_kw("IS")?;
            Some(c.name("parent segment")?)
        } else {
            None
        };
        c.eat_terminators();
        let mut segment = Segment { name, parent, fields: Vec::new(), sequence: None };
        loop {
            match c.peek().clone() {
                Tok::Int(_) => {
                    let _level = c.int("level number")?;
                    let fname = c.name("field name")?;
                    c.expect_kw("TYPE")?;
                    c.expect_kw("IS")?;
                    let typ = parse_type(&mut c)?;
                    c.eat_terminators();
                    segment.fields.push(Field { name: fname, typ });
                }
                Tok::Word(w) if w.eq_ignore_ascii_case("SEQUENCE") => {
                    c.bump();
                    c.expect_kw("IS")?;
                    segment.sequence = Some(c.name("sequence field")?);
                    c.eat_terminators();
                }
                _ => break,
            }
        }
        schema.segments.push(segment);
    }
    schema.validate()?;
    Ok(schema)
}

fn parse_type(c: &mut Cursor) -> Result<FieldType> {
    let word = c.name("field type")?;
    match word.to_ascii_uppercase().as_str() {
        "FIXED" | "INTEGER" => Ok(FieldType::Int),
        "FLOAT" => Ok(FieldType::Float),
        "CHARACTER" | "CHAR" => {
            let len = c.int("character length")?;
            Ok(FieldType::Char {
                len: u16::try_from(len).map_err(|_| c.err("length out of range"))?,
            })
        }
        other => Err(c.err(format!("unknown field type `{other}`"))),
    }
}

/// Print a schema as canonical DBD text (parse∘print = id).
pub fn print_schema(s: &HierSchema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "HIERARCHY NAME IS {}.", s.name);
    for seg in &s.segments {
        let _ = writeln!(out);
        match &seg.parent {
            Some(p) => {
                let _ = writeln!(out, "SEGMENT {} PARENT IS {p}.", seg.name);
            }
            None => {
                let _ = writeln!(out, "SEGMENT {}.", seg.name);
            }
        }
        for f in &seg.fields {
            let _ = writeln!(out, "  02 {} TYPE IS {}.", f.name, f.typ);
        }
        if let Some(seq) = &seg.sequence {
            let _ = writeln!(out, "  SEQUENCE IS {seq}.");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
HIERARCHY NAME IS school.

SEGMENT department.
  02 dno TYPE IS FIXED.
  02 dname TYPE IS CHARACTER 20.
  SEQUENCE IS dno.

SEGMENT course PARENT IS department.
  02 cno TYPE IS FIXED.
  02 title TYPE IS CHARACTER 30.
  SEQUENCE IS cno.

SEGMENT enrollment PARENT IS course.
  02 student TYPE IS CHARACTER 20.
";

    #[test]
    fn parses_and_round_trips() {
        let s = parse_schema(SRC).unwrap();
        assert_eq!(s.name, "school");
        assert_eq!(s.segments.len(), 3);
        assert_eq!(s.segment("course").unwrap().parent.as_deref(), Some("department"));
        assert_eq!(s.segment("course").unwrap().sequence.as_deref(), Some("cno"));
        let printed = print_schema(&s);
        assert_eq!(s, parse_schema(&printed).unwrap());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_schema("SEGMENT x.").is_err());
        assert!(parse_schema("HIERARCHY NAME IS h. SEGMENT x PARENT IS ghost.").is_err());
        assert!(parse_schema("HIERARCHY NAME IS h. SEGMENT x. 02 f TYPE IS BLOB.").is_err());
    }
}
