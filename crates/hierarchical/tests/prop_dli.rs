//! Randomized property tests for the DL/I interface: GN sweeps are
//! complete and duplicate-free, GNP partitions by parent, and DLET
//! removes exactly one subtree. Tree shapes come from the in-tree
//! seeded PRNG so failures reproduce exactly.

use abdl::prng::Prng;
use abdl::Store;
use dli::{calls, ddl, DliSession};

const CASES: u64 = 32;

const DBD: &str = "
HIERARCHY NAME IS prop.
SEGMENT parent.
  02 pno TYPE IS FIXED.
  SEQUENCE IS pno.
SEGMENT child PARENT IS parent.
  02 cno TYPE IS FIXED.
  02 tag TYPE IS CHARACTER 4.
";

/// A random tree shape: 1–5 parents with 0–5 children each.
fn gen_shape(rng: &mut Prng) -> Vec<usize> {
    (0..1 + rng.index(5)).map(|_| rng.index(6)).collect()
}

/// Load `shape[i]` children under parent i; returns total child count.
fn load(session: &mut DliSession, store: &mut Store, shape: &[usize]) -> usize {
    let mut total = 0;
    for (p, &n) in shape.iter().enumerate() {
        let call = calls::parse_calls(&format!("ISRT parent (pno = {p})")).unwrap();
        session.execute(store, &call[0]).unwrap();
        for c in 0..n {
            let call = calls::parse_calls(&format!(
                "ISRT child (cno = {c}, tag = 't{}')",
                (p + c) % 3
            ))
            .unwrap();
            session.execute(store, &call[0]).unwrap();
            total += 1;
        }
    }
    session.reset_position();
    total
}

fn fixture() -> (DliSession, Store) {
    let schema = ddl::parse_schema(DBD).unwrap();
    let mut store = Store::new();
    dli::ab_map::install(&schema, &mut store);
    (DliSession::new(schema), store)
}

/// A GN sweep visits every occurrence exactly once.
#[test]
fn gn_sweep_is_complete_and_duplicate_free() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xd11_1000 + seed);
        let shape = gen_shape(&mut rng);
        let (mut session, mut store) = fixture();
        let total = load(&mut session, &mut store, &shape);
        let gn = calls::parse_calls("GN child").unwrap();
        let mut seen = std::collections::HashSet::new();
        while let Ok(out) = session.execute(&mut store, &gn[0]) {
            let (_, key, _) = out.found.unwrap();
            assert!(seen.insert(key), "key {key} delivered twice (seed {seed})");
        }
        assert_eq!(seen.len(), total, "seed {seed}, shape {shape:?}");
    }
}

/// GNP sweeps per parent partition the children exactly.
#[test]
fn gnp_partitions_by_parent() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xd11_2000 + seed);
        let shape = gen_shape(&mut rng);
        let (mut session, mut store) = fixture();
        let total = load(&mut session, &mut store, &shape);
        let gnp = calls::parse_calls("GNP child").unwrap();
        let mut counted = 0;
        for (p, &n) in shape.iter().enumerate() {
            let gu = calls::parse_calls(&format!("GU parent (pno = {p})")).unwrap();
            session.execute(&mut store, &gu[0]).unwrap();
            let mut here = 0;
            while session.execute(&mut store, &gnp[0]).is_ok() {
                here += 1;
            }
            assert_eq!(here, n, "parent {p} should have {n} children (seed {seed})");
            counted += here;
        }
        assert_eq!(counted, total, "seed {seed}, shape {shape:?}");
    }
}

/// DLET of one parent removes exactly its subtree.
#[test]
fn dlet_removes_exactly_one_subtree() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(0xd11_3000 + seed);
        let shape = gen_shape(&mut rng);
        let victim = rng.index(shape.len());
        let (mut session, mut store) = fixture();
        let total = load(&mut session, &mut store, &shape);
        let gu = calls::parse_calls(&format!("GU parent (pno = {victim})")).unwrap();
        session.execute(&mut store, &gu[0]).unwrap();
        let dlet = calls::parse_calls("DLET parent").unwrap();
        let out = session.execute(&mut store, &dlet[0]).unwrap();
        assert_eq!(out.affected, 1 + shape[victim], "seed {seed}, shape {shape:?}");
        assert_eq!(store.file_len("parent"), shape.len() - 1, "seed {seed}");
        assert_eq!(store.file_len("child"), total - shape[victim], "seed {seed}");
    }
}
