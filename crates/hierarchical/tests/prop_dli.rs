//! Property tests for the DL/I interface: GN sweeps are complete and
//! duplicate-free, GNP partitions by parent, and DLET removes exactly
//! one subtree.

use abdl::Store;
use dli::{calls, ddl, DliSession};
use proptest::prelude::*;

const DBD: &str = "
HIERARCHY NAME IS prop.
SEGMENT parent.
  02 pno TYPE IS FIXED.
  SEQUENCE IS pno.
SEGMENT child PARENT IS parent.
  02 cno TYPE IS FIXED.
  02 tag TYPE IS CHARACTER 4.
";

/// Load `shape[i]` children under parent i; returns total child count.
fn load(session: &mut DliSession, store: &mut Store, shape: &[usize]) -> usize {
    let mut total = 0;
    for (p, &n) in shape.iter().enumerate() {
        let call = calls::parse_calls(&format!("ISRT parent (pno = {p})")).unwrap();
        session.execute(store, &call[0]).unwrap();
        for c in 0..n {
            let call = calls::parse_calls(&format!(
                "ISRT child (cno = {c}, tag = 't{}')",
                (p + c) % 3
            ))
            .unwrap();
            session.execute(store, &call[0]).unwrap();
            total += 1;
        }
    }
    session.reset_position();
    total
}

fn fixture() -> (DliSession, Store) {
    let schema = ddl::parse_schema(DBD).unwrap();
    let mut store = Store::new();
    dli::ab_map::install(&schema, &mut store);
    (DliSession::new(schema), store)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A GN sweep visits every occurrence exactly once.
    #[test]
    fn gn_sweep_is_complete_and_duplicate_free(
        shape in proptest::collection::vec(0usize..6, 1..6),
    ) {
        let (mut session, mut store) = fixture();
        let total = load(&mut session, &mut store, &shape);
        let gn = calls::parse_calls("GN child").unwrap();
        let mut seen = std::collections::HashSet::new();
        while let Ok(out) = session.execute(&mut store, &gn[0]) {
            let (_, key, _) = out.found.unwrap();
            prop_assert!(seen.insert(key), "key {} delivered twice", key);
        }
        prop_assert_eq!(seen.len(), total);
    }

    /// GNP sweeps per parent partition the children exactly.
    #[test]
    fn gnp_partitions_by_parent(
        shape in proptest::collection::vec(0usize..6, 1..6),
    ) {
        let (mut session, mut store) = fixture();
        let total = load(&mut session, &mut store, &shape);
        let gnp = calls::parse_calls("GNP child").unwrap();
        let mut counted = 0;
        for (p, &n) in shape.iter().enumerate() {
            let gu = calls::parse_calls(&format!("GU parent (pno = {p})")).unwrap();
            session.execute(&mut store, &gu[0]).unwrap();
            let mut here = 0;
            while session.execute(&mut store, &gnp[0]).is_ok() {
                here += 1;
            }
            prop_assert_eq!(here, n, "parent {} should have {} children", p, n);
            counted += here;
        }
        prop_assert_eq!(counted, total);
    }

    /// DLET of one parent removes exactly its subtree.
    #[test]
    fn dlet_removes_exactly_one_subtree(
        shape in proptest::collection::vec(0usize..6, 1..6),
        victim_idx in 0usize..6,
    ) {
        let (mut session, mut store) = fixture();
        let total = load(&mut session, &mut store, &shape);
        let victim = victim_idx % shape.len();
        let gu = calls::parse_calls(&format!("GU parent (pno = {victim})")).unwrap();
        session.execute(&mut store, &gu[0]).unwrap();
        let dlet = calls::parse_calls("DLET parent").unwrap();
        let out = session.execute(&mut store, &dlet[0]).unwrap();
        prop_assert_eq!(out.affected, 1 + shape[victim]);
        prop_assert_eq!(store.file_len("parent"), shape.len() - 1);
        prop_assert_eq!(store.file_len("child"), total - shape[victim]);
    }
}
