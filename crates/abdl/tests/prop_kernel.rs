//! Randomized property tests for the ABDL kernel: query semantics,
//! parser round-trips, and index/scan agreement. Inputs are generated
//! with the in-tree seeded PRNG so failures reproduce exactly.

use abdl::engine::Store;
use abdl::parse::{parse_request, parse_transaction};
use abdl::prng::Prng;
use abdl::{Conjunction, Predicate, Query, Record, RelOp, Request, TargetList, Value};

const CASES: u64 = 200;

fn gen_value(rng: &mut Prng) -> Value {
    match rng.index(4) {
        0 => Value::Null,
        1 => Value::Int(rng.gen_range(-50, 50)),
        2 => Value::Float(rng.gen_range(-50, 50) as f64 / 2.0),
        _ => {
            let len = rng.index(7);
            let s: String =
                (0..len).map(|_| (b'a' + rng.index(26) as u8) as char).collect();
            Value::Str(s)
        }
    }
}

fn gen_nonnull_value(rng: &mut Prng) -> Value {
    loop {
        let v = gen_value(rng);
        if !v.is_null() {
            return v;
        }
    }
}

fn gen_attr(rng: &mut Prng) -> String {
    ["a", "b", "c"][rng.index(3)].to_owned()
}

fn gen_relop(rng: &mut Prng) -> RelOp {
    [RelOp::Eq, RelOp::Ne, RelOp::Lt, RelOp::Le, RelOp::Gt, RelOp::Ge][rng.index(6)]
}

fn gen_predicate(rng: &mut Prng) -> Predicate {
    Predicate { attr: gen_attr(rng), op: gen_relop(rng), value: gen_value(rng) }
}

fn gen_query(rng: &mut Prng) -> Query {
    let disjuncts = (0..1 + rng.index(3))
        .map(|_| Conjunction::new((0..rng.index(4)).map(|_| gen_predicate(rng)).collect()))
        .collect();
    Query::new(disjuncts)
}

fn gen_record(rng: &mut Prng) -> Record {
    let mut r = Record::from_pairs([("FILE", Value::str("f"))]);
    for _ in 0..rng.index(4) {
        let a = gen_attr(rng);
        let v = gen_nonnull_value(rng);
        r.set(a, v);
    }
    r
}

fn gen_records(rng: &mut Prng, max: usize) -> Vec<Record> {
    (0..rng.index(max + 1)).map(|_| gen_record(rng)).collect()
}

/// The relational operators agree with the total order on values.
#[test]
fn relop_consistency() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x5e_1000 + seed);
        let a = gen_nonnull_value(&mut rng);
        let b = gen_nonnull_value(&mut rng);
        let eq = RelOp::Eq.eval(&a, &b);
        let ne = RelOp::Ne.eval(&a, &b);
        let lt = RelOp::Lt.eval(&a, &b);
        let le = RelOp::Le.eval(&a, &b);
        let gt = RelOp::Gt.eval(&a, &b);
        let ge = RelOp::Ge.eval(&a, &b);
        assert_eq!(eq, !ne, "seed {seed}: {a:?} vs {b:?}");
        assert_eq!(le, lt || eq, "seed {seed}: {a:?} vs {b:?}");
        assert_eq!(ge, gt || eq, "seed {seed}: {a:?} vs {b:?}");
        assert!(!(lt && gt), "seed {seed}: {a:?} vs {b:?}");
        assert_eq!(lt, RelOp::Gt.eval(&b, &a), "seed {seed}: {a:?} vs {b:?}");
    }
}

/// DNF semantics: a query matches iff some disjunct has all predicates
/// matching.
#[test]
fn dnf_matches_definition() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x5e_2000 + seed);
        let q = gen_query(&mut rng);
        let r = gen_record(&mut rng);
        let expected =
            q.disjuncts.iter().any(|c| c.predicates.iter().all(|p| p.matches(&r)));
        assert_eq!(q.matches(&r), expected, "seed {seed}: {q:?} on {r:?}");
    }
}

/// Canonical request text round-trips through the parser.
#[test]
fn request_print_parse_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x5e_3000 + seed);
        let q = gen_query(&mut rng);
        let r = gen_record(&mut rng);
        let requests = vec![
            Request::Insert { record: r },
            Request::Delete { query: q.clone() },
            Request::Update {
                query: q.clone(),
                modifier: abdl::Modifier::new("a", Value::Int(1)),
            },
            Request::Retrieve {
                query: q,
                target: TargetList::attrs(["a", "b"]),
                by: Some("c".into()),
            },
        ];
        for req in requests {
            let text = req.to_string();
            let reparsed = parse_request(&text)
                .unwrap_or_else(|e| panic!("reparse failed for `{text}`: {e}"));
            assert_eq!(req, reparsed, "round trip failed for `{text}` (seed {seed})");
        }
    }
}

/// A transaction's canonical text round-trips too.
#[test]
fn transaction_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x5e_4000 + seed);
        let txn = abdl::Transaction::new(
            (0..1 + rng.index(3)).map(|_| Request::retrieve_all(gen_query(&mut rng))).collect(),
        );
        let text = txn.to_string();
        let reparsed = parse_transaction(&text).unwrap();
        assert_eq!(txn, reparsed, "seed {seed}");
    }
}

/// Index-assisted evaluation returns exactly the records that brute
/// force predicate evaluation returns.
#[test]
fn index_and_scan_agree() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x5e_5000 + seed);
        let records = gen_records(&mut rng, 30);
        let q = gen_query(&mut rng);
        let mut indexed = Store::new();
        let mut scanned = Store::with_indexing(false);
        for (i, mut rec) in records.into_iter().enumerate() {
            rec.set("k", Value::Int(i as i64));
            indexed.execute(&Request::Insert { record: rec.clone() }).unwrap();
            scanned.execute(&Request::Insert { record: rec }).unwrap();
        }
        // Route the query to file f like real translator output does.
        let routed = q.and_predicate(Predicate::eq("FILE", "f"));
        let req = Request::retrieve_all(routed);
        let a = indexed.execute(&req).unwrap();
        let b = scanned.execute(&req).unwrap();
        assert_eq!(a.records(), b.records(), "seed {seed}");
    }
}

/// DELETE then RETRIEVE with the same query returns nothing, and no
/// other record disappears.
#[test]
fn delete_is_exact() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x5e_6000 + seed);
        let records = gen_records(&mut rng, 30);
        let q = gen_query(&mut rng);
        let mut store = Store::new();
        let mut kept = 0usize;
        let routed = q.and_predicate(Predicate::eq("FILE", "f"));
        for (i, mut rec) in records.into_iter().enumerate() {
            rec.set("k", Value::Int(i as i64));
            if !routed.matches(&rec) {
                kept += 1;
            }
            store.execute(&Request::Insert { record: rec }).unwrap();
        }
        store.execute(&Request::Delete { query: routed.clone() }).unwrap();
        let rest = store
            .execute(&Request::retrieve_all(Query::conjunction(vec![Predicate::eq(
                "FILE", "f",
            )])))
            .unwrap();
        assert_eq!(rest.records().len(), kept, "seed {seed}");
        let gone = store.execute(&Request::retrieve_all(routed)).unwrap();
        assert!(gone.records().is_empty(), "seed {seed}");
    }
}

/// UPDATE sets the attribute on every matching record and only those.
#[test]
fn update_is_exact() {
    for seed in 0..CASES {
        let mut rng = Prng::seed_from_u64(0x5e_7000 + seed);
        let records = gen_records(&mut rng, 30);
        let q = gen_query(&mut rng);
        let mut store = Store::new();
        let routed = q.and_predicate(Predicate::eq("FILE", "f"));
        let mut expect = 0usize;
        for (i, mut rec) in records.into_iter().enumerate() {
            rec.set("k", Value::Int(i as i64));
            // The sentinel value must not pre-exist.
            if rec.get("mark").is_some() {
                rec.remove("mark");
            }
            if routed.matches(&rec) {
                expect += 1;
            }
            store.execute(&Request::Insert { record: rec }).unwrap();
        }
        let resp = store
            .execute(&Request::Update {
                query: routed,
                modifier: abdl::Modifier::new("mark", Value::Int(999)),
            })
            .unwrap();
        assert_eq!(resp.affected, expect, "seed {seed}");
        let marked = store
            .execute(&Request::retrieve_all(Query::conjunction(vec![
                Predicate::eq("FILE", "f"),
                Predicate::eq("mark", Value::Int(999)),
            ])))
            .unwrap();
        assert_eq!(marked.records().len(), expect, "seed {seed}");
    }
}
