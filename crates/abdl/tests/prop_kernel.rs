//! Property-based tests for the ABDL kernel: query semantics, parser
//! round-trips, and index/scan agreement.

use abdl::engine::Store;
use abdl::parse::{parse_request, parse_transaction};
use abdl::{Conjunction, Predicate, Query, Record, RelOp, Request, TargetList, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-50i64..50).prop_map(Value::Int),
        (-50i64..50).prop_map(|i| Value::Float(i as f64 / 2.0)),
        "[a-z]{0,6}".prop_map(Value::Str),
    ]
}

fn arb_nonnull_value() -> impl Strategy<Value = Value> {
    arb_value().prop_filter("non-null", |v| !v.is_null())
}

fn arb_attr() -> impl Strategy<Value = String> {
    prop_oneof![Just("a".to_owned()), Just("b".to_owned()), Just("c".to_owned())]
}

fn arb_relop() -> impl Strategy<Value = RelOp> {
    prop_oneof![
        Just(RelOp::Eq),
        Just(RelOp::Ne),
        Just(RelOp::Lt),
        Just(RelOp::Le),
        Just(RelOp::Gt),
        Just(RelOp::Ge),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    (arb_attr(), arb_relop(), arb_value())
        .prop_map(|(attr, op, value)| Predicate { attr, op, value })
}

fn arb_query() -> impl Strategy<Value = Query> {
    proptest::collection::vec(proptest::collection::vec(arb_predicate(), 0..4), 1..4)
        .prop_map(|disjuncts| {
            Query::new(disjuncts.into_iter().map(Conjunction::new).collect())
        })
}

fn arb_record() -> impl Strategy<Value = Record> {
    proptest::collection::vec((arb_attr(), arb_nonnull_value()), 0..4).prop_map(|pairs| {
        let mut r = Record::from_pairs([("FILE", Value::str("f"))]);
        // Records also need a key attribute so they are distinguishable.
        for (a, v) in pairs {
            r.set(a, v);
        }
        r
    })
}

proptest! {
    /// The relational operators agree with the total order on values.
    #[test]
    fn relop_consistency(a in arb_nonnull_value(), b in arb_nonnull_value()) {
        let eq = RelOp::Eq.eval(&a, &b);
        let ne = RelOp::Ne.eval(&a, &b);
        let lt = RelOp::Lt.eval(&a, &b);
        let le = RelOp::Le.eval(&a, &b);
        let gt = RelOp::Gt.eval(&a, &b);
        let ge = RelOp::Ge.eval(&a, &b);
        prop_assert_eq!(eq, !ne);
        prop_assert_eq!(le, lt || eq);
        prop_assert_eq!(ge, gt || eq);
        prop_assert!(!(lt && gt));
        prop_assert_eq!(lt, RelOp::Gt.eval(&b, &a));
    }

    /// DNF semantics: a query matches iff some disjunct has all
    /// predicates matching.
    #[test]
    fn dnf_matches_definition(q in arb_query(), r in arb_record()) {
        let expected = q.disjuncts.iter().any(|c| c.predicates.iter().all(|p| p.matches(&r)));
        prop_assert_eq!(q.matches(&r), expected);
    }

    /// Canonical request text round-trips through the parser.
    #[test]
    fn request_print_parse_roundtrip(q in arb_query(), r in arb_record()) {
        let requests = vec![
            Request::Insert { record: r },
            Request::Delete { query: q.clone() },
            Request::Update {
                query: q.clone(),
                modifier: abdl::Modifier::new("a", Value::Int(1)),
            },
            Request::Retrieve {
                query: q,
                target: TargetList::attrs(["a", "b"]),
                by: Some("c".into()),
            },
        ];
        for req in requests {
            let text = req.to_string();
            let reparsed = parse_request(&text)
                .unwrap_or_else(|e| panic!("reparse failed for `{text}`: {e}"));
            prop_assert_eq!(&req, &reparsed, "round trip failed for `{}`", text);
        }
    }

    /// A transaction's canonical text round-trips too.
    #[test]
    fn transaction_roundtrip(qs in proptest::collection::vec(arb_query(), 1..4)) {
        let txn = abdl::Transaction::new(
            qs.into_iter().map(Request::retrieve_all).collect(),
        );
        let text = txn.to_string();
        let reparsed = parse_transaction(&text).unwrap();
        prop_assert_eq!(txn, reparsed);
    }

    /// Index-assisted evaluation returns exactly the records that brute
    /// force predicate evaluation returns.
    #[test]
    fn index_and_scan_agree(
        records in proptest::collection::vec(arb_record(), 0..30),
        q in arb_query(),
    ) {
        let mut indexed = Store::new();
        let mut scanned = Store::with_indexing(false);
        for (i, mut rec) in records.into_iter().enumerate() {
            rec.set("k", Value::Int(i as i64));
            indexed.execute(&Request::Insert { record: rec.clone() }).unwrap();
            scanned.execute(&Request::Insert { record: rec }).unwrap();
        }
        // Route the query to file f like real translator output does.
        let routed = q.and_predicate(Predicate::eq("FILE", "f"));
        let req = Request::retrieve_all(routed);
        let a = indexed.execute(&req).unwrap();
        let b = scanned.execute(&req).unwrap();
        prop_assert_eq!(a.records(), b.records());
    }

    /// DELETE then RETRIEVE with the same query returns nothing, and no
    /// other record disappears.
    #[test]
    fn delete_is_exact(
        records in proptest::collection::vec(arb_record(), 0..30),
        q in arb_query(),
    ) {
        let mut store = Store::new();
        let mut kept = 0usize;
        let routed = q.and_predicate(Predicate::eq("FILE", "f"));
        for (i, mut rec) in records.into_iter().enumerate() {
            rec.set("k", Value::Int(i as i64));
            if !routed.matches(&rec) {
                kept += 1;
            }
            store.execute(&Request::Insert { record: rec }).unwrap();
        }
        store.execute(&Request::Delete { query: routed.clone() }).unwrap();
        let rest = store.execute(&Request::retrieve_all(
            Query::conjunction(vec![Predicate::eq("FILE", "f")]),
        )).unwrap();
        prop_assert_eq!(rest.records().len(), kept);
        let gone = store.execute(&Request::retrieve_all(routed)).unwrap();
        prop_assert!(gone.records().is_empty());
    }

    /// UPDATE sets the attribute on every matching record and only
    /// those.
    #[test]
    fn update_is_exact(
        records in proptest::collection::vec(arb_record(), 0..30),
        q in arb_query(),
    ) {
        let mut store = Store::new();
        let routed = q.and_predicate(Predicate::eq("FILE", "f"));
        let mut expect = 0usize;
        for (i, mut rec) in records.into_iter().enumerate() {
            rec.set("k", Value::Int(i as i64));
            // The sentinel value must not pre-exist.
            if rec.get("mark").is_some() { rec.remove("mark"); }
            if routed.matches(&rec) {
                expect += 1;
            }
            store.execute(&Request::Insert { record: rec }).unwrap();
        }
        let resp = store.execute(&Request::Update {
            query: routed,
            modifier: abdl::Modifier::new("mark", Value::Int(999)),
        }).unwrap();
        prop_assert_eq!(resp.affected, expect);
        let marked = store.execute(&Request::retrieve_all(
            Query::conjunction(vec![
                Predicate::eq("FILE", "f"),
                Predicate::eq("mark", Value::Int(999)),
            ]),
        )).unwrap();
        prop_assert_eq!(marked.records().len(), expect);
    }
}
