//! Keyword predicates and DNF queries.
//!
//! "A *keyword predicate* is a 3-tuple of the form (attribute, relational
//! operator, attribute-value). A *query* of the database is then the
//! combination, in disjunctive normal form, of keyword predicates."

use crate::record::Record;
use crate::value::Value;
use crate::FILE_ATTR;
use std::fmt;

/// The six relational operators of keyword predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl RelOp {
    /// Apply the operator to two values using the total [`Value`] order.
    ///
    /// NULL semantics follow the thesis's currency convention (null means
    /// "does not identify"): a NULL on either side satisfies no operator
    /// except when *both* sides are NULL and the operator is `=` — that
    /// case is what the translator's `(set = NULL)` membership tests rely
    /// on. `!=` against NULL is satisfied only by non-NULL values.
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        match (lhs.is_null(), rhs.is_null()) {
            (true, true) => self == RelOp::Eq,
            (true, false) | (false, true) => self == RelOp::Ne,
            (false, false) => {
                let ord = lhs.cmp(rhs);
                match self {
                    RelOp::Eq => ord.is_eq(),
                    RelOp::Ne => ord.is_ne(),
                    RelOp::Lt => ord.is_lt(),
                    RelOp::Le => ord.is_le(),
                    RelOp::Gt => ord.is_gt(),
                    RelOp::Ge => ord.is_ge(),
                }
            }
        }
    }

    /// All operators, for exhaustive testing.
    pub const ALL: [RelOp; 6] = [RelOp::Eq, RelOp::Ne, RelOp::Lt, RelOp::Le, RelOp::Gt, RelOp::Ge];
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RelOp::Eq => "=",
            RelOp::Ne => "!=",
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A keyword predicate `(attribute relop value)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Attribute the predicate constrains.
    pub attr: String,
    /// Relational operator.
    pub op: RelOp,
    /// Comparison value.
    pub value: Value,
}

impl Predicate {
    /// Construct a predicate.
    pub fn new(attr: impl Into<String>, op: RelOp, value: impl Into<Value>) -> Self {
        Predicate { attr: attr.into(), op, value: value.into() }
    }

    /// Equality predicate shorthand.
    pub fn eq(attr: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::new(attr, RelOp::Eq, value)
    }

    /// "A keyword predicate is satisfied only when the attribute of a
    /// particular record's keyword is identical to the attribute of the
    /// keyword predicate and the relation … holds."
    ///
    /// A record without the attribute is treated as carrying NULL.
    pub fn matches(&self, record: &Record) -> bool {
        self.op.eval(record.get_or_null(&self.attr), &self.value)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} {} {})", self.attr, self.op, self.value)
    }
}

/// A conjunction of keyword predicates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Conjunction {
    /// The conjoined predicates; an empty conjunction is TRUE.
    pub predicates: Vec<Predicate>,
}

impl Conjunction {
    /// Construct from predicates.
    pub fn new(predicates: Vec<Predicate>) -> Self {
        Conjunction { predicates }
    }

    /// All predicates satisfied?
    pub fn matches(&self, record: &Record) -> bool {
        self.predicates.iter().all(|p| p.matches(record))
    }

    /// The file named by a `(FILE = f)` predicate, if any.
    pub fn file(&self) -> Option<&str> {
        self.predicates
            .iter()
            .find(|p| p.attr == FILE_ATTR && p.op == RelOp::Eq)
            .and_then(|p| p.value.as_str())
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.predicates.is_empty() {
            return write!(f, "(TRUE)");
        }
        write!(f, "(")?;
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

/// A query in disjunctive normal form: `conj₁ or conj₂ or …`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// The disjuncts; an empty disjunction is FALSE (identifies nothing).
    pub disjuncts: Vec<Conjunction>,
}

impl Query {
    /// Construct from disjuncts.
    pub fn new(disjuncts: Vec<Conjunction>) -> Self {
        Query { disjuncts }
    }

    /// A query with a single conjunction.
    pub fn conjunction(predicates: Vec<Predicate>) -> Self {
        Query { disjuncts: vec![Conjunction::new(predicates)] }
    }

    /// The always-true query (single empty conjunction).
    pub fn all() -> Self {
        Query::conjunction(vec![])
    }

    /// "A record satisfies a query only when all predicates of [some
    /// disjunct of] the query are satisfied by certain keywords of the
    /// record."
    pub fn matches(&self, record: &Record) -> bool {
        self.disjuncts.iter().any(|c| c.matches(record))
    }

    /// The single file this query is routed to, when *every* disjunct
    /// names the same file via `(FILE = f)`. The kernel uses this for
    /// directory routing; queries without a common file scan all files.
    pub fn file(&self) -> Option<&str> {
        let mut iter = self.disjuncts.iter();
        let first = iter.next()?.file()?;
        for conj in iter {
            if conj.file() != Some(first) {
                return None;
            }
        }
        Some(first)
    }

    /// Append a predicate to every disjunct (used by the translator to
    /// add currency restrictions to an existing qualification).
    pub fn and_predicate(mut self, pred: Predicate) -> Self {
        if self.disjuncts.is_empty() {
            self.disjuncts.push(Conjunction::default());
        }
        for conj in &mut self.disjuncts {
            conj.predicates.push(pred.clone());
        }
        self
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disjuncts.is_empty() {
            return write!(f, "(FALSE)");
        }
        if self.disjuncts.len() == 1 {
            return write!(f, "{}", self.disjuncts[0]);
        }
        write!(f, "(")?;
        for (i, c) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " or ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> Record {
        Record::from_pairs([("FILE", Value::str("course")), ("title", Value::str("DB"))])
            .with("credits", 4i64)
    }

    #[test]
    fn predicate_matching_by_type() {
        assert!(Predicate::eq("title", "DB").matches(&rec()));
        assert!(Predicate::new("credits", RelOp::Ge, 4i64).matches(&rec()));
        assert!(!Predicate::new("credits", RelOp::Gt, 4i64).matches(&rec()));
        // Numeric cross-type comparison.
        assert!(Predicate::new("credits", RelOp::Lt, 4.5f64).matches(&rec()));
    }

    #[test]
    fn null_semantics() {
        let r = rec();
        // Missing attribute behaves as NULL.
        assert!(Predicate::eq("missing", Value::Null).matches(&r));
        assert!(!Predicate::eq("missing", 1i64).matches(&r));
        assert!(Predicate::new("missing", RelOp::Ne, 1i64).matches(&r));
        assert!(!Predicate::new("missing", RelOp::Lt, 1i64).matches(&r));
        // Present attribute never equals NULL.
        assert!(!Predicate::eq("credits", Value::Null).matches(&r));
        assert!(Predicate::new("credits", RelOp::Ne, Value::Null).matches(&r));
    }

    #[test]
    fn dnf_semantics() {
        let q = Query::new(vec![
            Conjunction::new(vec![
                Predicate::eq("title", "DB"),
                Predicate::eq("credits", 5i64),
            ]),
            Conjunction::new(vec![Predicate::eq("credits", 4i64)]),
        ]);
        assert!(q.matches(&rec()));
        let q2 = Query::conjunction(vec![
            Predicate::eq("title", "DB"),
            Predicate::eq("credits", 5i64),
        ]);
        assert!(!q2.matches(&rec()));
    }

    #[test]
    fn empty_query_is_false_and_empty_conjunction_true() {
        assert!(!Query::default().matches(&rec()));
        assert!(Query::all().matches(&rec()));
    }

    #[test]
    fn file_routing_requires_common_file() {
        let q = Query::new(vec![
            Conjunction::new(vec![Predicate::eq("FILE", "a")]),
            Conjunction::new(vec![Predicate::eq("FILE", "b")]),
        ]);
        assert_eq!(q.file(), None);
        let q = Query::new(vec![
            Conjunction::new(vec![Predicate::eq("FILE", "a")]),
            Conjunction::new(vec![Predicate::eq("FILE", "a"), Predicate::eq("x", 1i64)]),
        ]);
        assert_eq!(q.file(), Some("a"));
    }

    #[test]
    fn and_predicate_distributes_over_disjuncts() {
        let q = Query::new(vec![
            Conjunction::new(vec![Predicate::eq("a", 1i64)]),
            Conjunction::new(vec![Predicate::eq("b", 2i64)]),
        ])
        .and_predicate(Predicate::eq("c", 3i64));
        for d in &q.disjuncts {
            assert!(d.predicates.iter().any(|p| p.attr == "c"));
        }
    }
}
