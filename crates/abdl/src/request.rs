//! The ABDL request and transaction AST.
//!
//! "ABDL allows the user to issue either a request or a transaction. A
//! request is a basic operation with an attached qualification … a
//! transaction is defined as the grouping together of two or more
//! sequentially executed requests."

use crate::query::Query;
use crate::record::Record;
use crate::value::Value;
use std::fmt;

/// Aggregate operations usable in a RETRIEVE target list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregate {
    /// `COUNT(attr)` — number of non-NULL values.
    Count,
    /// `SUM(attr)`.
    Sum,
    /// `AVG(attr)`.
    Avg,
    /// `MIN(attr)`.
    Min,
    /// `MAX(attr)`.
    Max,
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Aggregate::Count => "COUNT",
            Aggregate::Sum => "SUM",
            Aggregate::Avg => "AVG",
            Aggregate::Min => "MIN",
            Aggregate::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// One element of a RETRIEVE target list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// A plain output attribute.
    Attr(String),
    /// An aggregate over an attribute.
    Agg(Aggregate, String),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Attr(a) => f.write_str(a),
            Target::Agg(op, a) => write!(f, "{op}({a})"),
        }
    }
}

/// A RETRIEVE target list: "a list of output attributes".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TargetList {
    /// The targets, in output order.
    pub targets: Vec<Target>,
}

impl TargetList {
    /// Plain-attribute target list.
    pub fn attrs<I: IntoIterator<Item = S>, S: Into<String>>(attrs: I) -> Self {
        TargetList { targets: attrs.into_iter().map(|a| Target::Attr(a.into())).collect() }
    }

    /// The special `*` target list: every attribute of each record
    /// ("(all attributes)" in the thesis's request sketches).
    pub fn all() -> Self {
        TargetList { targets: vec![Target::Attr("*".into())] }
    }

    /// True when the list is the `*` all-attributes list.
    pub fn is_all(&self) -> bool {
        matches!(self.targets.as_slice(), [Target::Attr(a)] if a == "*")
    }

    /// True when any target is an aggregate.
    pub fn has_aggregates(&self) -> bool {
        self.targets.iter().any(|t| matches!(t, Target::Agg(..)))
    }
}

impl fmt::Display for TargetList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.targets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// An UPDATE modifier: "the modifier specifies how the target record(s)
/// are to be modified".
#[derive(Debug, Clone, PartialEq)]
pub struct Modifier {
    /// Attribute to modify.
    pub attr: String,
    /// New value (may be NULL — the translator's DISCONNECT nulls values).
    pub value: Value,
}

impl Modifier {
    /// Construct a modifier.
    pub fn new(attr: impl Into<String>, value: impl Into<Value>) -> Self {
        Modifier { attr: attr.into(), value: value.into() }
    }
}

impl fmt::Display for Modifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} = {})", self.attr, self.value)
    }
}

/// A single ABDL request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// "INSERT places a new record into the database and is qualified by
    /// a list of keywords."
    Insert {
        /// The record to insert (its keyword list).
        record: Record,
    },
    /// "DELETE removes one or more records from the database and \[is\]
    /// qualified by a query."
    Delete {
        /// Which records to remove.
        query: Query,
    },
    /// "UPDATE modifies records of the database and is qualified by a
    /// query and a modifier."
    Update {
        /// Which records to modify.
        query: Query,
        /// How to modify them.
        modifier: Modifier,
    },
    /// "RETRIEVE accesses and returns records of the database and is
    /// qualified by a query, a target-list, and a by-clause."
    Retrieve {
        /// Which records to return.
        query: Query,
        /// Output attributes / aggregates.
        target: TargetList,
        /// Optional grouping attribute.
        by: Option<String>,
    },
    /// RETRIEVE-COMMON: an equi-join of two retrieves on a common
    /// attribute pair. The thesis's implementation "will not concern
    /// itself with" this operation; it is provided here for kernel
    /// completeness (the fifth ABDL operation).
    RetrieveCommon {
        /// Left qualification.
        left: Query,
        /// Join attribute of the left records.
        left_attr: String,
        /// Right qualification.
        right: Query,
        /// Join attribute of the right records.
        right_attr: String,
        /// Output attributes taken from the joined pair (left then right).
        target: TargetList,
    },
}

impl Request {
    /// A RETRIEVE of all attributes with no by-clause.
    pub fn retrieve_all(query: Query) -> Self {
        Request::Retrieve { query, target: TargetList::all(), by: None }
    }

    /// Operation name (for metrics and display).
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Insert { .. } => "INSERT",
            Request::Delete { .. } => "DELETE",
            Request::Update { .. } => "UPDATE",
            Request::Retrieve { .. } => "RETRIEVE",
            Request::RetrieveCommon { .. } => "RETRIEVE-COMMON",
        }
    }

    /// True for requests that change the database.
    pub fn is_mutation(&self) -> bool {
        matches!(self, Request::Insert { .. } | Request::Delete { .. } | Request::Update { .. })
    }
}

impl fmt::Display for Request {
    /// Canonical ABDL text; `crate::parse::parse_request` parses it back.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Insert { record } => write!(f, "INSERT {record}"),
            Request::Delete { query } => write!(f, "DELETE {query}"),
            Request::Update { query, modifier } => write!(f, "UPDATE {query} {modifier}"),
            Request::Retrieve { query, target, by } => {
                write!(f, "RETRIEVE {query} {target}")?;
                if let Some(by) = by {
                    write!(f, " BY {by}")?;
                }
                Ok(())
            }
            Request::RetrieveCommon { left, left_attr, right, right_attr, target } => {
                write!(
                    f,
                    "RETRIEVE-COMMON {left} ({left_attr}) COMMON {right} ({right_attr}) {target}"
                )
            }
        }
    }
}

/// "A transaction is defined as the grouping together of two or more
/// sequentially executed requests." (We also allow 0 or 1 for harness
/// convenience.)
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Transaction {
    /// The requests, executed in order.
    pub requests: Vec<Request>,
}

impl Transaction {
    /// Construct a transaction.
    pub fn new(requests: Vec<Request>) -> Self {
        Transaction { requests }
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.requests.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;

    #[test]
    fn display_matches_thesis_shapes() {
        let req = Request::Retrieve {
            query: Query::conjunction(vec![
                Predicate::eq("FILE", "course"),
                Predicate::eq("title", "Advanced Database"),
            ]),
            target: TargetList::attrs(["title", "credits"]),
            by: Some("dept".into()),
        };
        assert_eq!(
            req.to_string(),
            "RETRIEVE ((FILE = 'course') and (title = 'Advanced Database')) (title, credits) BY dept"
        );
    }

    #[test]
    fn all_target_list() {
        assert!(TargetList::all().is_all());
        assert!(!TargetList::attrs(["a"]).is_all());
        assert_eq!(TargetList::all().to_string(), "(*)");
    }

    #[test]
    fn mutation_classification() {
        assert!(Request::Delete { query: Query::all() }.is_mutation());
        assert!(!Request::retrieve_all(Query::all()).is_mutation());
    }
}
