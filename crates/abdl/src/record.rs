//! ABDM records: keywords (attribute–value pairs) plus an optional
//! record body ("a textual portion, allowing for a verbal description of
//! the record or concept" — Figure 2.3 of the thesis).

use crate::value::Value;
use crate::FILE_ATTR;
use std::fmt;

/// A kernel database key: the unique address of a record in the store.
///
/// CODASYL currency indicators hold either null or "the address of a
/// record in the database"; `DbKey` is that address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct DbKey(pub u64);

impl fmt::Display for DbKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// An attribute–value pair — the ABDM *keyword*.
///
/// "These attribute-value pairs are formed from a cartesian product of
/// the attribute names and the domains of the values for the attributes.
/// This allows for the representation of any and all logical concepts."
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Keyword {
    /// The attribute name.
    pub attr: String,
    /// The attribute value.
    pub value: Value,
}

impl Keyword {
    /// Construct a keyword.
    pub fn new(attr: impl Into<String>, value: impl Into<Value>) -> Self {
        Keyword { attr: attr.into(), value: value.into() }
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.attr, self.value)
    }
}

/// An ABDM record: "comprised of at most one keyword for each attribute
/// defined in the database and a textual portion".
///
/// The keyword order is preserved (the `<FILE, f>` keyword is first by
/// convention); lookup by attribute is linear, which is fine because
/// kernel records are short (one keyword per schema attribute).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    keywords: Vec<Keyword>,
    /// The optional record body (free text).
    pub body: Option<String>,
}

impl Record {
    /// An empty record.
    pub fn new() -> Self {
        Record::default()
    }

    /// Build a record from `(attr, value)` pairs.
    pub fn from_pairs<A, V, I>(pairs: I) -> Self
    where
        A: Into<String>,
        V: Into<Value>,
        I: IntoIterator<Item = (A, V)>,
    {
        Record {
            keywords: pairs
                .into_iter()
                .map(|(a, v)| Keyword::new(a, v))
                .collect(),
            body: None,
        }
    }

    /// Append a keyword. If the attribute is already present the existing
    /// keyword is overwritten ("at most one keyword for each attribute").
    pub fn set(&mut self, attr: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        let attr = attr.into();
        let value = value.into();
        if let Some(kw) = self.keywords.iter_mut().find(|k| k.attr == attr) {
            kw.value = value;
        } else {
            self.keywords.push(Keyword { attr, value });
        }
        self
    }

    /// Builder-style [`Record::set`].
    pub fn with(mut self, attr: impl Into<String>, value: impl Into<Value>) -> Self {
        self.set(attr, value);
        self
    }

    /// The value of `attr`, if the record carries a keyword for it.
    pub fn get(&self, attr: &str) -> Option<&Value> {
        self.keywords.iter().find(|k| k.attr == attr).map(|k| &k.value)
    }

    /// Like [`Record::get`] but treating a missing keyword as NULL,
    /// matching kernel query semantics.
    pub fn get_or_null(&self, attr: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(attr).unwrap_or(&NULL)
    }

    /// Remove the keyword for `attr`; returns its value if present.
    pub fn remove(&mut self, attr: &str) -> Option<Value> {
        let idx = self.keywords.iter().position(|k| k.attr == attr)?;
        Some(self.keywords.remove(idx).value)
    }

    /// The file this record belongs to (`<FILE, f>` keyword).
    pub fn file(&self) -> Option<&str> {
        self.get(FILE_ATTR).and_then(Value::as_str)
    }

    /// All keywords in insertion order.
    pub fn keywords(&self) -> &[Keyword] {
        &self.keywords
    }

    /// Attribute names in keyword order.
    pub fn attrs(&self) -> impl Iterator<Item = &str> {
        self.keywords.iter().map(|k| k.attr.as_str())
    }

    /// Number of keywords.
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// True when the record has no keywords.
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// Project the record onto a set of attributes, keeping target order.
    pub fn project<'a, I: IntoIterator<Item = &'a str>>(&self, attrs: I) -> Record {
        let mut out = Record::new();
        for attr in attrs {
            if let Some(v) = self.get(attr) {
                out.set(attr, v.clone());
            }
        }
        out
    }
}

impl fmt::Display for Record {
    /// Renders as an ABDL keyword list: `(<FILE, f>, <a, v>, ...)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, kw) in self.keywords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{kw}")?;
        }
        if let Some(body) = &self.body {
            if !self.keywords.is_empty() {
                write!(f, ", ")?;
            }
            write!(f, "{{{body}}}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_overwrites_existing_attribute() {
        let mut r = Record::new();
        r.set("a", 1i64).set("b", 2i64).set("a", 3i64);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("a"), Some(&Value::Int(3)));
    }

    #[test]
    fn file_keyword_is_recognized() {
        let r = Record::from_pairs([("FILE", "course"), ("title", "DB")]);
        assert_eq!(r.file(), Some("course"));
    }

    #[test]
    fn get_or_null_defaults_to_null() {
        let r = Record::new();
        assert!(r.get_or_null("missing").is_null());
    }

    #[test]
    fn projection_keeps_target_order() {
        let r = Record::from_pairs([("a", 1i64), ("b", 2i64), ("c", 3i64)]);
        let p = r.project(["c", "a"]);
        assert_eq!(p.attrs().collect::<Vec<_>>(), vec!["c", "a"]);
    }

    #[test]
    fn display_renders_keyword_list() {
        let mut r = Record::from_pairs([("FILE", "f")]);
        r.set("n", 4i64);
        r.body = Some("note".into());
        assert_eq!(r.to_string(), "(<FILE, 'f'>, <n, 4>, {note})");
    }
}
