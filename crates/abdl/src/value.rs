//! Typed attribute values.
//!
//! The thesis's C implementation stores every value as a character string
//! tagged `I`/`F`/`S`; here values are typed so the non-entity integrity
//! constraints of the functional model (Chapter V.C) survive the trip
//! through the kernel without string re-parsing.

use std::cmp::Ordering;
use std::fmt;

/// A single attribute value of an ABDM keyword.
///
/// Values form a total order so that range predicates (`<`, `<=`, `>`,
/// `>=`) and the kernel's per-attribute directory indexes behave
/// deterministically even across types: `Null < Int ≈ Float < Str`.
/// Integer/float comparisons are numeric; everything else orders by type
/// first, then within type.
#[derive(Debug, Clone)]
pub enum Value {
    /// The null value ("does not identify a record / no value").
    Null,
    /// A (signed) integer — the network `FIXED` / Daplex `INTEGER` type.
    Int(i64),
    /// A floating-point number — network `FLOAT` / Daplex `FLOAT`.
    Float(f64),
    /// A character string — network `CHARACTER(n)` / Daplex `STRING`,
    /// also used for enumeration literals and booleans.
    Str(String),
}

impl Value {
    /// String value helper.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// True when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by aggregates: integers and floats only.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string inside, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Rank used for cross-type ordering.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            // Numeric cross-comparison: totalize NaN as greatest float.
            (Int(a), Float(b)) => cmp_f64(*a as f64, *b),
            (Float(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Float(a), Float(b)) => cmp_f64(*a, *b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash integral floats like ints so Int(2) == Float(2.0)
            // hashes consistently with Eq.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                // Normalize -0.0 to 0.0 to match Eq.
                let f = if *f == 0.0 { 0.0 } else { *f };
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| {
        // NaN sorts greatest; two NaNs are equal.
        match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => unreachable!("partial_cmp on non-NaN floats"),
        }
    })
}

impl fmt::Display for Value {
    /// Canonical ABDL rendering: strings are single-quoted with `''`
    /// escaping, floats always carry a decimal point, `NULL` is literal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Str(if v { "true" } else { "false" }.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total_and_numeric() {
        assert!(Value::Int(2) < Value::Int(3));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(2.5) < Value::Int(3));
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Int(i64::MAX) < Value::str(""));
        assert!(Value::str("a") < Value::str("b"));
    }

    #[test]
    fn nan_sorts_greatest_among_numbers() {
        assert!(Value::Float(f64::NAN) > Value::Float(f64::INFINITY));
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        // But still below strings (type rank).
        assert!(Value::Float(f64::NAN) < Value::str(""));
    }

    #[test]
    fn display_escapes_quotes() {
        assert_eq!(Value::str("O'Brien").to_string(), "'O''Brien'");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Float(4.0).to_string(), "4.0");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn hash_agrees_with_eq_for_mixed_numerics() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(2));
        assert!(set.contains(&Value::Float(2.0)));
    }
}
