//! A small deterministic pseudo-random number generator.
//!
//! The workspace builds in hermetic environments with no third-party
//! crates, so the seeded randomness needed by the workload generators,
//! the randomized property tests and the MBDS fault-injection harness
//! lives here. The generator is SplitMix64 (Steele, Lea & Flood 2014):
//! a 64-bit state advanced by a Weyl sequence and finalized by a
//! variant of the MurmurHash3 mixer. It is not cryptographic; it is
//! fast, passes the statistical tests that matter for test-input
//! generation, and — crucially — produces identical sequences for
//! identical seeds on every platform.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Prng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// A uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }

    /// Fork an independent generator; the parent stream advances by one.
    pub fn fork(&mut self) -> Prng {
        Prng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5, 17);
            assert!((-5..17).contains(&v));
            assert!(rng.index(9) < 9);
        }
    }

    #[test]
    fn output_is_reasonably_spread() {
        let mut rng = Prng::seed_from_u64(3);
        let mut seen = [0usize; 8];
        for _ in 0..8000 {
            seen[rng.index(8)] += 1;
        }
        for (i, &n) in seen.iter().enumerate() {
            assert!(n > 700, "bucket {i} starved: {n}");
        }
    }
}
