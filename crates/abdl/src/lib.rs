#![warn(missing_docs)]

//! # ABDM / ABDL — the kernel data model and language of MLDS
//!
//! The attribute-based data model (ABDM) was chosen as the *kernel data
//! model* of the Multi-Lingual Database System "because of its excellent
//! combination of simplicity and power": every logical concept is
//! represented as a record of *attribute–value pairs* (keywords), records
//! are grouped into *files*, and records are located by *keyword
//! predicates* combined into disjunctive-normal-form *queries*.
//!
//! The attribute-based data language (ABDL) is the matching *kernel data
//! language*: five basic operations — `INSERT`, `DELETE`, `UPDATE`,
//! `RETRIEVE` and `RETRIEVE-COMMON` — each qualified by keyword lists,
//! queries, modifiers, target lists and by-clauses.
//!
//! This crate provides:
//!
//! * the data model: [`Value`], [`Keyword`], [`Record`], [`query`] —
//!   typed values, attribute–value pairs, records with optional record
//!   bodies, and DNF queries with the six relational operators;
//! * the language: [`request`] — the request/transaction AST — together
//!   with a full text [`parse`]r and canonical printer (round-trip safe);
//! * a single-site execution engine: [`engine`] — an indexed in-memory
//!   kernel store (`Store`) executing requests and transactions, with
//!   per-request cost accounting used by the multi-backend simulator.
//!
//! The multi-backend kernel (MBDS) that executes ABDL in parallel lives in
//! the sibling `mlds-mbds` crate; the language interfaces that *generate*
//! ABDL live in `mlds-daplex`, `mlds-codasyl` and `mlds-translator`.
//!
//! ## Example
//!
//! ```
//! use abdl::engine::Store;
//! use abdl::parse::parse_request;
//!
//! let mut store = Store::new();
//! store.execute(&parse_request(
//!     "INSERT (<FILE, course>, <course, 1>, <title, 'Advanced Database'>, <credits, 4>)"
//! ).unwrap()).unwrap();
//!
//! let resp = store.execute(&parse_request(
//!     "RETRIEVE ((FILE = course) and (title = 'Advanced Database')) (title, credits)"
//! ).unwrap()).unwrap();
//! assert_eq!(resp.records().len(), 1);
//! ```

pub mod engine;
pub mod error;
pub mod parse;
pub mod prng;
pub mod query;
pub mod record;
pub mod request;
pub mod value;

pub use engine::{ExecTotals, Kernel, KernelHealth, Response, Store};
pub use error::{Error, Result};
pub use query::{Conjunction, Predicate, Query, RelOp};
pub use record::{DbKey, Keyword, Record};
pub use request::{Aggregate, Modifier, Request, Target, TargetList, Transaction};
pub use value::Value;

/// The distinguished attribute naming the file a record belongs to.
///
/// Every ABDM record carries `<FILE, file-name>` as its first keyword; a
/// query whose first predicate is `(FILE = f)` is routed to file `f`.
pub const FILE_ATTR: &str = "FILE";
