//! Tokenizer shared by the ABDL parser.
//!
//! The lexer is deliberately small: identifiers/barewords, quoted
//! strings with `''` escaping, signed numbers, and the handful of
//! punctuation tokens ABDL needs. `<` is punctuation (keyword-list
//! opener) *and* a relational operator; the parser disambiguates by
//! context, so the lexer emits `Lt`/`Le` and the parser treats `Lt`
//! as an angle bracket inside INSERT keyword lists.

use crate::error::{Error, Result};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or bareword (attribute name, keyword, unquoted value).
    Ident(String),
    /// Single-quoted string literal (escapes already resolved).
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `!=` (also `<>`)
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `{ … }` record body text.
    Body(String),
    /// `*`
    Star,
    /// End of input.
    Eof,
}

/// A token plus its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the token start in the source text.
    pub offset: usize,
}

/// The ABDL tokenizer.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0 }
    }

    /// Tokenize the whole input (trailing [`TokenKind::Eof`] included).
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn err(&self, msg: impl Into<String>, offset: usize) -> Error {
        Error::Parse { msg: msg.into(), offset }
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b'-' && self.src.get(self.pos + 1) == Some(&b'-') {
                // `--` line comment.
                while let Some(c) = self.peek() {
                    self.pos += 1;
                    if c == b'\n' {
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_ws();
        let offset = self.pos;
        let Some(c) = self.bump() else {
            return Ok(Token { kind: TokenKind::Eof, offset });
        };
        let kind = match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b'*' => TokenKind::Star,
            b'=' => TokenKind::Eq,
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Ne
                } else {
                    return Err(self.err("expected `=` after `!`", offset));
                }
            }
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    TokenKind::Le
                }
                Some(b'>') => {
                    self.pos += 1;
                    TokenKind::Ne
                }
                _ => TokenKind::Lt,
            },
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'\'' => {
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'\'') => {
                            if self.peek() == Some(b'\'') {
                                self.pos += 1;
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c as char),
                        None => return Err(self.err("unterminated string literal", offset)),
                    }
                }
                TokenKind::Str(decode_utf8_lossy(&s))
            }
            b'{' => {
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'}') => break,
                        Some(c) => s.push(c as char),
                        None => return Err(self.err("unterminated record body", offset)),
                    }
                }
                TokenKind::Body(decode_utf8_lossy(&s))
            }
            b'-' | b'+' | b'0'..=b'9' => {
                self.pos = offset;
                self.lex_number(offset)?
            }
            c if c == b'_' || (c as char).is_alphabetic() => {
                self.pos = offset;
                self.lex_ident()
            }
            other => {
                return Err(self.err(format!("unexpected character `{}`", other as char), offset))
            }
        };
        Ok(Token { kind, offset })
    }

    fn lex_number(&mut self, offset: usize) -> Result<TokenKind> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'-') | Some(b'+')) {
            self.pos += 1;
        }
        let mut saw_digit = false;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    saw_digit = true;
                    self.pos += 1;
                }
                b'.' if !is_float => {
                    // Require a digit after the point (so `1..5` elsewhere
                    // doesn't lex as a float — relevant to the Daplex lexer
                    // which reuses this convention).
                    if matches!(self.src.get(self.pos + 1), Some(b'0'..=b'9')) {
                        is_float = true;
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                b'e' | b'E' if is_float || saw_digit => {
                    let save = self.pos;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'-') | Some(b'+')) {
                        self.pos += 1;
                    }
                    if matches!(self.peek(), Some(b'0'..=b'9')) {
                        is_float = true;
                        while matches!(self.peek(), Some(b'0'..=b'9')) {
                            self.pos += 1;
                        }
                    } else {
                        self.pos = save;
                    }
                    break;
                }
                _ => break,
            }
        }
        if !saw_digit {
            return Err(self.err("expected digits in number", offset));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number", offset))?;
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|e| self.err(format!("bad float literal: {e}"), offset))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|e| self.err(format!("bad integer literal: {e}"), offset))
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'_' || c == b'-' || (c as char).is_alphanumeric() {
                // `-` inside identifiers supports `RETRIEVE-COMMON`.
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        TokenKind::Ident(text)
    }
}

fn decode_utf8_lossy(s: &str) -> String {
    // Bytes were pushed as chars already; normalize to owned string.
    s.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_punctuation_and_relops() {
        assert_eq!(
            kinds("( ) , ; = != <> < <= > >= *"),
            vec![
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Semi,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Star,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 -7 3.5 -0.25 1e3"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(-7),
                TokenKind::Float(3.5),
                TokenKind::Float(-0.25),
                TokenKind::Float(1000.0),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds("'Advanced Database' 'O''Brien'"),
            vec![
                TokenKind::Str("Advanced Database".into()),
                TokenKind::Str("O'Brien".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_hyphenated_ident() {
        assert_eq!(
            kinds("RETRIEVE-COMMON"),
            vec![TokenKind::Ident("RETRIEVE-COMMON".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn skips_line_comments() {
        assert_eq!(
            kinds("a -- a comment\n b"),
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::new("'oops").tokenize().is_err());
    }
}
