//! Text parser for ABDL requests and transactions.
//!
//! The grammar follows the request sketches of Chapters II, III and VI of
//! the thesis:
//!
//! ```text
//! transaction := request (';'? request)*
//! request     := 'INSERT' '(' keyword (',' keyword)* [',' '{' text '}'] ')'
//!              | 'DELETE' query
//!              | 'UPDATE' query '(' attr '=' value ')'
//!              | 'RETRIEVE' query target-list ['BY' attr]
//!              | 'RETRIEVE-COMMON' query '(' attr ')' 'COMMON'
//!                                 query '(' attr ')' target-list
//! keyword     := '<' attr ',' value '>'
//! query       := '(' conj ('or' conj)* ')' | conj
//! conj        := '(' pred ('and' pred)* ')' | pred
//! pred        := '(' attr relop value ')' | '(' 'TRUE' ')' | '(' 'FALSE' ')'
//! target-list := '(' '*' ')' | '(' target (',' target)* ')'
//! target      := attr | AGG '(' attr ')'
//! relop       := '=' | '!=' | '<' | '<=' | '>' | '>='
//! value       := integer | float | 'string' | NULL | bareword
//! ```
//!
//! Keywords are case-insensitive; attribute names and barewords are
//! case-sensitive. The canonical printer (`Display` on [`Request`](crate::Request)) emits
//! text this parser accepts (round-trip property-tested).

mod lexer;
mod parser;

pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse_request, parse_transaction};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Predicate, RelOp};
    use crate::request::{Request, TargetList};
    use crate::value::Value;
    use crate::Query;

    #[test]
    fn parses_thesis_find_any_translation() {
        let req = parse_request(
            "RETRIEVE ((FILE = course) AND (title = 'Advanced Database')) \
             (title, dept, semester, credits) BY course",
        )
        .unwrap();
        match req {
            Request::Retrieve { query, target, by } => {
                assert_eq!(query.disjuncts.len(), 1);
                assert_eq!(query.disjuncts[0].predicates.len(), 2);
                assert_eq!(
                    query.disjuncts[0].predicates[1],
                    Predicate::eq("title", "Advanced Database")
                );
                assert_eq!(target, TargetList::attrs(["title", "dept", "semester", "credits"]));
                assert_eq!(by.as_deref(), Some("course"));
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_insert_keyword_list() {
        let req = parse_request(
            "INSERT (<FILE, course>, <course, 17>, <title, 'DB'>, <credits, 4>, <gpa, 3.5>)",
        )
        .unwrap();
        match req {
            Request::Insert { record } => {
                assert_eq!(record.file(), Some("course"));
                assert_eq!(record.get("course"), Some(&Value::Int(17)));
                assert_eq!(record.get("gpa"), Some(&Value::Float(3.5)));
                assert_eq!(record.len(), 5);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_update_with_null_modifier() {
        let req = parse_request("UPDATE ((FILE = f) and (k = 3)) (advisor = NULL)").unwrap();
        match req {
            Request::Update { modifier, .. } => {
                assert_eq!(modifier.attr, "advisor");
                assert!(modifier.value.is_null());
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_disjunctive_query() {
        let req = parse_request(
            "DELETE (((FILE = a) and (x > 1)) or ((FILE = a) and (y <= -2)))",
        )
        .unwrap();
        match req {
            Request::Delete { query } => {
                assert_eq!(query.disjuncts.len(), 2);
                assert_eq!(query.disjuncts[0].predicates[1].op, RelOp::Gt);
                assert_eq!(query.disjuncts[1].predicates[1].value, Value::Int(-2));
                assert_eq!(query.file(), Some("a"));
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_aggregates_and_star() {
        let req = parse_request("RETRIEVE (FILE = s) (COUNT(name), AVG(gpa)) BY major").unwrap();
        match req {
            Request::Retrieve { target, .. } => {
                assert!(target.has_aggregates());
                assert_eq!(target.targets.len(), 2);
            }
            other => panic!("wrong request: {other:?}"),
        }
        let req = parse_request("RETRIEVE (FILE = s) (*)").unwrap();
        match req {
            Request::Retrieve { target, .. } => assert!(target.is_all()),
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_retrieve_common() {
        let req = parse_request(
            "RETRIEVE-COMMON ((FILE = faculty)) (dept) COMMON ((FILE = department)) (dname) (name, building)",
        )
        .unwrap();
        match req {
            Request::RetrieveCommon { left_attr, right_attr, .. } => {
                assert_eq!(left_attr, "dept");
                assert_eq!(right_attr, "dname");
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_transaction_of_requests() {
        let txn = parse_transaction(
            "INSERT (<FILE, f>, <f, 1>);\n\
             RETRIEVE (FILE = f) (*)\n\
             DELETE (FILE = f)",
        )
        .unwrap();
        assert_eq!(txn.requests.len(), 3);
    }

    #[test]
    fn rejects_garbage_with_offset() {
        let err = parse_request("RETRIEVE ((FILE = ) (x)").unwrap_err();
        match err {
            crate::Error::Parse { .. } => {}
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn single_predicate_without_outer_parens() {
        let req = parse_request("DELETE (FILE = f)").unwrap();
        match req {
            Request::Delete { query } => assert_eq!(query, Query::conjunction(vec![
                Predicate::eq("FILE", "f"),
            ])),
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse_request("retrieve (file = f) (*)").is_ok());
        assert!(parse_request("Delete (FILE = f)").is_ok());
    }

    #[test]
    fn round_trips_canonical_text() {
        let texts = [
            "INSERT (<FILE, 'f'>, <f, 1>, <t, 'x''y'>)",
            "DELETE ((FILE = 'f') and (x != NULL))",
            "UPDATE ((FILE = 'f') and (k = 3)) (s = NULL)",
            "RETRIEVE ((FILE = 'f') and (a >= 2.5)) (a, b) BY c",
            "RETRIEVE (((FILE = 'f')) or ((FILE = 'f') and (z < 0))) (*)",
        ];
        for text in texts {
            let req = parse_request(text).unwrap();
            let printed = req.to_string();
            let reparsed = parse_request(&printed).unwrap();
            assert_eq!(req, reparsed, "round trip failed for {text}");
        }
    }
}
